#!/usr/bin/env bash
# Tier-1 verification, hermetic: the workspace has zero registry
# dependencies (everything external was replaced by crates/util), so
# every step runs with --offline and must succeed with no network
# access at all. See DESIGN.md "Dependencies" and README "Building".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== benches compile (offline) =="
cargo bench --no-run --offline

echo "== difftest fuzz smoke (64 cases, deterministic) =="
# Bounded differential-fuzzing run: every pipeline stage cross-checked
# against the IR interpreter over 64 seeded cases (see docs/TESTING.md).
# Run twice with the same master seed: the logs must be byte-identical
# — the suite prints no timing or host state, and a mismatch means a
# determinism regression somewhere in the stack.
log_dir="$(mktemp -d)"
trap 'rm -rf "$log_dir"' EXIT
cargo run --release --offline -q -p casted-bench --bin difftest -- \
  --cases 64 --seed 0xCA57ED > "$log_dir/fuzz1.log"
cargo run --release --offline -q -p casted-bench --bin difftest -- \
  --cases 64 --seed 0xCA57ED > "$log_dir/fuzz2.log"
cmp "$log_dir/fuzz1.log" "$log_dir/fuzz2.log"
tail -n 1 "$log_dir/fuzz1.log"

echo "== metrics snapshot determinism (quick sweep, counter-only) =="
# Two metrics-enabled quick sweeps: the counter-only snapshots must be
# byte-identical (counters record what work was done, never how fast —
# see docs/OBSERVABILITY.md). The full export is written once so the
# exporter path runs too; its timings are host-noise and are not
# compared.
cargo run --release --offline -q -p casted-bench --bin summary -- \
  --quick --metrics "$log_dir/metrics_full.json" \
  --metrics-counters "$log_dir/counters1.json" > /dev/null
cargo run --release --offline -q -p casted-bench --bin summary -- \
  --quick --metrics-counters "$log_dir/counters2.json" > /dev/null
cmp "$log_dir/counters1.json" "$log_dir/counters2.json"
test -s "$log_dir/metrics_full.json"
grep -c '"' "$log_dir/counters1.json" > /dev/null
echo "counter snapshots identical ($(grep -c ':' "$log_dir/counters1.json") counters)"

echo "== campaign engine cross-check (fig9 --quick, all three engines) =="
# The checkpointed engine (snapshots, fast-forward replay, convergence
# pruning) and the batched engine (lockstep lanes over one shared
# golden replay — see docs/PERFORMANCE.md for both) must reproduce the
# reference engine byte for byte: identical coverage CSV, and
# identical counter snapshot once each engine's own work counters
# (faults.checkpoint.*, faults.batch.* and faults.sections.*, the only
# permitted differences) are stripped.
for engine in reference checkpointed batched; do
  mkdir -p "$log_dir/eng_$engine"
  cargo run --release --offline -q -p casted-bench --bin fig9 -- \
    --quick --engine "$engine" --out "$log_dir/eng_$engine" \
    --metrics-counters "$log_dir/eng_$engine/counters.json" > /dev/null
  grep -v 'faults\.\(checkpoint\|batch\|sections\)\.' "$log_dir/eng_$engine/counters.json" \
    > "$log_dir/eng_$engine/common.json"
done
for engine in checkpointed batched; do
  cmp "$log_dir/eng_reference/fig9.csv" "$log_dir/eng_$engine/fig9.csv"
  cmp "$log_dir/eng_reference/common.json" "$log_dir/eng_$engine/common.json"
done
# The quick grid must actually cover the recovery schemes and the
# 4-cluster machine (docs/SCHEMES.md): TMRED rows must report
# corrections (last CSV column nonzero somewhere), RBED rows must
# report zero silent corruptions (its exactness property), and both
# cluster counts must appear.
grep -q ',TMRED,' "$log_dir/eng_reference/fig9.csv"
grep -q ',RBED,'  "$log_dir/eng_reference/fig9.csv"
awk -F, 'NR>1 && $2=="TMRED" { c+=$NF } END { exit !(c>0) }' "$log_dir/eng_reference/fig9.csv"
awk -F, 'NR>1 && $2=="RBED" && $9!=0 { bad=1 } END { exit bad }' "$log_dir/eng_reference/fig9.csv"
awk -F, 'NR>1 && $5==2 { two=1 } NR>1 && $5==4 { four=1 } END { exit !(two && four) }' \
  "$log_dir/eng_reference/fig9.csv"
echo "engines byte-identical over the quick grid, recovery schemes + 4-cluster cells included"

echo "== incremental section cache cross-check (fig9 --quick --incremental, cold + warm) =="
# The compositional section cache (docs/INCREMENTAL.md) must reproduce
# the engines' bytes too: a cold run (empty store) and a warm rerun
# (fully populated store, recombining cached section tallies) must both
# emit the reference engine's exact coverage CSV and the same stripped
# counter snapshot — and the warm run must actually hit the cache. The
# warm rerun recombines from the program record without simulating at
# all, so its snapshot carries no sim.* counters; those are stripped
# from both sides of the warm comparison only (the cold run still
# flushes the golden run's sim.* exactly like the engines do).
for pass in cold warm; do
  mkdir -p "$log_dir/inc_$pass"
  cargo run --release --offline -q -p casted-bench --bin fig9 -- \
    --quick --incremental --section-cache "$log_dir/section-store" \
    --out "$log_dir/inc_$pass" \
    --metrics-counters "$log_dir/inc_$pass/counters.json" > /dev/null
  grep -v 'faults\.\(checkpoint\|batch\|sections\)\.' "$log_dir/inc_$pass/counters.json" \
    > "$log_dir/inc_$pass/common.json"
  cmp "$log_dir/eng_reference/fig9.csv" "$log_dir/inc_$pass/fig9.csv"
done
cmp "$log_dir/eng_reference/common.json" "$log_dir/inc_cold/common.json"
grep -v '"sim\.' "$log_dir/eng_reference/common.json" > "$log_dir/inc_warm/ref_nosim.json"
grep -v '"sim\.' "$log_dir/inc_warm/common.json" > "$log_dir/inc_warm/warm_nosim.json"
cmp "$log_dir/inc_warm/ref_nosim.json" "$log_dir/inc_warm/warm_nosim.json"
warm_hits="$(sed -n 's/.*"faults\.sections\.hit": \([0-9]*\).*/\1/p' "$log_dir/inc_warm/counters.json")"
if [ -z "$warm_hits" ] || [ "$warm_hits" -lt 1 ]; then
  echo "warm incremental rerun hit no cached sections (got '${warm_hits:-none}')" >&2
  exit 1
fi
echo "incremental cache byte-identical to reference, cold and warm ($warm_hits warm section hits)"

echo "== staged compile pipeline: cold+warm byte-compare (offline) =="
# Cold and warm castedc runs through the content-addressed artifact
# store must print byte-identical output (the stage-exactness
# guarantee, docs/PIPELINE.md); the warm run must answer all six
# stages from the store, and a machine-config-only rerun must skip
# the front end entirely (no frontend.* metric) while still hitting
# lexparse/sema/codegen/ed.
staged_src="$log_dir/staged.mc"
cat > "$staged_src" <<'EOF'
fn main() { var s: int = 0; for i in 0..50 { s = s + i * i; } out(s); }
EOF
for pass in cold warm; do
  cargo run --release --offline -q -p casted --bin castedc -- \
    run "$staged_src" --scheme casted --issue 2 --delay 2 \
    --artifact-cache "$log_dir/artifacts" \
    --metrics-counters "$log_dir/staged_$pass.json" > "$log_dir/staged_$pass.out"
done
cmp "$log_dir/staged_cold.out" "$log_dir/staged_warm.out"
stage_hits="$(sed -n 's/.*"compile\.stages\.hit": \([0-9]*\).*/\1/p' "$log_dir/staged_warm.json")"
if [ -z "$stage_hits" ] || [ "$stage_hits" -lt 6 ]; then
  echo "warm staged compile expected 6 stage hits (got '${stage_hits:-none}')" >&2
  exit 1
fi
cargo run --release --offline -q -p casted --bin castedc -- \
  run "$staged_src" --scheme casted --issue 4 --delay 1 \
  --artifact-cache "$log_dir/artifacts" \
  --metrics "$log_dir/staged_cfg.json" > /dev/null
if grep -q '"frontend\.' "$log_dir/staged_cfg.json"; then
  echo "config-only rerun did front-end work" >&2
  exit 1
fi
cfg_hits="$(sed -n 's/.*"compile\.stages\.hit": \([0-9]*\).*/\1/p' "$log_dir/staged_cfg.json")"
if [ -z "$cfg_hits" ] || [ "$cfg_hits" -lt 4 ]; then
  echo "config-only rerun expected >=4 stage hits (got '${cfg_hits:-none}')" >&2
  exit 1
fi
echo "staged compile byte-identical cold and warm ($stage_hits warm stage hits, $cfg_hits after a config-only change)"

echo "== casted-serve loopback smoke (offline, ephemeral port) =="
# Start the service on an ephemeral loopback port, push one request of
# each kind through casted-client, assert the content-addressed cache
# reports a hit for a repeated identical request, then shut down
# gracefully — the server must drain and exit 0. Everything is local
# TCP; no network access is involved. See docs/SERVING.md.
serve_bin=target/release/casted-serve
client_bin=target/release/casted-client
smoke_src="$log_dir/smoke.mc"
cat > "$smoke_src" <<'EOF'
fn main() { var s: int = 0; for i in 0..60 { s = s + i * i; } out(s); }
EOF
"$serve_bin" --metrics-counters > "$log_dir/serve.log" &
serve_pid=$!
# A failure below must not orphan the server.
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$log_dir"' EXIT
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^casted-serve listening on //p' "$log_dir/serve.log")"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "casted-serve did not come up" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
"$client_bin" --addr "$addr" ping | grep -q pong
"$client_bin" --addr "$addr" compile  --file "$smoke_src" --scheme casted --issue 2 --delay 2 \
  | grep -q '^bundles: '
"$client_bin" --addr "$addr" simulate --file "$smoke_src" --scheme casted --issue 2 --delay 2 \
  > "$log_dir/sim1.out"
grep -q '^cycles: ' "$log_dir/sim1.out"
"$client_bin" --addr "$addr" inject   --file "$smoke_src" --scheme casted --issue 2 --delay 2 \
  --trials 60 --seed 0xCA57ED --engine checkpointed | grep -q '^trials: 60$'
# The repeated identical request must be served from the cache and be
# byte-identical to the first reply.
"$client_bin" --addr "$addr" simulate --file "$smoke_src" --scheme casted --issue 2 --delay 2 \
  > "$log_dir/sim2.out"
cmp "$log_dir/sim1.out" "$log_dir/sim2.out"
"$client_bin" --addr "$addr" counters > "$log_dir/serve_counters.json"
hits="$(sed -n 's/.*"serve\.cache\.hit": \([0-9]*\).*/\1/p' "$log_dir/serve_counters.json")"
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
  echo "expected at least one serve.cache.hit, got '${hits:-none}'" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
"$client_bin" --addr "$addr" shutdown | grep -q 'shutting down'
wait "$serve_pid"   # graceful drain must exit 0 (set -e enforces it)
grep -q '"serve\.cache\.hit"' "$log_dir/serve.log"
echo "serve smoke green (cache hits: $hits, graceful exit 0)"

echo "== sharded serving smoke (router + 2 shards, streaming cancel) =="
# A router fronting two shard servers, all on ephemeral loopback
# ports: routed replies must be byte-identical to a single-process
# server's (the router relays shard reply frames verbatim and routes
# by the reply-cache content hash), a streaming campaign must cancel
# cleanly through the relay, and a protocol Shutdown through the
# router must drain the whole fleet to exit 0. Fully offline.
router_bin=target/release/casted-router
scrape_addr() { # logfile banner-prefix
  local a=""
  for _ in $(seq 1 100); do
    a="$(sed -n "s/^$2 listening on //p" "$1")"
    [ -n "$a" ] && break
    sleep 0.1
  done
  if [ -z "$a" ]; then
    echo "$2 did not come up" >&2
    return 1
  fi
  printf '%s' "$a"
}
"$serve_bin" > "$log_dir/direct.log" &
direct_pid=$!
"$serve_bin" > "$log_dir/shard1.log" &
shard1_pid=$!
"$serve_bin" > "$log_dir/shard2.log" &
shard2_pid=$!
trap 'kill "$direct_pid" "$shard1_pid" "$shard2_pid" "${router_pid:-}" 2>/dev/null || true; rm -rf "$log_dir"' EXIT
direct_addr="$(scrape_addr "$log_dir/direct.log" casted-serve)"
shard1_addr="$(scrape_addr "$log_dir/shard1.log" casted-serve)"
shard2_addr="$(scrape_addr "$log_dir/shard2.log" casted-serve)"
"$router_bin" --shard "$shard1_addr" --shard "$shard2_addr" > "$log_dir/router.log" &
router_pid=$!
router_addr="$(scrape_addr "$log_dir/router.log" casted-router)"
"$client_bin" --addr "$router_addr" ping | grep -q pong
# Byte-identity: each request kind through the router vs the
# single-process server, plus a repeat (shard cache hit) — the client
# prints the decoded reply, so identical output means identical reply.
for kind in compile simulate inject; do
  extra=""
  [ "$kind" = inject ] && extra="--trials 40 --seed 0xCA57ED --engine checkpointed"
  "$client_bin" --addr "$direct_addr" "$kind" --file "$smoke_src" \
    --scheme casted --issue 2 --delay 2 $extra > "$log_dir/${kind}_direct.out"
  "$client_bin" --addr "$router_addr" "$kind" --file "$smoke_src" \
    --scheme casted --issue 2 --delay 2 $extra > "$log_dir/${kind}_routed.out"
  cmp "$log_dir/${kind}_direct.out" "$log_dir/${kind}_routed.out"
  "$client_bin" --addr "$router_addr" "$kind" --file "$smoke_src" \
    --scheme casted --issue 2 --delay 2 $extra > "$log_dir/${kind}_routed2.out"
  cmp "$log_dir/${kind}_direct.out" "$log_dir/${kind}_routed2.out"
done
# Streaming through the relay: progress frames arrive and a cancel
# lands cleanly mid-campaign (partial tally, connection healthy).
"$client_bin" --addr "$router_addr" inject --file "$smoke_src" \
  --scheme casted --issue 2 --delay 2 --trials 2000 --seed 0xCA57ED \
  --stream --every 25 --cancel-after 25 > "$log_dir/stream_cancel.out"
grep -q '^progress: ' "$log_dir/stream_cancel.out"
grep -q '^cancelled$' "$log_dir/stream_cancel.out"
# Fleet shutdown through the router: router and both shards drain and
# exit 0 (set -e enforces each wait).
"$client_bin" --addr "$router_addr" shutdown | grep -q 'shutting down'
wait "$router_pid"
wait "$shard1_pid"
wait "$shard2_pid"
"$client_bin" --addr "$direct_addr" shutdown | grep -q 'shutting down'
wait "$direct_pid"
echo "sharded smoke green (routed replies byte-identical, cancel clean, drain exit 0)"

echo "tier-1 green"
