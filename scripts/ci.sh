#!/usr/bin/env bash
# Tier-1 verification, hermetic: the workspace has zero registry
# dependencies (everything external was replaced by crates/util), so
# every step runs with --offline and must succeed with no network
# access at all. See DESIGN.md "Dependencies" and README "Building".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== benches compile (offline) =="
cargo bench --no-run --offline

echo "== difftest fuzz smoke (64 cases, deterministic) =="
# Bounded differential-fuzzing run: every pipeline stage cross-checked
# against the IR interpreter over 64 seeded cases (see docs/TESTING.md).
# Run twice with the same master seed: the logs must be byte-identical
# — the suite prints no timing or host state, and a mismatch means a
# determinism regression somewhere in the stack.
log_dir="$(mktemp -d)"
trap 'rm -rf "$log_dir"' EXIT
cargo run --release --offline -q -p casted-bench --bin difftest -- \
  --cases 64 --seed 0xCA57ED > "$log_dir/fuzz1.log"
cargo run --release --offline -q -p casted-bench --bin difftest -- \
  --cases 64 --seed 0xCA57ED > "$log_dir/fuzz2.log"
cmp "$log_dir/fuzz1.log" "$log_dir/fuzz2.log"
tail -n 1 "$log_dir/fuzz1.log"

echo "tier-1 green"
