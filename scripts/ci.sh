#!/usr/bin/env bash
# Tier-1 verification, hermetic: the workspace has zero registry
# dependencies (everything external was replaced by crates/util), so
# every step runs with --offline and must succeed with no network
# access at all. See DESIGN.md "Dependencies" and README "Building".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== benches compile (offline) =="
cargo bench --no-run --offline

echo "tier-1 green"
