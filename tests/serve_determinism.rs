//! Serve-level determinism gate: for the same request, the cached
//! reply and the cold-path reply are **byte-identical** — across
//! repeats on one server and across fresh server processes.
//!
//! This is the property the content-addressed cache rests on: the
//! cache stores encoded reply frames keyed by the canonical request
//! encoding, so a hit replays exactly what a recomputation would have
//! written. The test closes the loop end to end over the real TCP
//! path.

use casted::service_api::JobSpec;
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::client::Client;
use casted_serve::protocol::{decode_response, encode_request, Request, Response};
use casted_serve::server::{Server, ServerConfig};

const SRC: &str =
    "fn main() { var s: int = 0; for i in 0..40 { s = s + i * i; } out(s); }";

fn spec(scheme: Scheme) -> JobSpec {
    JobSpec {
        source: SRC.into(),
        scheme,
        issue: 2,
        delay: 2,
    }
}

fn start() -> Server {
    Server::start(ServerConfig::default()).expect("bind loopback")
}

fn requests() -> Vec<Request> {
    vec![
        Request::Compile {
            spec: spec(Scheme::Casted),
        },
        Request::Simulate {
            spec: spec(Scheme::Sced),
            max_cycles: u64::MAX,
        },
        Request::Inject {
            spec: spec(Scheme::Casted),
            trials: 30,
            seed: 11,
            engine: Engine::Checkpointed,
        },
    ]
}

#[test]
fn cached_and_uncached_replies_are_byte_identical() {
    let server = start();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    for req in requests() {
        let payload = encode_request(&req);
        let cold = client.request_raw(&payload).unwrap();
        // Same connection, now a cache hit.
        let hit = client.request_raw(&payload).unwrap();
        assert_eq!(cold, hit, "cache hit differed from cold path for {req:?}");
        // A different connection hits the same cache entry.
        let mut other = Client::connect(addr).unwrap();
        let hit2 = other.request_raw(&payload).unwrap();
        assert_eq!(cold, hit2, "cross-connection hit differed for {req:?}");
        // And it is a real, successful reply — not an error that
        // accidentally compared equal.
        let resp = decode_response(&cold).unwrap();
        assert!(resp.cacheable(), "unexpected reply {resp:?} for {req:?}");
    }
    server.shutdown();
}

#[test]
fn fresh_server_cold_path_reproduces_the_same_bytes() {
    // Two independent server processes (well: instances), no shared
    // state — the cold-path computation itself must be deterministic.
    let replies: Vec<Vec<Vec<u8>>> = (0..2)
        .map(|_| {
            let server = start();
            let mut client = Client::connect(server.addr()).unwrap();
            let out = requests()
                .iter()
                .map(|req| client.request_raw(&encode_request(req)).unwrap())
                .collect();
            server.shutdown();
            out
        })
        .collect();
    assert_eq!(
        replies[0], replies[1],
        "fresh-server replies must be byte-identical"
    );
}

#[test]
fn inject_engines_agree_over_the_wire() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let tally = |engine: Engine, client: &mut Client| {
        let req = Request::Inject {
            spec: spec(Scheme::Casted),
            trials: 30,
            seed: 5,
            engine,
        };
        match client.request(&req).unwrap() {
            Response::Injected(i) => i,
            other => panic!("unexpected reply {other:?}"),
        }
    };
    let reference = tally(Engine::Reference, &mut client);
    for engine in [Engine::Checkpointed, Engine::Batched] {
        let other = tally(engine, &mut client);
        assert_eq!(
            reference, other,
            "campaign engines must agree field for field over the wire ({})",
            engine.name()
        );
    }
    server.shutdown();
}
