//! Serve-level determinism gate: for the same request, the cached
//! reply and the cold-path reply are **byte-identical** — across
//! repeats on one server and across fresh server processes.
//!
//! This is the property the content-addressed cache rests on: the
//! cache stores encoded reply frames keyed by the canonical request
//! encoding, so a hit replays exactly what a recomputation would have
//! written. The test closes the loop end to end over the real TCP
//! path.

use casted::service_api::JobSpec;
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::client::Client;
use casted_serve::protocol::{decode_response, encode_request, Request, Response};
use casted_serve::server::{Server, ServerConfig};

const SRC: &str =
    "fn main() { var s: int = 0; for i in 0..40 { s = s + i * i; } out(s); }";

fn spec(scheme: Scheme) -> JobSpec {
    JobSpec {
        source: SRC.into(),
        scheme,
        issue: 2,
        delay: 2,
    }
}

fn start() -> Server {
    Server::start(ServerConfig::default()).expect("bind loopback")
}

fn requests() -> Vec<Request> {
    vec![
        Request::Compile {
            spec: spec(Scheme::Casted),
        },
        Request::Simulate {
            spec: spec(Scheme::Sced),
            max_cycles: u64::MAX,
        },
        Request::Inject {
            spec: spec(Scheme::Casted),
            trials: 30,
            seed: 11,
            engine: Engine::Checkpointed,
        },
    ]
}

#[test]
fn cached_and_uncached_replies_are_byte_identical() {
    let server = start();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    for req in requests() {
        let payload = encode_request(&req);
        let cold = client.request_raw(&payload).unwrap();
        // Same connection, now a cache hit.
        let hit = client.request_raw(&payload).unwrap();
        assert_eq!(cold, hit, "cache hit differed from cold path for {req:?}");
        // A different connection hits the same cache entry.
        let mut other = Client::connect(addr).unwrap();
        let hit2 = other.request_raw(&payload).unwrap();
        assert_eq!(cold, hit2, "cross-connection hit differed for {req:?}");
        // And it is a real, successful reply — not an error that
        // accidentally compared equal.
        let resp = decode_response(&cold).unwrap();
        assert!(resp.cacheable(), "unexpected reply {resp:?} for {req:?}");
    }
    server.shutdown();
}

#[test]
fn fresh_server_cold_path_reproduces_the_same_bytes() {
    // Two independent server processes (well: instances), no shared
    // state — the cold-path computation itself must be deterministic.
    let replies: Vec<Vec<Vec<u8>>> = (0..2)
        .map(|_| {
            let server = start();
            let mut client = Client::connect(server.addr()).unwrap();
            let out = requests()
                .iter()
                .map(|req| client.request_raw(&encode_request(req)).unwrap())
                .collect();
            server.shutdown();
            out
        })
        .collect();
    assert_eq!(
        replies[0], replies[1],
        "fresh-server replies must be byte-identical"
    );
}

/// With `artifact_cache` set, two requests for the same source under
/// *different* machine configs share the front-end artifacts: the
/// second request re-enters the stage graph at the ED transform
/// (nonzero `compile.stages.hit` over real TCP), and both replies are
/// byte-identical to a fresh, cacheless server's cold path.
#[test]
fn artifact_cache_shares_frontend_work_across_machine_configs() {
    let dir = std::env::temp_dir().join(format!(
        "casted-serve-artifacts-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    casted_obs::set_enabled(true);

    let cached = Server::start(ServerConfig {
        artifact_cache: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(cached.addr()).unwrap();

    let simulate = |issue: usize, delay: u32| Request::Simulate {
        spec: JobSpec {
            source: SRC.into(),
            scheme: Scheme::Casted,
            issue,
            delay,
        },
        max_cycles: u64::MAX,
    };
    let stage_hits = |client: &mut Client| -> u64 {
        let json = match client.request(&Request::Counters).unwrap() {
            Response::Counters(json) => json,
            other => panic!("unexpected reply {other:?}"),
        };
        json.split("\"compile.stages.hit\": ")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };

    let before = stage_hits(&mut client);
    let r1 = client.request_raw(&encode_request(&simulate(2, 2))).unwrap();
    let r2 = client.request_raw(&encode_request(&simulate(4, 1))).unwrap();
    let after = stage_hits(&mut client);
    assert!(
        after >= before + 4,
        "second machine config must hit lexparse/sema/codegen/ed \
         (compile.stages.hit went {before} -> {after})"
    );
    cached.shutdown();

    // Exactness over the wire: a server with no artifact store
    // produces the same reply bytes from scratch.
    let fresh = start();
    let mut cold = Client::connect(fresh.addr()).unwrap();
    let f1 = cold.request_raw(&encode_request(&simulate(2, 2))).unwrap();
    let f2 = cold.request_raw(&encode_request(&simulate(4, 1))).unwrap();
    assert_eq!(r1, f1, "staged reply differed from cacheless reply (2,2)");
    assert_eq!(r2, f2, "staged reply differed from cacheless reply (4,1)");
    assert!(decode_response(&f1).unwrap().cacheable());
    fresh.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inject_engines_agree_over_the_wire() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let tally = |engine: Engine, client: &mut Client| {
        let req = Request::Inject {
            spec: spec(Scheme::Casted),
            trials: 30,
            seed: 5,
            engine,
        };
        match client.request(&req).unwrap() {
            Response::Injected(i) => i,
            other => panic!("unexpected reply {other:?}"),
        }
    };
    let reference = tally(Engine::Reference, &mut client);
    for engine in [Engine::Checkpointed, Engine::Batched] {
        let other = tally(engine, &mut client);
        assert_eq!(
            reference, other,
            "campaign engines must agree field for field over the wire ({})",
            engine.name()
        );
    }
    server.shutdown();
}
