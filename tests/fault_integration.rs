//! Fault-injection integration: the error-detection schemes must
//! actually detect faults that corrupt the unprotected program.

use casted::ir::MachineConfig;
use casted::Scheme;
use casted_faults::{run_campaign, run_campaign_engine, CampaignConfig, Engine, Outcome};

fn campaign(scheme: Scheme, trials: usize) -> casted_faults::CampaignResult {
    let module = casted_workloads::by_name("mpeg2dec").unwrap().compile().unwrap();
    let cfg = MachineConfig::itanium2_like(2, 2);
    let prep = casted::build(&module, scheme, &cfg).unwrap();
    run_campaign(
        &prep.sp,
        &CampaignConfig {
            trials,
            seed: 7,
            timeout_factor: 8,
            ..CampaignConfig::default()
        },
    )
}

#[test]
fn unprotected_never_detects_but_gets_corrupted() {
    let r = campaign(Scheme::Noed, 40);
    assert_eq!(r.tally.count(Outcome::Detected), 0);
    assert!(
        r.tally.count(Outcome::DataCorrupt) > 0,
        "40 injections into NOED should corrupt at least once: {:?}",
        r.tally
    );
}

#[test]
fn protected_schemes_detect_faults() {
    for scheme in [Scheme::Sced, Scheme::Dced, Scheme::Casted] {
        let r = campaign(scheme, 40);
        assert!(
            r.tally.count(Outcome::Detected) > 0,
            "{scheme} detected nothing: {:?}",
            r.tally
        );
    }
}

#[test]
fn protection_reduces_silent_corruption() {
    let noed = campaign(Scheme::Noed, 60);
    let casted = campaign(Scheme::Casted, 60);
    let noed_bad = noed.tally.fraction(Outcome::DataCorrupt);
    let casted_bad = casted.tally.fraction(Outcome::DataCorrupt);
    assert!(
        casted_bad <= noed_bad,
        "CASTED corrupt {casted_bad:.2} > NOED corrupt {noed_bad:.2}"
    );
}

/// The checkpointed engine (golden-run snapshots, fast-forward
/// replay, convergence pruning) and the batched engine (lockstep
/// lanes over one shared golden replay) must both tally
/// byte-identically to the reference engine on a real workload under
/// every scheme — the integration-level face of the equivalence the
/// unit tests, the difftest oracle layer and `scripts/ci.sh` all pin.
#[test]
fn engines_agree_on_real_workload_across_schemes() {
    let module = casted_workloads::by_name("mpeg2dec").unwrap().compile().unwrap();
    let cfg = MachineConfig::itanium2_like(2, 2);
    let ccfg = CampaignConfig {
        trials: 30,
        seed: 7,
        timeout_factor: 8,
        ..CampaignConfig::default()
    };
    for scheme in Scheme::ALL {
        let prep = casted::build(&module, scheme, &cfg).unwrap();
        let reference = run_campaign_engine(&prep.sp, &ccfg, Engine::Reference);
        let checkpointed = run_campaign_engine(&prep.sp, &ccfg, Engine::Checkpointed);
        assert_eq!(reference.tally, checkpointed.tally, "{scheme}: engines diverged");
        assert_eq!(reference.golden_cycles, checkpointed.golden_cycles, "{scheme}");
        assert_eq!(reference.golden_dyn, checkpointed.golden_dyn, "{scheme}");
        assert!(
            checkpointed.engine.checkpoints > 1 && checkpointed.engine.skipped_insns > 0,
            "{scheme}: checkpoint engine did no engine work: {:?}",
            checkpointed.engine
        );
        let batched = run_campaign_engine(&prep.sp, &ccfg, Engine::Batched);
        assert_eq!(reference.tally, batched.tally, "{scheme}: batched engine diverged");
        assert_eq!(reference.golden_cycles, batched.golden_cycles, "{scheme}");
        assert_eq!(reference.golden_dyn, batched.golden_dyn, "{scheme}");
        assert!(
            batched.engine.batch.lanes > 0,
            "{scheme}: batched engine ran no lanes: {:?}",
            batched.engine.batch
        );
    }
}

/// Edit one kernel, keep the cache: the compositional section cache
/// (docs/INCREMENTAL.md) must reuse sections untouched by the edit
/// (hits), re-inject the invalidated ones (misses), and recombine to
/// the exact bytes of a cold reference campaign on the edited
/// program — the integration-level face of the exactness the unit
/// and property tests pin on generated modules.
#[test]
fn incremental_rerun_after_kernel_edit_is_exact() {
    use casted_faults::{run_campaign_incremental, SectionStore};

    let module = casted_workloads::by_name("mpeg2dec").unwrap().compile().unwrap();
    let cfg = MachineConfig::itanium2_like(2, 2);
    // Enough trials that the frozen stream (seed 7) deterministically
    // lands at least one injection in the epilogue section the edit
    // below invalidates. Cold baselines use the batched engine — the
    // engines are byte-identical (pinned by the unit, property,
    // difftest and CI layers), so any of them is "the" full campaign.
    let ccfg = CampaignConfig {
        trials: 120,
        seed: 7,
        timeout_factor: 8,
        ..CampaignConfig::default()
    };
    let dir = std::env::temp_dir().join(format!(
        "casted-integration-sections-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SectionStore::open(&dir).expect("open section store");

    // Cold run populates the store and must already match the engines.
    let prep = casted::build(&module, Scheme::Casted, &cfg).unwrap();
    let cold = run_campaign_incremental(&prep.sp, &ccfg, &store);
    let reference = run_campaign_engine(&prep.sp, &ccfg, Engine::Batched);
    assert_eq!(cold.tally, reference.tally, "cold incremental != batched");
    assert!(cold.engine.sections.total > 1, "workload should split into sections");

    // Edit one kernel: change the program's exit code. The epilogue
    // section is invalidated; everything upstream of it is not.
    let mut edited = module.clone();
    let f = edited.entry_fn_mut();
    let h = f
        .insns
        .iter()
        .position(|i| i.op == casted::ir::Opcode::Halt)
        .expect("entry fn halts");
    f.insns[h].imm = 7;
    let eprep = casted::build(&edited, Scheme::Casted, &cfg).unwrap();
    let warm = run_campaign_incremental(&eprep.sp, &ccfg, &store);
    assert!(
        warm.engine.sections.hit >= 1,
        "edit-one-kernel rerun reused nothing: {:?}",
        warm.engine.sections
    );
    assert!(
        warm.engine.sections.miss >= 1,
        "edit did not invalidate any section: {:?}",
        warm.engine.sections
    );
    let ereference = run_campaign_engine(&eprep.sp, &ccfg, Engine::Batched);
    assert_eq!(
        warm.tally, ereference.tally,
        "recombined tally != cold campaign of the edited program"
    );
    assert_eq!(warm.golden_cycles, ereference.golden_cycles);
    assert_eq!(warm.golden_dyn, ereference.golden_dyn);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaigns_are_reproducible() {
    let a = campaign(Scheme::Casted, 25);
    let b = campaign(Scheme::Casted, 25);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.golden_cycles, b.golden_cycles);
}

/// Coverage must be configuration-insensitive (the paper's Fig. 10
/// claim), modulo Monte-Carlo noise.
#[test]
fn coverage_insensitive_to_configuration() {
    let module = casted_workloads::by_name("mpeg2dec").unwrap().compile().unwrap();
    let mut safes = Vec::new();
    for (issue, delay) in [(1, 1), (4, 4)] {
        let cfg = MachineConfig::itanium2_like(issue, delay);
        let prep = casted::build(&module, Scheme::Casted, &cfg).unwrap();
        let r = run_campaign(
            &prep.sp,
            &CampaignConfig {
                trials: 60,
                seed: 11,
                timeout_factor: 8,
                ..CampaignConfig::default()
            },
        );
        safes.push(r.tally.safe_fraction());
    }
    let spread = (safes[0] - safes[1]).abs();
    assert!(
        spread < 0.2,
        "safe fraction varies too much across configs: {safes:?}"
    );
}
