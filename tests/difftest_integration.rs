//! Workspace-level differential-testing integration: the small,
//! always-on slice of the fuzz suite (the full 64-case run is the CI
//! smoke job in `scripts/ci.sh`), plus end-to-end checks that the
//! replay pipeline and the fixed corpus work through the `casted`
//! facade.

use casted::difftest::{
    run_case, run_case_with, run_suite_with, sabotage, CaseConfig, Hooks, SuiteOptions,
};

#[test]
fn bounded_suite_is_green_and_deterministic() {
    let opts = SuiteOptions {
        cases: 6,
        master_seed: 0xCA57ED,
    };
    let hooks = Hooks {
        probes: 4,
        ..Hooks::default()
    };
    let a = run_suite_with(&opts, &hooks);
    assert!(a.ok(), "suite divergence:\n{}", a.log);
    assert!(a.probes > 0, "library-free profiles must be fault-probed");
    let b = run_suite_with(&opts, &hooks);
    assert_eq!(a.log, b.log, "suite log must be byte-identical run to run");
}

#[test]
fn every_log_line_is_replayable() {
    // Any `seed=... gen=...` pair printed by the suite can be fed back
    // through CaseConfig::parse and re-executed to the same digest.
    let opts = SuiteOptions {
        cases: 2,
        master_seed: 7,
    };
    let hooks = Hooks {
        probes: 2,
        ..Hooks::default()
    };
    let rep = run_suite_with(&opts, &hooks);
    assert!(rep.ok());
    let mut replayed = 0;
    for line in rep.log.lines() {
        if !line.starts_with("case ") {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let (cfg, _) = CaseConfig::parse(&format!("{} {}", toks[2], toks[3])).unwrap();
        let digest_tok = toks
            .iter()
            .find_map(|t| t.strip_prefix("digest="))
            .expect("ok lines carry a digest");
        let want = u64::from_str_radix(digest_tok.trim_start_matches("0x"), 16).unwrap();
        let got = run_case_with(&cfg, &hooks).expect("replay of a green case is green");
        assert_eq!(got.digest, want, "replay digest mismatch for {line}");
        replayed += 1;
    }
    assert_eq!(replayed, 2);
}

#[test]
fn sabotaged_backend_fails_the_suite_with_a_replay_line() {
    let opts = SuiteOptions {
        cases: 1,
        master_seed: 3,
    };
    let hooks = Hooks {
        post_ed: Some(sabotage::drop_first_out),
        probes: 0,
    };
    let rep = run_suite_with(&opts, &hooks);
    assert!(!rep.ok(), "a broken ED pass must fail the suite");
    let replay = rep
        .log
        .lines()
        .find(|l| l.starts_with("REPLAY "))
        .expect("failures must print a REPLAY line");
    let (cfg, stage) = CaseConfig::parse(replay).expect("replay line parses");
    assert!(stage.is_some());
    // Without the sabotage the same case is clean — proving the line
    // pinpoints the pass, not the program.
    run_case(&cfg).expect("case is clean under the real pipeline");
}

#[test]
fn fixed_corpus_cross_checks() {
    let checks = casted::difftest::run_corpus().unwrap_or_else(|d| {
        panic!("corpus divergence at {}: {}", d.stage, d.detail);
    });
    // 7 workloads + 3 snippets, ≥9 checks each.
    assert!(checks >= 90, "corpus shrank: only {checks} checks ran");
}
