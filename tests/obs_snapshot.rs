//! Counter-exact metrics snapshot, mirroring `tests/determinism.rs`:
//! the counter-only view of the metrics registry must be **byte-
//! identical** across two identical seeded quick-grid runs, and must
//! match the checked-in golden snapshot
//! (`tests/snapshots/quick_grid_counters.json`).
//!
//! Counters record *what work was done* — cycles simulated, checks
//! emitted, trials classified — never how fast the host did it, so
//! for a seeded workload they are as reproducible as the `results/`
//! CSVs. Timings (span histograms) and host-dependent gauges are
//! excluded from the snapshot by construction; this test also pins
//! that exclusion.
//!
//! To regenerate after an intentional metrics change:
//!
//! ```text
//! CASTED_UPDATE_SNAPSHOT=1 cargo test --offline --test obs_snapshot
//! ```

use casted::experiments::{coverage_sweep, coverage_sweep_incremental, perf_sweep, GridSpec};
use casted::faults::CampaignConfig;
use casted::{obs, Scheme};

/// Tests in this binary share the process-global metrics registry;
/// serialize them (cargo runs #[test] fns on parallel threads).
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn suite() -> Vec<casted_workloads::Workload> {
    casted_workloads::all()
        .into_iter()
        .filter(|w| matches!(w.name, "cjpeg" | "181.mcf"))
        .collect()
}

/// One full measured quick grid: the perf sweep over the quick spec
/// plus a small seeded coverage campaign — together they touch every
/// instrumented layer (frontend, passes, sim, faults, core).
fn run_quick_grid() -> String {
    obs::reset();
    obs::set_enabled(true);
    let spec = GridSpec::quick();
    let _perf = perf_sweep(&suite(), &spec);
    let cov_spec = GridSpec {
        issues: vec![2],
        delays: vec![2],
        schemes: vec![Scheme::Noed, Scheme::Casted],
        clusters: vec![2],
    };
    let campaign = CampaignConfig {
        trials: 25,
        seed: 0xCA57ED,
        timeout_factor: 8,
        ..CampaignConfig::default()
    };
    let _cov = coverage_sweep(&suite(), &cov_spec, &campaign);
    // Incremental section-cache path, cold then warm from a fresh
    // store: the `faults.sections.{total,hit,miss,recombined}`
    // counters depend only on the seeded stream and the section
    // partition, so pre-removing the store makes both runs — and the
    // hit/miss split between them — byte-reproducible.
    let dir = std::env::temp_dir().join(format!("casted-obs-sections-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _cold = coverage_sweep_incremental(&suite(), &cov_spec, &campaign, &dir);
    let _warm = coverage_sweep_incremental(&suite(), &cov_spec, &campaign, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    let snap = obs::snapshot_json();
    obs::set_enabled(false);
    snap
}

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/snapshots/quick_grid_counters.json"
);

#[test]
fn counter_snapshot_is_byte_reproducible_and_matches_golden() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let a = run_quick_grid();
    let b = run_quick_grid();
    assert_eq!(a, b, "two identical seeded runs diverged — a counter is timing- or scheduling-dependent");

    if std::env::var_os("CASTED_UPDATE_SNAPSHOT").is_some() {
        std::fs::write(GOLDEN, &a).expect("write golden snapshot");
        eprintln!("updated {GOLDEN}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("missing golden snapshot — run with CASTED_UPDATE_SNAPSHOT=1 once");
    assert_eq!(
        a, golden,
        "counter snapshot drifted from tests/snapshots/quick_grid_counters.json; \
         if the metrics change is intentional, regenerate with CASTED_UPDATE_SNAPSHOT=1"
    );
}

#[test]
fn snapshot_strips_every_timing_and_host_dependent_metric() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let snap = run_quick_grid();
    // Convention: every timer histogram name ends in `_ns`; gauges are
    // the pool/throughput readings. None may appear in the snapshot.
    assert!(!snap.contains("_ns"), "timing metric leaked into the counter snapshot:\n{snap}");
    assert!(!snap.contains("pool"), "host-dependent gauge leaked into the counter snapshot:\n{snap}");
    assert!(!snap.contains("trials_per_sec"), "throughput gauge leaked:\n{snap}");
    // And the layers that must be represented are.
    for key in [
        "\"sim.cycles\"",
        "\"sim.dyn_insns\"",
        "\"passes.ed.checks\"",
        "\"passes.sched.bundles\"",
        "\"faults.trials\"",
        "\"faults.sections.total\"",
        "\"faults.sections.hit\"",
        "\"faults.sections.miss\"",
        "\"faults.sections.recombined\"",
        "\"frontend.modules_compiled\"",
        "\"core.perf_sweep.cells\"",
        "\"core.coverage_sweep.cells\"",
        "\"workloads.compiled\"",
    ] {
        assert!(snap.contains(key), "expected {key} in snapshot:\n{snap}");
    }
}
