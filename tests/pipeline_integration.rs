//! End-to-end pipeline integration: MiniC front-end → error detection →
//! placement/scheduling → spilling → register validation → simulation,
//! cross-checked against the reference interpreter.

use casted::ir::interp::{self, StopReason};
use casted::ir::{MachineConfig, RegClass};
use casted::Scheme;

/// Every benchmark, every scheme: the simulated output stream must be
/// bit-identical to the interpreter's golden run of the *untransformed*
/// program — error detection and scheduling must never change
/// semantics.
#[test]
fn all_benchmarks_all_schemes_preserve_semantics() {
    let cfg = MachineConfig::itanium2_like(2, 2);
    for w in casted_workloads::all() {
        let module = w.compile().expect("compile");
        let golden = interp::run(&module, 100_000_000).expect("golden run");
        assert!(matches!(golden.stop, StopReason::Halt(_)));
        for scheme in Scheme::ALL {
            let prep = casted::build(&module, scheme, &cfg)
                .unwrap_or_else(|e| panic!("{} {scheme}: {e}", w.name));
            prep.sp.validate().unwrap_or_else(|e| panic!("{} {scheme}: {e:?}", w.name));
            let r = casted::measure(&prep);
            assert_eq!(r.stop, golden.stop, "{} {scheme}: wrong stop", w.name);
            assert_eq!(
                r.stream.len(),
                golden.stream.len(),
                "{} {scheme}: stream length",
                w.name
            );
            for (a, b) in r.stream.iter().zip(&golden.stream) {
                assert!(a.bit_eq(b), "{} {scheme}: stream value differs", w.name);
            }
        }
    }
}

/// Error detection must cost cycles; the ordering NOED <= CASTED must
/// hold, and CASTED must not be slower than both fixed schemes.
#[test]
fn scheme_cost_ordering() {
    let cfg = MachineConfig::itanium2_like(2, 2);
    let module = casted_workloads::by_name("h263dec").unwrap().compile().unwrap();
    let mut cycles = std::collections::HashMap::new();
    for scheme in Scheme::ALL {
        let prep = casted::build(&module, scheme, &cfg).unwrap();
        cycles.insert(scheme, casted::measure(&prep).stats.cycles);
    }
    assert!(cycles[&Scheme::Noed] < cycles[&Scheme::Sced]);
    assert!(cycles[&Scheme::Noed] < cycles[&Scheme::Dced]);
    assert!(cycles[&Scheme::Noed] < cycles[&Scheme::Casted]);
    let best_fixed = cycles[&Scheme::Sced].min(cycles[&Scheme::Dced]);
    assert!(
        cycles[&Scheme::Casted] as f64 <= best_fixed as f64 * 1.10,
        "CASTED {} vs best fixed {}",
        cycles[&Scheme::Casted],
        best_fixed
    );
}

/// The register files of Table I must be respected after the pipeline:
/// the physical assignment proves peak pressure per (cluster, class)
/// fits 64/64/32.
#[test]
fn register_files_respected_across_configs() {
    let module = casted_workloads::by_name("cjpeg").unwrap().compile().unwrap();
    for (issue, delay) in [(1, 1), (4, 4)] {
        let cfg = MachineConfig::itanium2_like(issue, delay);
        for scheme in [Scheme::Noed, Scheme::Sced, Scheme::Casted] {
            let prep = casted::build(&module, scheme, &cfg).unwrap();
            for cluster in 0..2 {
                assert!(prep.phys.peak[cluster][RegClass::Gp.index()] <= 64);
                assert!(prep.phys.peak[cluster][RegClass::Fp.index()] <= 64);
                assert!(prep.phys.peak[cluster][RegClass::Pr.index()] <= 32);
            }
        }
    }
}

/// Error-detection statistics across the suite: every benchmark's
/// protected binary replicates instructions, checks every store-class
/// site, and grows beyond 2x (the paper quotes 2.4x average growth).
#[test]
fn ed_statistics_are_paper_like() {
    let cfg = MachineConfig::itanium2_like(2, 2);
    let mut growths = Vec::new();
    for w in casted_workloads::all() {
        let module = w.compile().unwrap();
        let prep = casted::build(&module, Scheme::Sced, &cfg).unwrap();
        let st = prep.ed_stats.unwrap();
        assert!(st.replicated > 0, "{}", w.name);
        assert!(st.checks > 0, "{}", w.name);
        growths.push(st.growth());
    }
    let avg = growths.iter().sum::<f64>() / growths.len() as f64;
    // The paper reports 2.4x average binary growth. Our kernels inline
    // their (unreplicated) library prelude into the measured code, so
    // the whole-program factor sits slightly lower.
    assert!(avg > 1.7, "average ED code growth {avg:.2} too small");
    assert!(avg < 4.0, "average ED code growth {avg:.2} implausibly high");
}

/// DCED must place the original stream on cluster 0 and the redundant
/// stream on cluster 1, for every benchmark.
#[test]
fn dced_stream_separation() {
    let cfg = MachineConfig::itanium2_like(2, 2);
    for w in casted_workloads::all().into_iter().take(3) {
        let module = w.compile().unwrap();
        let prep = casted::build(&module, Scheme::Dced, &cfg).unwrap();
        let f = prep.sp.module.entry_fn();
        for (_, block) in f.iter_blocks() {
            for &iid in &block.insns {
                let insn = f.insn(iid);
                let c = prep.sp.cluster_of(iid).unwrap();
                if insn.prov.is_redundant_stream() {
                    assert_eq!(c.index(), 1, "{}: redundant insn on cluster 0", w.name);
                } else {
                    assert_eq!(c.index(), 0, "{}: original insn on cluster 1", w.name);
                }
            }
        }
    }
}

/// The simulator and the interpreter must agree on dynamic instruction
/// counts (same instructions execute, only their timing differs).
#[test]
fn dyn_insn_counts_match_interpreter() {
    let cfg = MachineConfig::itanium2_like(3, 2);
    let module = casted_workloads::by_name("197.parser").unwrap().compile().unwrap();
    let golden = interp::run(&module, 100_000_000).unwrap();
    let prep = casted::build(&module, Scheme::Noed, &cfg).unwrap();
    let r = casted::measure(&prep);
    assert_eq!(r.stats.dyn_insns, golden.dyn_insns);
}
