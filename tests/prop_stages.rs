//! Property tests for the memoized stage-graph compile pipeline
//! (`casted::stages`, `casted::passes::stages`).
//!
//! The contract under test is **exactness**: a warm staged compile is
//! byte-identical to a cold, unstaged (monolithic) compile of the same
//! source under the same configuration — the artifact store is a pure
//! memo table, never an approximation. The properties drive random
//! MiniC programs through the pipeline, then perturb one axis at a
//! time (whitespace, one literal token, the machine config) and check
//! both the result bytes and the stage-level invalidation profile:
//! an edit may only re-run the stages it actually feeds.
//!
//! Failures print the harness's canonical `REPLAY seed=0x…` token
//! (see `casted_util::prop`).

use casted::ir::codec as ircodec;
use casted::ir::MachineConfig;
use casted::passes::stages::encode_ra_artifact;
use casted::stages::ArtifactPipeline;
use casted::{obs, Prepared, Scheme};
use casted_util::prop::run_cases;
use casted_util::{prop_assert_eq, Rng};

/// Tests in this binary share the process-global metrics registry
/// (the counter-snapshot test below enables it); serialize them so a
/// concurrently-running property case cannot leak `frontend.*` spans
/// into the snapshot.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn temp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "casted-prop-stages-{tag}-{}-{case:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ------------------------- program generator -----------------------

/// Emit a random, always-valid MiniC program: a handful of `int`
/// locals, straight-line arithmetic, counted loops and branches, and
/// `out(..)` of every local so no assignment is dead.
fn gen_program(rng: &mut Rng) -> String {
    let nvars = rng.gen_range(2usize..5);
    let mut s = String::from("fn main() -> int {\n");
    for v in 0..nvars {
        s.push_str(&format!(
            "    var x{v}: int = {};\n",
            rng.gen_range(0i64..100)
        ));
    }
    let var = |rng: &mut Rng| rng.gen_range(0usize..nvars);
    for _ in 0..rng.gen_range(3usize..9) {
        match rng.gen_range(0u32..3) {
            0 => {
                let (a, b, c) = (var(rng), var(rng), var(rng));
                let op = ["+", "-", "*"][rng.gen_range(0usize..3)];
                s.push_str(&format!(
                    "    x{a} = x{b} {op} x{c} + {};\n",
                    rng.gen_range(0i64..50)
                ));
            }
            1 => {
                let a = var(rng);
                let n = rng.gen_range(2i64..12);
                let k = rng.gen_range(1i64..9);
                s.push_str(&format!(
                    "    for i in 0..{n} {{ x{a} = x{a} + i * {k}; }}\n"
                ));
            }
            _ => {
                let (a, b) = (var(rng), var(rng));
                let t = rng.gen_range(0i64..200);
                let d = rng.gen_range(1i64..40);
                s.push_str(&format!(
                    "    if x{a} > {t} {{ x{b} = x{b} + {d}; }} else {{ x{b} = x{b} - {d}; }}\n"
                ));
            }
        }
    }
    for v in 0..nvars {
        s.push_str(&format!("    out(x{v});\n"));
    }
    s.push_str("    return 0;\n}\n");
    s
}

/// Byte ranges of every integer literal in `src` (digit runs not glued
/// to an identifier — `x12` is a name, `12` is a literal).
fn literal_spans(src: &str) -> Vec<(usize, usize)> {
    let b = src.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_digit() {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let glued = start > 0 && (b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
            // `1.5` would need float handling; the generator emits
            // ints only, but skip dotted runs defensively.
            let dotted = i < b.len() && b[i] == b'.';
            if !glued && !dotted {
                spans.push((start, i));
            }
        } else {
            i += 1;
        }
    }
    spans
}

// ------------------------- fingerprints ----------------------------

/// Canonical bytes of everything a `Prepared` carries; two prepares
/// are "byte-identical" iff these match.
fn prepared_fingerprint(p: &Prepared) -> (Vec<u8>, usize, String, Vec<u8>) {
    (
        ircodec::encode_scheduled(&p.sp),
        p.spilled,
        format!("{:?}", p.ed_stats),
        encode_ra_artifact(&p.phys),
    )
}

/// The cold, unstaged reference: monolithic front end + monolithic
/// back end, no artifact store anywhere.
fn legacy_prepare(src: &str, scheme: Scheme, config: &MachineConfig) -> Prepared {
    let m = casted::frontend::compile("m", src).expect("generated program must compile");
    casted::passes::prepare(&m, scheme, config).expect("generated program must schedule")
}

fn pick_config(rng: &mut Rng) -> MachineConfig {
    let issue = [1usize, 2, 4][rng.gen_range(0usize..3)];
    let delay = rng.gen_range(1u32..4);
    MachineConfig::itanium2_like(issue, delay)
}

// ------------------------- properties ------------------------------

/// Warm staged output is byte-identical to the cold unstaged compile,
/// for random programs, schemes and machine configs.
#[test]
fn warm_staged_compile_equals_cold_unstaged_compile() {
    let _g = GATE.lock().unwrap();
    run_cases("staged_exactness", 24, |rng| {
        let src = gen_program(rng);
        let scheme = *rng.pick(&Scheme::ALL);
        let config = pick_config(rng);
        let reference = prepared_fingerprint(&legacy_prepare(&src, scheme, &config));

        let dir = temp_dir("exact", rng.next_u64());
        let p = ArtifactPipeline::open(&dir).map_err(|e| e.to_string())?;
        let (cold, cold_stats) = p
            .prepare("m", &src, scheme, &config)
            .map_err(|e| e.to_string())?;
        let (warm, warm_stats) = p
            .prepare("m", &src, scheme, &config)
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(cold_stats.miss, 6, "fresh store must miss every stage");
        prop_assert_eq!(warm_stats.hit, 6, "second run must hit every stage");
        prop_assert_eq!(prepared_fingerprint(&cold), reference, "cold staged != legacy");
        prop_assert_eq!(prepared_fingerprint(&warm), reference, "warm staged != legacy");
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    });
}

/// A single edit invalidates only the stages it feeds:
/// - whitespace-only ⇒ lexparse re-runs, everything downstream warm;
/// - one literal token ⇒ every stage re-runs (the value flows through
///   codegen into the scheduled artifact);
/// - machine-config-only ⇒ the front end and the ED transform stay
///   warm, only schedule + regalloc re-run.
/// In every case the staged result still equals a from-scratch
/// monolithic compile of the edited input.
#[test]
fn random_edits_invalidate_only_the_stages_they_feed() {
    let _g = GATE.lock().unwrap();
    run_cases("staged_invalidation", 24, |rng| {
        let src = gen_program(rng);
        let scheme = *rng.pick(&Scheme::ALL);
        let config = pick_config(rng);

        let dir = temp_dir("edit", rng.next_u64());
        let p = ArtifactPipeline::open(&dir).map_err(|e| e.to_string())?;
        p.prepare("m", &src, scheme, &config)
            .map_err(|e| e.to_string())?;

        let edit = rng.gen_range(0u32..3);
        let (src2, config2) = match edit {
            // Whitespace: pad a random single-space gap. Spaces (not
            // newlines — token line numbers are part of the payload)
            // leave the token stream bit-identical.
            0 => {
                let gaps: Vec<usize> = src
                    .bytes()
                    .enumerate()
                    .filter(|&(i, c)| c == b' ' && src.as_bytes().get(i + 1) != Some(&b' '))
                    .map(|(i, _)| i)
                    .collect();
                let at = gaps[rng.gen_range(0usize..gaps.len())];
                let mut s = src.clone();
                s.insert_str(at, "  ");
                (s, config)
            }
            // One literal token changes value.
            1 => {
                let spans = literal_spans(&src);
                let (lo, hi) = spans[rng.gen_range(0usize..spans.len())];
                let old = &src[lo..hi];
                let mut fresh = rng.gen_range(0i64..100).to_string();
                if fresh == old {
                    fresh = format!("{}", old.parse::<i64>().unwrap() + 1);
                }
                let mut s = String::with_capacity(src.len() + 2);
                s.push_str(&src[..lo]);
                s.push_str(&fresh);
                s.push_str(&src[hi..]);
                (s, config)
            }
            // Machine config only.
            _ => {
                let mut c2 = pick_config(rng);
                while c2.issue_width == config.issue_width
                    && c2.inter_cluster_delay == config.inter_cluster_delay
                {
                    c2 = pick_config(rng);
                }
                (src.clone(), c2)
            }
        };

        let (prep, stats) = p
            .prepare("m", &src2, scheme, &config2)
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(stats.total, 6);
        match edit {
            0 => {
                prop_assert_eq!(stats.miss, 1, "whitespace edit must only re-run lexparse");
                prop_assert_eq!(stats.hit, 5);
            }
            1 => {
                prop_assert_eq!(stats.hit, 0, "a changed literal feeds every stage");
            }
            _ => {
                prop_assert_eq!(
                    stats.hit,
                    4,
                    "config change must keep lexparse/sema/codegen/ed warm"
                );
                prop_assert_eq!(stats.miss, 2, "only schedule + regalloc re-run");
            }
        }
        prop_assert_eq!(
            prepared_fingerprint(&prep),
            prepared_fingerprint(&legacy_prepare(&src2, scheme, &config2)),
            "edited staged result != from-scratch compile (edit kind {edit})"
        );
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    });
}

/// The acceptance-criterion counter snapshot: after a machine-config
/// change against a warm store, the front end does **zero** work — no
/// `frontend.*` span or counter fires — and at least four stages hit.
#[test]
fn config_change_snapshot_has_no_frontend_work() {
    let _g = GATE.lock().unwrap();
    let src = "fn main() -> int {\n    var s: int = 0;\n    for i in 0..25 { s = s + i * i; }\n    out(s);\n    return 0;\n}\n";
    let dir = temp_dir("snapshot", 0);
    let p = ArtifactPipeline::open(&dir).unwrap();
    // Cold pass under config A, unmetered.
    p.prepare("m", src, Scheme::Casted, &MachineConfig::itanium2_like(2, 2))
        .unwrap();

    obs::reset();
    obs::set_enabled(true);
    let (_, stats) = p
        .prepare("m", src, Scheme::Casted, &MachineConfig::itanium2_like(4, 1))
        .unwrap();
    obs::set_enabled(false);
    let export = obs::export_json();
    obs::reset();

    assert!(
        !export.contains("\"frontend."),
        "a config-only change must not touch the front end:\n{export}"
    );
    assert!(stats.hit >= 4, "expected >= 4 stage hits, got {stats:?}");
    let hit: u64 = export
        .split("\"compile.stages.hit\": ")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("compile.stages.hit counter missing from export");
    assert!(hit >= 4, "compile.stages.hit = {hit} < 4:\n{export}");
    let _ = std::fs::remove_dir_all(&dir);
}
