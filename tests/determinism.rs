//! End-to-end reproducibility: the hermetic toolchain (in-repo RNG +
//! in-repo thread pool) must make every seeded experiment
//! bit-reproducible — two identical runs produce byte-identical
//! rendered results, which is exactly what lands in `results/`.

use casted::experiments::{coverage_sweep, perf_sweep, GridSpec};
use casted::faults::CampaignConfig;
use casted::{report, Scheme};

fn suite() -> Vec<casted_workloads::Workload> {
    casted_workloads::all()
        .into_iter()
        .filter(|w| matches!(w.name, "cjpeg" | "181.mcf"))
        .collect()
}

/// Same grid, run twice on the (parallel) sweep harness: the rendered
/// CSV — the `results/` file format — must be byte-identical. This
/// guards both RNG determinism and the pool's input-order result
/// collection (a racy collection order would reorder rows).
#[test]
fn perf_sweep_is_byte_reproducible() {
    let spec = GridSpec::quick();
    let a = perf_sweep(&suite(), &spec);
    let b = perf_sweep(&suite(), &spec);
    assert_eq!(report::perf_csv(&a), report::perf_csv(&b));
    assert_eq!(
        report::perf_panel(&a, "cjpeg", &spec.issues, &spec.delays),
        report::perf_panel(&b, "cjpeg", &spec.issues, &spec.delays),
    );
}

/// Two identical seeded fault-injection campaigns over a grid must
/// produce identical `results/`-format output, byte for byte — the
/// acceptance criterion for hermetic reproducibility.
#[test]
fn seeded_coverage_sweep_is_byte_reproducible() {
    let spec = GridSpec {
        issues: vec![2],
        delays: vec![2],
        schemes: vec![Scheme::Noed, Scheme::Casted],
        clusters: vec![2],
    };
    let campaign = CampaignConfig {
        trials: 30,
        seed: 0xCA57ED,
        timeout_factor: 8,
        ..CampaignConfig::default()
    };
    let a = coverage_sweep(&suite(), &spec, &campaign);
    let b = coverage_sweep(&suite(), &spec, &campaign);
    assert_eq!(report::coverage_csv(&a), report::coverage_csv(&b));
    assert_eq!(report::coverage_panel(&a), report::coverage_panel(&b));
}

/// Different seeds must actually change the campaign (the
/// reproducibility above is not vacuous).
#[test]
fn coverage_sweep_depends_on_seed() {
    let spec = GridSpec {
        issues: vec![2],
        delays: vec![2],
        schemes: vec![Scheme::Noed],
        clusters: vec![2],
    };
    let mk = |seed| {
        coverage_sweep(
            &suite(),
            &spec,
            &CampaignConfig {
                trials: 60,
                seed,
                timeout_factor: 8,
                ..CampaignConfig::default()
            },
        )
    };
    let a = mk(1);
    let b = mk(2);
    assert_ne!(report::coverage_csv(&a), report::coverage_csv(&b));
}
