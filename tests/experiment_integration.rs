//! Experiment-harness integration: the sweep machinery must produce
//! paper-shaped results on a reduced grid.

use casted::experiments::{casted_vs_best_fixed, perf_sweep, summarize, GridSpec};
use casted::Scheme;

fn small_suite() -> Vec<casted_workloads::Workload> {
    casted_workloads::all()
        .into_iter()
        .filter(|w| matches!(w.name, "cjpeg" | "181.mcf"))
        .collect()
}

#[test]
fn reduced_grid_reproduces_paper_shape() {
    let spec = GridSpec {
        issues: vec![1, 2],
        delays: vec![1, 4],
        schemes: Scheme::ALL.to_vec(),
        clusters: vec![2],
    };
    let table = perf_sweep(&small_suite(), &spec);

    // 1. Every ED scheme slows down vs NOED.
    for s in summarize(&table) {
        assert!(s.min >= 1.0, "{:?}", s);
    }

    // 2. SCED improves (or holds) as issue width grows.
    for b in table.benchmarks() {
        let s1 = table.slowdown(&b, Scheme::Sced, 1, 1).unwrap();
        let n1 = table.noed_cycles(&b, 1).unwrap();
        let n2 = table.noed_cycles(&b, 2).unwrap();
        let c1 = s1 * n1 as f64;
        let c2 = table.slowdown(&b, Scheme::Sced, 2, 1).unwrap() * n2 as f64;
        assert!(c2 <= c1, "{b}: SCED got slower with more issue slots");
    }

    // 3. DCED degrades as the inter-core delay grows.
    for b in table.benchmarks() {
        let d1 = table.get(&b, Scheme::Dced, 1, 1).unwrap().cycles;
        let d4 = table.get(&b, Scheme::Dced, 1, 4).unwrap().cycles;
        assert!(d4 >= d1, "{b}: DCED immune to delay?");
    }

    // 4. CASTED tracks the best fixed scheme within tolerance.
    let (_best, worst, rows) = casted_vs_best_fixed(&table);
    assert!(!rows.is_empty());
    assert!(worst > -12.0, "CASTED loses {worst:.1}% somewhere");
}

#[test]
fn casted_occupancy_adapts_to_delay() {
    // At delay 1 CASTED should use both clusters for the ILP; at an
    // extreme delay it should concentrate work.
    let w = casted_workloads::by_name("cjpeg").unwrap();
    let spec = GridSpec {
        issues: vec![4],
        delays: vec![1, 4],
        schemes: vec![Scheme::Casted],
        clusters: vec![2],
    };
    let table = perf_sweep(&[w], &spec);
    let low = table.get("cjpeg", Scheme::Casted, 4, 1).unwrap();
    let high = table.get("cjpeg", Scheme::Casted, 4, 4).unwrap();
    let split = |p: &casted::experiments::PerfPoint| {
        p.occupancy.get(1).copied().unwrap_or(0) as f64
            / p.occupancy.iter().sum::<usize>().max(1) as f64
    };
    assert!(
        split(high) <= split(low) + 1e-9,
        "CASTED spread more at high delay: {:?} vs {:?}",
        high.occupancy,
        low.occupancy
    );
}

#[test]
fn csv_reports_are_well_formed() {
    let spec = GridSpec {
        issues: vec![1],
        delays: vec![2],
        schemes: Scheme::ALL.to_vec(),
        clusters: vec![2],
    };
    let ws: Vec<_> = casted_workloads::all().into_iter().take(1).collect();
    let table = perf_sweep(&ws, &spec);
    let csv = casted::report::perf_csv(&table);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + table.points.len());
    let cols = lines[0].split(',').count();
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), cols, "ragged CSV row: {l}");
    }
}
