//! Metrics must agree with ground truth the pipeline already reports
//! through its result types: the observability layer is a *view* of
//! the computation, never a second bookkeeping that can drift.
//!
//! * `sim.*` counters == the `SimResult` the same runs returned,
//! * `faults.*` outcome counters == the campaign `Tally`,
//! * per-scheme check-emission counters nonzero iff scheme ≠ NOED and
//!   equal to the `EdStats` the pass reported.

use casted::faults::{CampaignConfig, Outcome};
use casted::ir::MachineConfig;
use casted::{build, compile, measure, obs, Scheme};

/// Tests in this binary share the process-global metrics registry;
/// serialize them (cargo runs #[test] fns on parallel threads).
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn counter(snapshot_target: &'static str) -> u64 {
    obs::global().counter(snapshot_target).get()
}

fn test_module() -> casted::ir::Module {
    compile(
        "obs-crosscheck",
        "fn main() { var s: int = 0; for i in 0..60 { s = s + i * 3; } out(s); }",
    )
    .unwrap()
}

#[test]
fn sim_counters_match_sim_results() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let module = test_module();
    let config = MachineConfig::itanium2_like(2, 2);
    // Prepare outside the measured region: the adaptive scheduler
    // runs candidate simulations of its own, which would (correctly)
    // land in the counters but not in the `SimResult`s we sum here.
    let preps: Vec<_> = Scheme::ALL
        .iter()
        .map(|&s| build(&module, s, &config).unwrap())
        .collect();

    obs::reset();
    obs::set_enabled(true);
    let mut dyn_insns = 0u64;
    let mut cycles = 0u64;
    let mut stalls = 0u64;
    for prep in &preps {
        let r = measure(prep);
        dyn_insns += r.stats.dyn_insns;
        cycles += r.stats.cycles;
        stalls += r.stats.stall_cycles;
    }
    obs::set_enabled(false);

    assert_eq!(counter("sim.runs"), preps.len() as u64);
    assert_eq!(counter("sim.dyn_insns"), dyn_insns, "retired-instruction counter drifted from SimResult");
    assert_eq!(counter("sim.cycles"), cycles);
    assert_eq!(counter("sim.stall_cycles"), stalls);
}

#[test]
fn fault_outcome_counters_match_tally() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let module = test_module();
    let config = MachineConfig::itanium2_like(2, 2);
    let prep = build(&module, Scheme::Casted, &config).unwrap();

    obs::reset();
    obs::set_enabled(true);
    let r = casted::faults::run_campaign(
        &prep.sp,
        &CampaignConfig {
            trials: 40,
            seed: 0xCA57ED,
            timeout_factor: 8,
            ..CampaignConfig::default()
        },
    );
    obs::set_enabled(false);

    assert_eq!(counter("faults.trials"), 40);
    assert_eq!(counter("faults.trials"), r.tally.total() as u64);
    for (o, name) in [
        (Outcome::Benign, "faults.outcome.benign"),
        (Outcome::Detected, "faults.outcome.detected"),
        (Outcome::Exception, "faults.outcome.exception"),
        (Outcome::DataCorrupt, "faults.outcome.data_corrupt"),
        (Outcome::Timeout, "faults.outcome.timeout"),
        (Outcome::Corrected, "faults.outcome.corrected"),
    ] {
        assert_eq!(
            counter(name),
            r.tally.count(o) as u64,
            "outcome counter {name} drifted from the campaign Tally"
        );
    }
}

#[test]
fn check_emission_counters_are_nonzero_iff_scheme_has_error_detection() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let module = test_module();
    let config = MachineConfig::itanium2_like(2, 2);

    obs::reset();
    obs::set_enabled(true);
    let preps: Vec<_> = Scheme::FULL
        .iter()
        .map(|&s| build(&module, s, &config).unwrap())
        .collect();
    obs::set_enabled(false);

    for prep in &preps {
        // Counter names come from the scheme registry — the same
        // descriptor row the pipeline read when it recorded them.
        let name = prep.scheme.descriptor().checks_counter;
        let got = counter(name);
        match prep.ed_stats {
            None => {
                assert!(
                    matches!(prep.scheme, Scheme::Noed | Scheme::Rbed),
                    "only transform-free schemes may skip ED stats"
                );
                assert_eq!(got, 0, "{} must emit no checks", prep.scheme);
            }
            Some(st) => {
                assert!(got > 0, "{} ran error detection but {name} is 0", prep.scheme);
                assert_eq!(got, st.checks as u64, "{name} drifted from EdStats");
                assert!(st.renamed_regs > 0, "rename table size must be recorded");
            }
        }
    }
    // The aggregate equals the per-scheme sum.
    let per_scheme: u64 = [
        "passes.ed.checks.sced",
        "passes.ed.checks.dced",
        "passes.ed.checks.casted",
        "passes.ed.checks.tmred",
    ]
    .iter()
    .map(|n| obs::global().counter(n).get())
    .sum();
    assert_eq!(counter("passes.ed.checks"), per_scheme);
}
