//! Metric primitives: saturating atomic counters, last-write gauges,
//! and fixed-bucket histograms with percentile queries.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// Additions **saturate** at `u64::MAX` instead of wrapping: a counter
/// that has been running for a very long time degrades to a pinned
/// maximum rather than silently restarting from a small number (which
/// would corrupt rate computations and snapshots downstream).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `v`, saturating at `u64::MAX`.
    pub fn add(&self, v: u64) {
        if v == 0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins reading (pool width, utilization, trials/sec).
/// Gauge values are host- or timing-dependent and are therefore
/// excluded from the deterministic counter-only snapshot.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the reading.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current reading.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Default bucket bounds for wall-clock timings in nanoseconds:
/// powers of two from 1.024 µs to ~68.7 s (the overflow bucket
/// catches anything slower). 27 buckets keep per-histogram memory
/// trivial while giving ~2x resolution everywhere a span can land.
pub const DEFAULT_TIME_BOUNDS_NS: [u64; 26] = {
    let mut b = [0u64; 26];
    let mut i = 0;
    while i < 26 {
        b[i] = 1024u64 << i;
        i += 1;
    }
    b
};

/// A fixed-bucket histogram: `bounds[i]` is the *inclusive upper
/// bound* of bucket `i`, bucket `bounds.len()` is the overflow bucket.
/// Observations also maintain exact `count`/`sum`/`min`/`max`, so the
/// mean is exact and only the percentiles are bucket-quantized.
#[derive(Debug)]
pub struct Hist {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Hist {
    /// Histogram over explicit ascending bucket bounds.
    ///
    /// Panics if `bounds` is empty or not strictly ascending — bucket
    /// layout is part of a metric's meaning, not a tuning knob.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending: {bounds:?}"
        );
        Hist {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Histogram with the default nanosecond timing buckets.
    pub fn timing() -> Self {
        Hist::with_bounds(&DEFAULT_TIME_BOUNDS_NS)
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bucket_of(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Index of the bucket `v` falls into (last index = overflow).
    fn bucket_of(&self, v: u64) -> usize {
        self.bounds.partition_point(|&b| v > b)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Quantile estimate for `q` in `0.0..=1.0`: the inclusive upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)` observations. For the overflow bucket the
    /// exact observed maximum is returned (there is no finite bound).
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Zero every bucket and the exact aggregates.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_saturates() {
        let c = Counter::new();
        c.add(40);
        c.inc();
        c.inc();
        assert_eq!(c.get(), 42);
        // Saturation: overflow pins at MAX instead of wrapping.
        c.add(u64::MAX - 50);
        assert_eq!(c.get(), u64::MAX - 8);
        c.add(100);
        assert_eq!(c.get(), u64::MAX);
        c.add(1);
        assert_eq!(c.get(), u64::MAX);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_race_free_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn hist_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Hist::with_bounds(&[10, 100, 1000]);
        // On-boundary values land in the bucket they bound.
        assert_eq!(h.bucket_of(0), 0);
        assert_eq!(h.bucket_of(10), 0);
        assert_eq!(h.bucket_of(11), 1);
        assert_eq!(h.bucket_of(100), 1);
        assert_eq!(h.bucket_of(101), 2);
        assert_eq!(h.bucket_of(1000), 2);
        assert_eq!(h.bucket_of(1001), 3); // overflow bucket
    }

    #[test]
    fn hist_aggregates_are_exact() {
        let h = Hist::with_bounds(&[10, 100, 1000]);
        for v in [5, 10, 50, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5565);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn hist_percentile_math() {
        let h = Hist::with_bounds(&[10, 100, 1000]);
        // 100 observations: 50 in bucket ≤10, 45 in ≤100, 4 in ≤1000,
        // 1 overflow.
        for _ in 0..50 {
            h.observe(3);
        }
        for _ in 0..45 {
            h.observe(60);
        }
        for _ in 0..4 {
            h.observe(700);
        }
        h.observe(123_456);
        // p50 → rank 50 inside the first bucket → its bound, 10.
        assert_eq!(h.p50(), 10);
        // p95 → rank 95 inside the second bucket → 100.
        assert_eq!(h.p95(), 100);
        // p99 → rank 99 inside the third bucket → 1000.
        assert_eq!(h.p99(), 1000);
        // p100 → the overflow bucket reports the exact max.
        assert_eq!(h.quantile(1.0), 123_456);
        // Empty histogram answers 0 everywhere.
        h.reset();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn hist_single_observation_is_every_percentile() {
        let h = Hist::with_bounds(&[10, 100]);
        h.observe(42);
        assert_eq!(h.p50(), 100);
        assert_eq!(h.p95(), 100);
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn default_time_bounds_are_ascending_powers_of_two() {
        assert_eq!(DEFAULT_TIME_BOUNDS_NS[0], 1024);
        assert!(DEFAULT_TIME_BOUNDS_NS.windows(2).all(|w| w[1] == 2 * w[0]));
        // Constructing the default timing histogram must satisfy the
        // strictly-ascending invariant.
        let _ = Hist::timing();
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn hist_rejects_unsorted_bounds() {
        let _ = Hist::with_bounds(&[10, 10]);
    }
}
