//! # casted-obs — pipeline-wide metrics and tracing
//!
//! A zero-registry-dependency observability layer in the style of
//! `casted-util`: everything lives on `std`, nothing talks to the
//! network, and the output formats are deterministic enough to golden-
//! test. It is the substrate the experiment sweeps report their cost
//! against (see `docs/OBSERVABILITY.md`).
//!
//! Three metric kinds, one process-global [`Registry`]:
//!
//! * **Counters** ([`Counter`]) — monotonically increasing, saturating
//!   `u64` event counts (cycles simulated, checks emitted, trials
//!   run). Counter values depend only on *what work was done*, never
//!   on how fast the host did it, so the counter-only snapshot
//!   ([`snapshot_json`]) is bit-reproducible and is pinned by golden
//!   tests exactly like the `results/` CSVs.
//! * **Gauges** ([`Gauge`]) — last-write-wins `u64` readings that *are*
//!   host- or timing-dependent (worker-pool width, pool utilization,
//!   trials/sec). Excluded from the counter-only snapshot.
//! * **Histograms** ([`Hist`]) — fixed-bucket distributions with
//!   `p50`/`p95`/`p99` queries, fed in nanoseconds by the scoped
//!   [`Span`] wall-clock timer. Also excluded from the snapshot.
//!
//! ## Recording is off by default
//!
//! The global recording switch starts **disabled**: every convenience
//! entry point ([`add`], [`inc`], [`gauge_set`], [`observe_ns`],
//! [`span`]) checks one relaxed atomic load and returns immediately,
//! so instrumented hot paths cost a compare-and-branch when nobody is
//! measuring. `--metrics` on the `castedc` and figure binaries flips
//! the switch ([`set_enabled`]); tests flip it around the region they
//! measure. Instrumentation in the workspace additionally flushes in
//! *bulk* (one `add` per simulated run, not per cycle), so the
//! simulator's inner loop is untouched either way.
//!
//! ## Naming convention
//!
//! `layer.subsystem.metric`, lowercase, with timer histograms suffixed
//! `_ns` (`frontend.lex_ns`, `sim.cycles`, `faults.outcome.detected`).
//! Names are `&'static str` so recording never allocates.

pub mod export;
pub mod metrics;
pub mod registry;

pub use metrics::{Counter, Gauge, Hist, DEFAULT_TIME_BOUNDS_NS};
pub use registry::{global, Registry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metric recording globally enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn global metric recording on or off. Off (the default) makes
/// every recording entry point an early-return — the "disabled fast
/// path" whose cost `benches/bench_obs.rs` demonstrates is negligible.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Add `v` to the global counter `name` (registering it on first use).
#[inline]
pub fn add(name: &'static str, v: u64) {
    if enabled() {
        global().counter(name).add(v);
    }
}

/// Increment the global counter `name` by one.
#[inline]
pub fn inc(name: &'static str) {
    add(name, 1);
}

/// Set the global gauge `name` to `v`.
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    if enabled() {
        global().gauge(name).set(v);
    }
}

/// Record `ns` into the global timing histogram `name`.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if enabled() {
        global().hist(name).observe(ns);
    }
}

/// A scoped wall-clock timer: records the elapsed nanoseconds into the
/// timing histogram `name` when dropped. When recording is disabled
/// the constructor does not even read the clock.
#[must_use = "a Span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
}

impl Span {
    /// Elapsed time so far, in nanoseconds (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.armed
            .as_ref()
            .map(|(_, t)| t.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, t)) = self.armed.take() {
            global().hist(name).observe(t.elapsed().as_nanos() as u64);
        }
    }
}

/// Start a [`Span`] over the timing histogram `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        armed: enabled().then(|| (name, Instant::now())),
    }
}

/// Zero every metric in the global registry (names stay registered).
/// Call between measured regions — e.g. at the top of each test that
/// asserts on global metric values.
pub fn reset() {
    global().reset();
}

/// Full JSON export of the global registry: counters, gauges and
/// timing histograms. Key order is deterministic (sorted by name) but
/// timer/gauge *values* are host-dependent.
pub fn export_json() -> String {
    export::export_json(global())
}

/// Counter-only snapshot of the global registry: sorted counter names
/// and values, nothing timing- or host-dependent. Two identical seeded
/// runs produce byte-identical snapshots — see `tests/obs_snapshot.rs`.
pub fn snapshot_json() -> String {
    export::snapshot_json(global())
}

/// CSV export of the global registry (`kind,name,field,value` rows).
pub fn export_csv() -> String {
    export::export_csv(global())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global-switch tests mutate process state; serialize them.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        add("t.lib.disabled", 5);
        gauge_set("t.lib.disabled_gauge", 7);
        observe_ns("t.lib.disabled_ns", 100);
        // Nothing recorded, and the disabled span never reads a clock.
        let s = span("t.lib.disabled_span_ns");
        assert_eq!(s.elapsed_ns(), 0);
        drop(s);
        assert!(!snapshot_json().contains("t.lib.disabled"));
    }

    #[test]
    fn enabled_recording_lands_in_the_global_registry() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        add("t.lib.hits", 2);
        inc("t.lib.hits");
        observe_ns("t.lib.span_ns", 1_000);
        let snap = snapshot_json();
        assert!(snap.contains("\"t.lib.hits\": 3"), "{snap}");
        // Timings never leak into the counter-only snapshot.
        assert!(!snap.contains("span_ns"), "{snap}");
        assert!(export_json().contains("t.lib.span_ns"));
        set_enabled(false);
    }

    #[test]
    fn reset_between_tests_zeroes_but_keeps_names() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        add("t.lib.resettable", 41);
        assert!(snapshot_json().contains("\"t.lib.resettable\": 41"));
        reset();
        // Still present (registered), but back to zero.
        assert!(snapshot_json().contains("\"t.lib.resettable\": 0"));
        set_enabled(false);
    }
}
