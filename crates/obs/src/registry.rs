//! The metric registry: name → metric, get-or-create, plus the
//! process-global instance the convenience functions in the crate
//! root operate on.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Hist};

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Deterministic event counter (in the counter-only snapshot).
    Counter(Arc<Counter>),
    /// Host-/timing-dependent reading (full export only).
    Gauge(Arc<Gauge>),
    /// Timing histogram (full export only).
    Hist(Arc<Hist>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Hist(_) => "hist",
        }
    }
}

/// A collection of named metrics. Registration (the first touch of a
/// name) takes a mutex; recording on the returned handle is lock-free.
///
/// Metric names are `&'static str` by design: every metric in the
/// workspace is declared at an instrumentation site, and static names
/// keep the recording path allocation-free.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// An empty registry (tests use private instances; production code
    /// uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    ///
    /// Panics if `name` is already registered as a different kind —
    /// that is an instrumentation bug, not a runtime condition.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut m = self.lock();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut m = self.lock();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the timing histogram `name` (default ns buckets).
    pub fn hist(&self, name: &'static str) -> Arc<Hist> {
        self.hist_with(name, Hist::timing)
    }

    /// Get or create the histogram `name`, building it with `mk` on
    /// first registration (custom bucket bounds).
    pub fn hist_with(&self, name: &'static str, mk: impl FnOnce() -> Hist) -> Arc<Hist> {
        let mut m = self.lock();
        match m.entry(name).or_insert_with(|| Metric::Hist(Arc::new(mk()))) {
            Metric::Hist(h) => h.clone(),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Sorted snapshot of every registered metric.
    pub fn collect(&self) -> Vec<(&'static str, Metric)> {
        self.lock().iter().map(|(n, m)| (*n, m.clone())).collect()
    }

    /// Zero every metric, keeping registrations.
    pub fn reset(&self) {
        for m in self.lock().values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Hist(h) => h.reset(),
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Metric>> {
        // Poison can only come from a panic inside this module's
        // short critical sections; the map itself is always valid.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The process-global registry used by the crate-root convenience
/// functions and exported by `--metrics`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a.b").add(2);
        r.counter("a.b").add(3);
        assert_eq!(r.counter("a.b").get(), 5);
    }

    #[test]
    fn collect_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("z.last");
        r.counter("a.first");
        r.gauge("m.middle");
        let names: Vec<_> = r.collect().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn reset_zeroes_every_kind_but_keeps_registration() {
        let r = Registry::new();
        r.counter("c").add(9);
        r.gauge("g").set(9);
        r.hist("h").observe(9);
        r.reset();
        assert_eq!(r.counter("c").get(), 0);
        assert_eq!(r.gauge("g").get(), 0);
        assert_eq!(r.hist("h").count(), 0);
        assert_eq!(r.collect().len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_is_an_instrumentation_bug() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }
}
