//! Exporters: full JSON, deterministic counter-only snapshot JSON,
//! and CSV. All hand-rolled (no serde in this workspace); key order
//! is the registry's sorted order, and number formatting is plain
//! decimal `u64` — no float formatting can creep into the snapshot.

use crate::registry::{Metric, Registry};

/// Escape `s` for use inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escape `s` for one CSV field: quoted iff it contains a comma,
/// quote, or newline; embedded quotes doubled (RFC 4180).
pub fn escape_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_object(entries: &[(String, String)], indent: &str, out: &mut String) {
    out.push_str("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        out.push_str(indent);
        out.push_str("  \"");
        out.push_str(k);
        out.push_str("\": ");
        out.push_str(v);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push('}');
}

/// Full JSON export: three sections (`counters`, `gauges`,
/// `timers_ns`), each sorted by metric name. Counter values are
/// deterministic; gauge and timer values are not.
pub fn export_json(r: &Registry) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut timers = Vec::new();
    for (name, metric) in r.collect() {
        let key = escape_json(name);
        match metric {
            Metric::Counter(c) => counters.push((key, c.get().to_string())),
            Metric::Gauge(g) => gauges.push((key, g.get().to_string())),
            Metric::Hist(h) => {
                let stats = format!(
                    "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max(),
                    h.p50(),
                    h.p95(),
                    h.p99()
                );
                timers.push((key, stats));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"counters\": ");
    json_object(&counters, "  ", &mut out);
    out.push_str(",\n  \"gauges\": ");
    json_object(&gauges, "  ", &mut out);
    out.push_str(",\n  \"timers_ns\": ");
    json_object(&timers, "  ", &mut out);
    out.push_str("\n}\n");
    out
}

/// Counter-only snapshot: the deterministic, golden-testable view.
/// Exactly one top-level `counters` object, sorted names, plain `u64`
/// values, trailing newline — byte-stable across runs, hosts and
/// worker-scheduling orders for seeded workloads.
pub fn snapshot_json(r: &Registry) -> String {
    let counters: Vec<(String, String)> = r
        .collect()
        .into_iter()
        .filter_map(|(name, m)| match m {
            Metric::Counter(c) => Some((escape_json(name), c.get().to_string())),
            _ => None,
        })
        .collect();
    let mut out = String::new();
    out.push_str("{\n  \"counters\": ");
    json_object(&counters, "  ", &mut out);
    out.push_str("\n}\n");
    out
}

/// CSV export: header plus one `kind,name,field,value` row per scalar
/// (counters/gauges one row, histograms one row per aggregate).
pub fn export_csv(r: &Registry) -> String {
    let mut out = String::from("kind,name,field,value\n");
    for (name, metric) in r.collect() {
        let n = escape_csv(name);
        match metric {
            Metric::Counter(c) => out.push_str(&format!("counter,{n},value,{}\n", c.get())),
            Metric::Gauge(g) => out.push_str(&format!("gauge,{n},value,{}\n", g.get())),
            Metric::Hist(h) => {
                for (field, v) in [
                    ("count", h.count()),
                    ("sum", h.sum()),
                    ("min", h.min()),
                    ("max", h.max()),
                    ("p50", h.p50()),
                    ("p95", h.p95()),
                    ("p99", h.p99()),
                ] {
                    out.push_str(&format!("timer_ns,{n},{field},{v}\n"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let r = Registry::new();
        r.counter("sim.cycles").add(123);
        r.counter("faults.trials").add(7);
        r.gauge("core.pool.workers").set(8);
        r.hist("frontend.lex_ns").observe(2048);
        r
    }

    #[test]
    fn snapshot_contains_only_counters_sorted() {
        let snap = snapshot_json(&sample());
        assert_eq!(
            snap,
            "{\n  \"counters\": {\n    \"faults.trials\": 7,\n    \"sim.cycles\": 123\n  }\n}\n"
        );
    }

    #[test]
    fn full_export_has_all_three_sections() {
        let j = export_json(&sample());
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"core.pool.workers\": 8"));
        assert!(j.contains("\"frontend.lex_ns\": {\"count\": 1"));
    }

    #[test]
    fn csv_rows_cover_every_metric() {
        let csv = export_csv(&sample());
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,sim.cycles,value,123\n"));
        assert!(csv.contains("gauge,core.pool.workers,value,8\n"));
        assert!(csv.contains("timer_ns,frontend.lex_ns,count,1\n"));
        assert!(csv.contains("timer_ns,frontend.lex_ns,p50,2048\n"));
    }

    #[test]
    fn json_escaping_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain.name"), "plain.name");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn csv_escaping_quotes_only_when_needed() {
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("a\"b"), "\"a\"\"b\"");
    }

    #[test]
    fn escaped_names_round_trip_through_the_exporters() {
        let r = Registry::new();
        r.counter("weird\"name\\with\ncontrols").add(1);
        let snap = snapshot_json(&r);
        assert!(snap.contains("\"weird\\\"name\\\\with\\ncontrols\": 1"));
        let csv = export_csv(&r);
        assert!(csv.contains("\"weird\"\"name\\with\ncontrols\""));
    }
}
