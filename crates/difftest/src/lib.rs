//! # casted-difftest — seeded differential testing of the whole stack
//!
//! The standing correctness gate of this repository (see
//! `docs/TESTING.md`): every pipeline stage is cross-checked against
//! the reference IR interpreter (`casted_ir::interp`), bit-for-bit,
//! over structure-aware randomly generated programs *and* the seven
//! workload kernels.
//!
//! ## Oracle layers
//!
//! For each case (a `(seed, GenOptions)` pair naming one generated
//! module, see [`CaseConfig`]):
//!
//! 1. **verify / interp** — the module verifies and halts cleanly;
//!    its interpreter run is the *golden* behaviour.
//! 2. **if-convert** — `casted_passes::ifconvert` output re-interprets
//!    to the golden stream.
//! 3. **error detection** — all three ED variants (paper default,
//!    fused checks, selective) preserve semantics; the transformed
//!    module still carries duplicates and checks (structure check).
//! 4. **BUG / schedule / spill / physreg** — for every scheme
//!    (NOED / SCED / DCED / CASTED) across a small issue-width ×
//!    inter-cluster-delay grid, the fully prepared program's module
//!    re-interprets to the golden stream and the schedule validates.
//! 5. **simulator** — `casted-sim`'s architectural results (stream +
//!    stop reason) equal the interpreter's for every prepared program,
//!    and ED-protected binaries under **zero** injected faults produce
//!    outputs bit-identical to NOED.
//! 6. **fault probe** — for library-free cases, single-bit faults
//!    aimed at `Provenance::Original` instruction outputs must never
//!    classify as `DataCorrupt` (protected code may mask, detect,
//!    trap or hang — it must not silently corrupt). This validates
//!    the fault harness and the check placement per stage, in the
//!    spirit of FastFlip's compositional injection analysis.
//! 7. **campaign engines** — a small Monte-Carlo campaign per ED
//!    scheme at the balanced grid point must tally byte-identically
//!    under the reference engine (every trial re-simulated from cycle
//!    0) and the checkpointed engine (snapshots, fast-forward replay,
//!    convergence pruning) — the standing cross-check that the perf
//!    engine never changes a result (see `docs/PERFORMANCE.md`).
//! 8. **incremental sections** — the same campaign run through the
//!    compositional section cache (`casted_faults::sections`), cold
//!    and then warm from the on-disk store, must recombine to the
//!    reference engine's exact tally (see `docs/INCREMENTAL.md`).
//!
//! ## Replay
//!
//! Every failure prints a self-contained `REPLAY` line:
//!
//! ```text
//! REPLAY seed=0x00000000adf1c03e gen=ops:25,it:4,g:2,fp:1,dia:2,il:1,lib:0 stage=sim:CASTED:iw2d2
//! ```
//!
//! The `seed=0x...` token is the workspace-wide canonical format
//! (shared with `casted_util::prop` failures); the whole line can be
//! passed to `cargo run -p casted-bench --bin difftest -- --replay
//! '<line>'` to re-execute, `--minimize` to shrink the generator
//! configuration by bisection first. See [`CaseConfig::parse`].

pub mod corpus;
pub mod minimize;
pub mod oracle;
pub mod sabotage;
pub mod suite;

pub use corpus::run_corpus;
pub use minimize::minimize;
pub use oracle::{run_case, run_case_with, CaseReport, Divergence, Hooks};
pub use suite::{run_suite, run_suite_with, SuiteOptions, SuiteReport};

use casted_ir::testgen::GenOptions;

/// The issue-width × inter-cluster-delay grid every case is scheduled
/// on — a small diagonal cut through the paper's 1–4 × 1–4 sweep,
/// covering the scalar, balanced and wide corners.
pub const GRID: [(usize, u32); 3] = [(1, 1), (2, 2), (4, 3)];

/// Step budget for interpreting a raw generated module.
pub const STEP_LIMIT: u64 = 2_000_000;

/// Step budget for transformed (ED / scheduled / spilled) modules.
pub const STEP_LIMIT_XFORM: u64 = 50_000_000;

/// One differential-test case: a seed plus the generator options,
/// which together name the module under test (the generator mapping
/// is frozen, see `casted_ir::testgen`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseConfig {
    /// Generator seed.
    pub seed: u64,
    /// Generator shape options.
    pub gen: GenOptions,
}

impl CaseConfig {
    /// The self-contained replay line (without the `REPLAY ` prefix):
    /// `seed=0x... gen=... [stage=...]`.
    pub fn replay_line(&self, stage: Option<&str>) -> String {
        let mut s = format!(
            "{} gen={}",
            casted_util::prop::seed_token(self.seed),
            self.gen.encode()
        );
        if let Some(st) = stage {
            s.push_str(" stage=");
            s.push_str(st);
        }
        s
    }

    /// Parse a replay line (tolerates a leading `REPLAY` and a
    /// trailing `stage=...`, which is informational). Returns the case
    /// and the stage label, if present.
    pub fn parse(line: &str) -> Result<(CaseConfig, Option<String>), String> {
        let mut seed = None;
        let mut gen = GenOptions::default();
        let mut stage = None;
        for tok in line.split_whitespace() {
            if tok == "REPLAY" {
                continue;
            } else if tok.starts_with("seed=") {
                seed = Some(
                    casted_util::prop::parse_seed_token(tok)
                        .ok_or_else(|| format!("bad seed token '{tok}'"))?,
                );
            } else if let Some(g) = tok.strip_prefix("gen=") {
                gen = GenOptions::parse(g)?;
            } else if let Some(s) = tok.strip_prefix("stage=") {
                stage = Some(s.to_string());
            } else {
                return Err(format!("unrecognized replay token '{tok}'"));
            }
        }
        let seed = seed.ok_or("replay line has no seed= token")?;
        Ok((CaseConfig { seed, gen }, stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_line_round_trips() {
        let cfg = CaseConfig {
            seed: 0xDEAD_BEEF,
            gen: GenOptions {
                body_ops: 13,
                iterations: 2,
                globals: 1,
                with_float: false,
                diamonds: 0,
                inner_loops: 2,
                lib_calls: 1,
            },
        };
        let line = cfg.replay_line(Some("sim:CASTED:iw2d2"));
        let (parsed, stage) = CaseConfig::parse(&line).unwrap();
        assert_eq!(parsed, cfg);
        assert_eq!(stage.as_deref(), Some("sim:CASTED:iw2d2"));

        // The REPLAY prefix as printed by the runner also parses.
        let (parsed2, _) = CaseConfig::parse(&format!("REPLAY {line}")).unwrap();
        assert_eq!(parsed2, cfg);

        // A bare seed uses default generator options.
        let (parsed3, stage3) = CaseConfig::parse("seed=0x2a").unwrap();
        assert_eq!(parsed3.seed, 42);
        assert_eq!(parsed3.gen, GenOptions::default());
        assert_eq!(stage3, None);

        assert!(CaseConfig::parse("gen=ops:3").is_err(), "seed is required");
        assert!(CaseConfig::parse("seed=0x1 bogus").is_err());
    }
}
