//! Replay-case minimization by generator-configuration bisection.
//!
//! A failing case is named by `(seed, GenOptions)`. The seed cannot be
//! shrunk (a different seed is a different program), but the shape
//! options can: the minimizer bisects each numeric knob down to the
//! smallest value that still reproduces the divergence, and drops
//! floating point if the failure survives without it. The result is a
//! replay line for the *smallest* program exhibiting the bug — usually
//! a handful of instructions instead of a few hundred.

use crate::oracle::{run_case_with, Hooks};
use crate::CaseConfig;

/// Shrink `cfg` to a minimal still-failing configuration. If `cfg`
/// does not fail under `hooks`, it is returned unchanged.
pub fn minimize(cfg: &CaseConfig, hooks: &Hooks) -> CaseConfig {
    let fails = |c: &CaseConfig| run_case_with(c, hooks).is_err();
    if !fails(cfg) {
        return cfg.clone();
    }
    let mut best = cfg.clone();

    // Bisect one numeric field: find the smallest value in [lo, cur]
    // that still fails, assuming the current value fails.
    fn bisect(
        best: &mut CaseConfig,
        lo: usize,
        get: fn(&CaseConfig) -> usize,
        set: fn(&mut CaseConfig, usize),
        fails: &dyn Fn(&CaseConfig) -> bool,
    ) {
        let mut lo = lo; // below lo: untested or known-passing
        let mut hi = get(best); // hi always fails
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut cand = best.clone();
            set(&mut cand, mid);
            if fails(&cand) {
                *best = cand;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
    }

    bisect(
        &mut best,
        1,
        |c| c.gen.body_ops,
        |c, v| c.gen.body_ops = v,
        &fails,
    );
    bisect(
        &mut best,
        1,
        |c| c.gen.iterations as usize,
        |c, v| c.gen.iterations = v as i64,
        &fails,
    );
    bisect(
        &mut best,
        1,
        |c| c.gen.globals,
        |c, v| c.gen.globals = v,
        &fails,
    );
    bisect(
        &mut best,
        0,
        |c| c.gen.diamonds,
        |c, v| c.gen.diamonds = v,
        &fails,
    );
    bisect(
        &mut best,
        0,
        |c| c.gen.inner_loops,
        |c, v| c.gen.inner_loops = v,
        &fails,
    );
    bisect(
        &mut best,
        0,
        |c| c.gen.lib_calls,
        |c, v| c.gen.lib_calls = v,
        &fails,
    );
    if best.gen.with_float {
        let mut cand = best.clone();
        cand.gen.with_float = false;
        if fails(&cand) {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabotage;
    use casted_ir::testgen::GenOptions;

    #[test]
    fn passing_case_is_left_alone() {
        let cfg = CaseConfig {
            seed: 2,
            gen: GenOptions {
                body_ops: 10,
                iterations: 2,
                globals: 1,
                with_float: false,
                diamonds: 0,
                inner_loops: 0,
                lib_calls: 0,
            },
        };
        let hooks = Hooks { probes: 2, ..Hooks::default() };
        assert_eq!(minimize(&cfg, &hooks), cfg);
    }

    #[test]
    fn sabotaged_case_shrinks() {
        // drop_first_out fails for every configuration (all generated
        // modules emit output), so the minimizer drives the shape down
        // hard.
        let cfg = CaseConfig {
            seed: 11,
            gen: GenOptions {
                body_ops: 30,
                iterations: 5,
                globals: 2,
                with_float: true,
                diamonds: 2,
                inner_loops: 1,
                lib_calls: 0,
            },
        };
        let hooks = Hooks {
            post_ed: Some(sabotage::drop_first_out),
            probes: 0,
        };
        let min = minimize(&cfg, &hooks);
        assert_eq!(min.seed, cfg.seed, "seed is never changed");
        assert!(
            run_case_with(&min, &hooks).is_err(),
            "minimized case must still fail"
        );
        assert!(
            min.gen.body_ops < cfg.gen.body_ops,
            "expected body to shrink, got {:?}",
            min.gen
        );
        assert!(min.gen.iterations <= cfg.gen.iterations);
    }
}
