//! The per-case oracle stack: run one generated module through every
//! pipeline stage and cross-check each stage against the reference
//! interpreter (see the crate docs for the layer list).

use casted_faults::Outcome;
use casted_ir::insn::Provenance;
use casted_ir::interp::{self, ExecResult, OutVal, StopReason};
use casted_ir::testgen;
use casted_ir::{verify, MachineConfig, Module};
use casted_passes::errordetect::{error_detection_with, EdOptions};
use casted_passes::ifconvert::if_convert;
use casted_passes::pipeline::{prepare, prepare_custom, Prepared, PrepareOptions, Scheme};
use casted_passes::stages::{encode_ra_artifact, module_content_key, prepare_staged, StageStats};
use casted_util::store::ArtifactStore;
use casted_sim::{simulate, Injection, SimOptions, SimResult};
use casted_util::hash::Fnv64;
use casted_util::Rng;

use crate::{CaseConfig, GRID, STEP_LIMIT, STEP_LIMIT_XFORM};

/// Domain-separation salt for the fault-probe draws, so probe sites
/// are independent of the generator's own stream.
const PROBE_SALT: u64 = 0x5EED_FA17_0B5E_55ED;

/// Domain-separation salt for the campaign seed of the
/// engine-equivalence layer, so its injection stream is independent of
/// both the generator's stream and the probe layer's.
const ENGINE_SALT: u64 = 0xC8EC_4901_D0C7_0A7E;

/// Monte-Carlo trials per scheme in the engine-equivalence layer.
/// Small on purpose: the layer checks that the two campaign engines
/// agree byte for byte, not coverage statistics, and generated cases
/// make a fresh campaign pair per ED scheme per case.
const ENGINE_TRIALS: usize = 16;

/// Cycle watchdog for simulated runs (generated cases are tiny; a
/// healthy run is a few thousand cycles).
const SIM_MAX_CYCLES: u64 = 50_000_000;

/// Test-only instrumentation points. `post_ed` runs on the module
/// right after the error-detection pass (before scheduling) for every
/// ED scheme and variant — the difftest self-tests use it to sabotage
/// the pass and prove the oracle catches it. `probes` is the number of
/// targeted fault injections aimed per probed scheme.
#[derive(Clone, Copy)]
pub struct Hooks {
    /// Mutation applied after error detection (None in production).
    pub post_ed: Option<fn(&mut Module)>,
    /// Fault probes per ED scheme on library-free cases.
    pub probes: usize,
}

impl Default for Hooks {
    fn default() -> Self {
        Hooks {
            post_ed: None,
            probes: 8,
        }
    }
}

/// A failed oracle check: which stage diverged, and how. Rendered by
/// the suite runner next to the case's `REPLAY` line.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Stage label (e.g. `sim:CASTED:iw2d2`) — goes into the replay
    /// line's `stage=` token.
    pub stage: String,
    /// Human-readable explanation of the mismatch.
    pub detail: String,
}

impl Divergence {
    fn new(stage: impl Into<String>, detail: impl Into<String>) -> Self {
        Divergence {
            stage: stage.into(),
            detail: detail.into(),
        }
    }
}

/// Per-case summary on success.
#[derive(Clone, Copy, Debug)]
pub struct CaseReport {
    /// Number of oracle checks that passed.
    pub stages: usize,
    /// Fault probes executed (0 for library-carrying cases).
    pub probes: usize,
    /// FNV-1a digest of the case's observable behaviour (golden
    /// stream + per-scheme cycle counts) — pins run-to-run determinism
    /// in the suite log.
    pub digest: u64,
}

/// [`run_case_with`] with default (production) hooks.
pub fn run_case(cfg: &CaseConfig) -> Result<CaseReport, Divergence> {
    run_case_with(cfg, &Hooks::default())
}

fn stream_eq(a: &[OutVal], b: &[OutVal]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bit_eq(y))
}

fn fmt_stop(s: &StopReason) -> String {
    format!("{s:?}")
}

fn hash_stream(h: &mut Fnv64, stream: &[OutVal]) {
    for v in stream {
        match v {
            OutVal::Int(i) => {
                h.write_u8(0);
                h.write_u64(*i as u64);
            }
            OutVal::Float(f) => {
                h.write_u8(1);
                h.write_u64(f.to_bits());
            }
        }
    }
}

/// Interpret `m` and require bit-exact agreement with `golden`.
fn check_interp(
    m: &Module,
    golden: &ExecResult,
    limit: u64,
    stage: &str,
) -> Result<ExecResult, Divergence> {
    verify::verify_module(m)
        .map_err(|e| Divergence::new(stage, format!("module fails verification: {e:?}")))?;
    let r = interp::run(m, limit).map_err(|e| Divergence::new(stage, format!("interp: {e}")))?;
    if r.stop != golden.stop {
        return Err(Divergence::new(
            stage,
            format!(
                "stop reason diverged: golden {} vs {}",
                fmt_stop(&golden.stop),
                fmt_stop(&r.stop)
            ),
        ));
    }
    if !stream_eq(&r.stream, &golden.stream) {
        return Err(Divergence::new(
            stage,
            format!(
                "output stream diverged: golden {} values vs {} ({:?}... vs {:?}...)",
                golden.stream.len(),
                r.stream.len(),
                golden.stream.first(),
                r.stream.first()
            ),
        ));
    }
    Ok(r)
}

/// Build the simulator-ready program for `scheme`, routing ED through
/// the hook point so self-tests can sabotage the pass output.
fn build_scheme(
    m: &Module,
    scheme: Scheme,
    mc: &MachineConfig,
    hooks: &Hooks,
) -> Result<Prepared, String> {
    let opts = PrepareOptions::default();
    if scheme.has_error_detection() {
        let mut mm = m.clone();
        error_detection_with(&mut mm, &EdOptions::default());
        if let Some(h) = hooks.post_ed {
            h(&mut mm);
        }
        prepare_custom(&mm, scheme, None, scheme.placement(), mc, &opts)
    } else {
        prepare_custom(m, scheme, None, scheme.placement(), mc, &opts)
    }
}

/// Run every oracle layer for one case. Returns the first divergence
/// found (stage labels are stable, so a failure is reproducible from
/// its replay line alone).
pub fn run_case_with(cfg: &CaseConfig, hooks: &Hooks) -> Result<CaseReport, Divergence> {
    let mut stages = 0usize;
    let mut digest = Fnv64::new();

    // Layer 1: generate, verify, establish the golden behaviour.
    let m = testgen::random_module(cfg.seed, &cfg.gen);
    verify::verify_module(&m)
        .map_err(|e| Divergence::new("verify", format!("generated module invalid: {e:?}")))?;
    stages += 1;
    let golden = interp::run(&m, STEP_LIMIT)
        .map_err(|e| Divergence::new("interp", format!("golden run failed: {e}")))?;
    if golden.stop != StopReason::Halt(0) {
        return Err(Divergence::new(
            "interp",
            format!("golden run did not halt cleanly: {}", fmt_stop(&golden.stop)),
        ));
    }
    if golden.stream.is_empty() {
        return Err(Divergence::new("interp", "golden run produced no output"));
    }
    stages += 1;
    hash_stream(&mut digest, &golden.stream);
    digest.write_u64(golden.dyn_insns);

    // Layer 2: if-conversion preserves semantics.
    {
        let mut c = m.clone();
        let converted = if_convert(&mut c);
        check_interp(&c, &golden, STEP_LIMIT_XFORM, "ifconvert")?;
        digest.write_u64(converted as u64);
        stages += 1;
    }

    // Layer 3: all error-detection variants preserve semantics and
    // leave the protection structure in place.
    let ed_variants: [(&str, EdOptions); 3] = [
        ("default", EdOptions::default()),
        (
            "fused",
            EdOptions {
                fused_checks: true,
                ..EdOptions::default()
            },
        ),
        (
            "selective",
            EdOptions {
                selective: true,
                ..EdOptions::default()
            },
        ),
    ];
    for (label, eopts) in &ed_variants {
        let mut c = m.clone();
        let st = error_detection_with(&mut c, eopts);
        if let Some(h) = hooks.post_ed {
            h(&mut c);
        }
        check_interp(&c, &golden, STEP_LIMIT_XFORM, &format!("ed:{label}"))?;
        stages += 1;

        // Structure check: the transformed module must actually carry
        // duplicates and checks (an "ED pass" that silently deletes
        // its own protection still passes the semantic diff — zero
        // faults means checks never fire — so presence is asserted
        // separately).
        let f = c.entry_fn();
        let (mut dup, mut chk) = (0usize, 0usize);
        for blk in &f.blocks {
            for &id in &blk.insns {
                match f.insn(id).prov {
                    Provenance::Duplicate => dup += 1,
                    Provenance::CheckCmp | Provenance::CheckBr => chk += 1,
                    _ => {}
                }
            }
        }
        let stage = format!("ed-structure:{label}");
        if st.replicated > 0 && dup == 0 {
            return Err(Divergence::new(
                &stage,
                format!("pass reported {} replicated insns but module carries none", st.replicated),
            ));
        }
        if chk == 0 {
            return Err(Divergence::new(
                &stage,
                "error-detected module carries no check instructions",
            ));
        }
        stages += 1;
    }

    // Layers 4–5: full back end (BUG/schedule/spill/physreg) per
    // scheme per grid point; the scheduled module re-interprets to the
    // golden stream and the cycle-accurate simulator agrees with the
    // interpreter. The NOED sim result per grid point doubles as the
    // zero-fault baseline for the ED schemes.
    let mut probe_targets: Vec<(Scheme, Prepared)> = Vec::new();
    for &(iw, delay) in GRID.iter() {
        let mc = MachineConfig::itanium2_like(iw, delay);
        let grid_tag = format!("iw{iw}d{delay}");
        let mut noed_stream: Option<Vec<OutVal>> = None;
        for scheme in Scheme::ALL {
            let stage = format!("{scheme}:{grid_tag}");
            let prep = build_scheme(&m, scheme, &mc, hooks)
                .map_err(|e| Divergence::new(format!("prepare:{stage}"), e))?;
            prep.sp
                .validate()
                .map_err(|e| Divergence::new(format!("prepare:{stage}"), format!("schedule invalid: {e:?}")))?;
            stages += 1;

            check_interp(
                &prep.sp.module,
                &golden,
                STEP_LIMIT_XFORM,
                &format!("interp-stage:{stage}"),
            )?;
            stages += 1;

            let sim = simulate(
                &prep.sp,
                &SimOptions {
                    max_cycles: SIM_MAX_CYCLES,
                    injection: None,
                    ..SimOptions::default()
                },
            );
            if sim.stop != golden.stop || !stream_eq(&sim.stream, &golden.stream) {
                return Err(Divergence::new(
                    format!("sim:{stage}"),
                    format!(
                        "simulator diverged from interpreter: stop {} vs {}, {} vs {} outputs",
                        fmt_stop(&sim.stop),
                        fmt_stop(&golden.stop),
                        sim.stream.len(),
                        golden.stream.len()
                    ),
                ));
            }
            stages += 1;
            digest.write_u64(sim.stats.cycles);
            digest.write_u64(sim.stats.dyn_insns);

            // Zero-fault invariant: ED binaries emit the same bits as
            // the NOED baseline on the same machine.
            match scheme {
                Scheme::Noed => noed_stream = Some(sim.stream.clone()),
                _ => {
                    let base = noed_stream.as_ref().expect("NOED runs first");
                    if !stream_eq(&sim.stream, base) {
                        return Err(Divergence::new(
                            format!("zerofault:{stage}"),
                            "ED output differs from NOED under zero faults",
                        ));
                    }
                    stages += 1;
                }
            }

            // Keep the balanced grid point's ED programs for probing.
            if (iw, delay) == (2, 2) && scheme.has_error_detection() {
                probe_targets.push((scheme, prep));
            }
        }
    }

    // Layer 6: targeted fault probes — only meaningful when no
    // library code is present (library code is deliberately
    // unprotected; see testgen docs).
    let mut probes = 0usize;
    if cfg.gen.lib_calls == 0 && hooks.probes > 0 {
        let mut rng = Rng::seed_from_u64(cfg.seed ^ PROBE_SALT);
        for (scheme, prep) in &probe_targets {
            probes += probe_scheme(cfg, *scheme, prep, hooks.probes, &mut rng)?;
        }
        stages += probe_targets.len();
    }

    // Layer 7: campaign-engine equivalence — the checkpointed
    // fault-injection engine (snapshots, fast-forward replay,
    // convergence pruning) must produce a tally byte-identical to the
    // reference engine's from the same seed, on every ED program kept
    // from the balanced grid point. This holds for library-carrying
    // cases too (equivalence is about the engines, not coverage), so
    // it is not gated like the probe layer.
    for (scheme, prep) in &probe_targets {
        let stage = format!("engines:{scheme}:iw2d2");
        let ccfg = casted_faults::CampaignConfig {
            trials: ENGINE_TRIALS,
            seed: cfg.seed ^ ENGINE_SALT,
            ..Default::default()
        };
        let reference = casted_faults::run_campaign_reference(&prep.sp, &ccfg);
        let checkpointed =
            casted_faults::run_campaign_engine(&prep.sp, &ccfg, casted_faults::Engine::Checkpointed);
        if reference.tally != checkpointed.tally {
            return Err(Divergence::new(
                stage,
                format!(
                    "campaign engines diverged over {ENGINE_TRIALS} trials: reference {:?} vs checkpointed {:?} (pruned {}, skipped {} insns)",
                    reference.tally.counts,
                    checkpointed.tally.counts,
                    checkpointed.engine.pruned_trials,
                    checkpointed.engine.skipped_insns,
                ),
            ));
        }
        let batched =
            casted_faults::run_campaign_engine(&prep.sp, &ccfg, casted_faults::Engine::Batched);
        if reference.tally != batched.tally {
            return Err(Divergence::new(
                stage,
                format!(
                    "campaign engines diverged over {ENGINE_TRIALS} trials: reference {:?} vs batched {:?} (lanes {}, diverged {})",
                    reference.tally.counts,
                    batched.tally.counts,
                    batched.engine.batch.lanes,
                    batched.engine.batch.divergences,
                ),
            ));
        }
        for c in reference.tally.counts {
            digest.write_u64(c as u64);
        }
        stages += 1;

        // Layer 8: incremental-campaign exactness — the compositional
        // section-cache campaign must recombine to the same tally
        // bytes as the engines, cold (all sections freshly injected)
        // AND warm (all sections recombined from the store written by
        // the cold run). Only tallies are compared: a store that fails
        // to persist (full disk, read-only tmp) degrades to a cold
        // rerun, which is still required to be exact, not a
        // divergence.
        let stage = format!("sections:{scheme}:iw2d2");
        let dir = std::env::temp_dir().join(format!(
            "casted-difftest-sections-{}-{:x}-{scheme}",
            std::process::id(),
            cfg.seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        match casted_faults::SectionStore::open(&dir) {
            Ok(store) => {
                for pass in ["cold", "warm"] {
                    let inc = casted_faults::run_campaign_incremental(&prep.sp, &ccfg, &store);
                    if reference.tally != inc.tally {
                        let _ = std::fs::remove_dir_all(&dir);
                        return Err(Divergence::new(
                            &stage,
                            format!(
                                "incremental ({pass}) recombination diverged over {ENGINE_TRIALS} trials: reference {:?} vs incremental {:?} (sections {:?}, case {})",
                                reference.tally.counts,
                                inc.tally.counts,
                                inc.engine.sections,
                                cfg.replay_line(None)
                            ),
                        ));
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
                stages += 1;
            }
            // No usable tmp dir on this host: skip the layer rather
            // than fail a case for an environment problem.
            Err(_) => {}
        }
    }

    // Layer 9: staged-compile exactness — the memoized stage-graph
    // back end (docs/PIPELINE.md) run cold (fresh artifact store,
    // every stage computed and saved) and warm (every stage replayed
    // from the store) must both be byte-identical to the monolithic
    // `prepare` at the balanced grid point, for every scheme. Like
    // layer 8, an unusable tmp dir skips the layer rather than failing
    // the case for an environment problem.
    for scheme in Scheme::ALL {
        let stage = format!("stages:{scheme}:iw2d2");
        let mc = MachineConfig::itanium2_like(2, 2);
        let legacy = prepare(&m, scheme, &mc)
            .map_err(|e| Divergence::new(&stage, format!("monolithic prepare failed: {e}")))?;
        let reference = staged_fingerprint(&legacy);
        let dir = std::env::temp_dir().join(format!(
            "casted-difftest-stages-{}-{:x}-{scheme}",
            std::process::id(),
            cfg.seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        if let Ok(store) = ArtifactStore::open(&dir) {
            let input = module_content_key(&m);
            let opts = PrepareOptions::default();
            for (pass, want_hits) in [("cold", 0u64), ("warm", 3u64)] {
                let mut stats = StageStats::default();
                let staged =
                    prepare_staged(&store, input, &m, scheme, &mc, &opts, &mut stats);
                let staged = match staged {
                    Ok(p) => p,
                    Err(e) => {
                        let _ = std::fs::remove_dir_all(&dir);
                        return Err(Divergence::new(
                            &stage,
                            format!("staged ({pass}) prepare failed: {e}"),
                        ));
                    }
                };
                if staged_fingerprint(&staged) != reference || stats.hit < want_hits {
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err(Divergence::new(
                        &stage,
                        format!(
                            "staged ({pass}) compile diverged from monolithic prepare \
                             ({} hits / {} misses, case {})",
                            stats.hit,
                            stats.miss,
                            cfg.replay_line(None)
                        ),
                    ));
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
            digest.write_u64(fnv1a_bytes(&reference.0));
            stages += 1;
        }
    }

    // Layer 10: recovery schemes (TMRED, RBED) at the balanced grid
    // point. Built through the production registry dispatch (`prepare`
    // — the sabotage hook targets the dup-compare pass and does not
    // apply here). Three checks per scheme:
    //
    //  * zero-fault equivalence — the scheduled program re-interprets
    //    and simulates to the golden stream (which layer 5 proved
    //    equal to the NOED baseline bit for bit);
    //  * engine agreement — all three campaign engines produce the
    //    same tally with `replay_detect` wired per the registry;
    //  * targeted probes (library-free cases only) — strikes at
    //    `Provenance::Original` defs must never classify as silent
    //    corruption: TMRED repairs them in place (`Corrected`; a TMR
    //    binary has no detect branches, so `Detected` is equally a
    //    divergence), RBED reports them at a digest boundary.
    for scheme in [Scheme::Tmred, Scheme::Rbed] {
        let stage = format!("recovery:{scheme}:iw2d2");
        let mc = MachineConfig::itanium2_like(2, 2);
        let prep = prepare(&m, scheme, &mc)
            .map_err(|e| Divergence::new(format!("prepare:{stage}"), e))?;
        prep.sp
            .validate()
            .map_err(|e| Divergence::new(format!("prepare:{stage}"), format!("schedule invalid: {e:?}")))?;
        check_interp(
            &prep.sp.module,
            &golden,
            STEP_LIMIT_XFORM,
            &format!("interp-stage:{stage}"),
        )?;
        let sim = simulate(
            &prep.sp,
            &SimOptions {
                max_cycles: SIM_MAX_CYCLES,
                injection: None,
                ..SimOptions::default()
            },
        );
        if sim.stop != golden.stop || !stream_eq(&sim.stream, &golden.stream) {
            return Err(Divergence::new(
                format!("zerofault:{stage}"),
                format!(
                    "fault-free {scheme} run diverged from golden: stop {} vs {}, {} vs {} outputs",
                    fmt_stop(&sim.stop),
                    fmt_stop(&golden.stop),
                    sim.stream.len(),
                    golden.stream.len()
                ),
            ));
        }
        if sim.stats.corrections != 0 {
            return Err(Divergence::new(
                format!("zerofault:{stage}"),
                format!("fault-free run voted {} corrections", sim.stats.corrections),
            ));
        }
        stages += 1;
        digest.write_u64(sim.stats.cycles);

        let ccfg = casted_faults::CampaignConfig {
            trials: ENGINE_TRIALS,
            seed: cfg.seed ^ ENGINE_SALT,
            replay_detect: scheme.replay_detect(),
            ..Default::default()
        };
        let reference = casted_faults::run_campaign_reference(&prep.sp, &ccfg);
        for engine in [casted_faults::Engine::Checkpointed, casted_faults::Engine::Batched] {
            let got = casted_faults::run_campaign_engine(&prep.sp, &ccfg, engine);
            if reference.tally != got.tally {
                return Err(Divergence::new(
                    format!("engines:{stage}"),
                    format!(
                        "campaign engines diverged over {ENGINE_TRIALS} trials: reference {:?} vs {engine:?} {:?}",
                        reference.tally.counts, got.tally.counts,
                    ),
                ));
            }
        }
        for c in reference.tally.counts {
            digest.write_u64(c as u64);
        }
        stages += 1;

        if cfg.gen.lib_calls == 0 && hooks.probes > 0 {
            probes += probe_recovery_scheme(cfg, scheme, &prep, hooks.probes)?;
            stages += 1;
        }
    }

    Ok(CaseReport {
        stages,
        probes,
        digest: digest.finish(),
    })
}

/// Layer-10 probe body: aim `count` single-bit strikes at
/// `Provenance::Original` defs of a recovery-scheme binary and require
/// that none escapes as silent corruption. For TMRED any `Detected`
/// outcome is also a divergence — the binary carries votes, not detect
/// branches, so a "detection" means a vote wrote a wrong majority that
/// something downstream then trapped on.
fn probe_recovery_scheme(
    cfg: &CaseConfig,
    scheme: Scheme,
    prep: &Prepared,
    count: usize,
) -> Result<usize, Divergence> {
    let stage = format!("probe:{scheme}:iw2d2");
    // Probe sites draw from a salted stream like the main probe layer,
    // further separated by scheme tag so TMRED and RBED (different
    // binaries) don't share site indices.
    let mut rng = Rng::seed_from_u64(cfg.seed ^ PROBE_SALT ^ (scheme as u64) << 32);
    let golden_sim = simulate(
        &prep.sp,
        &SimOptions {
            max_cycles: SIM_MAX_CYCLES,
            injection: None,
            ..SimOptions::default()
        },
    );
    let traced = simulate(
        &prep.sp,
        &SimOptions {
            max_cycles: SIM_MAX_CYCLES,
            trace_limit: golden_sim.stats.dyn_insns as usize,
            ..SimOptions::default()
        },
    );
    let f = prep.sp.module.entry_fn();
    let sites: Vec<u64> = traced
        .trace
        .iter()
        .enumerate()
        .filter_map(|(k, te)| {
            let insn = f.insn(te.insn);
            (insn.def().is_some() && insn.prov == Provenance::Original).then_some(k as u64 + 1)
        })
        .collect();
    if sites.is_empty() {
        return Err(Divergence::new(stage, "no Original-provenance defs to probe"));
    }
    let injections: Vec<Injection> = (0..count)
        .map(|_| {
            Injection::single(
                sites[rng.below(sites.len() as u64) as usize],
                rng.below(64) as u32,
                None,
            )
        })
        .collect();
    let max_cycles = golden_sim.stats.cycles.saturating_mul(10) + 10_000;
    let rbed = scheme
        .replay_detect()
        .then(|| casted_sim::rbed_plan(&prep.sp, golden_sim.stats.dyn_insns));
    for inj in &injections {
        let out = casted_faults::run_trial_with(
            &prep.sp,
            &golden_sim,
            *inj,
            max_cycles,
            rbed.as_ref(),
        );
        if out == Outcome::DataCorrupt
            || (scheme == Scheme::Tmred && out == Outcome::Detected)
        {
            return Err(Divergence::new(
                stage,
                format!(
                    "bit {} at dyn insn {} classified {out:?} under {scheme} (case {})",
                    inj.bit,
                    inj.at_dyn_insn,
                    cfg.replay_line(None)
                ),
            ));
        }
    }
    Ok(injections.len())
}

/// Canonical bytes of a `Prepared` — what "byte-identical" means for
/// the staged-compile layer (shared with the corpus's staged check).
pub(crate) fn staged_fingerprint(p: &Prepared) -> (Vec<u8>, usize, String, Vec<u8>) {
    (
        casted_ir::codec::encode_scheduled(&p.sp),
        p.spilled,
        format!("{:?}", p.ed_stats),
        encode_ra_artifact(&p.phys),
    )
}

fn fnv1a_bytes(b: &[u8]) -> u64 {
    casted_util::hash::fnv1a(b)
}

/// Aim `count` single-bit injections at `Provenance::Original`
/// instruction outputs of `prep` and require that none classifies as
/// silent data corruption: every protected-site fault must be masked,
/// detected, trapped or hung.
fn probe_scheme(
    cfg: &CaseConfig,
    scheme: Scheme,
    prep: &Prepared,
    count: usize,
    rng: &mut Rng,
) -> Result<usize, Divergence> {
    let stage = format!("probe:{scheme}:iw2d2");
    let golden_sim = simulate(
        &prep.sp,
        &SimOptions {
            max_cycles: SIM_MAX_CYCLES,
            injection: None,
            ..SimOptions::default()
        },
    );
    let traced = simulate(
        &prep.sp,
        &SimOptions {
            max_cycles: SIM_MAX_CYCLES,
            trace_limit: golden_sim.stats.dyn_insns as usize,
            ..SimOptions::default()
        },
    );
    let f = prep.sp.module.entry_fn();
    // Trace entry k is dynamic instruction k+1 (Injection.at_dyn_insn
    // is 1-based). Only defs of Original provenance are fair game:
    // those are the values the ED schemes promise to protect.
    let sites: Vec<u64> = traced
        .trace
        .iter()
        .enumerate()
        .filter_map(|(k, te)| {
            let insn = f.insn(te.insn);
            (insn.def().is_some() && insn.prov == Provenance::Original).then_some(k as u64 + 1)
        })
        .collect();
    if sites.is_empty() {
        return Err(Divergence::new(stage, "no Original-provenance defs to probe"));
    }
    let injections: Vec<Injection> = (0..count)
        .map(|_| {
            Injection::single(
                sites[rng.below(sites.len() as u64) as usize],
                rng.below(64) as u32,
                None,
            )
        })
        .collect();
    let max_cycles = golden_sim.stats.cycles.saturating_mul(10) + 10_000;
    let outcomes = casted_faults::run_trials(&prep.sp, &golden_sim, &injections, max_cycles);
    for (inj, out) in injections.iter().zip(&outcomes) {
        if *out == Outcome::DataCorrupt {
            return Err(Divergence::new(
                stage,
                format!(
                    "silent corruption: bit {} at dyn insn {} escaped detection (case {})",
                    inj.bit,
                    inj.at_dyn_insn,
                    cfg.replay_line(None)
                ),
            ));
        }
    }
    Ok(outcomes.len())
}

/// Re-run `sim` result comparison helper exposed for the corpus
/// runner: require simulator/interpreter agreement for an arbitrary
/// prepared program.
pub(crate) fn check_sim_against(
    sp_result: &SimResult,
    golden: &ExecResult,
    stage: &str,
) -> Result<(), Divergence> {
    if sp_result.stop != golden.stop || !stream_eq(&sp_result.stream, &golden.stream) {
        return Err(Divergence::new(
            stage,
            format!(
                "simulator diverged: stop {} vs {}",
                fmt_stop(&sp_result.stop),
                fmt_stop(&golden.stop)
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::testgen::GenOptions;

    fn small_case(seed: u64) -> CaseConfig {
        CaseConfig {
            seed,
            gen: GenOptions {
                body_ops: 12,
                iterations: 3,
                globals: 1,
                with_float: false,
                diamonds: 1,
                inner_loops: 1,
                lib_calls: 0,
            },
        }
    }

    #[test]
    fn clean_pipeline_has_no_divergence() {
        let rep = run_case(&small_case(1)).expect("clean case passes all oracles");
        assert!(rep.stages > 20, "expected the full stage stack, got {}", rep.stages);
        assert!(rep.probes > 0, "library-free case must be fault-probed");
    }

    #[test]
    fn case_reports_are_deterministic() {
        let a = run_case(&small_case(7)).unwrap();
        let b = run_case(&small_case(7)).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.stages, b.stages);
        assert_eq!(a.probes, b.probes);
    }

    #[test]
    fn library_cases_skip_probing() {
        let mut cfg = small_case(3);
        cfg.gen.lib_calls = 1;
        let rep = run_case(&cfg).unwrap();
        assert_eq!(rep.probes, 0);
    }
}
