//! Deliberately broken "passes" for oracle self-tests.
//!
//! A differential harness is only trustworthy if it demonstrably
//! *fails* when the compiler is wrong. These mutators model the three
//! classic ways an optimization pass breaks error-detected code, each
//! caught by a different oracle layer (the `catches_*` tests in
//! `oracle_selftest.rs` prove it):
//!
//! * [`drop_first_out`] — an unsound DCE that deletes a live
//!   output-class instruction: caught *semantically* (`ed:*` interp
//!   stage, the output stream diverges from golden).
//! * [`drop_all_checks`] — a DCE that treats every check as dead
//!   (checks have no data uses, so a naive liveness pass deletes them
//!   all): invisible to the semantic diff under zero faults, caught by
//!   the `ed-structure:*` presence oracle.
//! * [`drop_one_check`] — the subtle variant: a single check deleted.
//!   Structure and semantics both still pass; only the targeted
//!   fault-probe layer (`probe:*`) can notice, by finding an injection
//!   at a protected site that now silently corrupts the output.

use casted_ir::insn::Provenance;
use casted_ir::{Module, Opcode};

/// Delete the first `out`/`fout` of the entry function — an unsound
/// dead-code elimination erasing an observable effect (every
/// generated module outputs its live chains, so this always shortens
/// the stream).
pub fn drop_first_out(m: &mut Module) {
    let f = m.entry_fn_mut();
    for blk in f.blocks.iter_mut() {
        if let Some(pos) = blk
            .insns
            .iter()
            .position(|&id| matches!(f.insns[id.index()].op, Opcode::Out | Opcode::FOut))
        {
            blk.insns.remove(pos);
            return;
        }
    }
}

/// Delete every check instruction (everything the check-insertion
/// step emitted: compare/branch pairs and fused `chk.ne`).
pub fn drop_all_checks(m: &mut Module) {
    let f = m.entry_fn_mut();
    for blk in f.blocks.iter_mut() {
        blk.insns.retain(|&id| {
            !matches!(
                f.insns[id.index()].prov,
                Provenance::CheckCmp | Provenance::CheckBr
            )
        });
    }
}

/// Delete only the *last* detection branch (or fused check) of the
/// entry function — the check guarding the exit block's outputs, in
/// generated modules.
pub fn drop_one_check(m: &mut Module) {
    let f = m.entry_fn_mut();
    for blk in f.blocks.iter_mut().rev() {
        if let Some(pos) = blk.insns.iter().rposition(|&id| {
            matches!(f.insns[id.index()].op, Opcode::DetectBr | Opcode::ChkNe)
        }) {
            blk.insns.remove(pos);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::testgen::{random_module, GenOptions};
    use casted_passes::errordetect::{error_detection_with, EdOptions};

    fn ed_module() -> Module {
        let mut m = random_module(5, &GenOptions { lib_calls: 0, ..GenOptions::default() });
        error_detection_with(&mut m, &EdOptions::default());
        m
    }

    fn count(m: &Module, pred: impl Fn(&casted_ir::insn::Insn) -> bool) -> usize {
        let f = m.entry_fn();
        f.blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&id| pred(f.insn(id)))
            .count()
    }

    #[test]
    fn mutators_remove_what_they_claim() {
        let base = ed_module();
        let outs = count(&base, |i| matches!(i.op, Opcode::Out | Opcode::FOut));
        let checks = count(&base, |i| {
            matches!(i.prov, Provenance::CheckCmp | Provenance::CheckBr)
        });
        assert!(outs > 0 && checks > 2);

        let mut a = base.clone();
        drop_first_out(&mut a);
        assert_eq!(count(&a, |i| matches!(i.op, Opcode::Out | Opcode::FOut)), outs - 1);

        let mut b = base.clone();
        drop_all_checks(&mut b);
        assert_eq!(
            count(&b, |i| matches!(i.prov, Provenance::CheckCmp | Provenance::CheckBr)),
            0
        );

        let mut c = base.clone();
        drop_one_check(&mut c);
        let brs = count(&base, |i| matches!(i.op, Opcode::DetectBr | Opcode::ChkNe));
        assert_eq!(
            count(&c, |i| matches!(i.op, Opcode::DetectBr | Opcode::ChkNe)),
            brs - 1
        );
    }
}
