//! The bounded fuzz-suite runner behind `difftest --cases N --seed S`
//! and the CI smoke job.
//!
//! Per-case seeds are drawn from a [`casted_util::Rng`] seeded with
//! the master seed, and the generator shape rotates through four
//! profiles (arithmetic-with-probes, branchy, nested-loops,
//! library-carrying), so a small suite still covers every structural
//! feature and both the probed and unprobed paths.
//!
//! The log is **deterministic**: no timestamps, no timing, no host
//! state — two runs with the same master seed produce byte-identical
//! logs (a CI-enforced invariant, see `scripts/ci.sh`).

use casted_ir::testgen::GenOptions;
use casted_util::Rng;

use crate::oracle::{run_case_with, Divergence, Hooks};
use crate::CaseConfig;

/// Suite parameters (mirrors the `difftest` binary's flags).
#[derive(Clone, Copy, Debug)]
pub struct SuiteOptions {
    /// Number of generated cases.
    pub cases: usize,
    /// Master seed; per-case seeds derive from it.
    pub master_seed: u64,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            cases: 64,
            master_seed: 0xCA57ED,
        }
    }
}

/// Suite outcome: the deterministic log plus structured failures.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Cases executed.
    pub cases: usize,
    /// Failing cases with their divergences (empty on a green run).
    pub failures: Vec<(CaseConfig, Divergence)>,
    /// Total oracle stages passed across all cases.
    pub stages: usize,
    /// Total fault probes executed.
    pub probes: usize,
    /// The full deterministic log, one block per case.
    pub log: String,
}

impl SuiteReport {
    /// Green?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The four rotating generator profiles (`case % 4`).
pub fn profile(case: usize) -> GenOptions {
    match case % 4 {
        // Arithmetic + memory soup, float on, fully probed.
        0 => GenOptions {
            body_ops: 24,
            iterations: 5,
            globals: 2,
            with_float: true,
            diamonds: 1,
            inner_loops: 0,
            lib_calls: 0,
        },
        // Branch-heavy: diamonds dominate (if-conversion & BUG food).
        1 => GenOptions {
            body_ops: 18,
            iterations: 4,
            globals: 1,
            with_float: false,
            diamonds: 3,
            inner_loops: 0,
            lib_calls: 0,
        },
        // Nested counted loops (decode-kernel shape).
        2 => GenOptions {
            body_ops: 16,
            iterations: 3,
            globals: 2,
            with_float: false,
            diamonds: 0,
            inner_loops: 2,
            lib_calls: 0,
        },
        // Library-carrying: unprotected runs present, probes off.
        _ => GenOptions {
            body_ops: 20,
            iterations: 4,
            globals: 2,
            with_float: true,
            diamonds: 1,
            inner_loops: 1,
            lib_calls: 2,
        },
    }
}

/// Run the suite with production hooks.
pub fn run_suite(opts: &SuiteOptions) -> SuiteReport {
    run_suite_with(opts, &Hooks::default())
}

/// Run the suite with explicit hooks (self-tests sabotage the ED pass
/// through this to prove failures surface with replay lines).
pub fn run_suite_with(opts: &SuiteOptions, hooks: &Hooks) -> SuiteReport {
    let mut rng = Rng::seed_from_u64(opts.master_seed);
    let mut log = String::new();
    let mut failures = Vec::new();
    let mut stages = 0usize;
    let mut probes = 0usize;

    log.push_str(&format!(
        "difftest suite master={} cases={}\n",
        casted_util::prop::seed_token(opts.master_seed),
        opts.cases
    ));
    for case in 0..opts.cases {
        let cfg = CaseConfig {
            seed: rng.next_u64(),
            gen: profile(case),
        };
        casted_obs::inc("difftest.cases");
        match run_case_with(&cfg, hooks) {
            Ok(rep) => {
                stages += rep.stages;
                probes += rep.probes;
                log.push_str(&format!(
                    "case {case:04} {} ok stages={} probes={} digest={:#018x}\n",
                    cfg.replay_line(None),
                    rep.stages,
                    rep.probes,
                    rep.digest
                ));
            }
            Err(div) => {
                casted_obs::inc("difftest.failures");
                log.push_str(&format!(
                    "case {case:04} {} FAIL stage={}\n  {}\nREPLAY {}\n",
                    cfg.replay_line(None),
                    div.stage,
                    div.detail,
                    cfg.replay_line(Some(&div.stage))
                ));
                failures.push((cfg, div));
            }
        }
    }
    log.push_str(&format!(
        "suite done cases={} failures={} stages={} probes={}\n",
        opts.cases,
        failures.len(),
        stages,
        probes
    ));
    SuiteReport {
        cases: opts.cases,
        failures,
        stages,
        probes,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabotage;

    fn small(cases: usize, seed: u64) -> SuiteOptions {
        SuiteOptions {
            cases,
            master_seed: seed,
        }
    }

    #[test]
    fn suite_log_is_deterministic() {
        let h = Hooks { probes: 2, ..Hooks::default() };
        let a = run_suite_with(&small(4, 99), &h);
        let b = run_suite_with(&small(4, 99), &h);
        assert!(a.ok(), "clean suite must be green:\n{}", a.log);
        assert_eq!(a.log, b.log, "same master seed must yield a byte-identical log");
        assert!(a.log.lines().count() >= 6);
    }

    #[test]
    fn different_master_seeds_generate_different_cases() {
        let h = Hooks { probes: 0, ..Hooks::default() };
        let a = run_suite_with(&small(2, 1), &h);
        let b = run_suite_with(&small(2, 2), &h);
        assert_ne!(a.log, b.log);
    }

    #[test]
    fn sabotaged_suite_reports_replayable_failures() {
        let h = Hooks {
            post_ed: Some(sabotage::drop_first_out),
            probes: 0,
        };
        let rep = run_suite_with(&small(2, 7), &h);
        assert!(!rep.ok());
        let (cfg, div) = &rep.failures[0];
        // The log carries a parseable REPLAY line that names the
        // failing case exactly.
        let replay = rep
            .log
            .lines()
            .find(|l| l.starts_with("REPLAY "))
            .expect("failure must print a REPLAY line");
        let (parsed, stage) = CaseConfig::parse(replay).unwrap();
        assert_eq!(&parsed, cfg);
        assert_eq!(stage.as_deref(), Some(div.stage.as_str()));
        // And replaying it (same hooks) reproduces the divergence.
        let again = run_case_with(&parsed, &h).unwrap_err();
        assert_eq!(again.stage, div.stage);
    }
}
