//! The fixed (non-random) differential corpus: the seven workload
//! kernels plus a handful of MiniC snippets chosen to stress front-end
//! corners, each compiled, prepared under every scheme, and
//! cross-checked interpreter-vs-simulator at the balanced machine
//! point.
//!
//! The random generator covers breadth; the corpus pins the *real*
//! programs the paper's figures are built from, end to end through the
//! front end (generated modules never exercise the parser, inlining,
//! or `lib fn` handling).

use casted_ir::interp::{self, StopReason};
use casted_ir::MachineConfig;
use casted_passes::pipeline::{prepare, Scheme};
use casted_sim::{simulate, SimOptions};

use crate::oracle::{check_sim_against, Divergence};

/// Interpreter budget for workload kernels.
const CORPUS_STEP_LIMIT: u64 = 200_000_000;
const CORPUS_MAX_CYCLES: u64 = 500_000_000;

/// Monte-Carlo trials per corpus module in the campaign-engine
/// equivalence check. Kept small: corpus modules include the real
/// workload kernels (hundreds of thousands of dynamic instructions),
/// and the reference engine re-simulates every trial from cycle 0.
const ENGINE_TRIALS: usize = 10;

/// Campaign seed for the corpus engine-equivalence check, salted per
/// module by name hash so different modules draw different streams.
const ENGINE_SEED: u64 = 0xC0_0B5E_D0C7_0A7E;

/// Hand-written MiniC snippets covering front-end corners the
/// workloads leave thin: early `return` out of nested control flow,
/// `while` with a compound condition update, and a library function
/// called from library code.
const SNIPPETS: [(&str, &str); 3] = [
    (
        "early_return",
        r#"
fn pick(a: int, b: int) -> int {
    if a > b {
        if a > 100 { return 100; }
        return a;
    }
    return b;
}
fn main() -> int {
    var i: int = 0;
    var acc: int = 0;
    while i < 20 {
        acc = acc + pick(i * 7 % 13, i);
        i = i + 1;
    }
    out(acc);
    return 0;
}
"#,
    ),
    (
        "while_compound",
        r#"
fn main() -> int {
    var x: int = 1;
    var n: int = 0;
    while x < 10000 {
        x = x * 3 - n;
        n = n + 2;
        out(x);
    }
    out(n);
    return 0;
}
"#,
    ),
    (
        "lib_in_lib",
        r#"
lib fn step(x: int) -> int {
    return (x * 5 + 3) & 255;
}
lib fn walk(x: int) -> int {
    return step(step(x));
}
fn main() -> int {
    var i: int = 0;
    var h: int = 17;
    while i < 16 {
        h = walk(h) + i;
        i = i + 1;
    }
    out(h);
    return 0;
}
"#,
    ),
];

/// Cross-check one module under every scheme at issue-width 2, delay 2.
fn check_module(name: &str, m: &casted_ir::Module) -> Result<usize, Divergence> {
    let golden = interp::run(m, CORPUS_STEP_LIMIT)
        .map_err(|e| Divergence::new_corpus(name, "interp", e))?;
    if !matches!(golden.stop, StopReason::Halt(_)) {
        return Err(Divergence::new_corpus(
            name,
            "interp",
            format!("did not halt: {:?}", golden.stop),
        ));
    }
    let mc = MachineConfig::itanium2_like(2, 2);
    let mut checks = 1usize;
    for scheme in Scheme::ALL {
        let stage = format!("{scheme}:iw2d2");
        let prep =
            prepare(m, scheme, &mc).map_err(|e| Divergence::new_corpus(name, &stage, e))?;
        prep.sp
            .validate()
            .map_err(|e| Divergence::new_corpus(name, &stage, format!("{e:?}")))?;
        let r = interp::run(&prep.sp.module, CORPUS_STEP_LIMIT)
            .map_err(|e| Divergence::new_corpus(name, &stage, e))?;
        if r.stop != golden.stop || r.stream != golden.stream {
            return Err(Divergence::new_corpus(
                name,
                &stage,
                "scheduled module diverged from golden interp",
            ));
        }
        let sim = simulate(
            &prep.sp,
            &SimOptions {
                max_cycles: CORPUS_MAX_CYCLES,
                injection: None,
                ..SimOptions::default()
            },
        );
        check_sim_against(&sim, &golden, &format!("corpus:{name}:{stage}"))?;
        checks += 2;

        // Campaign-engine equivalence on the real kernels: the
        // checkpointed engine's tally must be byte-identical to the
        // reference engine's from the same seed. Checked at the
        // corrupt-heavy (NOED) and detect-heavy (CASTED) corners only
        // — the reference engine pays a full re-simulation per trial,
        // and the generated-case oracle already sweeps all ED schemes.
        if matches!(scheme, Scheme::Noed | Scheme::Casted) {
            let ccfg = casted_faults::CampaignConfig {
                trials: ENGINE_TRIALS,
                seed: ENGINE_SEED ^ casted_util::hash::fnv1a(name.as_bytes()),
                ..Default::default()
            };
            let reference = casted_faults::run_campaign_reference(&prep.sp, &ccfg);
            for engine in [
                casted_faults::Engine::Checkpointed,
                casted_faults::Engine::Batched,
            ] {
                let other = casted_faults::run_campaign_engine(&prep.sp, &ccfg, engine);
                if reference.tally != other.tally {
                    return Err(Divergence::new_corpus(
                        name,
                        &format!("engines:{stage}"),
                        format!(
                            "campaign engines diverged: reference {:?} vs {} {:?}",
                            reference.tally.counts,
                            engine.name(),
                            other.tally.counts
                        ),
                    ));
                }
            }
            checks += 1;

            // Incremental-sections equivalence on the same seed: the
            // recombined tally — cold, then warm from the on-disk
            // store — must match the reference engine byte-for-byte
            // (docs/INCREMENTAL.md, oracle layer 8 for the corpus).
            let dir = std::env::temp_dir().join(format!(
                "casted-corpus-sections-{}-{name}-{scheme}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            if let Ok(store) = casted_faults::SectionStore::open(&dir) {
                for pass in ["cold", "warm"] {
                    let inc = casted_faults::run_campaign_incremental(&prep.sp, &ccfg, &store);
                    if inc.tally != reference.tally {
                        let detail = format!(
                            "incremental ({pass}) diverged: reference {:?} vs {:?} (sections {:?})",
                            reference.tally.counts, inc.tally.counts, inc.engine.sections
                        );
                        let _ = std::fs::remove_dir_all(&dir);
                        return Err(Divergence::new_corpus(
                            name,
                            &format!("sections:{stage}"),
                            detail,
                        ));
                    }
                }
                checks += 1;
            }
            let _ = std::fs::remove_dir_all(&dir);

            // Staged-compile exactness on the real kernels (oracle
            // layer 9 for the corpus): the memoized stage-graph back
            // end, cold then warm from the on-disk artifact store,
            // must be byte-identical to the monolithic `prepare`
            // above (docs/PIPELINE.md).
            let dir = std::env::temp_dir().join(format!(
                "casted-corpus-stages-{}-{name}-{scheme}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            if let Ok(store) = casted_util::store::ArtifactStore::open(&dir) {
                let reference = crate::oracle::staged_fingerprint(&prep);
                let input = casted_passes::stages::module_content_key(m);
                let opts = casted_passes::pipeline::PrepareOptions::default();
                for pass in ["cold", "warm"] {
                    let mut stats = casted_passes::stages::StageStats::default();
                    let staged = casted_passes::stages::prepare_staged(
                        &store, input, m, scheme, &mc, &opts, &mut stats,
                    )
                    .map_err(|e| {
                        Divergence::new_corpus(name, &format!("stages:{stage}"), e)
                    })?;
                    if crate::oracle::staged_fingerprint(&staged) != reference {
                        let _ = std::fs::remove_dir_all(&dir);
                        return Err(Divergence::new_corpus(
                            name,
                            &format!("stages:{stage}"),
                            format!(
                                "staged ({pass}) compile diverged from monolithic prepare \
                                 ({} hits / {} misses)",
                                stats.hit, stats.miss
                            ),
                        ));
                    }
                }
                checks += 1;
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    Ok(checks)
}

impl Divergence {
    fn new_corpus(name: &str, stage: &str, detail: impl std::fmt::Display) -> Self {
        Divergence {
            stage: format!("corpus:{name}:{stage}"),
            detail: detail.to_string(),
        }
    }
}

/// Run the fixed corpus (7 workloads + snippets). Returns the number
/// of oracle checks performed.
pub fn run_corpus() -> Result<usize, Divergence> {
    let mut checks = 0usize;
    for w in casted_workloads::all() {
        let m = w
            .compile()
            .map_err(|d| Divergence::new_corpus(w.name, "frontend", format!("{d:?}")))?;
        checks += check_module(w.name, &m)?;
    }
    for (name, src) in SNIPPETS {
        let m = casted_frontend::compile(name, src)
            .map_err(|d| Divergence::new_corpus(name, "frontend", format!("{d:?}")))?;
        checks += check_module(name, &m)?;
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippets_compile_and_cross_check() {
        for (name, src) in SNIPPETS {
            let m = casted_frontend::compile(name, src).expect("snippet compiles");
            let n = check_module(name, &m).unwrap_or_else(|d| {
                panic!("{name}: {} — {}", d.stage, d.detail);
            });
            assert!(n >= 9);
        }
    }
}
