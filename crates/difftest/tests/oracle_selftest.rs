//! Oracle self-tests: prove the differential harness actually
//! *catches* broken passes (the acceptance bar for trusting a green
//! suite), with each sabotage flavour surfacing at the intended layer
//! and every failure carrying a replayable seed.

use casted_difftest::{run_case_with, sabotage, CaseConfig, Hooks};
use casted_ir::testgen::GenOptions;

fn probe_gen(seed: u64) -> CaseConfig {
    CaseConfig {
        seed,
        gen: GenOptions {
            body_ops: 14,
            iterations: 3,
            globals: 1,
            with_float: false,
            diamonds: 1,
            inner_loops: 0,
            lib_calls: 0,
        },
    }
}

#[test]
fn semantic_sabotage_is_caught_by_the_interp_oracle() {
    let hooks = Hooks {
        post_ed: Some(sabotage::drop_first_out),
        probes: 0,
    };
    let div = run_case_with(&probe_gen(1), &hooks)
        .expect_err("deleting a live out must diverge");
    assert!(
        div.stage.starts_with("ed:"),
        "expected the ED semantic layer to catch it first, got {}",
        div.stage
    );
    // The replay line for this failure parses back to the same case.
    let line = probe_gen(1).replay_line(Some(&div.stage));
    let (parsed, stage) = CaseConfig::parse(&line).unwrap();
    assert_eq!(parsed, probe_gen(1));
    assert_eq!(stage.as_deref(), Some(div.stage.as_str()));
}

#[test]
fn check_deleting_dce_is_caught_by_the_structure_oracle() {
    let hooks = Hooks {
        post_ed: Some(sabotage::drop_all_checks),
        probes: 0,
    };
    let div = run_case_with(&probe_gen(2), &hooks)
        .expect_err("a check-free 'protected' module must be rejected");
    assert!(
        div.stage.starts_with("ed-structure:"),
        "zero faults can't expose missing checks semantically; the \
         structure layer must catch it, got {}",
        div.stage
    );
}

/// The acceptance-criteria scenario: a DCE that deletes *one* check.
/// Semantics under zero faults are untouched and plenty of checks
/// remain, so only the targeted fault-probe layer can notice — an
/// injection at a protected site that now silently corrupts output.
/// One fixed seed is not guaranteed to draw such an injection, so the
/// test scans a small seed range and requires at least one catch
/// (deterministic: generator and probe draws are both seeded).
#[test]
fn single_deleted_check_is_caught_by_the_fault_probe_oracle() {
    let hooks = Hooks {
        post_ed: Some(sabotage::drop_one_check),
        probes: 24,
    };
    let mut caught = None;
    for seed in 0..24u64 {
        match run_case_with(&probe_gen(seed), &hooks) {
            Ok(_) => continue,
            Err(div) => {
                assert!(
                    div.stage.starts_with("probe:"),
                    "seed {seed}: only the probe layer should see a single \
                     deleted check, got {} ({})",
                    div.stage,
                    div.detail
                );
                caught = Some((seed, div));
                break;
            }
        }
    }
    let (seed, div) = caught.expect(
        "no seed in 0..24 exposed the deleted check — probe oracle has no teeth",
    );
    // The divergence is replayable: the same case with the same hooks
    // fails at the same stage.
    let again = run_case_with(&probe_gen(seed), &hooks).unwrap_err();
    assert_eq!(again.stage, div.stage);
    assert_eq!(again.detail, div.detail);
}

#[test]
fn clean_passes_survive_all_layers_including_probes() {
    let hooks = Hooks {
        post_ed: None,
        probes: 24,
    };
    for seed in 0..6u64 {
        let rep = run_case_with(&probe_gen(seed), &hooks)
            .unwrap_or_else(|d| panic!("seed {seed}: {} — {}", d.stage, d.detail));
        assert!(rep.probes >= 24, "probes must actually run");
    }
}
