//! Benchmarks for cluster assignment + list scheduling under the
//! three placement policies (fixed single-cluster, fixed by-stream,
//! adaptive BUG). Runs on the in-repo wall-clock runner
//! (`casted_util::bench`).

use casted_util::bench::{Bench, BenchId};
use casted_util::{bench_group, bench_main};

fn bench_placements(c: &mut Bench) {
    let mut g = c.benchmark_group("schedule_function");
    g.sample_size(10);
    let mut module = casted_workloads::by_name("h263enc").unwrap().compile().unwrap();
    casted_passes::error_detection(&mut module);
    let cfg = casted::ir::MachineConfig::itanium2_like(2, 2);
    use casted_passes::Placement;
    let cases = [
        ("all_on_main", Placement::AllOn(casted::ir::Cluster::MAIN)),
        ("by_stream", Placement::ByStream),
        ("adaptive_bug", Placement::Adaptive),
    ];
    for (name, p) in cases {
        g.bench_with_input(BenchId::from_parameter(name), &p, |b, &p| {
            b.iter(|| casted_passes::schedule_function(&module, &cfg, p));
        });
    }
    g.finish();
}

fn bench_dfg(c: &mut Bench) {
    let mut module = casted_workloads::by_name("cjpeg").unwrap().compile().unwrap();
    casted_passes::error_detection(&mut module);
    let func = module.entry_fn();
    let lat = casted::ir::LatencyConfig::default();
    // The largest block dominates DFG construction cost.
    let big = func
        .iter_blocks()
        .max_by_key(|(_, b)| b.insns.len())
        .map(|(id, _)| id)
        .unwrap();
    c.bench_function("block_dfg_build", |b| {
        b.iter(|| casted::ir::dfg::BlockDfg::build(func, big, &lat))
    });
}

bench_group!(benches, bench_placements, bench_dfg);
bench_main!(benches);
