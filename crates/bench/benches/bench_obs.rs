//! Observability overhead: the acceptance criterion for `casted-obs`
//! is that the *disabled* fast path changes `quick()` perf-sweep
//! wall-time by under 2%. Run this target and compare the two
//! `quick_grid_perf_sweep` medians:
//!
//! ```text
//! cargo bench --offline --bench bench_obs
//! ```
//!
//! The `primitives` group shows why: a disabled counter add is one
//! relaxed atomic load, and the workspace's instrumentation only
//! flushes in bulk (once per simulated run / prepared program), so
//! even the enabled path is far off the simulator's hot loop.

use casted_util::bench::{black_box, Bench};
use casted_util::{bench_group, bench_main};

fn quick_sweep(w: &casted_workloads::Workload) -> usize {
    let spec = casted::experiments::GridSpec::quick();
    casted::experiments::perf_sweep(std::slice::from_ref(w), &spec)
        .points
        .len()
}

fn bench_disabled_vs_enabled(c: &mut Bench) {
    let mut g = c.benchmark_group("quick_grid_perf_sweep");
    g.sample_size(10);
    let w = casted_workloads::by_name("mpeg2dec").unwrap();
    g.bench_function("metrics_disabled", |b| {
        casted::obs::set_enabled(false);
        b.iter(|| quick_sweep(&w));
    });
    g.bench_function("metrics_enabled", |b| {
        casted::obs::set_enabled(true);
        casted::obs::reset();
        b.iter(|| quick_sweep(&w));
        casted::obs::set_enabled(false);
    });
    g.finish();
}

fn bench_primitives(c: &mut Bench) {
    let mut g = c.benchmark_group("primitives");
    g.sample_size(20);
    g.bench_function("counter_add_disabled_1k", |b| {
        casted::obs::set_enabled(false);
        b.iter(|| {
            for i in 0..1000u64 {
                casted::obs::add("bench.obs.counter", black_box(i));
            }
        });
    });
    g.bench_function("counter_add_enabled_1k", |b| {
        casted::obs::set_enabled(true);
        b.iter(|| {
            for i in 0..1000u64 {
                casted::obs::add("bench.obs.counter", black_box(i));
            }
        });
        casted::obs::set_enabled(false);
        casted::obs::reset();
    });
    g.bench_function("hist_observe_enabled_1k", |b| {
        casted::obs::set_enabled(true);
        b.iter(|| {
            for i in 0..1000u64 {
                casted::obs::observe_ns("bench.obs.hist_ns", black_box(i * 977));
            }
        });
        casted::obs::set_enabled(false);
        casted::obs::reset();
    });
    g.finish();
}

bench_group!(benches, bench_disabled_vs_enabled, bench_primitives);
bench_main!(benches);
