//! Campaign throughput: the checkpointed and batched fault-injection
//! engines against the reference engine, measured in **trials/sec**
//! over the quick coverage grid (three representative benchmarks ×
//! all six schemes at issue 2, delay 2 — the same cells `fig9
//! --quick` runs). A per-scheme breakdown (batched engine) records
//! what each protection level costs in campaign throughput: TMRED
//! trials retire ~3x the instructions, RBED trials add the digest
//! side computation.
//!
//! All engines consume the identical frozen injection stream and, as
//! a precondition of the measurement, are cross-checked here to
//! produce byte-identical tallies. The batched engine is additionally
//! swept over lane widths (8–300 lanes per batch) to expose how the
//! structure-of-arrays stepping scales with batch width. Results are printed in the
//! in-repo runner's format and written to `BENCH_faults.json` at the
//! workspace root (median/MAD over the timed samples, plus each
//! engine's speedup over reference) so the perf trajectory has a
//! recorded datapoint; see `docs/PERFORMANCE.md` for the field
//! reference. Samples are interleaved round-robin across all engines
//! and widths so slow host drift cannot bias one row's median.
//! `CASTED_BENCH_QUICK=1` drops to a single sample for smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use casted_faults::{
    run_campaign_engine, run_campaign_engine_lanes, run_campaign_incremental, CampaignConfig,
    Engine, SectionStore, DEFAULT_LANE_WIDTH,
};
use casted_ir::vliw::ScheduledProgram;
use casted_ir::MachineConfig;
use casted_util::bench::median_mad;

const TRIALS: usize = 300;
const SAMPLES: usize = 5;
const LANE_SWEEP: &[usize] = &[8, 16, 64, 150, 300];

struct Cell {
    label: String,
    scheme: casted::Scheme,
    sp: ScheduledProgram,
}

/// The fig9 --quick cells; with `edit`, cjpeg's halt immediate is
/// flipped first — the one-section edit of the incremental-rerun
/// scenario (only cjpeg's epilogue sections change; everything
/// upstream of them, and the two untouched benchmarks entirely,
/// stays cached).
fn quick_grid_cells(edit: bool) -> Vec<Cell> {
    let config = MachineConfig::itanium2_like(2, 2);
    let mut cells = Vec::new();
    for name in ["cjpeg", "h263enc", "181.mcf"] {
        let mut module = casted_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
            .compile()
            .expect("compile failed");
        if edit && name == "cjpeg" {
            let f = module.entry_fn_mut();
            let h = f
                .insns
                .iter()
                .position(|i| i.op == casted_ir::Opcode::Halt)
                .expect("entry fn halts");
            f.insns[h].imm = 7;
        }
        for scheme in casted::Scheme::FULL {
            let prep = casted_passes::prepare(&module, scheme, &config).expect("prepare failed");
            cells.push(Cell {
                label: format!("{name}/{}", scheme.name()),
                scheme,
                sp: prep.sp,
            });
        }
    }
    cells
}

/// Per-cell campaign config: RBED cells need the replay-digest
/// detector armed, exactly as `fig9` arms it per scheme.
fn cell_campaign(base: &CampaignConfig, cell: &Cell) -> CampaignConfig {
    CampaignConfig {
        replay_detect: cell.scheme.replay_detect(),
        ..*base
    }
}

/// Time one full pass over the grid with `engine`; returns trials/sec.
fn sample(cells: &[Cell], campaign: &CampaignConfig, engine: Engine, lanes: usize) -> f64 {
    let t0 = Instant::now();
    for cell in cells {
        casted_util::bench::black_box(run_campaign_engine_lanes(
            &cell.sp,
            &cell_campaign(campaign, cell),
            engine,
            lanes,
        ));
    }
    let secs = t0.elapsed().as_secs_f64();
    (cells.len() * campaign.trials) as f64 / secs
}

/// Measure every configuration with samples interleaved round-robin
/// (one sample of each per round) rather than back-to-back: the host's
/// throughput drifts on a scale of minutes, and consecutive sampling
/// would fold that drift into whichever engine happened to run during
/// a slow stretch. Interleaving lands the drift evenly, so the
/// *ratios* between rows compare like with like.
fn measure_all(
    cells: &[Cell],
    campaign: &CampaignConfig,
    configs: &[(Engine, usize)],
    samples: usize,
) -> Vec<(f64, f64)> {
    let mut rates: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); configs.len()];
    for _ in 0..samples {
        for (i, &(engine, lanes)) in configs.iter().enumerate() {
            rates[i].push(sample(cells, campaign, engine, lanes));
        }
    }
    rates.iter_mut().map(|r| median_mad(r)).collect()
}

fn print_row(label: &str, med: f64, mad: f64, samples: usize) {
    println!(
        "bench {:<50} median {:>10.0} trials/s  mad {:>9.0}  (n={samples})",
        label, med, mad
    );
}

fn main() {
    let quick = std::env::var("CASTED_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let samples = if quick { 1 } else { SAMPLES };
    let cells = quick_grid_cells(false);
    let campaign = CampaignConfig {
        trials: TRIALS,
        ..Default::default()
    };

    // Precondition: same seed, same trial count, byte-identical
    // tallies — otherwise trials/sec compares different work.
    for cell in &cells {
        let ccfg = cell_campaign(&campaign, cell);
        let r = run_campaign_engine(&cell.sp, &ccfg, Engine::Reference);
        for engine in [Engine::Checkpointed, Engine::Batched] {
            let other = run_campaign_engine(&cell.sp, &ccfg, engine);
            assert_eq!(
                r.tally,
                other.tally,
                "{}: {} disagrees with reference",
                cell.label,
                engine.name()
            );
        }
    }

    let mut configs: Vec<(Engine, usize)> = vec![
        (Engine::Reference, 0),
        (Engine::Checkpointed, 0),
        (Engine::Batched, DEFAULT_LANE_WIDTH),
    ];
    configs.extend(LANE_SWEEP.iter().map(|&w| (Engine::Batched, w)));
    let measured = measure_all(&cells, &campaign, &configs, samples);

    let (ref_med, ref_mad) = measured[0];
    let (ckpt_med, ckpt_mad) = measured[1];
    let (batch_med, batch_mad) = measured[2];
    let ckpt_speedup = ckpt_med / ref_med;
    let batch_speedup = batch_med / ref_med;

    print_row("faults_campaign/reference", ref_med, ref_mad, samples);
    print_row("faults_campaign/checkpointed", ckpt_med, ckpt_mad, samples);
    print_row(
        &format!("faults_campaign/batched(w={DEFAULT_LANE_WIDTH})"),
        batch_med,
        batch_mad,
        samples,
    );

    let mut sweep = Vec::new();
    for (&w, &(med, mad)) in LANE_SWEEP.iter().zip(&measured[3..]) {
        print_row(&format!("faults_campaign/batched/lanes={w}"), med, mad, samples);
        sweep.push((w, med, mad));
    }

    println!("checkpointed/reference speedup: {ckpt_speedup:.2}x (median trials/sec)");
    println!("batched/reference speedup: {batch_speedup:.2}x (median trials/sec)");

    // Per-scheme breakdown on the batched engine: same trials, same
    // seed, but each scheme's binary does different work per trial —
    // this is the campaign-side cost of the protection ladder.
    let mut scheme_rows: Vec<(&str, f64, f64)> = Vec::new();
    {
        let mut rates: Vec<Vec<f64>> =
            vec![Vec::with_capacity(samples); casted::Scheme::FULL.len()];
        for _ in 0..samples {
            for (i, scheme) in casted::Scheme::FULL.into_iter().enumerate() {
                let subset: Vec<&Cell> =
                    cells.iter().filter(|c| c.scheme == scheme).collect();
                let t0 = Instant::now();
                for cell in &subset {
                    casted_util::bench::black_box(run_campaign_engine_lanes(
                        &cell.sp,
                        &cell_campaign(&campaign, cell),
                        Engine::Batched,
                        DEFAULT_LANE_WIDTH,
                    ));
                }
                rates[i].push(
                    (subset.len() * campaign.trials) as f64 / t0.elapsed().as_secs_f64(),
                );
            }
        }
        for (scheme, r) in casted::Scheme::FULL.into_iter().zip(rates.iter_mut()) {
            let (med, mad) = median_mad(r);
            print_row(&format!("faults_campaign/scheme/{}", scheme.name()), med, mad, samples);
            scheme_rows.push((scheme.name(), med, mad));
        }
    }

    // Incremental section-cache scenario (docs/INCREMENTAL.md): a cold
    // run populates the store, then the program is edited in one
    // section (epilogue halt code) and re-run warm — only the
    // invalidated epilogue sections re-inject; every other trial
    // recombines from the cache. Each sample round starts from an
    // empty store so cold stays cold and the warm store always holds
    // exactly one cold run's records.
    // Restricted to the dup-compare/NOED cells: the section evidence
    // vocabulary cannot recombine vote corrections or digest plans
    // (recovery-scheme campaigns fall back to the standard engine),
    // so including them would only re-measure the batched rows.
    let cacheable = |c: &&Cell| !c.scheme.corrects() && !c.scheme.replay_detect();
    let edited = quick_grid_cells(true);
    let inc_cells: Vec<&Cell> = cells.iter().filter(cacheable).collect();
    let inc_edited: Vec<&Cell> = edited.iter().filter(cacheable).collect();
    let dir = std::env::temp_dir().join(format!("casted-bench-sections-{}", std::process::id()));
    let trials_per_pass = (inc_cells.len() * campaign.trials) as f64;
    let mut cold_rates = Vec::with_capacity(samples);
    let mut warm_rates = Vec::with_capacity(samples);
    for s in 0..samples {
        let _ = std::fs::remove_dir_all(&dir);
        let store = SectionStore::open(&dir).expect("open bench section store");
        let t0 = Instant::now();
        for cell in &inc_cells {
            casted_util::bench::black_box(run_campaign_incremental(&cell.sp, &campaign, &store));
        }
        cold_rates.push(trials_per_pass / t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for cell in &inc_edited {
            let r = run_campaign_incremental(&cell.sp, &campaign, &store);
            if s == 0 {
                assert!(
                    r.engine.sections.hit > 0,
                    "{}: edited rerun reused nothing",
                    cell.label
                );
            }
            casted_util::bench::black_box(r);
        }
        warm_rates.push(trials_per_pass / t0.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_dir_all(&dir);
    let (inc_cold_med, inc_cold_mad) = median_mad(&mut cold_rates);
    let (inc_warm_med, inc_warm_mad) = median_mad(&mut warm_rates);
    let inc_speedup = inc_warm_med / inc_cold_med;
    print_row("faults_campaign/incremental_cold", inc_cold_med, inc_cold_mad, samples);
    print_row(
        "faults_campaign/incremental_warm(edit 1 section)",
        inc_warm_med,
        inc_warm_mad,
        samples,
    );
    println!("incremental warm/cold speedup: {inc_speedup:.2}x (median trials/sec)");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"faults_campaign_throughput\",");
    let _ = writeln!(
        json,
        "  \"grid\": \"quick coverage grid: cjpeg+h263enc+181.mcf x 6 schemes, issue 2, delay 2\","
    );
    let _ = writeln!(json, "  \"cells\": {},", cells.len());
    let _ = writeln!(json, "  \"trials_per_campaign\": {TRIALS},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"lane_width\": {DEFAULT_LANE_WIDTH},");
    let _ = writeln!(json, "  \"trials_per_sec\": {{");
    let _ = writeln!(
        json,
        "    \"reference\": {{\"median\": {ref_med:.1}, \"mad\": {ref_mad:.1}}},"
    );
    let _ = writeln!(
        json,
        "    \"checkpointed\": {{\"median\": {ckpt_med:.1}, \"mad\": {ckpt_mad:.1}}},"
    );
    let _ = writeln!(
        json,
        "    \"batched\": {{\"median\": {batch_med:.1}, \"mad\": {batch_mad:.1}}}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"lane_sweep\": [");
    for (i, (w, med, mad)) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"lanes\": {w}, \"median\": {med:.1}, \"mad\": {mad:.1}, \"speedup\": {:.2}}}{comma}",
            med / ref_med
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"per_scheme\": {{");
    for (i, (name, med, mad)) in scheme_rows.iter().enumerate() {
        let comma = if i + 1 < scheme_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"median\": {med:.1}, \"mad\": {mad:.1}}}{comma}"
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"incremental\": {{");
    let _ = writeln!(
        json,
        "    \"cold\": {{\"median\": {inc_cold_med:.1}, \"mad\": {inc_cold_mad:.1}}},"
    );
    let _ = writeln!(
        json,
        "    \"warm_after_edit\": {{\"median\": {inc_warm_med:.1}, \"mad\": {inc_warm_mad:.1}}},"
    );
    let _ = writeln!(json, "    \"speedup_incremental_warm\": {inc_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup_median\": {ckpt_speedup:.2},");
    let _ = writeln!(json, "  \"speedup_batched_median\": {batch_speedup:.2}");
    let _ = writeln!(json, "}}");

    // cargo runs bench targets with the package directory as cwd;
    // anchor the artifact at the workspace root via the manifest dir.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_faults.json");
    std::fs::write(&out, &json).expect("write BENCH_faults.json");
    println!("[wrote {}]", out.display());
}
