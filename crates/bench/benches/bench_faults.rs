//! Campaign throughput: the checkpointed fault-injection engine
//! against the reference engine, measured in **trials/sec** over the
//! quick coverage grid (three representative benchmarks × all four
//! schemes at issue 2, delay 2 — the same cells `fig9 --quick` runs).
//!
//! Both engines consume the identical frozen injection stream and, as
//! a precondition of the measurement, are cross-checked here to
//! produce byte-identical tallies. Results are printed in the
//! in-repo runner's format and written to `BENCH_faults.json` at the
//! workspace root (median/MAD over the timed samples, plus the
//! checkpointed/reference speedup) so the perf trajectory has a
//! recorded datapoint. `CASTED_BENCH_QUICK=1` drops to a single
//! sample for smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use casted_faults::{run_campaign_engine, CampaignConfig, Engine};
use casted_ir::vliw::ScheduledProgram;
use casted_ir::MachineConfig;
use casted_util::bench::median_mad;

const TRIALS: usize = 40;
const SAMPLES: usize = 5;

struct Cell {
    label: String,
    sp: ScheduledProgram,
}

fn quick_grid_cells() -> Vec<Cell> {
    let config = MachineConfig::itanium2_like(2, 2);
    let mut cells = Vec::new();
    for name in ["cjpeg", "h263enc", "181.mcf"] {
        let module = casted_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
            .compile()
            .expect("compile failed");
        for scheme in casted::Scheme::ALL {
            let prep = casted_passes::prepare(&module, scheme, &config).expect("prepare failed");
            cells.push(Cell {
                label: format!("{name}/{}", scheme.name()),
                sp: prep.sp,
            });
        }
    }
    cells
}

/// Time one full pass over the grid with `engine`; returns trials/sec.
fn sample(cells: &[Cell], campaign: &CampaignConfig, engine: Engine) -> f64 {
    let t0 = Instant::now();
    for cell in cells {
        casted_util::bench::black_box(run_campaign_engine(&cell.sp, campaign, engine));
    }
    let secs = t0.elapsed().as_secs_f64();
    (cells.len() * campaign.trials) as f64 / secs
}

fn measure(cells: &[Cell], campaign: &CampaignConfig, engine: Engine, samples: usize) -> (f64, f64) {
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| sample(cells, campaign, engine))
        .collect();
    median_mad(&mut rates)
}

fn main() {
    let quick = std::env::var("CASTED_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let samples = if quick { 1 } else { SAMPLES };
    let cells = quick_grid_cells();
    let campaign = CampaignConfig {
        trials: TRIALS,
        ..Default::default()
    };

    // Precondition: same seed, same trial count, byte-identical
    // tallies — otherwise trials/sec compares different work.
    for cell in &cells {
        let r = run_campaign_engine(&cell.sp, &campaign, Engine::Reference);
        let c = run_campaign_engine(&cell.sp, &campaign, Engine::Checkpointed);
        assert_eq!(r.tally, c.tally, "{}: engines disagree", cell.label);
    }

    let (ref_med, ref_mad) = measure(&cells, &campaign, Engine::Reference, samples);
    let (ckpt_med, ckpt_mad) = measure(&cells, &campaign, Engine::Checkpointed, samples);
    let speedup = ckpt_med / ref_med;

    println!(
        "bench {:<50} median {:>10.0} trials/s  mad {:>9.0}  (n={samples})",
        "faults_campaign/reference", ref_med, ref_mad
    );
    println!(
        "bench {:<50} median {:>10.0} trials/s  mad {:>9.0}  (n={samples})",
        "faults_campaign/checkpointed", ckpt_med, ckpt_mad
    );
    println!("checkpointed/reference speedup: {speedup:.2}x (median trials/sec)");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"faults_campaign_throughput\",");
    let _ = writeln!(
        json,
        "  \"grid\": \"quick coverage grid: cjpeg+h263enc+181.mcf x 4 schemes, issue 2, delay 2\","
    );
    let _ = writeln!(json, "  \"cells\": {},", cells.len());
    let _ = writeln!(json, "  \"trials_per_campaign\": {TRIALS},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"trials_per_sec\": {{");
    let _ = writeln!(
        json,
        "    \"reference\": {{\"median\": {ref_med:.1}, \"mad\": {ref_mad:.1}}},"
    );
    let _ = writeln!(
        json,
        "    \"checkpointed\": {{\"median\": {ckpt_med:.1}, \"mad\": {ckpt_mad:.1}}}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup_median\": {speedup:.2}");
    let _ = writeln!(json, "}}");

    // cargo runs bench targets with the package directory as cwd;
    // anchor the artifact at the workspace root via the manifest dir.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_faults.json");
    std::fs::write(&out, &json).expect("write BENCH_faults.json");
    println!("[wrote {}]", out.display());
}
