//! Benchmarks for the compiler passes: the error-detection
//! transformation (Algorithm 1) and the full back-end pipeline.
//! Runs on the in-repo wall-clock runner (`casted_util::bench`).

use casted_util::bench::{Bench, BenchId};
use casted_util::{bench_group, bench_main};

fn bench_error_detection(c: &mut Bench) {
    let mut g = c.benchmark_group("error_detection");
    g.sample_size(20);
    for w in casted_workloads::all() {
        let module = w.compile().expect("compile");
        g.bench_with_input(BenchId::from_parameter(w.name), &module, |b, m| {
            b.iter(|| {
                let mut m2 = m.clone();
                casted_passes::error_detection(&mut m2)
            });
        });
    }
    g.finish();
}

fn bench_prepare(c: &mut Bench) {
    let mut g = c.benchmark_group("prepare_pipeline");
    g.sample_size(10);
    let module = casted_workloads::by_name("cjpeg").unwrap().compile().unwrap();
    let cfg = casted::ir::MachineConfig::itanium2_like(2, 2);
    for scheme in casted::Scheme::ALL {
        g.bench_with_input(
            BenchId::from_parameter(scheme.name()),
            &scheme,
            |b, &s| b.iter(|| casted_passes::prepare(&module, s, &cfg).unwrap()),
        );
    }
    g.finish();
}

fn bench_frontend(c: &mut Bench) {
    let mut g = c.benchmark_group("minic_compile");
    g.sample_size(20);
    for w in casted_workloads::all() {
        g.bench_with_input(BenchId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| w.compile().expect("compile"));
        });
    }
    g.finish();
}

bench_group!(benches, bench_error_detection, bench_prepare, bench_frontend);
bench_main!(benches);
