//! Scaled-down figure pipelines on the in-repo bench runner, so
//! `cargo bench` exercises every experiment path end to end (the full
//! paper-sized figures are produced by the `fig*` binaries).

use casted_util::bench::Bench;
use casted_util::{bench_group, bench_main};

fn bench_fig6_cell(c: &mut Bench) {
    let mut g = c.benchmark_group("figure_pipelines");
    g.sample_size(10);
    let w = casted_workloads::by_name("mpeg2dec").unwrap();
    g.bench_function("fig6_7_one_benchmark_quick_grid", |b| {
        let spec = casted::experiments::GridSpec {
            issues: vec![1, 2],
            delays: vec![1, 3],
            schemes: casted::Scheme::ALL.to_vec(),
            clusters: vec![2],
        };
        b.iter(|| casted::experiments::perf_sweep(std::slice::from_ref(&w), &spec));
    });
    g.bench_function("fig9_one_benchmark_20_trials", |b| {
        let spec = casted::experiments::GridSpec {
            issues: vec![2],
            delays: vec![2],
            schemes: vec![casted::Scheme::Casted],
            clusters: vec![2],
        };
        let campaign = casted_faults::CampaignConfig {
            trials: 20,
            ..Default::default()
        };
        b.iter(|| casted::experiments::coverage_sweep(std::slice::from_ref(&w), &spec, &campaign));
    });
    g.bench_function("fig2_3_motivating_example", |b| {
        let m = casted_bench::motivating_module();
        b.iter(|| {
            let mut total = 0u64;
            for scheme in casted::Scheme::ALL {
                for (i, d) in [(1usize, 1u32), (2, 1)] {
                    let cfg = casted::ir::MachineConfig::perfect_memory(i, d);
                    let prep = casted::build(&m, scheme, &cfg).unwrap();
                    total += casted::measure(&prep).stats.cycles;
                }
            }
            total
        });
    });
    g.finish();
}

bench_group!(benches, bench_fig6_cell);
bench_main!(benches);
