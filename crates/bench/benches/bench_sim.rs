//! Benchmarks for the cycle-accurate simulator: fault-free throughput
//! per scheme and the cache hierarchy in isolation. Runs on the
//! in-repo wall-clock runner (`casted_util::bench`).

use casted_util::bench::{Bench, BenchId};
use casted_util::{bench_group, bench_main};

fn bench_simulate(c: &mut Bench) {
    let mut g = c.benchmark_group("simulate_cjpeg");
    g.sample_size(10);
    let module = casted_workloads::by_name("cjpeg").unwrap().compile().unwrap();
    let cfg = casted::ir::MachineConfig::itanium2_like(2, 2);
    for scheme in casted::Scheme::ALL {
        let prep = casted_passes::prepare(&module, scheme, &cfg).unwrap();
        g.bench_with_input(
            BenchId::from_parameter(scheme.name()),
            &prep,
            |b, prep| b.iter(|| casted::measure(prep)),
        );
    }
    g.finish();
}

fn bench_cache(c: &mut Bench) {
    let cfg = casted::ir::MachineConfig::itanium2_like(2, 2);
    c.bench_function("cache_hierarchy_stream", |b| {
        b.iter(|| {
            let mut cache = casted_sim::CacheHierarchy::new(&cfg);
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc += cache.access(4096 + (i * 72) % 200_000) as u64;
            }
            acc
        })
    });
}

fn bench_fault_trial(c: &mut Bench) {
    let mut g = c.benchmark_group("fault_trial");
    g.sample_size(10);
    let module = casted_workloads::by_name("197.parser").unwrap().compile().unwrap();
    let cfg = casted::ir::MachineConfig::itanium2_like(2, 2);
    let prep = casted_passes::prepare(&module, casted::Scheme::Casted, &cfg).unwrap();
    let golden = casted::measure(&prep);
    g.bench_function("parser_casted_one_injection", |b| {
        b.iter(|| {
            casted_faults::run_trial(
                &prep.sp,
                &golden,
                casted_sim::Injection::single(golden.stats.dyn_insns / 2, 17, None),
                golden.stats.cycles * 10,
            )
        })
    });
    g.finish();
}

bench_group!(benches, bench_simulate, bench_cache, bench_fault_trial);
bench_main!(benches);
