//! # casted-bench — the experiment harness
//!
//! One binary per table and figure of the paper (see `DESIGN.md` for
//! the experiment index):
//!
//! | target    | reproduces |
//! |-----------|------------|
//! | `table1`  | Table I — processor configuration |
//! | `table2`  | Table II — benchmark programs |
//! | `table3`  | Table III — compiler-based ED scheme comparison |
//! | `fig2_3`  | Figs. 2/3 — motivating example schedules |
//! | `fig6_7`  | Figs. 6/7 — slowdown grid (issue 1–4 × delay 1–4) |
//! | `fig8`    | Fig. 8 — ILP scaling curves |
//! | `fig9`    | Fig. 9 — fault coverage, all benchmarks, issue 2 delay 2 |
//! | `fig10`   | Fig. 10 — h263dec fault coverage across all configs |
//! | `summary` | §IV-B headline numbers (slowdown ranges, CASTED vs best fixed) |
//! | `difftest`| — quality infrastructure: differential fuzz suite, failure replay/minimization, fixed corpus (see `docs/TESTING.md`) |
//!
//! Every binary accepts `--quick` (reduced grid/trials for smoke
//! runs), `--trials N` (fault campaigns), and `--out DIR` (also write
//! CSV files). The `benches/` directory holds Criterion benchmarks
//! over the compiler passes, the simulator, and scaled-down figure
//! pipelines.

use std::path::PathBuf;

/// Parsed command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Reduced grid / trial count for smoke runs.
    pub quick: bool,
    /// Monte-Carlo trials per campaign cell (paper: 300).
    pub trials: usize,
    /// Optional output directory for CSV artifacts.
    pub out: Option<PathBuf>,
    /// Write the full metrics JSON (counters + gauges + timers) here.
    pub metrics: Option<PathBuf>,
    /// Write the deterministic counter-only metrics snapshot here
    /// (byte-reproducible for seeded runs; what CI `cmp`s).
    pub metrics_counters: Option<PathBuf>,
    /// Fault-campaign engine (`--engine reference|checkpointed|batched`).
    /// All produce byte-identical tallies; CI cross-checks them.
    pub engine: casted_faults::Engine,
    /// Run fault campaigns through the compositional section cache
    /// (`--incremental`); tallies stay byte-identical to the engines.
    pub incremental: bool,
    /// On-disk section store for `--incremental`
    /// (`--section-cache DIR`, default `.casted-sections`).
    pub section_cache: PathBuf,
    /// On-disk artifact store for the staged compile pipeline
    /// (`--artifact-cache DIR`); compile-heavy sweeps memoize their
    /// per-cell prepare through it (see `docs/PIPELINE.md`).
    pub artifact_cache: Option<PathBuf>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            quick: false,
            trials: 300,
            out: None,
            metrics: None,
            metrics_counters: None,
            engine: casted_faults::Engine::default(),
            incremental: false,
            section_cache: PathBuf::from(".casted-sections"),
            artifact_cache: None,
        }
    }
}

/// Parse `--quick`, `--trials N`, `--out DIR`, `--metrics FILE`,
/// `--metrics-counters FILE`, `--engine NAME`, `--incremental`,
/// `--section-cache DIR`, `--artifact-cache DIR` from
/// `std::env::args`.
/// Passing either metrics flag switches global metric recording on
/// for the run.
pub fn parse_args() -> RunOpts {
    let mut opts = RunOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                opts.quick = true;
                opts.trials = opts.trials.min(40);
            }
            "--trials" => {
                opts.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a number");
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().expect("--out needs a path")));
            }
            "--metrics" => {
                opts.metrics = Some(PathBuf::from(args.next().expect("--metrics needs a path")));
            }
            "--metrics-counters" => {
                opts.metrics_counters = Some(PathBuf::from(
                    args.next().expect("--metrics-counters needs a path"),
                ));
            }
            "--engine" => {
                let name = args
                    .next()
                    .unwrap_or_else(|| panic!("--engine needs {}", casted_faults::Engine::ACCEPTED));
                opts.engine = casted_faults::Engine::parse(&name).unwrap_or_else(|| {
                    panic!(
                        "unknown engine {name:?} (accepted values: {})",
                        casted_faults::Engine::ACCEPTED
                    )
                });
            }
            "--incremental" => opts.incremental = true,
            "--section-cache" => {
                opts.section_cache =
                    PathBuf::from(args.next().expect("--section-cache needs a path"));
            }
            "--artifact-cache" => {
                opts.artifact_cache =
                    Some(PathBuf::from(args.next().expect("--artifact-cache needs a path")));
            }
            other => {
                eprintln!("warning: ignoring unknown argument {other:?}");
            }
        }
    }
    if opts.metrics.is_some() || opts.metrics_counters.is_some() {
        casted_obs::set_enabled(true);
    }
    opts
}

/// Write the metrics artifacts requested on the command line. Every
/// figure binary calls this once, as its last statement; without a
/// metrics flag it is a no-op.
pub fn finish_metrics(opts: &RunOpts) {
    if let Some(path) = &opts.metrics {
        std::fs::write(path, casted_obs::export_json()).expect("write --metrics file");
        println!("[wrote {}]", path.display());
    }
    if let Some(path) = &opts.metrics_counters {
        std::fs::write(path, casted_obs::snapshot_json()).expect("write --metrics-counters file");
        println!("[wrote {}]", path.display());
    }
}

/// Write `content` to `<out>/<name>` when an output directory was
/// requested.
pub fn maybe_write(opts: &RunOpts, name: &str, content: &str) {
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).expect("create out dir");
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write artifact");
        println!("[wrote {}]", path.display());
    }
}

/// The benchmark list used by the figure binaries; `--quick` keeps a
/// representative three.
pub fn benchmarks(opts: &RunOpts) -> Vec<casted_workloads::Workload> {
    let all = casted_workloads::all();
    if opts.quick {
        all.into_iter()
            .filter(|w| matches!(w.name, "cjpeg" | "h263enc" | "181.mcf"))
            .collect()
    } else {
        all
    }
}

/// Paper grid or quick grid.
pub fn grid(opts: &RunOpts) -> casted::experiments::GridSpec {
    if opts.quick {
        casted::experiments::GridSpec {
            issues: vec![1, 2],
            delays: vec![1, 3],
            schemes: casted::Scheme::ALL.to_vec(),
            clusters: vec![2, 4],
        }
    } else {
        casted::experiments::GridSpec::paper_full()
    }
}

/// Build the motivating-example module of the paper's Figs. 2/3: a
/// small dependent expression DAG feeding a store, exactly the shape
/// whose error-detection DFG the paper draws (original nodes, their
/// duplicates, and checks before the non-replicated store).
pub fn motivating_module() -> casted::ir::Module {
    use casted::ir::{FunctionBuilder, Module, Opcode, Operand};
    let mut m = Module::new("motivating");
    let (_, addr) = m.add_global("g", casted::ir::func::GlobalClass::Int, 4, vec![11, 22, 0, 0]);
    let mut b = FunctionBuilder::new("main");
    // A: load, B/C: independent uses of A, D: join, store D.
    let base = b.imm(addr);
    let a = b.load(base, 0);
    let bb = b.binop(Opcode::Mul, Operand::Reg(a), Operand::Imm(3));
    let c = b.binop(Opcode::Add, Operand::Reg(a), Operand::Imm(7));
    let d = b.binop(Opcode::Add, Operand::Reg(bb), Operand::Reg(c));
    b.store(base, 16, Operand::Reg(d));
    let chk = b.load(base, 16);
    b.out(Operand::Reg(chk));
    b.halt_imm(0);
    let id = m.add_function(b.finish());
    m.entry = Some(id);
    m
}
