//! Table II of the paper: the benchmark programs, with the dynamic
//! properties of our MiniC substitutes.

fn main() {
    let opts = casted_bench::parse_args();
    println!("Table II: benchmark programs");
    println!("{:<12} {:<14} {:>10} {:>8} {:>8}", "benchmark", "suite", "dyn insns", "blocks", "static");
    for w in casted_workloads::all() {
        let m = w.compile().expect("compile");
        let r = casted::ir::interp::run(&m, 100_000_000).expect("run");
        let f = m.entry_fn();
        println!(
            "{:<12} {:<14} {:>10} {:>8} {:>8}",
            w.name,
            w.suite.to_string(),
            r.dyn_insns,
            f.blocks.len(),
            f.static_size()
        );
    }
    casted_bench::finish_metrics(&opts);
}
