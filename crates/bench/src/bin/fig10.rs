//! Fig. 10 of the paper: fault coverage of h263dec for all four
//! schemes across issue widths 1–4 and delays 1–4 — demonstrating that
//! coverage is insensitive to the architecture configuration.

use casted::experiments::{coverage_sweep_with, GridSpec};
use casted::report;
use casted_faults::{CampaignConfig, Outcome};

fn main() {
    let opts = casted_bench::parse_args();
    let w = casted_workloads::by_name("h263dec").expect("h263dec");
    let spec = if opts.quick {
        GridSpec {
            issues: vec![1, 4],
            delays: vec![1, 4],
            schemes: casted::Scheme::ALL.to_vec(),
            clusters: vec![2],
        }
    } else {
        GridSpec::paper_full()
    };
    let campaign = CampaignConfig {
        trials: opts.trials,
        ..Default::default()
    };
    eprintln!(
        "fault campaign: h263dec x 4 schemes x {} configs x {} trials ...",
        spec.issues.len() * spec.delays.len(),
        campaign.trials
    );
    let points = coverage_sweep_with(&[w], &spec, &campaign, opts.engine);
    println!("{}", report::coverage_panel(&points));
    casted_bench::maybe_write(&opts, "fig10.csv", &report::coverage_csv(&points));

    // The paper's claim: "the fault coverage ... is not affected by the
    // underlying architecture configuration". Check that CASTED's
    // detected+exception+benign fraction varies only within a
    // statistical band across configurations.
    let safe: Vec<f64> = points
        .iter()
        .filter(|p| p.scheme == casted::Scheme::Casted)
        .map(|p| {
            p.tally.fraction(Outcome::Detected)
                + p.tally.fraction(Outcome::Exception)
                + p.tally.fraction(Outcome::Benign)
        })
        .collect();
    let min = safe.iter().cloned().fold(1.0, f64::min);
    let max = safe.iter().cloned().fold(0.0, f64::max);
    println!(
        "CASTED safe-outcome fraction across configs: {:.1}%..{:.1}% (spread {:.1} pp)",
        100.0 * min,
        100.0 * max,
        100.0 * (max - min)
    );
    assert!(
        max - min < 0.15,
        "coverage should be configuration-insensitive (statistical deviation only)"
    );
    casted_bench::finish_metrics(&opts);
}
