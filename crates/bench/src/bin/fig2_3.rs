//! Figs. 2 and 3 of the paper: the motivating example.
//!
//! Example 1 (Fig. 2): single-issue clusters, delay 1 — the
//! resource-constrained SCED loses to DCED, CASTED matches/beats DCED.
//! Example 2 (Fig. 3): two-wide clusters — SCED accommodates the ILP
//! and beats DCED (which pays inter-core delay on every check); CASTED
//! adapts to the SCED-like placement.

use casted::ir::MachineConfig;
use casted::Scheme;

fn run_example(title: &str, issue: usize, delay: u32) -> Vec<(Scheme, u64)> {
    let m = casted_bench::motivating_module();
    println!("==== {title}: issue-width {issue}, inter-core delay {delay} ====\n");
    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let cfg = MachineConfig::perfect_memory(issue, delay);
        let prep = casted::build(&m, scheme, &cfg).expect("prepare");
        let r = casted::measure(&prep);
        println!("--- {} ({} cycles) ---", scheme.name(), r.stats.cycles);
        let entry = prep.sp.module.entry_fn().entry;
        println!("{}", prep.sp.render_block(entry));
        rows.push((scheme, r.stats.cycles));
    }
    rows
}

fn cycles(rows: &[(Scheme, u64)], s: Scheme) -> u64 {
    rows.iter().find(|(x, _)| *x == s).unwrap().1
}

fn main() {
    let opts = casted_bench::parse_args();
    let ex1 = run_example("Example 1 (Fig. 2)", 1, 1);
    let ex2 = run_example("Example 2 (Fig. 3)", 2, 1);

    let (s1, d1, c1) = (
        cycles(&ex1, Scheme::Sced),
        cycles(&ex1, Scheme::Dced),
        cycles(&ex1, Scheme::Casted),
    );
    let (s2, d2, c2) = (
        cycles(&ex2, Scheme::Sced),
        cycles(&ex2, Scheme::Dced),
        cycles(&ex2, Scheme::Casted),
    );
    println!("Example 1 (1-wide): SCED={s1} DCED={d1} CASTED={c1}");
    println!("  -> DCED outperforms the resource-constrained SCED: {}", d1 < s1);
    println!("  -> CASTED at least matches the best fixed:          {}", c1 <= d1.min(s1));
    println!("Example 2 (2-wide): SCED={s2} DCED={d2} CASTED={c2}");
    println!("  -> SCED outperforms DCED (inter-core delay bites):  {}", s2 <= d2);
    println!("  -> CASTED at least matches the best fixed:          {}", c2 <= d2.min(s2));
    assert!(d1 < s1, "Fig.2 shape: DCED must beat SCED at issue 1");
    assert!(c1 <= d1.min(s1), "Fig.2 shape: CASTED must match best");
    assert!(s2 <= d2, "Fig.3 shape: SCED must match/beat DCED at issue 2");
    assert!(c2 <= d2.min(s2), "Fig.3 shape: CASTED must match best");
    println!("\nAll motivating-example shape checks hold.");
    casted_bench::finish_metrics(&opts);
}
