//! Figs. 6 and 7 of the paper: performance of SCED/DCED/CASTED
//! normalized to NOED at the same issue width, for delays 1–4 and
//! issue widths 1–4, over all seven benchmarks.

use casted::experiments::perf_sweep_with_cache;
use casted::report;

fn main() {
    let opts = casted_bench::parse_args();
    let benchmarks = casted_bench::benchmarks(&opts);
    let spec = casted_bench::grid(&opts);
    eprintln!(
        "sweeping {} benchmarks x {} schemes x {} issues x {} delays ...",
        benchmarks.len(),
        spec.schemes.len(),
        spec.issues.len(),
        spec.delays.len()
    );
    let table = perf_sweep_with_cache(&benchmarks, &spec, opts.artifact_cache.as_deref());
    for b in table.benchmarks() {
        println!("{}", report::perf_panel(&table, &b, &spec.issues, &spec.delays));
    }
    let csv = report::perf_csv(&table);
    casted_bench::maybe_write(&opts, "fig6_7.csv", &csv);
    println!("{} cells measured.", table.points.len());
    casted_bench::finish_metrics(&opts);
}
