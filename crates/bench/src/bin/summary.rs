//! §IV-B headline numbers: per-scheme slowdown ranges and CASTED's
//! advantage over the best fixed scheme, next to the paper's values.

use casted::experiments::{casted_vs_best_fixed, perf_sweep_with_cache, summarize};
use casted::Scheme;

fn main() {
    let opts = casted_bench::parse_args();
    let benchmarks = casted_bench::benchmarks(&opts);
    let spec = casted_bench::grid(&opts);
    let table = perf_sweep_with_cache(&benchmarks, &spec, opts.artifact_cache.as_deref());

    println!("Scheme slowdown vs NOED over the whole grid (paper values in brackets):");
    let paper = [
        (Scheme::Sced, (1.34, 1.7, 2.22)),
        (Scheme::Dced, (1.31, 2.1, 3.32)),
        (Scheme::Casted, (1.19, 1.58, 2.1)),
    ];
    for s in summarize(&table) {
        let (pmin, pavg, pmax) = paper
            .iter()
            .find(|(sc, _)| *sc == s.scheme)
            .map(|(_, v)| *v)
            .unwrap();
        println!(
            "  {:7} min {:.2} avg {:.2} max {:.2}   [paper: min {:.2} avg {:.2} max {:.2}]",
            s.scheme.name(),
            s.min,
            s.avg,
            s.max,
            pmin,
            pavg,
            pmax
        );
    }

    let (best_gain, worst_gap, rows) = casted_vs_best_fixed(&table);
    println!("\nCASTED vs best fixed scheme per cell (positive = CASTED faster):");
    let wins = rows.iter().filter(|r| r.3 >= -0.5).count();
    println!(
        "  matches-or-beats best fixed in {}/{} cells; best gain {:.1}% (paper: up to 21.2%); worst gap {:.1}%",
        wins,
        rows.len(),
        best_gain,
        worst_gap
    );
    let mut top: Vec<_> = rows.clone();
    top.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap());
    for (b, i, d, g) in top.iter().take(5) {
        println!("    {b} issue {i} delay {d}: {g:+.1}%");
    }

    // Average slowdown reduction vs each fixed scheme (paper: 7.5%
    // against SCED, 24.7% against DCED).
    let mut vs_sced = Vec::new();
    let mut vs_dced = Vec::new();
    for p in table.points.iter().filter(|p| p.scheme == Scheme::Casted) {
        if let (Some(s), Some(d)) = (
            table.get(&p.benchmark, Scheme::Sced, p.issue, p.delay),
            table.get(&p.benchmark, Scheme::Dced, p.issue, p.delay),
        ) {
            vs_sced.push(1.0 - p.cycles as f64 / s.cycles as f64);
            vs_dced.push(1.0 - p.cycles as f64 / d.cycles as f64);
        }
    }
    let avg = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nAverage cycle reduction: vs SCED {:.1}% (paper 7.5%), vs DCED {:.1}% (paper 24.7%)",
        avg(&vs_sced),
        avg(&vs_dced)
    );
    casted_bench::finish_metrics(&opts);
}
