//! Core-count scaling (the paper's contribution bullet: CASTED
//! "optimizes it for a wide range of core counts, issue-widths and
//! inter-core communication latencies"; its evaluation fixes 2
//! clusters — this binary extends the sweep to 1, 2, 3 and 4 clusters).
//!
//! Expected shape: adding clusters never hurts (CASTED falls back to
//! fewer clusters when splitting does not pay), and the returns
//! diminish — most of the error-detection ILP is exploited by the
//! second cluster.

use casted::ir::MachineConfig;
use casted::Scheme;

fn config(clusters: usize, issue: usize, delay: u32) -> MachineConfig {
    let mut cfg = MachineConfig::itanium2_like(issue, delay);
    cfg.clusters = clusters;
    cfg
}

fn main() {
    let opts = casted_bench::parse_args();
    let names = if opts.quick {
        vec!["cjpeg", "181.mcf"]
    } else {
        vec!["cjpeg", "h263dec", "mpeg2dec", "h263enc", "175.vpr", "181.mcf", "197.parser"]
    };
    println!("CASTED cycle count vs cluster count (issue 1 per cluster, delay 2):\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}  occupancy @4",
        "benchmark", "1 cluster", "2 clusters", "3 clusters", "4 clusters"
    );
    for name in &names {
        let m = casted_workloads::by_name(name).unwrap().compile().unwrap();
        let mut row = Vec::new();
        let mut occ4 = Vec::new();
        for clusters in 1..=4usize {
            let cfg = config(clusters, 1, 2);
            let prep = casted::build(&m, Scheme::Casted, &cfg).expect("build");
            let r = casted::measure(&prep);
            row.push(r.stats.cycles);
            if clusters == 4 {
                occ4 = prep.sp.cluster_occupancy();
            }
        }
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}  {:?}",
            name, row[0], row[1], row[2], row[3], occ4
        );
        // Shape checks: more clusters never slower (within noise), and
        // 2 clusters beat 1 (the redundant stream fits there).
        assert!(
            row[1] as f64 <= row[0] as f64 * 1.02,
            "{name}: 2 clusters slower than 1"
        );
        assert!(
            row[3] as f64 <= row[1] as f64 * 1.05,
            "{name}: 4 clusters much slower than 2"
        );
    }
    println!("\nAll core-count shape checks hold (monotone within tolerance).");
    casted_bench::finish_metrics(&opts);
}
