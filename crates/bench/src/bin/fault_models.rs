//! Extension experiment: the paper's instruction-output fault model vs
//! a register-file strike model.
//!
//! The paper injects into "the output registers of instructions" —
//! every fault lands on a freshly produced, almost-certainly-live
//! value. A register-file strike lands on a uniformly random
//! architectural register at a random time, so many faults hit dead or
//! dormant values and are masked; conversely, long-lived values
//! (loop-carried state) are exposed for their whole lifetime. Error
//! detection still catches what matters: corrupted values are compared
//! at the next check that reads them.

use casted::ir::MachineConfig;
use casted::Scheme;
use casted_faults::{run_campaign_with_model, CampaignConfig, FaultModel, Outcome};

fn main() {
    let opts = casted_bench::parse_args();
    let names = if opts.quick {
        vec!["cjpeg", "181.mcf"]
    } else {
        vec!["cjpeg", "h263dec", "mpeg2dec", "h263enc", "175.vpr", "181.mcf", "197.parser"]
    };
    let cfg = MachineConfig::itanium2_like(2, 2);
    let trials = opts.trials.min(200);

    println!("CASTED under two fault models ({} trials each):\n", trials);
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "", "out:ben", "out:det", "out:exc", "out:bad", "rf:ben", "rf:det", "rf:exc", "rf:bad"
    );
    for name in &names {
        let m = casted_workloads::by_name(name).unwrap().compile().unwrap();
        let prep = casted::build(&m, Scheme::Casted, &cfg).unwrap();
        let camp = CampaignConfig { trials, ..Default::default() };
        let out = run_campaign_with_model(&prep.sp, &camp, FaultModel::InstructionOutput);
        let rf = run_campaign_with_model(&prep.sp, &camp, FaultModel::RegisterFile);
        let pct = |t: &casted_faults::Tally, o| 100.0 * t.fraction(o);
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% | {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            name,
            pct(&out.tally, Outcome::Benign),
            pct(&out.tally, Outcome::Detected),
            pct(&out.tally, Outcome::Exception),
            pct(&out.tally, Outcome::DataCorrupt) + pct(&out.tally, Outcome::Timeout),
            pct(&rf.tally, Outcome::Benign),
            pct(&rf.tally, Outcome::Detected),
            pct(&rf.tally, Outcome::Exception),
            pct(&rf.tally, Outcome::DataCorrupt) + pct(&rf.tally, Outcome::Timeout),
        );
    }
    println!("\n(out = paper's instruction-output model; rf = register-file strike;");
    println!(" ben/det/exc/bad = Benign / Detected / Exception / Corrupt+Timeout.)");
    casted_bench::finish_metrics(&opts);
}
