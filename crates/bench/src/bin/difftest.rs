//! `difftest` — the differential-fuzzing front door (see
//! `docs/TESTING.md`).
//!
//! ```text
//! difftest [--cases N] [--seed 0xS]      # bounded fuzz suite (default 64 cases)
//! difftest --replay 'seed=0x... gen=...' # re-run one failing case
//! difftest --replay '...' --minimize     # shrink it first, then report
//! difftest --corpus                      # workloads + MiniC snippet corpus
//! ```
//!
//! The suite log is deterministic for a fixed `--seed` (no timing, no
//! host state); CI runs it twice and diffs the bytes. Exit status is
//! non-zero iff any oracle diverged.

use casted_difftest::{minimize, run_case, run_corpus, run_suite, CaseConfig, Hooks, SuiteOptions};

fn usage() -> ! {
    eprintln!(
        "usage: difftest [--cases N] [--seed S] | --replay 'LINE' [--minimize] | --corpus"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = SuiteOptions::default();
    let mut replay: Option<String> = None;
    let mut do_minimize = false;
    let mut do_corpus = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cases" => {
                opts.cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.master_seed = casted_util::prop::parse_seed_token(&v)
                    .unwrap_or_else(|| usage());
            }
            "--replay" => replay = Some(args.next().unwrap_or_else(|| usage())),
            "--minimize" => do_minimize = true,
            "--corpus" => do_corpus = true,
            _ => usage(),
        }
    }

    if do_corpus {
        match run_corpus() {
            Ok(checks) => {
                println!("corpus ok checks={checks}");
                return;
            }
            Err(d) => {
                println!("corpus FAIL stage={} \n  {}", d.stage, d.detail);
                std::process::exit(1);
            }
        }
    }

    if let Some(line) = replay {
        let (cfg, stage) = CaseConfig::parse(&line).unwrap_or_else(|e| {
            eprintln!("bad replay line: {e}");
            std::process::exit(2);
        });
        if let Some(s) = &stage {
            println!("replaying {} (recorded stage {s})", cfg.replay_line(None));
        } else {
            println!("replaying {}", cfg.replay_line(None));
        }
        match run_case(&cfg) {
            Ok(rep) => {
                println!(
                    "ok stages={} probes={} digest={:#018x}",
                    rep.stages, rep.probes, rep.digest
                );
                return;
            }
            Err(d) => {
                println!("FAIL stage={}\n  {}", d.stage, d.detail);
                let final_cfg = if do_minimize {
                    let m = minimize(&cfg, &Hooks::default());
                    println!("minimized: {}", m.gen.encode());
                    m
                } else {
                    cfg
                };
                let d2 = run_case(&final_cfg).err();
                let stage2 = d2.as_ref().map(|d| d.stage.clone());
                println!("REPLAY {}", final_cfg.replay_line(stage2.as_deref()));
                // Pretty-print the failing module for debugging.
                let m = casted_ir::testgen::random_module(final_cfg.seed, &final_cfg.gen);
                println!("--- failing module ---\n{m}");
                std::process::exit(1);
            }
        }
    }

    let rep = run_suite(&opts);
    print!("{}", rep.log);
    if !rep.ok() {
        std::process::exit(1);
    }
}
