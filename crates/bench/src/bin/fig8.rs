//! Fig. 8 of the paper: ILP scaling — how each scheme's performance
//! scales with issue width (normalized to the same scheme at issue 1).

use casted::experiments::perf_sweep_with_cache;
use casted::report;

fn main() {
    let opts = casted_bench::parse_args();
    let benchmarks = casted_bench::benchmarks(&opts);
    let mut spec = casted_bench::grid(&opts);
    // Fig. 8 uses one delay; the paper plots scaling curves.
    spec.delays = vec![2];
    let table = perf_sweep_with_cache(&benchmarks, &spec, opts.artifact_cache.as_deref());
    for b in table.benchmarks() {
        println!("{}", report::scaling_panel(&table, &b, &spec.issues, 2));
    }
    casted_bench::maybe_write(&opts, "fig8.csv", &report::perf_csv(&table));
    casted_bench::finish_metrics(&opts);
}
