//! Fig. 9 of the paper: fault coverage for all benchmarks at
//! issue-width 2, delay 2, with 300 Monte-Carlo injections per
//! (benchmark, scheme), classified into the paper's five outcome
//! classes plus `Corrected` (TMRED's repaired strikes). All six
//! schemes are swept — the four paper schemes and the two
//! recovery-capable ones (docs/SCHEMES.md); `--quick` additionally
//! sweeps the 4-cluster machine grid next to the paper's 2-cluster
//! one.

use casted::experiments::{coverage_sweep_incremental, coverage_sweep_with, GridSpec};
use casted::report;
use casted_faults::CampaignConfig;

fn main() {
    let opts = casted_bench::parse_args();
    let benchmarks = casted_bench::benchmarks(&opts);
    let spec = GridSpec {
        issues: vec![2],
        delays: vec![2],
        schemes: casted::Scheme::FULL.to_vec(),
        clusters: if opts.quick { vec![2, 4] } else { vec![2] },
    };
    let campaign = CampaignConfig {
        trials: opts.trials,
        ..Default::default()
    };
    eprintln!(
        "fault campaign: {} benchmarks x {} schemes x {} trials ({}) ...",
        benchmarks.len(),
        spec.schemes.len(),
        campaign.trials,
        if opts.incremental {
            "incremental section cache"
        } else {
            opts.engine.name()
        }
    );
    let points = if opts.incremental {
        coverage_sweep_incremental(&benchmarks, &spec, &campaign, &opts.section_cache)
    } else {
        coverage_sweep_with(&benchmarks, &spec, &campaign, opts.engine)
    };
    println!("{}", report::coverage_panel(&points));
    casted_bench::maybe_write(&opts, "fig9.csv", &report::coverage_csv(&points));

    // Shape checks the paper's Fig. 9 commentary makes.
    for p in points.iter().filter(|p| p.scheme != casted::Scheme::Noed) {
        let det = p.tally.fraction(casted_faults::Outcome::Detected)
            + p.tally.fraction(casted_faults::Outcome::Exception)
            + p.tally.fraction(casted_faults::Outcome::Benign)
            + p.tally.fraction(casted_faults::Outcome::Corrected);
        assert!(
            det > 0.85,
            "{} {}: protected scheme leaves too many unsafe outcomes",
            p.benchmark,
            p.scheme.name()
        );
    }
    println!("All protected schemes keep DataCorrupt+Timeout below 15% per cell.");
    casted_bench::finish_metrics(&opts);
}
