//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. **Check encoding**: the paper's `cmp.ne` + `br.detect` pair vs a
//!    fused single-slot `chk.ne` — how much of the ED overhead is the
//!    two-instruction encoding (and the sequential-check effect)?
//! 2. **Check mobility**: full adaptive BUG vs BUG with checks pinned
//!    to the redundant cluster — what is it worth that CASTED can
//!    migrate checks across cores?
//! 3. **Replication scope**: full SWIFT-style replication vs
//!    Shoestring-style selective replication — the performance /
//!    coverage trade-off the related work explores.

use casted::ir::MachineConfig;
use casted::Scheme;
use casted_faults::{run_campaign, CampaignConfig, Outcome};
use casted_passes::errordetect::EdOptions;
use casted_passes::pipeline::{prepare_custom, PrepareOptions};
use casted_passes::Placement;

fn build_custom(
    module: &casted::ir::Module,
    ed: Option<EdOptions>,
    placement: Placement,
    cfg: &MachineConfig,
) -> casted::Prepared {
    prepare_custom(module, Scheme::Casted, ed, placement, cfg, &PrepareOptions::default())
        .expect("prepare")
}

fn main() {
    let opts = casted_bench::parse_args();
    let names = if opts.quick {
        vec!["cjpeg", "h263enc"]
    } else {
        vec!["cjpeg", "h263dec", "h263enc", "197.parser"]
    };
    let cfg = MachineConfig::itanium2_like(2, 2);

    println!("== Ablation 1: check encoding (pair vs fused), CASTED @ issue 2 delay 2 ==");
    println!("{:<12} {:>10} {:>10} {:>8}", "benchmark", "pair", "fused", "delta");
    for name in &names {
        let m = casted_workloads::by_name(name).unwrap().compile().unwrap();
        let pair = build_custom(&m, Some(EdOptions::default()), Placement::Adaptive, &cfg);
        let fused = build_custom(
            &m,
            Some(EdOptions { fused_checks: true, ..Default::default() }),
            Placement::Adaptive,
            &cfg,
        );
        let cp = casted::measure(&pair).stats.cycles;
        let cf = casted::measure(&fused).stats.cycles;
        println!(
            "{:<12} {:>10} {:>10} {:>7.1}%",
            name,
            cp,
            cf,
            100.0 * (cp as f64 / cf as f64 - 1.0)
        );
    }

    println!("\n== Ablation 2: check mobility (adaptive vs pinned-to-cluster-1 checks) ==");
    println!("{:<12} {:>6} {:>10} {:>10} {:>8}", "benchmark", "delay", "mobile", "pinned", "benefit");
    for name in &names {
        let m = casted_workloads::by_name(name).unwrap().compile().unwrap();
        for delay in [1u32, 4] {
            let cfg = MachineConfig::itanium2_like(2, delay);
            let mobile = build_custom(&m, Some(EdOptions::default()), Placement::Adaptive, &cfg);
            let pinned = build_custom(
                &m,
                Some(EdOptions::default()),
                Placement::AdaptivePinnedChecks,
                &cfg,
            );
            let cm = casted::measure(&mobile).stats.cycles;
            let cp = casted::measure(&pinned).stats.cycles;
            println!(
                "{:<12} {:>6} {:>10} {:>10} {:>7.1}%",
                name,
                delay,
                cm,
                cp,
                100.0 * (cp as f64 / cm as f64 - 1.0)
            );
        }
    }

    println!("\n== Ablation 3: replication scope (full vs selective), cycles + coverage ==");
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "full cyc", "sel cyc", "full det", "sel det", "full bad", "sel bad"
    );
    let trials = opts.trials.min(120);
    for name in &names {
        let m = casted_workloads::by_name(name).unwrap().compile().unwrap();
        let full = build_custom(&m, Some(EdOptions::default()), Placement::Adaptive, &cfg);
        let sel = build_custom(
            &m,
            Some(EdOptions { selective: true, ..Default::default() }),
            Placement::Adaptive,
            &cfg,
        );
        let cfull = casted::measure(&full).stats.cycles;
        let csel = casted::measure(&sel).stats.cycles;
        let camp = CampaignConfig { trials, ..Default::default() };
        let rf = run_campaign(&full.sp, &camp);
        let rs = run_campaign(&sel.sp, &camp);
        println!(
            "{:<12} {:>10} {:>10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            name,
            cfull,
            csel,
            100.0 * rf.tally.fraction(Outcome::Detected),
            100.0 * rs.tally.fraction(Outcome::Detected),
            100.0 * (rf.tally.fraction(Outcome::DataCorrupt) + rf.tally.fraction(Outcome::Timeout)),
            100.0 * (rs.tally.fraction(Outcome::DataCorrupt) + rs.tally.fraction(Outcome::Timeout)),
        );
    }
    println!("\n== Ablation 4: if-conversion (branch diamonds -> sel), CASTED @ issue 2 delay 2 ==");
    println!("{:<12} {:>10} {:>10} {:>8}", "benchmark", "plain", "if-conv", "benefit");
    for name in &names {
        let m = casted_workloads::by_name(name).unwrap().compile().unwrap();
        let plain = build_custom(&m, Some(EdOptions::default()), Placement::Adaptive, &cfg);
        let conv = prepare_custom(
            &m,
            Scheme::Casted,
            Some(EdOptions::default()),
            Placement::Adaptive,
            &cfg,
            &PrepareOptions {
                if_convert: true,
                ..Default::default()
            },
        )
        .expect("prepare");
        let cp = casted::measure(&plain).stats.cycles;
        let cc = casted::measure(&conv).stats.cycles;
        println!(
            "{:<12} {:>10} {:>10} {:>7.1}%",
            name,
            cp,
            cc,
            100.0 * (cp as f64 / cc as f64 - 1.0)
        );
    }

    println!("\n(expected: fused <= pair cycles; pinned >= mobile cycles; selective");
    println!(" faster than full but with more undetected-corruption; if-conversion");
    println!(" helps the branchy kernels by enlarging scheduling regions.)");
    casted_bench::finish_metrics(&opts);
}
