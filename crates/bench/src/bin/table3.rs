//! Table III of the paper: compiler-based error-detection schemes.
//! The last three rows are the schemes this repository implements
//! (`casted::Scheme`); the rest are prior work for context.

fn main() {
    let opts = casted_bench::parse_args();
    println!("Table III: compiler-based error detection schemes\n");
    println!("{:<26} {:<32} {:<22} {:<9}", "scheme", "speed-up factors", "target architecture", "placement");
    let rows = [
        ("EDDI [20]", "-", "wide single-core", "fixed"),
        ("SWIFT [23]", "reduction of checking points", "wide single-core", "fixed"),
        ("SHOESTRING [9]", "partial redundancy", "single-core", "fixed"),
        ("Compiler-assisted ED [14]", "partial redundancy", "single-core", "fixed"),
        ("SRMT [34]", "partially synchronized threads", "dual-core", "fixed"),
        ("DAFT [36]", "decoupled threads", "dual-core", "fixed"),
    ];
    for (a, b, c, d) in rows {
        println!("{a:<26} {b:<32} {c:<22} {d:<9}");
    }
    // The implemented schemes, tied to the library's enum.
    use casted::Scheme;
    for s in [Scheme::Sced, Scheme::Dced, Scheme::Casted, Scheme::Tmred, Scheme::Rbed] {
        let (speedup, target, placement) = match s {
            Scheme::Sced => ("(SWIFT-style baseline)", "wide single-core", "fixed"),
            Scheme::Dced => ("(SRMT/DAFT-style baseline)", "dual-core", "fixed"),
            Scheme::Casted => ("adaptivity", "tightly-coupled cores", "adaptive"),
            Scheme::Tmred => ("majority voting (corrects)", "tightly-coupled cores", "adaptive"),
            Scheme::Rbed => ("replay digest, zero overhead", "single-core + replays", "fixed"),
            Scheme::Noed => unreachable!(),
        };
        println!("{:<26} {:<32} {:<22} {:<9}   [implemented: Scheme::{:?}]", s.name(), speedup, target, placement, s);
    }
    casted_bench::finish_metrics(&opts);
}
