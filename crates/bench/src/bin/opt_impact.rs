//! §IV-A methodology validation: the paper turns off the late CSE/DCE
//! stages after the CASTED passes, citing (a) negligible performance
//! impact (0.3% average, 1.5% worst) and (b) the danger of the
//! optimizer removing the replicated code.
//!
//! This binary measures both halves on our stack:
//!
//! * Part A — late **DCE** (which is redundancy-safe: duplicates stay
//!   live through the checks) is applied after error detection; the
//!   cycle delta vs the normal pipeline bounds what disabling late
//!   optimization costs.
//! * Part B — late **CSE** is applied after error detection; local
//!   value numbering sees through the isolation copies, merges each
//!   duplicate with its original, and the fault-detection rate
//!   collapses — exactly why the paper (and SWIFT) must disable it.

use casted::ir::MachineConfig;
use casted::Scheme;
use casted_faults::{run_campaign, CampaignConfig, Outcome};
use casted_passes::opt;
use casted_passes::pipeline::{prepare_custom, PrepareOptions};
use casted_passes::Placement;

fn main() {
    let opts = casted_bench::parse_args();
    let names = if opts.quick {
        vec!["cjpeg", "181.mcf"]
    } else {
        vec!["cjpeg", "h263dec", "mpeg2dec", "h263enc", "175.vpr", "181.mcf", "197.parser"]
    };
    let cfg = MachineConfig::itanium2_like(2, 2);
    let trials = opts.trials.min(150);

    println!("== Part A: cycle cost of *disabling* late DCE after the CASTED passes ==");
    println!("{:<12} {:>12} {:>12} {:>8}", "benchmark", "no late DCE", "late DCE", "cost");
    let mut costs = Vec::new();
    for name in &names {
        let base = casted_workloads::by_name(name).unwrap().compile().unwrap();

        // Normal pipeline: ED, no late optimization (the paper's setup).
        let mut m_off = base.clone();
        casted_passes::error_detection(&mut m_off);
        let off = prepare_custom(&m_off, Scheme::Casted, None, Placement::Adaptive, &cfg, &PrepareOptions::default()).unwrap();
        let c_off = casted::measure(&off).stats.cycles;

        // Hypothetical pipeline: ED then late DCE (safe w.r.t. redundancy).
        let mut m_on = base.clone();
        casted_passes::error_detection(&mut m_on);
        let removed = opt::dce(m_on.entry_fn_mut());
        let on = prepare_custom(&m_on, Scheme::Casted, None, Placement::Adaptive, &cfg, &PrepareOptions::default()).unwrap();
        let c_on = casted::measure(&on).stats.cycles;

        let cost = 100.0 * (c_off as f64 / c_on as f64 - 1.0);
        costs.push(cost);
        println!("{:<12} {:>12} {:>12} {:>7.2}%   ({} insns DCE'd)", name, c_off, c_on, cost, removed);
    }
    let avg = costs.iter().sum::<f64>() / costs.len() as f64;
    let max = costs.iter().cloned().fold(f64::MIN, f64::max);
    println!("average cost {avg:.2}% (paper: 0.3%), worst {max:.2}% (paper: 1.5%)\n");

    println!("== Part B: what late CSE after error detection does to coverage ==");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "det (off)", "det (CSE)", "corrupt(off)", "corrupt(CSE)"
    );
    for name in names.iter().take(if opts.quick { 2 } else { 4 }) {
        let base = casted_workloads::by_name(name).unwrap().compile().unwrap();

        let mut m_off = base.clone();
        casted_passes::error_detection(&mut m_off);
        let off = prepare_custom(&m_off, Scheme::Casted, None, Placement::Adaptive, &cfg, &PrepareOptions::default()).unwrap();

        let mut m_cse = base.clone();
        casted_passes::error_detection(&mut m_cse);
        opt::local_cse(m_cse.entry_fn_mut());
        opt::dce(m_cse.entry_fn_mut());
        let cse = prepare_custom(&m_cse, Scheme::Casted, None, Placement::Adaptive, &cfg, &PrepareOptions::default()).unwrap();

        let camp = CampaignConfig { trials, ..Default::default() };
        let r_off = run_campaign(&off.sp, &camp);
        let r_cse = run_campaign(&cse.sp, &camp);
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}%",
            name,
            100.0 * r_off.tally.fraction(Outcome::Detected),
            100.0 * r_cse.tally.fraction(Outcome::Detected),
            100.0 * r_off.tally.fraction(Outcome::DataCorrupt),
            100.0 * r_cse.tally.fraction(Outcome::DataCorrupt),
        );
    }
    println!("\n(late CSE merges each duplicated computation — including duplicated");
    println!(" loads — with its original; faults striking the now-shared computation");
    println!(" evade the checks, so detection drops and silent corruption returns in");
    println!(" compute-dense code. This is why the paper, like SWIFT, disables the");
    println!(" post-CASTED optimization stages.)");
    casted_bench::finish_metrics(&opts);
}
