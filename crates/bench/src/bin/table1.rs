//! Table I of the paper: the processor configuration.

fn main() {
    let opts = casted_bench::parse_args();
    println!("Table I: processor configuration (IA64-style clustered VLIW)\n");
    for issue in if opts.quick { vec![2] } else { vec![1, 2, 3, 4] } {
        for delay in if opts.quick { vec![2] } else { vec![1, 2, 3, 4] } {
            if issue == 2 && delay == 2 || !opts.quick && issue == 1 && delay == 1 {
                let cfg = casted::ir::MachineConfig::itanium2_like(issue, delay);
                println!("issue-width {issue}, inter-core delay {delay}:");
                println!("{cfg}");
            }
        }
    }
    println!("(issue-width and inter-core delay sweep over 1..=4 in the evaluation)");
    casted_bench::finish_metrics(&opts);
}
