//! Replay-based error detection (RBED) support: chunk digest plans.
//!
//! RBED (after RepTFD, see PAPERS.md) detects transient faults with
//! **no code transformation at all**: the scheduled program runs
//! unmodified, the machine accumulates a running FNV-64 digest of
//! every retired result (load results, pure-op results, stored
//! values, emitted output), and at a small number of **chunk
//! boundaries** the digest is compared against the golden run's
//! digest at the same point. A mismatch means some computed value
//! differed from the fault-free execution — the replay-detection
//! verdict — and the run finishes `Detected`, exactly like a fired
//! `DetectBr`.
//!
//! Boundaries are **dynamic-instruction counts**, not program points:
//! the golden boundary at `b` is crossed when the `b`-th instruction
//! retires, which a faulty run always does exactly once (retirement
//! is one instruction at a time) no matter how far its control flow
//! diverged. Cuts are placed at golden block entries using the same
//! partitioning rule as [`crate::section`] (span target
//! `max(MIN_SECTION_SPAN, golden_dyn / MAX_SECTIONS)`), purely as a
//! granularity heuristic — correctness never depends on where the
//! cuts land. The final boundary is always `golden_dyn`, so a run
//! that halts early still has an unconsumed boundary and is reported
//! `Detected` at its halt (truncation detection), and the golden run
//! itself consumes every boundary exactly at its own halt.
//!
//! What the digest does *not* see: the flipped victim register itself
//! (the digest absorbs the **computed** value, before the injector's
//! post-writeback flip), so a strike whose corrupted value is never
//! read back into a computation stays `Benign` — dead faults are not
//! false positives. Conversely a fault is detected only once it
//! produces a *different computed value*; classification soundness
//! rests on the same 64-bit anti-collision argument as the
//! checkpoint engine's convergence fingerprints (and is continuously
//! cross-checked by the three-engine byte-identity gates).

use std::sync::Arc;

use casted_ir::vliw::ScheduledProgram;
use casted_util::hash::Fnv64;

use crate::machine::{run_machine, Boundary, MachineState, SimOptions};
use crate::section::{MAX_SECTIONS, MIN_SECTION_SPAN};

/// A chunk-digest plan: the boundary schedule plus, once recorded,
/// the golden digest at each boundary.
#[derive(Clone, Debug)]
pub struct RbedPlan {
    /// Strictly increasing dynamic-instruction counts; the last entry
    /// is the golden run's dynamic length. Empty only for the
    /// degenerate zero-length program.
    pub bounds: Vec<u64>,
    /// Golden digest at each boundary crossing. Empty while the plan
    /// is being recorded; same length as `bounds` afterwards.
    pub digests: Vec<u64>,
}

impl RbedPlan {
    /// True once golden digests have been recorded (check mode).
    pub fn is_check(&self) -> bool {
        !self.digests.is_empty()
    }
}

/// Per-run digest accumulator carried inside [`MachineState`] so that
/// checkpoint snapshots and batch-lane leaders resume it exactly.
#[derive(Clone)]
pub(crate) struct RbedState {
    /// Running digest of every retired result so far.
    pub(crate) acc: Fnv64,
    /// Index of the next unconsumed boundary in `plan.bounds`.
    pub(crate) next: usize,
    pub(crate) plan: Arc<RbedPlan>,
    /// Digests captured at each crossing (record mode only).
    pub(crate) recorded: Vec<u64>,
}

impl RbedState {
    pub(crate) fn new(plan: Arc<RbedPlan>) -> Self {
        RbedState {
            acc: Fnv64::new(),
            next: 0,
            plan,
            recorded: Vec::new(),
        }
    }
}

/// Build the check-mode plan for `sp` in two quiet golden passes:
/// one to place boundaries at golden block entries, one to record the
/// golden digest at each crossing. `golden_dyn` is the golden run's
/// dynamic length (the campaign already has it from its golden run).
pub fn rbed_plan(sp: &ScheduledProgram, golden_dyn: u64) -> Arc<RbedPlan> {
    let mut bounds = Vec::new();
    if golden_dyn > 0 {
        let span_target = (golden_dyn / MAX_SECTIONS as u64).max(MIN_SECTION_SPAN);
        let mut last = 0u64;
        let mut st = MachineState::fresh(sp);
        run_machine(
            sp,
            &SimOptions::default(),
            &mut st,
            false,
            &mut |st: &MachineState| {
                let dyn_insns = st.stats.dyn_insns;
                if st.bundle_idx == 0
                    && dyn_insns > last
                    && dyn_insns - last >= span_target
                    && dyn_insns < golden_dyn
                    && bounds.len() + 1 < MAX_SECTIONS
                {
                    bounds.push(dyn_insns);
                    last = dyn_insns;
                }
                Boundary::Continue
            },
        )
        .expect("golden boundary capture cannot be stopped by the hook");
        bounds.push(golden_dyn);
    }

    // Record pass: rerun with the digest machinery on and no golden
    // digests yet; every crossing appends to `recorded`.
    let record = Arc::new(RbedPlan {
        bounds: bounds.clone(),
        digests: Vec::new(),
    });
    let mut st = MachineState::fresh(sp);
    let opts = SimOptions {
        rbed: Some(record),
        ..SimOptions::default()
    };
    run_machine(sp, &opts, &mut st, false, &mut |_| Boundary::Continue)
        .expect("no boundary hook can stop this run");
    let digests = st
        .rbed
        .take()
        .map(|r| r.recorded)
        .unwrap_or_default();
    debug_assert_eq!(
        digests.len(),
        bounds.len(),
        "golden run must cross every boundary exactly once"
    );
    Arc::new(RbedPlan { bounds, digests })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::StopReason;
    use casted_ir::vliw::{Bundle, ScheduledBlock};
    use casted_ir::{CmpKind, Cluster, FunctionBuilder, MachineConfig, Module, Opcode, Operand};
    use std::collections::HashMap;

    use crate::machine::{simulate_quiet, Injection};

    fn sequential(m: &Module, config: MachineConfig) -> ScheduledProgram {
        let func = m.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = HashMap::new();
        let mut blocks = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let mut bundles = Vec::new();
            for &iid in &block.insns {
                assignment[iid.index()] = Some(Cluster::MAIN);
                for &d in &func.insn(iid).defs {
                    home.entry(d).or_insert(Cluster::MAIN);
                }
                let mut b = Bundle::empty(config.clusters);
                b.slots[0].push(iid);
                bundles.push(b);
            }
            blocks.push(ScheduledBlock { block: bid, bundles });
        }
        ScheduledProgram {
            module: m.clone(),
            config,
            assignment,
            home,
            blocks,
        }
    }

    fn looping_module(iters: i64) -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(i));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(iters));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn plan_bounds_tile_and_end_at_golden_dyn() {
        let m = looping_module(200);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let golden = simulate_quiet(&sp, &SimOptions::default());
        let plan = rbed_plan(&sp, golden.stats.dyn_insns);
        assert!(plan.is_check());
        assert!(plan.bounds.len() > 1, "expected a multi-chunk plan");
        assert_eq!(*plan.bounds.last().unwrap(), golden.stats.dyn_insns);
        assert_eq!(plan.digests.len(), plan.bounds.len());
        for w in plan.bounds.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn zero_fault_checked_run_matches_golden() {
        let m = looping_module(120);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let golden = simulate_quiet(&sp, &SimOptions::default());
        let plan = rbed_plan(&sp, golden.stats.dyn_insns);
        let r = simulate_quiet(
            &sp,
            &SimOptions {
                rbed: Some(plan),
                ..SimOptions::default()
            },
        );
        assert_eq!(r.stop, golden.stop, "digest checks must pass fault-free");
        assert_eq!(r.stream.len(), golden.stream.len());
        assert!(r.stream.iter().zip(&golden.stream).all(|(a, b)| a.bit_eq(b)));
        assert_eq!(r.stats.cycles, golden.stats.cycles, "RBED adds no cycles");
    }

    #[test]
    fn digest_divergence_is_detected() {
        let m = looping_module(200);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let golden = simulate_quiet(&sp, &SimOptions::default());
        let plan = rbed_plan(&sp, golden.stats.dyn_insns);
        // Strike the accumulator mid-run: the corrupted value feeds
        // the next add, so the digest diverges at the next boundary.
        let mut detected = 0usize;
        for at in [50u64, 200, 400] {
            let r = simulate_quiet(
                &sp,
                &SimOptions {
                    max_cycles: golden.stats.cycles * 10,
                    injection: Some(Injection::single(at, 40, None)),
                    rbed: Some(plan.clone()),
                    ..SimOptions::default()
                },
            );
            if r.stop == StopReason::Detected {
                detected += 1;
            }
        }
        assert!(detected > 0, "no accumulator strike was replay-detected");
    }

    #[test]
    fn early_halt_with_unconsumed_boundary_is_detected() {
        // Flip the loop predicate so the run exits the loop early: the
        // final boundary at golden_dyn is never crossed, so the halt
        // is converted to Detected (truncation detection).
        let m = looping_module(300);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let golden = simulate_quiet(&sp, &SimOptions::default());
        let plan = rbed_plan(&sp, golden.stats.dyn_insns);
        let mut hit = false;
        for at in 1..=golden.stats.dyn_insns {
            let r = simulate_quiet(
                &sp,
                &SimOptions {
                    max_cycles: golden.stats.cycles * 10,
                    injection: Some(Injection::single(at, 0, None)),
                    rbed: Some(plan.clone()),
                    ..SimOptions::default()
                },
            );
            let unchecked = simulate_quiet(
                &sp,
                &SimOptions {
                    max_cycles: golden.stats.cycles * 10,
                    injection: Some(Injection::single(at, 0, None)),
                    ..SimOptions::default()
                },
            );
            // Wherever the unchecked run halts with truncated output,
            // the checked run must flag it.
            if matches!(unchecked.stop, StopReason::Halt(_))
                && unchecked.stats.dyn_insns < golden.stats.dyn_insns
            {
                assert_eq!(r.stop, StopReason::Detected, "site {at}");
                hit = true;
            }
        }
        assert!(hit, "no early-halt site found");
    }
}
