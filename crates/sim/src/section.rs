//! Section capture and bounded in-span trial execution — the
//! simulator half of the compositional (incremental) fault-campaign
//! layer in `casted-faults` (FastFlip's observation applied to our
//! Monte-Carlo campaigns: per-section injection results compose, so
//! only changed sections need re-injection).
//!
//! A **section** is a contiguous span of the golden dynamic trace,
//! cut at golden block entries: bounds `b_0 = 0 < b_1 < … < b_S =
//! golden_dyn`, where section `j` owns the injection sites in
//! `(b_j, b_{j+1}]`. The partition is a *performance* choice only —
//! results never depend on where the cuts land:
//!
//! * A trial whose site lies in section `j` starts from the golden
//!   machine state at `b_j` instructions retired (strictly before the
//!   site, so the landing condition `dyn_insns >= at` reproduces the
//!   full run's landing exactly — the same argument `checkpoint.rs`
//!   makes for its snapshots, which are states of the very same run).
//! * The trial executes **bounded to its span**: it may converge with
//!   the golden run at an in-span fingerprint sample (Benign, the
//!   checkpoint engine's pruning argument), stop naturally in-span
//!   (its [`SimResult`] is bit-identical to a full run's), or
//!   **escape** past `b_{j+1}` still diverged — in which case the
//!   campaign layer replays that one trial against the whole-program
//!   golden trace, i.e. falls back to the checkpointed-engine path.
//!
//! Every per-trial outcome is therefore exactly the outcome the
//! reference engine computes, for *any* partition — which is what
//! lets `casted-faults::sections` cache per-section results on disk
//! and recombine them byte-identically (see `docs/INCREMENTAL.md`
//! for the full exactness argument).
//!
//! The capture also exports, per scheduled block, a **code hash** and
//! a **live-in-mask hash** ([`block_validation_hashes`]): a cached
//! section record lists the blocks its golden span and its trials
//! visited, and a cache hit additionally requires those blocks'
//! hashes to be unchanged — the invalidation rule that makes reuse
//! after an edit sound.

use std::collections::{BTreeSet, HashMap};

use casted_ir::interp::OutVal;
use casted_ir::vliw::ScheduledProgram;
use casted_ir::{Reg, RegClass};
use casted_util::hash::Fnv64;

use crate::checkpoint::{fingerprint, live_in_masks, LiveMask};
use crate::machine::{run_machine, Boundary, Injection, MachineState, SimOptions, SimResult};

/// Upper bound on sections per program. More sections mean finer
/// reuse after an edit but more start-state clones resident during a
/// campaign; 64 keeps the footprint comparable to the checkpoint
/// engine's snapshot budget.
pub const MAX_SECTIONS: usize = 64;

/// Minimum dynamic-instruction span of a section; tiny programs get a
/// single section rather than per-block confetti.
pub const MIN_SECTION_SPAN: u64 = 32;

/// Convergence checks a bounded trial attempts before giving up (the
/// same cap as the checkpoint engine's replay, for the same reason:
/// trials still diverged after this many full-state fingerprints
/// almost never re-converge). Affects only speed — an unconverged
/// trial either stops in-span or escapes to a whole-program replay.
const MAX_CONVERGENCE_ATTEMPTS: u32 = 8;

/// One section of the golden dynamic trace.
pub struct Section {
    /// Exclusive lower bound: sites `lo < at <= hi` belong here.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Unmasked digest of the section-start machine state — the part
    /// of the cache key that binds "everything upstream".
    pub start_digest: u64,
    /// Blocks the golden run visits inside `(lo, hi]`, plus the block
    /// whose entry closes the span (its live-in mask shapes the exit
    /// fingerprint).
    pub golden_blocks: Vec<u32>,
    /// Golden machine state at `lo` retired instructions (a block
    /// entry; the power-on state for section 0).
    start: MachineState,
    /// Masked golden fingerprints at sampled in-span block entries
    /// (keyed by dynamic-instruction count), including the exit
    /// fingerprint at `hi` for every section but the last.
    fingerprints: HashMap<u64, u64>,
}

/// The section plan plus everything a bounded trial run needs.
pub struct SectionCapture {
    /// Sections in trace order; `sections[0].lo == 0` and
    /// `sections.last().hi == golden_dyn`.
    pub sections: Vec<Section>,
    live: Vec<LiveMask>,
}

impl SectionCapture {
    /// Index of the section owning injection site `at` (1-based sites;
    /// callers guarantee `1 <= at <= golden_dyn`).
    pub fn section_of(&self, at: u64) -> usize {
        self.sections
            .partition_point(|s| s.hi < at)
            .min(self.sections.len() - 1)
    }
}

/// How one bounded (in-span) trial run ended.
pub enum SectionTrial {
    /// The trial stopped naturally inside its span. The result is
    /// bit-identical to a full run of the same injection (same
    /// replay-exactness argument as the checkpoint engine).
    Finished(SimResult),
    /// The post-injection state re-converged with the golden run at an
    /// in-span sample: provably Benign.
    Converged,
    /// The trial left its span still diverged (or with the injection
    /// still pending). No in-span conclusion is possible; the caller
    /// must replay it against the whole-program golden trace.
    Escaped,
}

/// Capture the section plan for `sp` in one quiet golden pass.
///
/// `golden_dyn` is the golden run's dynamic length (the caller has it
/// from its golden trace; passing it in pins the partition to the
/// same run and sizes the spans). Cuts are placed at golden block
/// entries once the open span reaches
/// `max(MIN_SECTION_SPAN, golden_dyn / MAX_SECTIONS)` retired
/// instructions; in-span fingerprints are sampled at a quarter of
/// that target (floored), and at every cut.
pub fn capture_sections(sp: &ScheduledProgram, golden_dyn: u64) -> SectionCapture {
    let live = live_in_masks(sp);
    let span_target = (golden_dyn / MAX_SECTIONS as u64).max(MIN_SECTION_SPAN);
    let cadence = (span_target / 4).max(16);

    let mut sections: Vec<Section> = Vec::new();
    let mut st = MachineState::fresh(sp);
    let mut cur_start = st.clone();
    let mut cur_lo = 0u64;
    let mut cur_fps: HashMap<u64, u64> = HashMap::new();
    let mut cur_blocks: BTreeSet<u32> = BTreeSet::new();
    let mut next_sample = cadence;

    run_machine(
        sp,
        &SimOptions::default(),
        &mut st,
        false,
        &mut |st: &MachineState| {
            let dyn_insns = st.stats.dyn_insns;
            if st.bundle_idx == 0 {
                if dyn_insns > cur_lo
                    && dyn_insns - cur_lo >= span_target
                    && sections.len() + 1 < MAX_SECTIONS
                {
                    // Cut here: this block entry closes the open
                    // section. Its masked fingerprint is the closing
                    // section's exit sample (convergence exactly at
                    // the boundary still counts), so the entered
                    // block's live mask belongs to *both* sections'
                    // validation sets.
                    let fp = fingerprint(st, &live[st.block.index()]);
                    cur_fps.insert(dyn_insns, fp);
                    cur_blocks.insert(st.block.index() as u32);
                    sections.push(Section {
                        lo: cur_lo,
                        hi: dyn_insns,
                        start_digest: full_state_digest(sp, &cur_start),
                        golden_blocks: cur_blocks.iter().copied().collect(),
                        start: std::mem::replace(&mut cur_start, st.clone()),
                        fingerprints: std::mem::take(&mut cur_fps),
                    });
                    cur_blocks.clear();
                    cur_lo = dyn_insns;
                    next_sample = dyn_insns + cadence;
                } else if dyn_insns >= next_sample {
                    cur_fps.insert(dyn_insns, fingerprint(st, &live[st.block.index()]));
                    next_sample = dyn_insns + cadence;
                }
            }
            cur_blocks.insert(st.block.index() as u32);
            Boundary::Continue
        },
    )
    .expect("golden section capture cannot be stopped by the hook");
    // The final control position: covers the empty-block fallthrough,
    // which stops without a bundle-boundary hook call.
    cur_blocks.insert(st.block.index() as u32);

    sections.push(Section {
        lo: cur_lo,
        hi: golden_dyn,
        start_digest: full_state_digest(sp, &cur_start),
        golden_blocks: cur_blocks.into_iter().collect(),
        start: cur_start,
        fingerprints: cur_fps,
    });

    SectionCapture { sections, live }
}

/// Run one injection trial bounded to its section.
///
/// Returns the trial verdict plus the set of blocks the run visited —
/// the cache-validation surface: a cached verdict for this trial is
/// reusable exactly when the section key matches *and* every visited
/// block's code and live-in mask are unchanged (then the bounded run
/// on the edited program is instruction-for-instruction identical, so
/// its verdict is too).
pub fn run_section_trial(
    sp: &ScheduledProgram,
    capture: &SectionCapture,
    section: usize,
    inj: Injection,
    max_cycles: u64,
) -> (SectionTrial, Vec<u32>) {
    let sec = &capture.sections[section];
    debug_assert!(
        inj.at_dyn_insn > sec.lo && inj.at_dyn_insn <= sec.hi,
        "site {} outside section ({}, {}]",
        inj.at_dyn_insn,
        sec.lo,
        sec.hi
    );
    let mut st = sec.start.clone();
    let opts = SimOptions {
        max_cycles,
        injection: Some(inj),
        ..SimOptions::default()
    };
    let mut attempts = 0u32;
    let mut converged = false;
    let mut visited: BTreeSet<u32> = BTreeSet::new();
    let finished = run_machine(sp, &opts, &mut st, false, &mut |st: &MachineState| {
        visited.insert(st.block.index() as u32);
        let dyn_insns = st.stats.dyn_insns;
        if st.injected && st.bundle_idx == 0 && attempts < MAX_CONVERGENCE_ATTEMPTS {
            if let Some(&golden_fp) = sec.fingerprints.get(&dyn_insns) {
                attempts += 1;
                if golden_fp == fingerprint(st, &capture.live[st.block.index()]) {
                    converged = true;
                    return Boundary::Stop;
                }
            }
        }
        if dyn_insns >= sec.hi {
            // Past the span (this includes the injection still
            // *pending* — a strike that slid beyond the boundary):
            // nothing in-span can classify this trial.
            return Boundary::Stop;
        }
        Boundary::Continue
    });
    // Final position, for the no-hook fallthrough stop (see capture).
    visited.insert(st.block.index() as u32);

    let verdict = match finished {
        Some(result) => SectionTrial::Finished(result),
        None if converged => SectionTrial::Converged,
        None => SectionTrial::Escaped,
    };
    (verdict, visited.into_iter().collect())
}

/// Per-block `(code_hash, live_mask_hash)` on the current program —
/// the section store's validation vocabulary. The code hash covers
/// the scheduled bundles (slot clusters and every instruction field);
/// the mask hash covers the block's live-in register masks, which an
/// edit *elsewhere* in the CFG can change even when the block's own
/// code did not (liveness flows backward), and which the convergence
/// fingerprints depend on.
pub fn block_validation_hashes(sp: &ScheduledProgram) -> Vec<(u64, u64)> {
    let live = live_in_masks(sp);
    let func = sp.module.entry_fn();
    sp.blocks
        .iter()
        .enumerate()
        .map(|(i, sb)| {
            let mut h = Fnv64::new();
            h.write_u64(i as u64);
            h.write_u64(sb.bundles.len() as u64);
            for bundle in &sb.bundles {
                // Bundle separator: two bundles of one insn must hash
                // differently from one bundle of two.
                h.write_u64(u64::MAX);
                for (cluster, iid) in bundle.iter() {
                    h.write_u64(cluster.0 as u64);
                    // The Debug form covers every Insn field (opcode
                    // incl. compare kind, defs, uses with exact
                    // immediates, memory offset, branch targets,
                    // provenance) and is injective on values.
                    h.write(format!("{:?}", func.insn(iid)).as_bytes());
                }
            }
            let code = h.finish();

            let mut h = Fnv64::new();
            for (class, tag) in [(RegClass::Gp, 1u64), (RegClass::Fp, 2), (RegClass::Pr, 3)] {
                h.write_u64(tag);
                for &word in live[i].class_bits(class) {
                    h.write_u64(word);
                }
            }
            (code, h.finish())
        })
        .collect()
}

/// Unmasked FNV-64 digest of a complete machine state: every register
/// of every class (value + scoreboard entry), all nonzero memory, the
/// emitted stream, pending MSHR entries, cache tags/stamps and the
/// control position. Unlike the convergence fingerprint this masks
/// nothing — section-start states must bind *everything*, because the
/// cache key has no liveness information about what a cached trial
/// later read. Digest equality ⇒ the states behave identically (up to
/// the 64-bit collision bound shared with convergence pruning and
/// continuously cross-checked by the difftest oracle).
fn full_state_digest(sp: &ScheduledProgram, st: &MachineState) -> u64 {
    let func = sp.module.entry_fn();
    let mut h = Fnv64::new();
    h.write_u64_round(st.cycle);
    h.write_u64_round(st.block.index() as u64);
    h.write_u64_round(st.bundle_idx as u64);
    h.write_u64_round(st.stats.dyn_insns);
    // Scheme-observable extras: TMRED's correction count and RBED's
    // running digest are both part of what a resumed run can expose.
    h.write_u64_round(st.stats.corrections);
    if let Some(rb) = st.rbed.as_deref() {
        h.write_u64_round(rb.acc.finish());
        h.write_u64_round(rb.next as u64);
    }

    for (class, tag) in [(RegClass::Gp, 1u64), (RegClass::Fp, 2), (RegClass::Pr, 3)] {
        h.write_u64_round(tag);
        let n = func.reg_count(class);
        h.write_u64_round(n as u64);
        for index in 0..n {
            let r = Reg { class, index };
            match st.rf.get(r) {
                casted_ir::semantics::Val::I(v) => h.write_u64_round(v as u64),
                casted_ir::semantics::Val::F(v) => h.write_u64_round(v.to_bits()),
                casted_ir::semantics::Val::B(v) => h.write_u64_round(v as u64),
            }
            let (avail, writer) = st.ready.get(r);
            h.write_u64_round(avail);
            h.write_u64_round(writer as u64);
        }
    }

    for i in 0..st.mem.len_words() {
        let w = st.mem.word(i);
        if w != 0 {
            h.write_u64_round(i as u64);
            h.write_u64_round(w as u64);
        }
    }

    h.write_u64_round(st.stream.len() as u64);
    for v in &st.stream {
        match v {
            OutVal::Int(i) => {
                h.write_u64_round(0);
                h.write_u64_round(*i as u64);
            }
            OutVal::Float(f) => {
                h.write_u64_round(1);
                h.write_u64_round(f.to_bits());
            }
        }
    }

    // Entries at or below the current cycle are semantically dead (the
    // next miss's retain() drops them before they queue anything);
    // skipping them avoids spurious key misses, exactly mirroring the
    // convergence fingerprint.
    for &c in &st.mshr {
        if c > st.cycle {
            h.write_u64_round(c);
        }
    }

    st.cache.fingerprint_into(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::golden_with_checkpoints;
    use casted_ir::vliw::{Bundle, ScheduledBlock};
    use casted_ir::{CmpKind, Cluster, FunctionBuilder, MachineConfig, Module, Opcode, Operand};
    use std::collections::HashMap as Map;

    fn sequential(m: &Module, config: MachineConfig) -> ScheduledProgram {
        let func = m.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = Map::new();
        let mut blocks = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let mut bundles = Vec::new();
            for &iid in &block.insns {
                assignment[iid.index()] = Some(Cluster::MAIN);
                for &d in &func.insn(iid).defs {
                    home.entry(d).or_insert(Cluster::MAIN);
                }
                let mut b = Bundle::empty(config.clusters);
                b.slots[0].push(iid);
                bundles.push(b);
            }
            blocks.push(ScheduledBlock { block: bid, bundles });
        }
        ScheduledProgram {
            module: m.clone(),
            config,
            assignment,
            home,
            blocks,
        }
    }

    fn looping_module(iters: i64) -> Module {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 16, (0..16).collect());
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let base = b.imm(addr);
        let m16 = b.binop(Opcode::And, Operand::Reg(i), Operand::Imm(15));
        let sh = b.binop(Opcode::Shl, Operand::Reg(m16), Operand::Imm(3));
        let ea = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(sh));
        let v = b.load(ea, 0);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(v));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(iters));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn partition_tiles_the_trace_exactly() {
        let m = looping_module(300);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let t = golden_with_checkpoints(&sp);
        let cap = capture_sections(&sp, t.result.stats.dyn_insns);
        assert!(cap.sections.len() > 1, "expected a multi-section plan");
        assert!(cap.sections.len() <= MAX_SECTIONS);
        assert_eq!(cap.sections[0].lo, 0);
        assert_eq!(cap.sections.last().unwrap().hi, t.result.stats.dyn_insns);
        for w in cap.sections.windows(2) {
            assert_eq!(w[0].hi, w[1].lo, "sections must tile without gaps");
            assert!(w[0].lo < w[0].hi);
        }
        // Every 1-based site maps into exactly the section owning it.
        for at in 1..=t.result.stats.dyn_insns {
            let j = cap.section_of(at);
            assert!(cap.sections[j].lo < at && at <= cap.sections[j].hi, "site {at}");
        }
    }

    /// The headline exactness property at the sim layer: for every
    /// site and bit, the bounded in-span run either produces the
    /// exact full-run result, proves Benign, or escapes — and an
    /// escaped trial's whole-program replay equals the full run.
    #[test]
    fn bounded_trials_agree_with_scratch_runs() {
        let m = looping_module(80);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let t = golden_with_checkpoints(&sp);
        let golden_dyn = t.result.stats.dyn_insns;
        let cap = capture_sections(&sp, golden_dyn);
        let max_cycles = t.result.stats.cycles * 10;
        for k in 0..60u64 {
            let at = 1 + (k * 5) % golden_dyn;
            let inj = Injection::single(at, (k % 64) as u32, None);
            let scratch = crate::machine::simulate_quiet(
                &sp,
                &SimOptions {
                    max_cycles,
                    injection: Some(inj),
                    ..SimOptions::default()
                },
            );
            let (verdict, visited) = run_section_trial(&sp, &cap, cap.section_of(at), inj, max_cycles);
            assert!(!visited.is_empty());
            match verdict {
                SectionTrial::Finished(r) => {
                    assert_eq!(r.stop, scratch.stop, "site {at}");
                    assert_eq!(r.stream.len(), scratch.stream.len());
                    assert!(r.stream.iter().zip(&scratch.stream).all(|(a, b)| a.bit_eq(b)));
                }
                SectionTrial::Converged => {
                    // Convergence claims Benign: the scratch run must
                    // agree (same halt, bit-equal stream as golden).
                    assert_eq!(scratch.stop, t.result.stop, "site {at} pruned non-benign");
                    assert!(scratch
                        .stream
                        .iter()
                        .zip(&t.result.stream)
                        .all(|(a, b)| a.bit_eq(b)));
                }
                SectionTrial::Escaped => {
                    // The whole-program replay path is the fallback.
                    let (run, _) = crate::checkpoint::replay_trial(&sp, &t, inj, max_cycles);
                    match run {
                        crate::checkpoint::TrialRun::Finished(r) => {
                            assert_eq!(r.stop, scratch.stop, "site {at}");
                            assert!(r.stream.iter().zip(&scratch.stream).all(|(a, b)| a.bit_eq(b)));
                        }
                        crate::checkpoint::TrialRun::Converged => {
                            assert_eq!(scratch.stop, t.result.stop, "site {at}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn validation_hashes_pin_code_and_liveness() {
        let m = looping_module(40);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let base = block_validation_hashes(&sp);
        assert_eq!(base.len(), sp.blocks.len());
        // Identical program ⇒ identical hashes.
        assert_eq!(base, block_validation_hashes(&sp));
        // An immediate tweak changes exactly that block's code hash.
        let mut edited = sp.clone();
        let func = edited.module.entry_fn_mut();
        let halt = func
            .insns
            .iter()
            .position(|i| i.op == Opcode::Halt)
            .expect("program has a halt");
        func.insns[halt].imm = 9;
        let after = block_validation_hashes(&edited);
        let changed: Vec<usize> = (0..base.len()).filter(|&i| base[i].0 != after[i].0).collect();
        assert_eq!(changed.len(), 1, "exactly one block's code changed");
    }

    #[test]
    fn start_digests_bind_upstream_state() {
        let m = looping_module(200);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let t = golden_with_checkpoints(&sp);
        let cap = capture_sections(&sp, t.result.stats.dyn_insns);
        // Recapture: digests are deterministic.
        let cap2 = capture_sections(&sp, t.result.stats.dyn_insns);
        let d1: Vec<u64> = cap.sections.iter().map(|s| s.start_digest).collect();
        let d2: Vec<u64> = cap2.sections.iter().map(|s| s.start_digest).collect();
        assert_eq!(d1, d2);
        // Successive start states differ, so must their digests.
        for w in d1.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }
}
