//! # casted-sim — cycle-accurate lockstep clustered-VLIW simulator
//!
//! Plays the role of the paper's modified SKI IA-64 simulator: it
//! executes a [`casted_ir::vliw::ScheduledProgram`] bundle by bundle,
//! modelling
//!
//! * per-cluster issue (the static schedule's bundles, one per cycle),
//! * **lockstep stalls** — if any instruction in the current bundle is
//!   waiting for an operand, the whole machine waits,
//! * a register **scoreboard**: each virtual register becomes usable in
//!   its home cluster at `issue + latency`; a read from the *other*
//!   cluster is usable `inter_cluster_delay` cycles later,
//! * the full 3-level non-blocking cache hierarchy of Table I, with
//!   LRU sets and a bounded miss queue (MSHRs),
//! * perfect branch prediction (Table I): branches redirect fetch with
//!   no misprediction penalty,
//! * runtime exceptions (wild/misaligned addresses, division by zero),
//!   a watchdog timeout, and the fault-detection exit taken by
//!   `br.detect` — the machinery behind the paper's five fault-outcome
//!   classes,
//! * single-bit **fault injection** at instruction output registers
//!   (§IV-C): at a chosen dynamic instruction, one bit of one output
//!   register is flipped after writeback.
//!
//! The functional semantics are shared with the reference interpreter
//! (`casted_ir::semantics` / `casted_ir::interp`), so for every program
//! and machine configuration the simulator's output stream is
//! bit-identical to the interpreter's — an invariant the integration
//! tests enforce.

pub mod batch;
pub mod cache;
pub mod checkpoint;
pub mod machine;
pub mod rbed;
pub mod section;
pub mod stats;

pub use batch::{
    run_batch, run_batch_auto, BatchState, BatchStats, LaneVerdict, DEFAULT_LANE_WIDTH,
};
pub use cache::{CacheHierarchy, CacheStats};
pub use checkpoint::{
    golden_with_checkpoints, golden_with_checkpoints_rbed, replay_trial, replay_trial_observed,
    CheckpointPlan, GoldenTrace, ReplayStats, TrialRun,
};
pub use machine::{
    simulate, simulate_quiet, Injection, MachineState, SimOptions, SimResult, TraceEntry,
};
pub use rbed::{rbed_plan, RbedPlan};
pub use section::{
    block_validation_hashes, capture_sections, run_section_trial, Section, SectionCapture,
    SectionTrial, MAX_SECTIONS, MIN_SECTION_SPAN,
};
pub use stats::SimStats;
