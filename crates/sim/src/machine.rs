//! The lockstep VLIW execution engine.

use casted_ir::interp::{Memory, OutVal, RegFile, StopReason};
use casted_ir::semantics::{eval_pure, Val};
use casted_ir::vliw::ScheduledProgram;
use casted_ir::{Opcode, Operand, Reg, RegClass};

use crate::cache::CacheHierarchy;
use crate::stats::SimStats;

/// A transient fault to inject (paper §IV-C): at the
/// `at_dyn_insn`-th dynamic instruction (1-based), flip bit `bit` of
/// its output register right after writeback. If that instruction has
/// no output register, the injection slides to the next instruction
/// that has one — the paper samples among instructions with outputs.
///
/// With `target` set, the fault instead strikes that *specific*
/// register at the same point in time, whether or not the instruction
/// wrote it — a register-file strike rather than a functional-unit
/// output strike (the `fault_models` extension experiment).
///
/// With `width > 1` the strike is a **multi-bit burst** (the
/// `--fault-model burst2|burst4` extension): `width` adjacent bits
/// are flipped, positioned so the drawn `bit` sits `phase` bits from
/// the window's top, wrapping mod 64. `width == 1` (the
/// [`Injection::single`] constructor) is byte-for-byte the paper's
/// single-bit model. Predicate registers have one bit, so any burst
/// degenerates to the single flip there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// 1-based dynamic instruction index to strike.
    pub at_dyn_insn: u64,
    /// Bit position to flip (masked by the register width).
    pub bit: u32,
    /// Optional register-file target (None = the paper's output model).
    pub target: Option<Reg>,
    /// Burst width in bits (1 = the paper's single-bit model).
    pub width: u8,
    /// Offset of `bit` inside the burst window (0 for single).
    pub phase: u8,
}

impl Injection {
    /// The paper's single-bit strike.
    pub fn single(at_dyn_insn: u64, bit: u32, target: Option<Reg>) -> Self {
        Injection {
            at_dyn_insn,
            bit,
            target,
            width: 1,
            phase: 0,
        }
    }

    /// Apply this strike to a register value of `class_bits` width.
    /// For `width == 1` this is exactly the historical
    /// `flip_bit(bit % class_bits)`; a burst flips `width` adjacent
    /// bit positions `(bit - phase + k) mod 64` for `k < width`
    /// (distinct since `width <= 4`), each masked by the register
    /// width — one flip for predicates.
    #[inline]
    pub fn flip(&self, v: Val, class_bits: u32) -> Val {
        let w = (self.width as u32).max(1);
        if w == 1 || class_bits <= 1 {
            return v.flip_bit(self.bit % class_bits.max(1));
        }
        let mut out = v;
        for k in 0..w {
            let b = (self.bit + 64 - self.phase as u32 + k) % 64;
            out = out.flip_bit(b % class_bits);
        }
        out
    }
}

/// Simulation options.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Watchdog: the run is classified `Timeout` past this many cycles.
    pub max_cycles: u64,
    /// Optional fault injection.
    pub injection: Option<Injection>,
    /// Collect an execution trace of up to this many instructions
    /// (0 = tracing off). Used by `castedc trace` and by debugging
    /// tests; tracing does not perturb timing.
    pub trace_limit: usize,
    /// Replay-based detection plan (the RBED scheme): accumulate a
    /// digest of retired results and compare it against the golden
    /// digests at each chunk boundary (`None` = off, all other
    /// schemes). Installed into a fresh [`MachineState`]; a restored
    /// checkpoint keeps the accumulator it was snapshotted with.
    pub rbed: Option<std::sync::Arc<crate::rbed::RbedPlan>>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_cycles: u64::MAX,
            injection: None,
            trace_limit: 0,
            rbed: None,
        }
    }
}

/// One traced instruction issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Absolute issue cycle of the bundle.
    pub cycle: u64,
    /// Block being executed.
    pub block: casted_ir::BlockId,
    /// Cluster that issued the instruction.
    pub cluster: casted_ir::Cluster,
    /// The instruction.
    pub insn: casted_ir::InsnId,
    /// Cycles the bundle stalled waiting for operands.
    pub stalled: u64,
}

/// Result of one simulated run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Why the run ended.
    pub stop: StopReason,
    /// Observable output stream.
    pub stream: Vec<OutVal>,
    /// Counters.
    pub stats: SimStats,
    /// Whether the configured injection actually landed.
    pub injected: bool,
    /// Execution trace (empty unless `SimOptions::trace_limit` > 0).
    pub trace: Vec<TraceEntry>,
}

impl SimResult {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

/// Scoreboard per virtual register: the cycle the value becomes ready
/// on its *producing* cluster, plus which cluster produced it. A
/// consumer on the producing cluster reads through the local bypass at
/// `ready`; a consumer on the other cluster reads through the
/// interconnect at `ready + inter_cluster_delay` (the paper's remote
/// register-file access).
#[derive(Clone)]
pub(crate) struct Ready {
    pub(crate) gp: Vec<(u64, u8)>,
    pub(crate) fp: Vec<(u64, u8)>,
    pub(crate) pr: Vec<(u64, u8)>,
}

impl Ready {
    pub(crate) fn new(func: &casted_ir::Function) -> Self {
        Ready {
            gp: vec![(0, 0); func.reg_count(RegClass::Gp) as usize],
            fp: vec![(0, 0); func.reg_count(RegClass::Fp) as usize],
            pr: vec![(0, 0); func.reg_count(RegClass::Pr) as usize],
        }
    }

    #[inline]
    pub(crate) fn get(&self, r: Reg) -> (u64, u8) {
        match r.class {
            RegClass::Gp => self.gp[r.index as usize],
            RegClass::Fp => self.fp[r.index as usize],
            RegClass::Pr => self.pr[r.index as usize],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, r: Reg, cycle: u64, writer: u8) {
        match r.class {
            RegClass::Gp => self.gp[r.index as usize] = (cycle, writer),
            RegClass::Fp => self.fp[r.index as usize] = (cycle, writer),
            RegClass::Pr => self.pr[r.index as usize] = (cycle, writer),
        }
    }
}

/// Bulk-flush one finished run's counters into the global metrics
/// registry. All values are deterministic functions of the program and
/// seed, so they are part of the counter-only snapshot.
fn record_run_metrics(stats: &SimStats) {
    if !casted_obs::enabled() {
        return;
    }
    casted_obs::inc("sim.runs");
    casted_obs::add("sim.cycles", stats.cycles);
    casted_obs::add("sim.stall_cycles", stats.stall_cycles);
    casted_obs::add("sim.dyn_insns", stats.dyn_insns);
    casted_obs::add("sim.bundles", stats.bundles);
    casted_obs::add("sim.cross_reads", stats.cross_reads);
    casted_obs::add("sim.cache.accesses", stats.cache.accesses);
    casted_obs::add("sim.cache.l1_hits", stats.cache.hits.first().copied().unwrap_or(0));
    casted_obs::add("sim.cache.l2_hits", stats.cache.hits.get(1).copied().unwrap_or(0));
    casted_obs::add("sim.cache.l3_hits", stats.cache.hits.get(2).copied().unwrap_or(0));
    casted_obs::add("sim.cache.memory_accesses", stats.cache.memory_accesses);
}

/// The complete live state of the machine at a **bundle boundary** —
/// everything `simulate` used to keep in locals, extracted so a run
/// can be cloned mid-flight and resumed later with bit-identical
/// behaviour. The checkpoint engine (`crate::checkpoint`) snapshots
/// these during the golden run and restores them to fast-forward
/// faulty trials past the fault-free prefix.
///
/// Fields are crate-private: external code interacts through
/// [`simulate`] and the `checkpoint` module, plus the read-only
/// accessors below.
#[derive(Clone)]
pub struct MachineState {
    pub(crate) rf: RegFile,
    pub(crate) mem: Memory,
    pub(crate) cache: CacheHierarchy,
    pub(crate) ready: Ready,
    pub(crate) stats: SimStats,
    pub(crate) stream: Vec<OutVal>,
    /// In-flight miss completion cycles (bounded MSHRs).
    pub(crate) mshr: Vec<u64>,
    pub(crate) cycle: u64,
    /// Block being executed.
    pub(crate) block: casted_ir::BlockId,
    /// Next bundle index within `block` (the boundary position).
    pub(crate) bundle_idx: usize,
    /// Branch target already resolved earlier in this block (branches
    /// take effect at the end of the block).
    pub(crate) next_block: Option<casted_ir::BlockId>,
    /// Halt code already resolved earlier in this block (halts too
    /// take effect at the end of the block).
    pub(crate) halt: Option<i64>,
    pub(crate) injected: bool,
    /// RBED chunk-digest accumulator (None for every other scheme).
    /// Boxed: it only exists for RBED campaigns, and the common-case
    /// state must stay cheap to clone.
    pub(crate) rbed: Option<Box<crate::rbed::RbedState>>,
}

impl MachineState {
    /// Power-on state for `sp`: cycle 0, entry block, zeroed register
    /// files, globals materialized, cold caches.
    pub fn fresh(sp: &ScheduledProgram) -> Self {
        let func = sp.module.entry_fn();
        let mut stats = SimStats::default();
        stats.per_cluster = vec![0; sp.config.clusters];
        MachineState {
            rf: RegFile::for_function(func),
            mem: Memory::for_module(&sp.module),
            cache: CacheHierarchy::new(&sp.config),
            ready: Ready::new(func),
            stats,
            stream: Vec::new(),
            mshr: Vec::new(),
            cycle: 0,
            block: func.entry,
            bundle_idx: 0,
            next_block: None,
            halt: None,
            injected: false,
            rbed: None,
        }
    }

    /// Dynamic instructions retired so far.
    pub fn dyn_insns(&self) -> u64 {
        self.stats.dyn_insns
    }

    /// Current machine cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Values emitted so far.
    pub fn stream_len(&self) -> usize {
        self.stream.len()
    }
}

/// Canonical 64-bit image of a retired value for digest purposes.
#[inline]
fn val_word(v: Val) -> u64 {
    match v {
        Val::I(x) => x as u64,
        Val::F(x) => x.to_bits(),
        Val::B(x) => x as u64,
    }
}

/// What the bundle-boundary hook wants the run to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Boundary {
    /// Keep executing.
    Continue,
    /// Stop here: the caller has proven the remainder of the run
    /// (convergence pruning). `run_machine` returns `None`.
    Stop,
}

/// Execute `sp` starting from `st` until it stops, mutating `st` in
/// place. `boundary` is invoked at every bundle boundary (immediately
/// before the bundle at `st.bundle_idx` issues) and may stop the run
/// early; the checkpoint engine uses it to capture snapshots during
/// the golden run and to test convergence during replays. When
/// `flush_metrics` is false the run stays out of the `sim.*` counters
/// (fault-injection trials would otherwise swamp them and make the
/// two campaign engines' counter snapshots incomparable).
///
/// Returns `Some(result)` when the run stopped by itself, `None` when
/// the hook stopped it. The semantics — stall rules, in-order issue,
/// end-of-block branch/halt resolution, watchdog check per bundle,
/// injection after writeback — are exactly those of the historical
/// single-function `simulate`; `simulate` itself is now a thin
/// wrapper over a fresh state and a no-op hook.
pub(crate) fn run_machine(
    sp: &ScheduledProgram,
    opts: &SimOptions,
    st: &mut MachineState,
    flush_metrics: bool,
    boundary: &mut dyn FnMut(&MachineState) -> Boundary,
) -> Option<SimResult> {
    let func = sp.module.entry_fn();
    let config = &sp.config;
    let delay = config.inter_cluster_delay as u64;
    let lat = &config.latency;
    let inj = opts.injection;

    // Install the RBED digest accumulator on a fresh state; a state
    // restored from a checkpoint keeps the accumulator it was
    // snapshotted with (mid-run digests are part of machine state).
    if st.rbed.is_none() {
        if let Some(plan) = &opts.rbed {
            st.rbed = Some(Box::new(crate::rbed::RbedState::new(plan.clone())));
        }
    }

    // Reusable per-bundle operand buffers (the simulator's hottest
    // allocation site otherwise).
    let mut val_buf: Vec<Val> = Vec::with_capacity(64);
    let mut meta_buf: Vec<(casted_ir::Cluster, casted_ir::InsnId, u32, u32)> =
        Vec::with_capacity(16);

    let mut trace: Vec<TraceEntry> = Vec::new();
    // Span-timed per run; counters are flushed in bulk on exit, so the
    // cycle loop itself carries no instrumentation (the disabled-
    // metrics fast path costs one relaxed load per whole run).
    let _run_span = if flush_metrics {
        Some(casted_obs::span("sim.run_ns"))
    } else {
        None
    };

    macro_rules! finish {
        ($stop:expr, $cycle:expr) => {{
            let cycle = $cycle;
            st.cycle = cycle;
            st.stats.cycles = cycle;
            st.stats.cache = st.cache.stats.clone();
            if flush_metrics {
                record_run_metrics(&st.stats);
            }
            return Some(SimResult {
                stop: $stop,
                stream: std::mem::take(&mut st.stream),
                stats: st.stats.clone(),
                injected: st.injected,
                trace,
            });
        }};
    }

    loop {
        let sb = &sp.blocks[st.block.index()];

        while st.bundle_idx < sb.bundles.len() {
            if boundary(st) == Boundary::Stop {
                return None;
            }
            let bundle = &sb.bundles[st.bundle_idx];
            if st.cycle > opts.max_cycles {
                finish!(StopReason::Timeout, st.cycle);
            }
            // ---- stall until every operand of the bundle is usable ----
            let mut issue = st.cycle;
            for (cluster, iid) in bundle.iter() {
                let insn = func.insn(iid);
                for r in insn.reg_uses() {
                    let (mut avail, writer) = st.ready.get(r);
                    if writer != cluster.0 {
                        avail += delay;
                        st.stats.cross_reads += 1;
                    }
                    issue = issue.max(avail);
                }
            }
            st.stats.stall_cycles += issue - st.cycle;
            st.stats.bundles += 1;

            // ---- phase 1: read all operands (VLIW parallel read) ----
            val_buf.clear();
            meta_buf.clear();
            for (cluster, iid) in bundle.iter() {
                let insn = func.insn(iid);
                let off = val_buf.len() as u32;
                for o in &insn.uses {
                    val_buf.push(match o {
                        Operand::Reg(r) => st.rf.get(*r),
                        Operand::Imm(v) => Val::I(*v),
                        Operand::FImm(v) => Val::F(*v),
                    });
                }
                meta_buf.push((cluster, iid, off, insn.uses.len() as u32));
            }

            // ---- phase 2: execute and write back ----
            let mut detect_fired = false;
            for k in 0..meta_buf.len() {
                let (cluster, iid, off, len) = meta_buf[k];
                let vals = &val_buf[off as usize..(off + len) as usize];
                let insn = func.insn(iid);
                st.stats.dyn_insns += 1;
                st.stats.per_cluster[cluster.index()] += 1;
                if trace.len() < opts.trace_limit {
                    trace.push(TraceEntry {
                        cycle: issue,
                        block: st.block,
                        cluster,
                        insn: iid,
                        stalled: issue - st.cycle,
                    });
                }

                // Retired result absorbed by the RBED digest (the
                // *computed* value — deliberately sampled before the
                // injector's post-writeback flip, so dead strikes
                // never poison the digest).
                let mut retired_val: Option<Val> = None;

                // Completion helper: set value + scoreboard.
                let write_def = |rf: &mut RegFile,
                                 ready: &mut Ready,
                                 d: Reg,
                                 v: Val,
                                 latency: u32| {
                    rf.set(d, v);
                    ready.set(d, issue + latency as u64, cluster.0);
                };

                match insn.op {
                    Opcode::Load | Opcode::FLoad => {
                        let base = vals[0].as_i();
                        let addr = base.wrapping_add(insn.imm);
                        let loaded = if insn.op == Opcode::Load {
                            st.mem.load_int(addr).map(Val::I)
                        } else {
                            st.mem.load_float(addr).map(Val::F)
                        };
                        match loaded {
                            Ok(v) => {
                                let mut l = st.cache.access(addr as u64).max(lat.load_hit);
                                // Bounded MSHRs: a miss beyond the L1
                                // latency occupies an entry; when all
                                // entries are busy the new miss queues
                                // behind the oldest.
                                let l1_lat = config
                                    .cache_levels
                                    .first()
                                    .map(|c| c.latency)
                                    .unwrap_or(lat.load_hit);
                                if l > l1_lat {
                                    st.mshr.retain(|&c| c > issue);
                                    if st.mshr.len() >= config.mshr_entries {
                                        if let Some(&min) = st.mshr.iter().min() {
                                            l += (min.saturating_sub(issue)) as u32;
                                        }
                                    }
                                    st.mshr.push(issue + l as u64);
                                }
                                retired_val = Some(v);
                                write_def(&mut st.rf, &mut st.ready, insn.defs[0], v, l);
                            }
                            Err(e) => finish!(StopReason::Exception(e), issue + 1),
                        }
                    }
                    Opcode::Store | Opcode::FStore => {
                        let base = vals[0].as_i();
                        let addr = base.wrapping_add(insn.imm);
                        let res = match insn.op {
                            Opcode::Store => st.mem.store_int(addr, vals[1].as_i()),
                            _ => st.mem.store_float(addr, vals[1].as_f()),
                        };
                        match res {
                            Ok(()) => {
                                st.cache.access(addr as u64);
                                retired_val = Some(vals[1]);
                            }
                            Err(e) => finish!(StopReason::Exception(e), issue + 1),
                        }
                    }
                    Opcode::Out => {
                        retired_val = Some(vals[0]);
                        st.stream.push(OutVal::Int(vals[0].as_i()));
                    }
                    Opcode::FOut => {
                        retired_val = Some(vals[0]);
                        st.stream.push(OutVal::Float(vals[0].as_f()));
                    }
                    Opcode::Br => st.next_block = insn.target,
                    Opcode::BrCond => {
                        st.next_block = if vals[0].as_b() {
                            insn.target
                        } else {
                            insn.target2
                        };
                    }
                    Opcode::DetectBr => {
                        if vals[0].as_b() {
                            detect_fired = true;
                        }
                    }
                    Opcode::ChkNe => {
                        if casted_ir::semantics::eval_cmp_vals(
                            casted_ir::CmpKind::Ne,
                            vals[0],
                            vals[1],
                        ) {
                            detect_fired = true;
                        }
                    }
                    Opcode::Halt => st.halt = Some(vals[0].as_i()),
                    Opcode::Nop => {}
                    Opcode::Vote => match eval_pure(insn.op, vals) {
                        Ok(v) => {
                            // The copies disagree iff the vote masked a
                            // corrupted lane — count the correction so
                            // fault classification can distinguish
                            // Corrected from Benign.
                            let eq01 = casted_ir::semantics::eval_cmp_vals(
                                casted_ir::CmpKind::Eq,
                                vals[0],
                                vals[1],
                            );
                            let eq02 = casted_ir::semantics::eval_cmp_vals(
                                casted_ir::CmpKind::Eq,
                                vals[0],
                                vals[2],
                            );
                            if !(eq01 && eq02) {
                                st.stats.corrections += 1;
                            }
                            retired_val = Some(v);
                            write_def(
                                &mut st.rf,
                                &mut st.ready,
                                insn.defs[0],
                                v,
                                insn.op.latency(lat),
                            )
                        }
                        Err(e) => finish!(StopReason::Exception(e), issue + 1),
                    },
                    op => match eval_pure(op, &vals) {
                        Ok(v) => {
                            retired_val = Some(v);
                            write_def(&mut st.rf, &mut st.ready, insn.defs[0], v, op.latency(lat))
                        }
                        Err(e) => finish!(StopReason::Exception(e), issue + 1),
                    },
                }

                // ---- RBED digest accumulation + boundary check ----
                if let Some(rb) = st.rbed.as_deref_mut() {
                    if let Some(v) = retired_val {
                        rb.acc.write_u64_round(val_word(v));
                    }
                    if rb.next < rb.plan.bounds.len()
                        && st.stats.dyn_insns == rb.plan.bounds[rb.next]
                    {
                        let d = rb.acc.finish();
                        if rb.plan.is_check() {
                            if d != rb.plan.digests[rb.next] {
                                detect_fired = true;
                            }
                        } else {
                            rb.recorded.push(d);
                        }
                        rb.next += 1;
                    }
                }

                // ---- fault injection after writeback ----
                if let Some(inj) = inj {
                    if !st.injected && st.stats.dyn_insns >= inj.at_dyn_insn {
                        let victim = match inj.target {
                            Some(r) => Some(r),
                            None => insn.def(),
                        };
                        if let Some(d) = victim {
                            let flipped = inj.flip(st.rf.get(d), d.class.bits());
                            st.rf.set(d, flipped);
                            st.injected = true;
                        }
                    }
                }
            }

            if detect_fired {
                finish!(StopReason::Detected, issue + 1);
            }
            st.cycle = issue + 1;
            st.bundle_idx += 1;
        }

        if let Some(code) = st.halt {
            // RBED truncation detection: a halt with boundaries still
            // unconsumed means the run retired fewer instructions than
            // the golden run — report it instead of trusting the
            // (truncated) output.
            if let Some(rb) = st.rbed.as_deref() {
                if rb.plan.is_check() && rb.next < rb.plan.bounds.len() {
                    finish!(StopReason::Detected, st.cycle);
                }
            }
            finish!(StopReason::Halt(code), st.cycle);
        }
        match st.next_block {
            Some(b) => {
                st.block = b;
                st.bundle_idx = 0;
                st.next_block = None;
                st.halt = None;
            }
            None => finish!(
                StopReason::Exception(casted_ir::semantics::ExecError::MemOutOfBounds(-1)),
                st.cycle
            ),
        }
    }
}

/// Run `sp` to completion (or exception/detection/timeout).
pub fn simulate(sp: &ScheduledProgram, opts: &SimOptions) -> SimResult {
    let mut st = MachineState::fresh(sp);
    run_machine(sp, opts, &mut st, true, &mut |_| Boundary::Continue)
        .expect("no boundary hook can stop this run")
}

/// Like [`simulate`] but without flushing `sim.*` metrics: the entry
/// point for fault-injection trials, which run the same program
/// hundreds of times and would otherwise drown the per-run counters
/// (and make the reference and checkpointed campaign engines'
/// counter snapshots incomparable).
pub fn simulate_quiet(sp: &ScheduledProgram, opts: &SimOptions) -> SimResult {
    let mut st = MachineState::fresh(sp);
    run_machine(sp, opts, &mut st, false, &mut |_| Boundary::Continue)
        .expect("no boundary hook can stop this run")
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp;
    use casted_ir::{CmpKind, FunctionBuilder, MachineConfig, Module};
    use self::casted_passes_for_tests::*;

    /// Small local reimplementation hooks: we cannot depend on
    /// casted-passes (dependency cycle), so tests build trivial
    /// one-cluster sequential schedules by hand.
    mod casted_passes_for_tests {
        use casted_ir::vliw::{Bundle, ScheduledBlock, ScheduledProgram};
        use casted_ir::{Cluster, MachineConfig, Module};
        use std::collections::HashMap;

        /// Sequential single-cluster schedule: one instruction per
        /// bundle, program order.
        pub fn sequential(module: &Module, config: MachineConfig) -> ScheduledProgram {
            let func = module.entry_fn();
            let mut assignment = vec![None; func.insns.len()];
            let mut home = HashMap::new();
            let mut blocks = Vec::new();
            for (bid, block) in func.iter_blocks() {
                let mut bundles = Vec::new();
                for &iid in &block.insns {
                    assignment[iid.index()] = Some(Cluster::MAIN);
                    for &d in &func.insn(iid).defs {
                        home.entry(d).or_insert(Cluster::MAIN);
                    }
                    let mut b = Bundle::empty(config.clusters);
                    b.slots[0].push(iid);
                    bundles.push(b);
                }
                blocks.push(ScheduledBlock { block: bid, bundles });
            }
            ScheduledProgram {
                module: module.clone(),
                config,
                assignment,
                home,
                blocks,
            }
        }
    }

    fn demo_module() -> Module {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 8, vec![1, 2, 3]);
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let base = b.imm(addr);
        let sh = b.binop(Opcode::Shl, Operand::Reg(i), Operand::Imm(3));
        let ea = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(sh));
        let v = b.load(ea, 0);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(v));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(3));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn sim_matches_interpreter_output() {
        let m = demo_module();
        let golden = interp::run(&m, 100_000).unwrap();
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let r = simulate(&sp, &SimOptions::default());
        assert_eq!(r.stop, golden.stop);
        assert_eq!(r.stream, golden.stream);
        assert_eq!(r.stats.dyn_insns, golden.dyn_insns);
    }

    #[test]
    fn cycles_exceed_instruction_count_with_latencies() {
        let m = demo_module();
        let sp = sequential(&m, MachineConfig::itanium2_like(1, 1));
        let r = simulate(&sp, &SimOptions::default());
        // Cold cache misses (150 cycles each) dominate: at least one
        // per touched line.
        assert!(r.cycles() > r.stats.dyn_insns, "no stalls simulated?");
        assert!(r.stats.cache.memory_accesses >= 1);
    }

    #[test]
    fn perfect_memory_is_faster() {
        let m = demo_module();
        let cached = simulate(
            &sequential(&m, MachineConfig::itanium2_like(1, 1)),
            &SimOptions::default(),
        );
        let perfect = simulate(
            &sequential(&m, MachineConfig::perfect_memory(1, 1)),
            &SimOptions::default(),
        );
        assert!(perfect.cycles() < cached.cycles());
        assert_eq!(perfect.stream, cached.stream);
    }

    #[test]
    fn timeout_fires() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let spin = b.new_block("spin");
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let r = simulate(
            &sp,
            &SimOptions {
                max_cycles: 1000,
                injection: None,
                ..SimOptions::default()
            },
        );
        assert_eq!(r.stop, StopReason::Timeout);
    }

    #[test]
    fn injection_lands_and_changes_output() {
        let m = demo_module();
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let golden = simulate(&sp, &SimOptions::default());
        // Strike the accumulator chain mid-run, high bit: expect a
        // corrupted (different) output or an exception — not silence.
        let r = simulate(
            &sp,
            &SimOptions {
                max_cycles: 1_000_000,
                injection: Some(Injection::single(golden.stats.dyn_insns / 2, 62, None)),
                ..SimOptions::default()
            },
        );
        assert!(r.injected);
        let changed = r.stop != golden.stop
            || r.stream.len() != golden.stream.len()
            || r.stream
                .iter()
                .zip(&golden.stream)
                .any(|(a, b)| !a.bit_eq(b));
        assert!(changed, "high-bit accumulator flip was silent");
    }

    #[test]
    fn injection_into_predicate_flips_control() {
        // p = (1 < 2); br p -> out(1) else out(2). Flip p.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let p = b.cmp(CmpKind::Lt, Operand::Imm(1), Operand::Imm(2));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.out(Operand::Imm(1));
        b.halt_imm(0);
        b.switch_to(e);
        b.out(Operand::Imm(2));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let r = simulate(
            &sp,
            &SimOptions {
                max_cycles: 10_000,
                injection: Some(Injection::single(1, 0, None)),
                ..SimOptions::default()
            },
        );
        assert!(r.injected);
        assert_eq!(r.stream, vec![OutVal::Int(2)], "flipped predicate must take wrong path");
    }

    #[test]
    fn inter_cluster_delay_costs_cycles() {
        // Producer on cluster 0, consumer on cluster 1.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(5);
        let y = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(1));
        b.out(Operand::Reg(y));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);

        let mk = |delay: u32, split: bool| {
            let config = MachineConfig::perfect_memory(2, delay);
            let mut sp = casted_passes_for_tests::sequential(&m, config);
            if split {
                // Move the add (2nd insn) to cluster 1.
                let f = sp.module.entry_fn();
                let add_id = f.block(f.entry).insns[1];
                sp.assignment[add_id.index()] = Some(casted_ir::Cluster::REDUNDANT);
                // Rebuild its bundle lane.
                let bundle = &mut sp.blocks[0].bundles[1];
                bundle.slots[0].clear();
                bundle.slots[1].push(add_id);
                // Its def now homes on cluster 1.
                let d = f.insn(add_id).def().unwrap();
                sp.home.insert(d, casted_ir::Cluster::REDUNDANT);
            }
            simulate(&sp, &SimOptions::default())
        };
        let same = mk(4, false);
        let split = mk(4, true);
        assert!(
            split.cycles() >= same.cycles() + 4,
            "split {} vs same {}",
            split.cycles(),
            same.cycles()
        );
        assert!(split.stats.cross_reads >= 2);
        assert_eq!(split.stream, same.stream);
    }

    #[test]
    fn stall_cycles_are_counted() {
        let m = demo_module();
        let sp = sequential(&m, MachineConfig::itanium2_like(1, 1));
        let r = simulate(&sp, &SimOptions::default());
        assert!(r.stats.stall_cycles > 0);
        assert_eq!(
            r.stats.cycles,
            r.stats.bundles + r.stats.stall_cycles,
            "sequential 1-insn bundles: cycles = bundles + stalls"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use casted_ir::{FunctionBuilder, MachineConfig, Module, Opcode, Operand};
    use std::collections::HashMap;

    fn tiny() -> casted_ir::vliw::ScheduledProgram {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(1);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(3));
        b.out(Operand::Reg(y));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let config = MachineConfig::perfect_memory(1, 1);
        let func = m.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = HashMap::new();
        let mut bundles = Vec::new();
        for &iid in &func.block(func.entry).insns {
            assignment[iid.index()] = Some(casted_ir::Cluster::MAIN);
            for &d in &func.insn(iid).defs {
                home.entry(d).or_insert(casted_ir::Cluster::MAIN);
            }
            let mut bu = casted_ir::vliw::Bundle::empty(config.clusters);
            bu.slots[0].push(iid);
            bundles.push(bu);
        }
        casted_ir::vliw::ScheduledProgram {
            blocks: vec![casted_ir::vliw::ScheduledBlock {
                block: m.entry_fn().entry,
                bundles,
            }],
            module: m,
            config,
            assignment,
            home,
        }
    }

    #[test]
    fn trace_records_issues_in_cycle_order() {
        let sp = tiny();
        let r = simulate(
            &sp,
            &SimOptions {
                trace_limit: 100,
                ..Default::default()
            },
        );
        assert_eq!(r.trace.len() as u64, r.stats.dyn_insns);
        for w in r.trace.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
        // The mul stalls waiting on the mov's latency? mov lat 1 and
        // bundles are consecutive, so no stall here — but entries exist.
        assert_eq!(r.trace[0].cycle, 0);
    }

    #[test]
    fn trace_limit_caps_collection() {
        let sp = tiny();
        let r = simulate(
            &sp,
            &SimOptions {
                trace_limit: 2,
                ..Default::default()
            },
        );
        assert_eq!(r.trace.len(), 2);
        // And tracing off by default.
        let r2 = simulate(&sp, &SimOptions::default());
        assert!(r2.trace.is_empty());
    }
}
