//! Simulation statistics.

use crate::cache::CacheStats;

/// Counters gathered over one simulated run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total machine cycles.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub dyn_insns: u64,
    /// Bundles issued.
    pub bundles: u64,
    /// Cycles the machine spent stalled waiting for operands (cache
    /// misses and inter-cluster transfers surface here, because the
    /// clusters run in lockstep).
    pub stall_cycles: u64,
    /// Register reads that crossed clusters (consumer cluster differs
    /// from the value's home register file).
    pub cross_reads: u64,
    /// Dynamic instruction counts per cluster (resource balance).
    pub per_cluster: Vec<u64>,
    /// Majority-vote corrections performed (TMRED scheme): `vote`
    /// instructions whose three copies were not bit-identical. Zero
    /// on any fault-free run; nonzero means a strike was masked.
    pub corrections: u64,
    /// Cache behaviour.
    pub cache: CacheStats,
}

impl SimStats {
    /// Dynamic instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dyn_insns as f64 / self.cycles as f64
        }
    }
}
