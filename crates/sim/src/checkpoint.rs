//! Checkpoint/replay engine for fault-injection campaigns.
//!
//! A Monte-Carlo campaign simulates the same program hundreds of
//! times, and every faulty run is **identical to the fault-free run
//! up to the injection site** — the simulator is deterministic and
//! the injection is the first divergence. Re-executing that prefix per
//! trial is where almost all campaign time goes (FastFlip makes the
//! same observation for RTL fault injection; RepTFD frames the faulty
//! suffix as the only part of a replay that carries information).
//!
//! This module removes the redundancy twice over:
//!
//! 1. **Golden snapshots + fast-forward replay.** During one quiet
//!    golden run, [`golden_with_checkpoints`] clones the machine's
//!    complete live state ([`MachineState`]) at ~√N evenly spaced
//!    dynamic-instruction counts. A trial with injection site `at`
//!    restores the last checkpoint *strictly before* `at` and
//!    simulates only the suffix. Strictness matters: the injection
//!    condition is `dyn_insns >= at`, so resuming from `dyn < at`
//!    reproduces the original landing site exactly.
//! 2. **Convergence pruning.** Most faults are benign, and a benign
//!    faulty run usually *re-converges* with the golden run long
//!    before halting (the flipped value is overwritten or masked).
//!    The golden run records an FNV-64 fingerprint of the full
//!    machine state at sampled block entries; a faulty trial whose
//!    post-injection state fingerprints equal at the same dynamic
//!    instruction is classified Benign on the spot.
//!
//! ## Why replay is exact
//!
//! The simulator's behaviour from a bundle boundary onward is a pure
//! function of [`MachineState`] (registers, memory, cache replacement
//! state, scoreboard, MSHRs, cycle, control position, emitted-stream
//! contents) plus the static program. A restored checkpoint therefore
//! continues bit-identically to the uninterrupted run — including
//! stall timing and the watchdog, whose per-bundle check compares the
//! same cycle values. `prop_checkpoint.rs` property-tests this end to
//! end; the difftest oracle cross-checks whole campaign tallies.
//!
//! ## Why pruning is sound
//!
//! The fingerprint covers **everything** future behaviour can read:
//! live registers (value + scoreboard entry), all of memory, the
//! emitted stream, the cache tags/stamps/tick, pending MSHR entries,
//! the cycle and the control position. Registers that are dead at the
//! sample point — not read before being rewritten along *any* path of
//! the scheduled code, per a bundle-order liveness analysis — are
//! excluded: their values are unobservable, and excluding them is
//! precisely what lets a "flipped a dead register" trial converge.
//! Fingerprint equality at the same dynamic instruction therefore
//! implies the faulty suffix replays the golden suffix exactly: same
//! halt code, same remaining stream, same cycles — i.e. Benign, the
//! same class a full run would produce. The only approximation is the
//! 64-bit digest itself: a prune requires an FNV-64 collision *and*
//! an unequal state to misclassify, which is vanishingly unlikely and
//! continuously cross-checked by the difftest engine-equivalence
//! oracle (see docs/PERFORMANCE.md).

use std::collections::HashMap;

use casted_ir::interp::OutVal;
use casted_ir::vliw::ScheduledProgram;
use casted_ir::{Opcode, Reg, RegClass};
use casted_util::hash::Fnv64;

use crate::machine::{run_machine, Boundary, Injection, MachineState, SimOptions, SimResult};

/// Snapshot cadence and fingerprint cadence for one golden run.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointPlan {
    /// Target dynamic-instruction spacing between checkpoints.
    pub interval: u64,
    /// Target dynamic-instruction spacing between fingerprint samples.
    pub sample_every: u64,
}

/// Hard cap on captured checkpoints: each one clones the full machine
/// state (memory + cache tags dominate), so √N is additionally bounded
/// to keep a campaign's resident footprint modest. With 128 buckets
/// the expected fast-forward remainder is N/256 — already negligible.
pub const MAX_CHECKPOINTS: u64 = 128;

/// Convergence checks a replayed trial attempts before giving up and
/// running to completion. Benign trials converge at the first or
/// second sampled block entry after the injection (the flipped value
/// is dead or quickly overwritten); a trial still diverged after this
/// many samples almost always stays diverged (Detected / DataCorrupt /
/// Timeout), so further full-state fingerprints would be pure
/// overhead. The cap affects only speed, never results: an unpruned
/// trial is simulated to its natural stop and classified normally.
const MAX_CONVERGENCE_ATTEMPTS: u32 = 8;

impl CheckpointPlan {
    /// Choose spacing from the golden dynamic length: ~√N checkpoint
    /// buckets (capped), fingerprint samples at a quarter of the
    /// checkpoint interval (bounded below so tiny programs don't
    /// fingerprint at every block).
    pub fn for_golden(dyn_insns: u64) -> Self {
        let buckets = ((dyn_insns as f64).sqrt() as u64).clamp(1, MAX_CHECKPOINTS);
        let interval = (dyn_insns / buckets).max(16);
        let sample_every = (interval / 4).max(16);
        CheckpointPlan {
            interval,
            sample_every,
        }
    }
}

/// Per-class bitmask of registers live at a block entry, computed on
/// the *scheduled* code (see [`live_in_masks`]). Shared with the
/// section layer (`crate::section`), which fingerprints trial states
/// against the same masks and hashes them into cache-validation
/// records.
#[derive(Clone, Debug, Default)]
pub(crate) struct LiveMask {
    gp: Vec<u64>,
    fp: Vec<u64>,
    pr: Vec<u64>,
}

impl LiveMask {
    fn sized(func: &casted_ir::Function) -> Self {
        let words = |n: u32| vec![0u64; (n as usize + 63) / 64];
        LiveMask {
            gp: words(func.reg_count(RegClass::Gp)),
            fp: words(func.reg_count(RegClass::Fp)),
            pr: words(func.reg_count(RegClass::Pr)),
        }
    }

    pub(crate) fn class_bits(&self, class: RegClass) -> &[u64] {
        match class {
            RegClass::Gp => &self.gp,
            RegClass::Fp => &self.fp,
            RegClass::Pr => &self.pr,
        }
    }

    fn insert(&mut self, r: Reg) {
        let bits = match r.class {
            RegClass::Gp => &mut self.gp,
            RegClass::Fp => &mut self.fp,
            RegClass::Pr => &mut self.pr,
        };
        bits[r.index as usize / 64] |= 1u64 << (r.index % 64);
    }

}

/// Backward liveness at block entries, computed **over the scheduled
/// bundles** rather than the source block order: scheduling permutes
/// instructions within a block, so the upward-exposed-use sets can
/// differ from the `casted_ir::liveness` view, and soundness here
/// needs the order the simulator actually executes. Within a bundle,
/// all operand reads happen before all writebacks (VLIW parallel
/// read), so a register used and defined in the same bundle counts as
/// upward-exposed.
pub(crate) fn live_in_masks(sp: &ScheduledProgram) -> Vec<LiveMask> {
    use std::collections::HashSet;
    let func = sp.module.entry_fn();
    let n = sp.blocks.len();
    let mut use_set: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
    let mut def_set: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, sb) in sp.blocks.iter().enumerate() {
        let (u, d) = (&mut use_set[i], &mut def_set[i]);
        for bundle in &sb.bundles {
            for (_c, iid) in bundle.iter() {
                for r in func.insn(iid).reg_uses() {
                    if !d.contains(&r) {
                        u.insert(r);
                    }
                }
            }
            for (_c, iid) in bundle.iter() {
                let insn = func.insn(iid);
                for &r in &insn.defs {
                    d.insert(r);
                }
                if matches!(insn.op, Opcode::Br | Opcode::BrCond) {
                    for t in [insn.target, insn.target2].into_iter().flatten() {
                        if !succs[i].contains(&t.index()) {
                            succs[i].push(t.index());
                        }
                    }
                }
            }
        }
    }

    let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut inn = use_set[i].clone();
            for &s in &succs[i] {
                for &r in &live_in[s] {
                    if !def_set[i].contains(&r) {
                        inn.insert(r);
                    }
                }
            }
            if inn.len() != live_in[i].len() {
                live_in[i] = inn;
                changed = true;
            }
        }
    }

    live_in
        .into_iter()
        .map(|set| {
            let mut m = LiveMask::sized(func);
            for r in set {
                m.insert(r);
            }
            m
        })
        .collect()
}

/// FNV-64 digest of everything future execution can observe from a
/// block-entry boundary, masking dead registers (see module docs).
pub(crate) fn fingerprint(st: &MachineState, live: &LiveMask) -> u64 {
    // Word-round mixing throughout (`write_u64_round`): the digest
    // hashes tens of thousands of words per sample and byte-wise FNV
    // rounds were the engine's hottest loop. Every field is absorbed
    // as canonical (tag, value) words, so equality of state still
    // implies equality of digest.
    let mut h = Fnv64::new();
    h.write_u64_round(st.cycle);
    h.write_u64_round(st.block.index() as u64);
    h.write_u64_round(st.stats.dyn_insns);
    // Corrections performed so far (TMRED): a trial whose vote masked
    // a strike must not prune to Benign — it is Corrected, a distinct
    // outcome — so the counter is part of observable state.
    h.write_u64_round(st.stats.corrections);
    // RBED accumulator: register/memory reconvergence does not imply
    // digest reconvergence (the divergent values were already
    // absorbed), so a pruned trial must have the golden digest too.
    if let Some(rb) = st.rbed.as_deref() {
        h.write_u64_round(rb.acc.finish());
        h.write_u64_round(rb.next as u64);
    }

    // Live registers: value plus scoreboard entry, in class/index
    // order so the digest is canonical.
    for (class, tag) in [(RegClass::Gp, 1u64), (RegClass::Fp, 2), (RegClass::Pr, 3)] {
        h.write_u64_round(tag);
        for (w, &word) in live.class_bits(class).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let idx = (w * 64 + bit) as u32;
                let r = Reg { class, index: idx };
                h.write_u64_round(idx as u64);
                match st.rf.get(r) {
                    casted_ir::semantics::Val::I(v) => h.write_u64_round(v as u64),
                    casted_ir::semantics::Val::F(v) => h.write_u64_round(v.to_bits()),
                    casted_ir::semantics::Val::B(v) => h.write_u64_round(v as u64),
                }
                let (avail, writer) = st.ready.get(r);
                h.write_u64_round(avail);
                h.write_u64_round(writer as u64);
            }
        }
    }

    // All of memory (stores cannot be "dead" without a points-to
    // analysis; covering every word keeps the argument airtight).
    // Zero words are skipped and nonzero words are absorbed as
    // (index, value) pairs: states that differ in any word — zero or
    // not — still hash differently, but the common zero-filled heap
    // slack costs nothing.
    for i in 0..st.mem.len_words() {
        let w = st.mem.word(i);
        if w != 0 {
            h.write_u64_round(i as u64);
            h.write_u64_round(w as u64);
        }
    }

    // Emitted stream: prefix equality is part of the Benign contract.
    h.write_u64_round(st.stream.len() as u64);
    for v in &st.stream {
        match v {
            OutVal::Int(i) => {
                h.write_u64_round(0);
                h.write_u64_round(*i as u64);
            }
            OutVal::Float(f) => {
                h.write_u64_round(1);
                h.write_u64_round(f.to_bits());
            }
        }
    }

    // Pending misses. Entries at or below the current cycle are dead —
    // the next miss's retain() removes them before they can queue
    // anything — so they are skipped to let replays whose stale
    // entries differ still converge.
    for &c in &st.mshr {
        if c > st.cycle {
            h.write_u64_round(c);
        }
    }

    st.cache.fingerprint_into(&mut h);
    h.finish()
}

/// The golden run plus everything a replay needs: checkpoints ordered
/// by dynamic-instruction count (the power-on state first) and the
/// fingerprint table keyed by dynamic instruction.
pub struct GoldenTrace {
    /// The fault-free result (flushes `sim.*` metrics exactly once,
    /// like the plain golden run the reference engine performs).
    pub result: SimResult,
    /// Chosen cadence.
    pub plan: CheckpointPlan,
    checkpoints: Vec<MachineState>,
    fingerprints: HashMap<u64, u64>,
    live: Vec<LiveMask>,
    /// RBED digest plan the golden run was instrumented with (`None`
    /// for every other scheme). Replays run under the same plan so
    /// restored accumulators keep advancing.
    rbed: Option<std::sync::Arc<crate::rbed::RbedPlan>>,
}

impl GoldenTrace {
    /// Number of snapshots captured (including the power-on state).
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints.len() as u64
    }

    /// Number of fingerprint samples recorded.
    pub fn fingerprints_recorded(&self) -> u64 {
        self.fingerprints.len() as u64
    }

    /// Index of the checkpoint a trial with injection site
    /// `at_dyn_insn` restores: the last snapshot whose
    /// dynamic-instruction count is *strictly below* the site.
    /// Strictness matters — the landing condition is `dyn_insns >= at`,
    /// so resuming from `dyn < at` reproduces the original landing
    /// site exactly (a checkpoint taken *at* the site would skip it).
    /// Returns 0 (the power-on state) for 1-based sites on a normal
    /// trace, and stays 0 even on a degenerate trace with no
    /// mid-run snapshots.
    pub fn restore_index(&self, at_dyn_insn: u64) -> usize {
        self.checkpoints
            .partition_point(|c| c.stats.dyn_insns < at_dyn_insn)
            .saturating_sub(1)
    }

    /// The snapshot at `idx`, if captured (the batch engine restores
    /// through this; `None` lets callers fall back to the power-on
    /// state instead of indexing out of bounds).
    pub(crate) fn checkpoint(&self, idx: usize) -> Option<&MachineState> {
        self.checkpoints.get(idx)
    }

    /// Whether this golden run was instrumented with an RBED digest
    /// plan. The batch engine needs only the flag: a lane whose
    /// computed values all equal the leader's carries the golden
    /// digest by construction, and any lane computing a differing
    /// value is handed back to the exact replay path (see
    /// `batch.rs`), so the batch never evaluates digests itself.
    pub(crate) fn rbed_active(&self) -> bool {
        self.rbed.is_some()
    }
}

/// Run the golden (fault-free) simulation, capturing checkpoints and
/// convergence fingerprints.
///
/// Two passes: a plain metrics-flushing run to learn the dynamic
/// length (the same single `sim.*` flush the reference engine's
/// golden run performs, keeping counter snapshots engine-agnostic),
/// then a quiet instrumented pass sized by [`CheckpointPlan`]. The
/// second pass costs one extra golden run per campaign — noise next
/// to the hundreds of trials it accelerates.
pub fn golden_with_checkpoints(sp: &ScheduledProgram) -> GoldenTrace {
    golden_with_checkpoints_rbed(sp, None)
}

/// [`golden_with_checkpoints`] with an optional RBED digest plan: the
/// instrumented pass runs with the accumulator installed, so every
/// snapshot and fingerprint carries the mid-run digest state a replay
/// needs to resume checking from.
pub fn golden_with_checkpoints_rbed(
    sp: &ScheduledProgram,
    rbed: Option<std::sync::Arc<crate::rbed::RbedPlan>>,
) -> GoldenTrace {
    let result = crate::machine::simulate(sp, &SimOptions::default());
    let plan = CheckpointPlan::for_golden(result.stats.dyn_insns);
    let live = live_in_masks(sp);

    let instrumented_opts = SimOptions {
        rbed: rbed.clone(),
        ..SimOptions::default()
    };
    let mut checkpoints = vec![MachineState::fresh(sp)];
    let mut fingerprints: HashMap<u64, u64> = HashMap::new();
    let mut next_ckpt = plan.interval;
    let mut next_sample = plan.sample_every;
    let mut st = checkpoints[0].clone();
    let replayed = run_machine(
        sp,
        &instrumented_opts,
        &mut st,
        false,
        &mut |st: &MachineState| {
            let dyn_insns = st.stats.dyn_insns;
            if dyn_insns >= next_ckpt && (checkpoints.len() as u64) < MAX_CHECKPOINTS {
                checkpoints.push(st.clone());
                next_ckpt = (dyn_insns / plan.interval + 1) * plan.interval;
            }
            // Fingerprints only at block entries, where the pending
            // branch/halt slots are empty and a per-block live mask is
            // exact (mid-block boundaries would need per-bundle masks).
            if st.bundle_idx == 0 && dyn_insns >= next_sample {
                fingerprints.insert(dyn_insns, fingerprint(st, &live[st.block.index()]));
                next_sample = (dyn_insns / plan.sample_every + 1) * plan.sample_every;
            }
            Boundary::Continue
        },
    )
    .expect("golden capture run cannot be stopped by the hook");
    debug_assert_eq!(replayed.stop, result.stop);
    debug_assert_eq!(replayed.stats.dyn_insns, result.stats.dyn_insns);

    GoldenTrace {
        result,
        plan,
        checkpoints,
        fingerprints,
        live,
        rbed,
    }
}

/// How one replayed trial ended.
pub enum TrialRun {
    /// The trial ran to a stop; classify its result normally.
    Finished(SimResult),
    /// The post-injection state re-converged with the golden run: the
    /// remainder is provably identical, the trial is Benign.
    Converged,
}

/// Engine-side accounting for one replayed trial.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    /// Golden-prefix instructions skipped by restoring a checkpoint.
    pub skipped_insns: u64,
    /// Whether convergence pruning ended the trial.
    pub pruned: bool,
}

/// Replay one faulty trial against a captured golden trace: restore
/// the last checkpoint strictly before the injection site, run the
/// suffix, and prune on post-injection convergence. For a trial that
/// runs to a stop, the returned [`SimResult`] is bit-identical to a
/// full `simulate` of the same injection (the property test pins
/// this), so classification is unchanged; a pruned trial is Benign.
pub fn replay_trial(
    sp: &ScheduledProgram,
    trace: &GoldenTrace,
    inj: Injection,
    max_cycles: u64,
) -> (TrialRun, ReplayStats) {
    // Last checkpoint with dyn_insns < at (see `restore_index`). A
    // trace always carries at least the power-on snapshot, but a
    // degenerate or hand-built one must not panic here — fall back to
    // the power-on state, which every replay may legally start from.
    let idx = trace.restore_index(inj.at_dyn_insn);
    let mut st = trace
        .checkpoints
        .get(idx)
        .cloned()
        .unwrap_or_else(|| MachineState::fresh(sp));
    let stats = ReplayStats {
        skipped_insns: st.stats.dyn_insns,
        pruned: false,
    };

    let opts = SimOptions {
        max_cycles,
        injection: Some(inj),
        rbed: trace.rbed.clone(),
        ..SimOptions::default()
    };
    let mut attempts = 0u32;
    let finished = run_machine(sp, &opts, &mut st, false, &mut |st: &MachineState| {
        if !st.injected || st.bundle_idx != 0 || attempts >= MAX_CONVERGENCE_ATTEMPTS {
            return Boundary::Continue;
        }
        // Sample exactly where the golden run sampled: a hit in the
        // table means the golden run passed a block entry at this
        // dynamic-instruction count. The fingerprint also binds the
        // block id, cycle and stream, so an aligned count in a
        // diverged run cannot false-match.
        match trace.fingerprints.get(&st.stats.dyn_insns) {
            Some(&golden_fp) => {
                attempts += 1;
                if golden_fp == fingerprint(st, &trace.live[st.block.index()]) {
                    Boundary::Stop
                } else {
                    Boundary::Continue
                }
            }
            None => Boundary::Continue,
        }
    });

    match finished {
        Some(result) => (TrialRun::Finished(result), stats),
        None => (
            TrialRun::Converged,
            ReplayStats {
                pruned: true,
                ..stats
            },
        ),
    }
}

/// [`replay_trial`] that additionally reports *what the replay
/// touched*: the blocks the run visited after the fault landed and,
/// for a pruned trial, the dynamic-instruction count where it
/// re-converged with the golden run.
///
/// This is the validation surface the incremental section cache
/// (`casted-faults::sections`) stores per escaped trial: a cached
/// replay verdict stays reusable exactly while every post-injection
/// block (and, for a converged verdict, the golden path up to the
/// convergence point) is unchanged. Kept separate from
/// [`replay_trial`] so the checkpointed/batched engines' hot path
/// pays no per-bundle bookkeeping.
pub fn replay_trial_observed(
    sp: &ScheduledProgram,
    trace: &GoldenTrace,
    inj: Injection,
    max_cycles: u64,
) -> (TrialRun, ReplayStats, Vec<u32>, Option<u64>) {
    let idx = trace.restore_index(inj.at_dyn_insn);
    let mut st = trace
        .checkpoints
        .get(idx)
        .cloned()
        .unwrap_or_else(|| MachineState::fresh(sp));
    let stats = ReplayStats {
        skipped_insns: st.stats.dyn_insns,
        pruned: false,
    };

    let opts = SimOptions {
        max_cycles,
        injection: Some(inj),
        rbed: trace.rbed.clone(),
        ..SimOptions::default()
    };
    let mut attempts = 0u32;
    let mut visited: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut converged_at: Option<u64> = None;
    let finished = run_machine(sp, &opts, &mut st, false, &mut |st: &MachineState| {
        if !st.injected {
            // The pre-landing stretch replays the golden path; its
            // effect on the state at the site is pinned by the cache
            // key, so only post-injection blocks need recording.
            return Boundary::Continue;
        }
        visited.insert(st.block.index() as u32);
        if st.bundle_idx != 0 || attempts >= MAX_CONVERGENCE_ATTEMPTS {
            return Boundary::Continue;
        }
        match trace.fingerprints.get(&st.stats.dyn_insns) {
            Some(&golden_fp) => {
                attempts += 1;
                if golden_fp == fingerprint(st, &trace.live[st.block.index()]) {
                    converged_at = Some(st.stats.dyn_insns);
                    Boundary::Stop
                } else {
                    Boundary::Continue
                }
            }
            None => Boundary::Continue,
        }
    });
    // Final control position (the empty-block fallthrough stops
    // without a boundary hook call — same note as `section.rs`).
    if st.injected {
        visited.insert(st.block.index() as u32);
    }

    let blocks = visited.into_iter().collect();
    match finished {
        Some(result) => (TrialRun::Finished(result), stats, blocks, None),
        None => (
            TrialRun::Converged,
            ReplayStats {
                pruned: true,
                ..stats
            },
            blocks,
            converged_at,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::vliw::{Bundle, ScheduledBlock};
    use casted_ir::{Cluster, CmpKind, FunctionBuilder, MachineConfig, Module, Operand};
    use std::collections::HashMap as Map;

    fn sequential(m: &Module, config: MachineConfig) -> ScheduledProgram {
        let func = m.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = Map::new();
        let mut blocks = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let mut bundles = Vec::new();
            for &iid in &block.insns {
                assignment[iid.index()] = Some(Cluster::MAIN);
                for &d in &func.insn(iid).defs {
                    home.entry(d).or_insert(Cluster::MAIN);
                }
                let mut b = Bundle::empty(config.clusters);
                b.slots[0].push(iid);
                bundles.push(b);
            }
            blocks.push(ScheduledBlock { block: bid, bundles });
        }
        ScheduledProgram {
            module: m.clone(),
            config,
            assignment,
            home,
            blocks,
        }
    }

    fn looping_module(iters: i64) -> Module {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 16, (0..16).collect());
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let base = b.imm(addr);
        let m16 = b.binop(Opcode::And, Operand::Reg(i), Operand::Imm(15));
        let sh = b.binop(Opcode::Shl, Operand::Reg(m16), Operand::Imm(3));
        let ea = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(sh));
        let v = b.load(ea, 0);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(v));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(iters));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    fn result_eq(a: &SimResult, b: &SimResult) -> bool {
        a.stop == b.stop
            && a.injected == b.injected
            && a.stats == b.stats
            && a.stream.len() == b.stream.len()
            && a.stream.iter().zip(&b.stream).all(|(x, y)| x.bit_eq(y))
    }

    #[test]
    fn plan_scales_with_golden_length() {
        let tiny = CheckpointPlan::for_golden(10);
        assert!(tiny.interval >= 16);
        let big = CheckpointPlan::for_golden(1_000_000);
        assert!(big.interval >= 1_000_000 / MAX_CHECKPOINTS);
        assert!(big.sample_every < big.interval);
    }

    #[test]
    fn golden_trace_checkpoints_cover_the_run() {
        let m = looping_module(200);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let t = golden_with_checkpoints(&sp);
        assert!(t.checkpoints_taken() > 1, "expected mid-run checkpoints");
        assert!(t.fingerprints_recorded() > 0);
        // Snapshots are strictly ordered by dynamic-instruction count.
        for w in t.checkpoints.windows(2) {
            assert!(w[0].stats.dyn_insns < w[1].stats.dyn_insns);
        }
    }

    #[test]
    fn replay_matches_scratch_simulation_everywhere() {
        let m = looping_module(60);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let t = golden_with_checkpoints(&sp);
        let max_cycles = t.result.stats.cycles * 10;
        // Every 7th site, every bit position cycled: replays must be
        // bit-identical to from-scratch faulty runs unless pruned.
        for k in 0..40u64 {
            let at = 1 + (k * 7) % t.result.stats.dyn_insns;
            let inj = Injection::single(at, (k % 64) as u32, None);
            let scratch = crate::machine::simulate_quiet(
                &sp,
                &SimOptions {
                    max_cycles,
                    injection: Some(inj),
                    ..SimOptions::default()
                },
            );
            match replay_trial(&sp, &t, inj, max_cycles) {
                (TrialRun::Finished(r), st) => {
                    assert!(
                        result_eq(&r, &scratch),
                        "replay diverged from scratch at site {at}: {:?} vs {:?}",
                        r.stop,
                        scratch.stop
                    );
                    assert!(st.skipped_insns < at);
                }
                (TrialRun::Converged, _) => {
                    // Pruned trials must be ones a full run classifies
                    // Benign: same halt + bit-equal stream as golden.
                    assert_eq!(scratch.stop, t.result.stop, "pruned a non-benign trial");
                    assert!(
                        scratch.stream.len() == t.result.stream.len()
                            && scratch
                                .stream
                                .iter()
                                .zip(&t.result.stream)
                                .all(|(x, y)| x.bit_eq(y)),
                        "pruned trial's full run has a different stream"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_site_fast_forwards_from_last_checkpoint() {
        let m = looping_module(120);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let t = golden_with_checkpoints(&sp);
        let inj = Injection::single(u64::MAX, 3, None);
        let (run, st) = replay_trial(&sp, &t, inj, t.result.stats.cycles * 10);
        // The injection never lands; the replay starts at the deepest
        // snapshot and finishes exactly like the golden run.
        assert_eq!(
            st.skipped_insns,
            t.checkpoints.last().unwrap().stats.dyn_insns
        );
        match run {
            TrialRun::Finished(r) => {
                assert_eq!(r.stop, t.result.stop);
                assert!(!r.injected);
            }
            TrialRun::Converged => panic!("cannot converge without an injection"),
        }
    }

    #[test]
    fn zero_dynamic_instruction_program_replays_safely() {
        // An empty entry block retires nothing: the golden run stops
        // with dyn_insns == 0 via the missing-branch exception. The
        // engine must still produce a usable trace (the power-on
        // snapshot only) and replay the degenerate no-op injection the
        // frozen stream draws for such programs (`at = u64::MAX`).
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        // A second (unreachable) block stops `finish()` from patching
        // the empty entry with an implicit halt: the entry block truly
        // retires nothing and falls through.
        let _unreachable = b.new_block("dead");
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let t = golden_with_checkpoints(&sp);
        assert_eq!(t.result.stats.dyn_insns, 0);
        assert_eq!(t.checkpoints_taken(), 1, "power-on snapshot only");
        assert_eq!(t.restore_index(u64::MAX), 0);
        let inj = Injection::single(u64::MAX, 7, None);
        match replay_trial(&sp, &t, inj, 1000) {
            (TrialRun::Finished(r), st) => {
                assert_eq!(r.stop, t.result.stop);
                assert!(!r.injected);
                assert_eq!(st.skipped_insns, 0);
            }
            (TrialRun::Converged, _) => panic!("cannot converge without an injection"),
        }
    }

    #[test]
    fn one_dynamic_instruction_program_replays_safely() {
        // `halt 0` alone: exactly one dynamic instruction, which has
        // no output register, so a site-1 injection slides forever and
        // never lands. Replay must match the golden run bit for bit.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let t = golden_with_checkpoints(&sp);
        assert_eq!(t.result.stats.dyn_insns, 1);
        for bit in [0u32, 17, 63] {
            let inj = Injection::single(1, bit, None);
            match replay_trial(&sp, &t, inj, 1000) {
                (TrialRun::Finished(r), _) => {
                    assert_eq!(r.stop, t.result.stop);
                    assert!(!r.injected, "halt has no def: the strike must slide off");
                }
                (TrialRun::Converged, _) => panic!("cannot converge without an injection"),
            }
        }
    }

    #[test]
    fn dead_register_strike_is_pruned() {
        // A value that is computed, never used again and never
        // rewritten: striking it after its last use must re-converge
        // via the dead-register mask (the fingerprint would otherwise
        // differ forever).
        let m = looping_module(400);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let t = golden_with_checkpoints(&sp);
        let max_cycles = t.result.stats.cycles * 10;
        let mut pruned = 0;
        for at in (1..t.result.stats.dyn_insns).step_by(11) {
            let inj = Injection::single(at, 1, None);
            if let (TrialRun::Converged, st) = replay_trial(&sp, &t, inj, max_cycles) {
                assert!(st.pruned);
                pruned += 1;
            }
        }
        assert!(pruned > 0, "no trial converged on a loop-heavy benign-rich program");
    }
}

