//! Set-associative, LRU, inclusive cache hierarchy (Table I).

use casted_ir::{CacheLevelConfig, MachineConfig};

/// Per-level hit counters plus memory accesses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits per level, in hierarchy order (L1 first).
    pub hits: Vec<u64>,
    /// Accesses that missed every level and went to memory.
    pub memory_accesses: u64,
    /// Total accesses.
    pub accesses: u64,
}

impl CacheStats {
    /// Miss ratio of the first level (1.0 when there were no accesses
    /// is reported as 0.0).
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let l1_hits = self.hits.first().copied().unwrap_or(0);
        1.0 - l1_hits as f64 / self.accesses as f64
    }
}

/// One cache level: `sets × ways` of line tags with LRU stamps.
#[derive(Clone)]
struct Level {
    cfg: CacheLevelConfig,
    sets: usize,
    /// `tags[set * ways + way]` = line address or `u64::MAX` (invalid).
    tags: Vec<u64>,
    /// LRU timestamp parallel to `tags`.
    stamp: Vec<u64>,
    tick: u64,
    /// Indices of ways that have ever been filled, in fill order.
    /// Lines are never invalidated, so this is exactly the valid set;
    /// it lets `fingerprint_into` scale with residency instead of
    /// scanning every way of a mostly-empty multi-megabyte level.
    touched: Vec<u32>,
}

impl Level {
    fn new(cfg: CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways;
        Level {
            cfg,
            sets,
            tags: vec![u64::MAX; sets * ways],
            stamp: vec![0; sets * ways],
            tick: 0,
            touched: Vec::new(),
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes as u64
    }

    /// Probe for `addr`; on hit refresh LRU and return true.
    fn probe(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = (line as usize) & (self.sets - 1);
        let ways = self.cfg.ways;
        self.tick += 1;
        for w in 0..ways {
            let idx = set * ways + w;
            if self.tags[idx] == line {
                self.stamp[idx] = self.tick;
                return true;
            }
        }
        false
    }

    /// Insert the line for `addr`, evicting the LRU way.
    fn fill(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let set = (line as usize) & (self.sets - 1);
        let ways = self.cfg.ways;
        self.tick += 1;
        let mut victim = set * ways;
        for w in 0..ways {
            let idx = set * ways + w;
            if self.tags[idx] == u64::MAX {
                victim = idx;
                break;
            }
            if self.stamp[idx] < self.stamp[victim] {
                victim = idx;
            }
        }
        if self.tags[victim] == u64::MAX {
            self.touched.push(victim as u32);
        }
        self.tags[victim] = line;
        self.stamp[victim] = self.tick;
    }
}

/// The full hierarchy. `access` returns the latency of the satisfying
/// level and fills all levels above it (inclusive fill on access).
///
/// `Clone` snapshots the complete replacement state (tags, LRU stamps,
/// counters), which is what lets the checkpoint engine resume a run
/// with bit-identical cache timing (see `crate::checkpoint`).
#[derive(Clone)]
pub struct CacheHierarchy {
    levels: Vec<Level>,
    memory_latency: u32,
    /// Latency when there are no cache levels at all (perfect memory).
    perfect_latency: u32,
    /// Public statistics.
    pub stats: CacheStats,
}

impl CacheHierarchy {
    /// Build the hierarchy described by `config`.
    pub fn new(config: &MachineConfig) -> Self {
        CacheHierarchy {
            levels: config
                .cache_levels
                .iter()
                .cloned()
                .map(Level::new)
                .collect(),
            memory_latency: config.memory_latency,
            perfect_latency: config.latency.load_hit,
            stats: CacheStats {
                hits: vec![0; config.cache_levels.len()],
                ..CacheStats::default()
            },
        }
    }

    /// Access byte address `addr`; returns the access latency in
    /// cycles. Reads and writes follow the same allocate-on-access
    /// path (write-allocate).
    pub fn access(&mut self, addr: u64) -> u32 {
        self.stats.accesses += 1;
        if self.levels.is_empty() {
            return self.perfect_latency;
        }
        for i in 0..self.levels.len() {
            if self.levels[i].probe(addr) {
                self.stats.hits[i] += 1;
                // Inclusive fill into the levels above.
                for j in 0..i {
                    self.levels[j].fill(addr);
                }
                return self.levels[i].cfg.latency;
            }
        }
        self.stats.memory_accesses += 1;
        for level in &mut self.levels {
            level.fill(addr);
        }
        self.memory_latency
    }

    /// Absorb the timing-relevant replacement state into `h`: per
    /// level, the LRU tick plus every *valid* line's `(index, tag,
    /// stamp)`. Two hierarchies that hash equal respond identically
    /// to every future access sequence, which is what the convergence
    /// pruning in `crate::checkpoint` relies on.
    ///
    /// Valid ways are enumerated through the fill-order `touched`
    /// list, so the cost scales with residency rather than capacity
    /// (the L3 alone has tens of thousands of mostly-empty ways).
    /// Fill order is part of the hashed sequence, but that costs no
    /// pruning in practice: `tick` counts every probe and fill, so
    /// two runs whose access histories diverged at all already hash
    /// differently, and runs with identical histories fill in the
    /// same order.
    pub fn fingerprint_into(&self, h: &mut casted_util::hash::Fnv64) {
        h.write_u64_round(self.levels.len() as u64);
        for level in &self.levels {
            h.write_u64_round(level.tick);
            for &idx in &level.touched {
                let idx = idx as usize;
                h.write_u64_round(idx as u64);
                h.write_u64_round(level.tags[idx]);
                h.write_u64_round(level.stamp[idx]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::itanium2_like(2, 1)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = CacheHierarchy::new(&cfg());
        assert_eq!(c.access(4096), 150);
        assert_eq!(c.access(4096), 1);
        assert_eq!(c.access(4096 + 32), 1, "same 64B line");
        assert_eq!(c.stats.memory_accesses, 1);
        assert_eq!(c.stats.hits[0], 2);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut c = CacheHierarchy::new(&cfg());
        // L1: 16K, 64B lines, 4-way -> 64 sets. Fill one set with 5
        // lines (stride = 64 sets * 64B = 4096B) to evict the first.
        for i in 0..5u64 {
            c.access(4096 + i * 4096);
        }
        // First line evicted from L1 but still in L2 (256K).
        let lat = c.access(4096);
        assert_eq!(lat, 5, "expected an L2 hit");
    }

    #[test]
    fn streaming_beyond_l3_goes_to_memory() {
        let mut c = CacheHierarchy::new(&cfg());
        // Touch 6 MB with 128-byte stride: twice the L3.
        let lines = 6 * 1024 * 1024 / 128;
        for i in 0..lines as u64 {
            c.access(4096 + i * 128);
        }
        // Re-streaming from the start must miss L3 again (LRU).
        let lat = c.access(4096);
        assert_eq!(lat, 150);
        assert!(c.stats.memory_accesses > lines as u64 / 2);
    }

    #[test]
    fn perfect_memory_has_flat_latency() {
        let mut c = CacheHierarchy::new(&MachineConfig::perfect_memory(1, 1));
        for i in 0..1000u64 {
            assert_eq!(c.access(i * 8192), 1);
        }
        assert_eq!(c.stats.memory_accesses, 0);
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = CacheHierarchy::new(&cfg());
        // Hot line A, then stream 4 conflicting lines while re-touching
        // A between fills: A must stay resident in L1.
        let a = 4096u64;
        c.access(a);
        for i in 1..=4u64 {
            c.access(a + i * 4096);
            c.access(a);
        }
        assert_eq!(c.access(a), 1);
    }
}
