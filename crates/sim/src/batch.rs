//! Batched structure-of-arrays trial engine.
//!
//! The checkpoint engine (`crate::checkpoint`) removed the fault-free
//! *prefix* from each trial, but still pays the fetch/decode/schedule/
//! stall/cache bookkeeping once **per trial** for the suffix — even
//! though every trial executes the same instruction stream until its
//! injection, and usually the same stream after it too (most flips
//! never change control flow or an address; they only change *values*).
//! This module is the software analogue of ELZAR's data-parallel
//! redundancy: step N trials ("lanes") in **lockstep** over one shared
//! decoded stream from a shared checkpoint and pay the per-instruction
//! structural work once per batch.
//!
//! ## The lane model
//!
//! A [`BatchState`] runs one **leader** — a full [`MachineState`]
//! restored from a golden checkpoint, replaying the fault-free run
//! exactly — plus N lanes in structure-of-arrays form. The key
//! observation is that a faulty run is split into *structural* state
//! (control position, stall/issue timing, the scoreboard, cache and
//! MSHR state, memory **addresses**) and *value* state (register
//! contents, memory contents, emitted values). As long as a lane's
//! structural signals equal the leader's, its structural state **is**
//! the leader's — shared, paid once — and the lane carries only value
//! state: a register file, a memory image, its emitted-stream
//! divergence flag, and O(1) difference tracking against the leader.
//!
//! Lanes are *virtual* until their injection lands: a virtual lane is
//! bit-identical to the leader by construction and costs nothing per
//! instruction. When the shared dynamic-instruction counter reaches a
//! lane's injection site (with the exact sliding rule of
//! `machine::run_machine`), the lane materializes — an empty **sparse
//! overlay** over the leader holding just the flipped victim bit, no
//! register-file or memory clone — and from then on executes value
//! work only where it actually differs, while the leader supplies
//! structure. An inverted register→lanes index picks out, per bundle,
//! exactly the lanes whose differing registers or memory words the
//! bundle touches; every other live lane is skipped wholesale, so the
//! per-instruction cost scales with how much divergent state the
//! faults actually created, not with batch width or program size.
//!
//! ## Divergence and retirement
//!
//! At each instruction every live lane's structural signals are
//! compared against the leader:
//!
//! * branch direction (`br.cond` predicate) differs → the lane's
//!   control flow leaves the shared stream: retire as
//!   [`LaneVerdict::Diverged`]; the caller replays that one trial on
//!   the exact checkpoint/replay path.
//! * memory **address** differs (load or store) → cache timing, MSHR
//!   occupancy and trap behaviour may differ: retire as `Diverged`.
//! * a pure op faults (e.g. divide by zero) where the leader did not →
//!   the lane's run ends in the exception class right here (values up
//!   to this point are exact): retire as [`LaneVerdict::Exception`].
//! * a detection check fires (`br.detect` / `chk.ne`) → retire as
//!   [`LaneVerdict::Detected`] at end of bundle, exactly where
//!   `run_machine` stops a detected run.
//! * the lane's value state re-equals the leader's (no differing
//!   register, no differing memory word, no emitted divergence, equal
//!   pending halt) → the remainder of the run is provably identical to
//!   golden: retire as [`LaneVerdict::Converged`] (Benign). This is
//!   the batch engine's O(1) analogue of the checkpoint engine's
//!   fingerprint pruning — maintained incrementally at writeback, no
//!   hashing at all.
//! * the leader halts → every surviving lane halts at the same bundle;
//!   each retires [`LaneVerdict::Halted`] carrying whether its exit
//!   code and full output stream bit-match the golden run.
//! * the shared cycle passes the watchdog → every surviving lane times
//!   out exactly where its own full run would: [`LaneVerdict::Timeout`].
//!
//! ## Why tallies stay byte-identical
//!
//! Classification (`casted_faults::classify`) looks only at the stop
//! reason, the exit code and bit-equality of the output stream. For a
//! lane that stays structurally convergent, the lockstep execution
//! computes the *exact* values its full run would compute (same
//! operands read under the same VLIW two-phase read rule, same
//! writeback order, same memory), so Halted/Detected/Exception/Timeout
//! verdicts map to exactly the class a from-scratch simulation
//! produces, and Converged lanes are provably Benign. A lane that
//! diverges structurally is never classified here — it is handed back
//! whole to `replay_trial`, which is property-tested bit-identical to
//! a from-scratch run. `prop_batch.rs` pins the whole equivalence,
//! including injections landing exactly on checkpoint boundaries.

use std::collections::HashMap;

use casted_ir::interp::OutVal;
use casted_ir::semantics::{eval_cmp_vals, eval_pure, Val};
use casted_ir::vliw::ScheduledProgram;
use casted_ir::{CmpKind, Opcode, Operand, Reg, RegClass};

use crate::checkpoint::GoldenTrace;
use crate::machine::{Injection, MachineState};

/// Default number of lanes stepped together by the batched campaign
/// engine. Virtual and skipped lanes are free, so wider batches are
/// almost strictly better — each extra lane amortizes the leader's
/// structural pass further; the `bench_faults` lane sweep is monotone
/// through this point. The cap exists to bound per-batch memory and
/// to leave a multi-core campaign pool more than one chunk to run.
pub const DEFAULT_LANE_WIDTH: usize = 256;

/// How one lane left the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneVerdict {
    /// The lane ran to the program's halt in lockstep.
    /// `matches_golden` is true iff its exit code equals the golden
    /// exit code **and** its full output stream is bit-equal to the
    /// golden stream — i.e. the trial is Benign; otherwise the fault
    /// silently corrupted data.
    Halted {
        /// Exit code and full output stream bit-match the golden run.
        matches_golden: bool,
    },
    /// The lane's value state re-converged with the leader after the
    /// injection: the remainder of the run is provably the golden
    /// remainder, the trial is Benign.
    Converged,
    /// A detection check fired in this lane (`br.detect` / `chk.ne`).
    Detected,
    /// A pure op faulted in this lane (e.g. divide by zero) at a point
    /// where all values are exact.
    Exception,
    /// The shared cycle count passed the watchdog with the lane still
    /// live — its own run times out at exactly the same bundle.
    Timeout,
    /// The lane diverged *structurally* from the leader (branch
    /// direction, memory address, or the leader itself stopped
    /// abnormally). The batch proves nothing about it; the caller must
    /// replay this one trial via `replay_trial`.
    Diverged,
}

/// Work accounting for one batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Lanes launched.
    pub lanes: u64,
    /// Leader bundles executed (the shared, paid-once work).
    pub bundles_stepped: u64,
    /// Per-lane per-instruction value steps actually performed
    /// (materialized live lanes only — virtual lanes are free).
    pub lane_insn_steps: u64,
    /// Lanes retired as [`LaneVerdict::Diverged`].
    pub divergences: u64,
    /// Lanes retired as [`LaneVerdict::Converged`].
    pub retired_converged: u64,
    /// Lanes retired as [`LaneVerdict::Halted`].
    pub retired_finished: u64,
    /// Lanes retired as [`LaneVerdict::Detected`].
    pub retired_detected: u64,
    /// Lanes retired as [`LaneVerdict::Exception`].
    pub retired_exception: u64,
    /// Lanes retired as [`LaneVerdict::Timeout`].
    pub retired_timeout: u64,
    /// Golden-prefix instructions skipped via the shared checkpoint,
    /// summed over lanes (the fast-forward saving, batch-shared).
    pub skipped_insns: u64,
}

impl BatchStats {
    /// Fold another batch's accounting into this one (campaigns sum
    /// the stats of every batch they ran).
    pub fn accumulate(&mut self, other: BatchStats) {
        self.lanes += other.lanes;
        self.bundles_stepped += other.bundles_stepped;
        self.lane_insn_steps += other.lane_insn_steps;
        self.divergences += other.divergences;
        self.retired_converged += other.retired_converged;
        self.retired_finished += other.retired_finished;
        self.retired_detected += other.retired_detected;
        self.retired_exception += other.retired_exception;
        self.retired_timeout += other.retired_timeout;
        self.skipped_insns += other.skipped_insns;
    }

    fn count_retire(&mut self, v: LaneVerdict) {
        match v {
            LaneVerdict::Halted { .. } => self.retired_finished += 1,
            LaneVerdict::Converged => self.retired_converged += 1,
            LaneVerdict::Detected => self.retired_detected += 1,
            LaneVerdict::Exception => self.retired_exception += 1,
            LaneVerdict::Timeout => self.retired_timeout += 1,
            LaneVerdict::Diverged => self.divergences += 1,
        }
    }
}

/// Bit-exact value equality (the same relation `OutVal::bit_eq` and
/// the classifier use: floats compare as IEEE-754 bit patterns, so a
/// NaN equals itself and `-0.0 != 0.0`).
#[inline]
fn val_bits_eq(a: Val, b: Val) -> bool {
    match (a, b) {
        (Val::I(x), Val::I(y)) => x == y,
        (Val::F(x), Val::F(y)) => x.to_bits() == y.to_bits(),
        (Val::B(x), Val::B(y)) => x == y,
        _ => false,
    }
}

/// Splitmix-style 64-bit mixer for the per-lane memory overlays: the
/// keys are word addresses (low entropy), the maps are tiny and hit
/// on almost every probe, so a one-round avalanche beats SipHash by a
/// wide margin and collision quality is ample.
#[derive(Default, Clone)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        let mut x = v as u64 ^ self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type MemMap = HashMap<i64, i64, std::hash::BuildHasherDefault<MixHasher>>;

/// Per-class bitmask of registers where a lane currently differs from
/// the leader, plus a popcount — the O(1) convergence tracker.
#[derive(Clone, Debug, Default)]
struct RegDiff {
    gp: Vec<u64>,
    fp: Vec<u64>,
    pr: Vec<u64>,
    count: u32,
}

impl RegDiff {
    fn sized(func: &casted_ir::Function) -> Self {
        let words = |n: u32| vec![0u64; (n as usize + 63) / 64];
        RegDiff {
            gp: words(func.reg_count(RegClass::Gp)),
            fp: words(func.reg_count(RegClass::Fp)),
            pr: words(func.reg_count(RegClass::Pr)),
            count: 0,
        }
    }

    #[inline]
    fn set(&mut self, r: Reg, differs: bool) {
        let bits = match r.class {
            RegClass::Gp => &mut self.gp,
            RegClass::Fp => &mut self.fp,
            RegClass::Pr => &mut self.pr,
        };
        let (w, m) = (r.index as usize / 64, 1u64 << (r.index % 64));
        let was = bits[w] & m != 0;
        if differs && !was {
            bits[w] |= m;
            self.count += 1;
        } else if !differs && was {
            bits[w] &= !m;
            self.count -= 1;
        }
    }

    #[inline]
    fn get(&self, r: Reg) -> bool {
        let bits = match r.class {
            RegClass::Gp => &self.gp,
            RegClass::Fp => &self.fp,
            RegClass::Pr => &self.pr,
        };
        bits[r.index as usize / 64] & (1u64 << (r.index % 64)) != 0
    }
}

/// Lifecycle of one lane inside the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LaneStatus {
    /// Injection not landed yet: the lane is bit-identical to the
    /// leader and carries no state of its own.
    Virtual,
    /// Injection landed: the lane carries value state and is stepped.
    Live,
    /// Retired with a verdict.
    Done,
}

/// N trials in structure-of-arrays form, stepped in lockstep over one
/// shared instruction stream by a leader [`MachineState`] (see the
/// module docs for the model). Lane state lives in parallel arrays
/// indexed by lane: one array per field, not one struct per lane, so
/// the per-instruction sweep over live lanes walks dense homogeneous
/// storage.
///
/// A lane's value state is a **sparse overlay** on the leader: the
/// [`RegDiff`] bitmask says *which* registers differ, `reg_over`
/// holds their values, and `mem_over` holds the differing memory
/// words. Everything not in the overlay equals the leader bit for
/// bit, so a lane instruction whose operands are all overlay-free is
/// (for a pure op) guaranteed to reproduce the leader's result and
/// costs only a couple of bitmask tests — the per-lane cost scales
/// with how much of the machine the fault has touched, not with
/// program size. It also makes materialization O(1): no register-file
/// or memory clone, just the flipped victim dropped into an empty
/// overlay.
pub struct BatchState<'a> {
    sp: &'a ScheduledProgram,
    /// The shared structural machine, replaying the golden run.
    leader: MachineState,
    max_cycles: u64,
    /// The campaign runs under an RBED digest plan. The digest absorbs
    /// every retired computed value (loads, pure results, stored
    /// values, emitted values), so a lane computing *any* value that
    /// differs from the leader's would diverge its digest from the
    /// golden digests — a condition the verdict vocabulary cannot
    /// carry (the real run may Detect at a later chunk boundary even
    /// after the value state re-converges). Such lanes retire
    /// [`LaneVerdict::Diverged`] and are replayed exactly; lanes whose
    /// computed values all equal the leader's have the golden digest
    /// by construction and every other verdict stays sound.
    rbed: bool,
    // ---- per-lane arrays (SoA), in ascending-injection-site order ----
    inj: Vec<Injection>,
    /// Caller-side lane index (verdicts are reported in caller order).
    orig: Vec<usize>,
    status: Vec<LaneStatus>,
    /// Per-lane flat-indexed register values, valid only where the
    /// lane's [`RegDiff`] bit is set (dense so reads and writes are
    /// plain indexing, no hashing; allocated when the lane
    /// materializes, freed when it retires).
    reg_over: Vec<Vec<Val>>,
    /// Raw bits of the memory words where the lane differs from the
    /// leader (the word layout `Memory` itself uses).
    mem_over: Vec<MemMap>,
    /// Per-lane phase-1 operand overrides for the current bundle:
    /// `(operand slot, lane value)` for the operands whose register is
    /// in the overlay, captured at the bundle's parallel read.
    ovr: Vec<Vec<(u32, Val)>>,
    reg_diff: Vec<RegDiff>,
    /// Inverted index: for each register (flat-indexed), the lanes
    /// whose diff bit for it is (or recently was) set. Entries are
    /// purged lazily on scan, so a bundle visits only the lanes that
    /// actually differ on the registers it reads or writes.
    lanes_with_reg: Vec<Vec<u32>>,
    /// Lanes whose `mem_over` is (or recently was) non-empty.
    lanes_with_mem: Vec<u32>,
    /// Per-lane stamp deduplicating the per-bundle active set.
    mark: Vec<u64>,
    stamp: u64,
    /// Flat register indexing: `gp | fp + fp_base | pr + pr_base`.
    fp_base: u32,
    pr_base: u32,
    total_regs: u32,
    stream_differs: Vec<bool>,
    detect: Vec<bool>,
    halt: Vec<Option<i64>>,
    verdicts: Vec<Option<LaneVerdict>>,
    /// Next virtual lane (lanes materialize in ascending-site order).
    cursor: usize,
    /// Indices of `Live` lanes, purged lazily: per-instruction work
    /// scales with how many lanes are actually live, not with batch
    /// width, so virtual and retired lanes cost nothing per step.
    live_list: Vec<usize>,
    live: usize,
    /// Count of lanes currently `Live` (materialized, not retired).
    /// While it is zero — the common case in detect-heavy cells, where
    /// lanes retire within a few bundles of materializing — the whole
    /// per-bundle index scan and override build is skipped.
    materialized_live: usize,
    stats: BatchStats,
}

impl<'a> BatchState<'a> {
    /// Set up a batch of `injections.len()` lanes over the checkpoint
    /// at `ckpt_idx` of `trace` (clamped; an out-of-range or absent
    /// checkpoint falls back to the power-on state, so a degenerate
    /// trace with no snapshots still batches correctly).
    pub fn new(
        sp: &'a ScheduledProgram,
        trace: &GoldenTrace,
        ckpt_idx: usize,
        injections: &[Injection],
        max_cycles: u64,
    ) -> Self {
        let leader = trace
            .checkpoint(ckpt_idx)
            .cloned()
            .unwrap_or_else(|| MachineState::fresh(sp));
        let n = injections.len();
        let func = sp.module.entry_fn();
        let gp = func.reg_count(RegClass::Gp);
        let fp = func.reg_count(RegClass::Fp);
        let pr = func.reg_count(RegClass::Pr);
        // Ascending-site order: lanes materialize monotonically as the
        // shared dynamic-instruction counter advances, so the virtual
        // set is always the suffix `[cursor..]`.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (injections[i].at_dyn_insn, i));
        let inj: Vec<Injection> = order.iter().map(|&i| injections[i]).collect();
        let stats = BatchStats {
            lanes: n as u64,
            skipped_insns: leader.stats.dyn_insns.saturating_mul(n as u64),
            ..BatchStats::default()
        };
        BatchState {
            sp,
            leader,
            max_cycles,
            rbed: trace.rbed_active(),
            inj,
            orig: order,
            status: vec![LaneStatus::Virtual; n],
            reg_over: vec![Vec::new(); n],
            mem_over: vec![MemMap::default(); n],
            ovr: vec![Vec::new(); n],
            reg_diff: vec![RegDiff::default(); n],
            lanes_with_reg: vec![Vec::new(); (gp + fp + pr) as usize],
            lanes_with_mem: Vec::new(),
            mark: vec![0; n],
            stamp: 0,
            fp_base: gp,
            pr_base: gp + fp,
            total_regs: gp + fp + pr,
            stream_differs: vec![false; n],
            detect: vec![false; n],
            halt: vec![None; n],
            verdicts: vec![None; n],
            cursor: 0,
            live_list: Vec::new(),
            live: n,
            materialized_live: 0,
            stats,
        }
    }

    /// Work accounting so far (complete once [`BatchState::run`] has
    /// returned).
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    fn retire(&mut self, lane: usize, v: LaneVerdict) {
        debug_assert!(self.verdicts[self.orig[lane]].is_none());
        self.verdicts[self.orig[lane]] = Some(v);
        if self.status[lane] == LaneStatus::Live {
            self.materialized_live -= 1;
        }
        self.status[lane] = LaneStatus::Done;
        self.stats.count_retire(v);
        self.live -= 1;
        // Drop the lane's overlay state eagerly so a long-running
        // batch never holds retired lanes' maps.
        self.reg_over[lane] = Vec::new();
        self.mem_over[lane] = MemMap::default();
        self.ovr[lane] = Vec::new();
        self.reg_diff[lane] = RegDiff::default();
    }

    #[inline]
    fn flat(&self, r: Reg) -> usize {
        (match r.class {
            RegClass::Gp => r.index,
            RegClass::Fp => self.fp_base + r.index,
            RegClass::Pr => self.pr_base + r.index,
        }) as usize
    }

    /// Write a lane's defined register: record it in the overlay when
    /// it differs from the leader's value, drop it out when it equals
    /// it (the invariant: overlay membership == diff bit set). A 0→1
    /// diff transition also registers the lane in the inverted index;
    /// 1→0 entries are purged lazily at the next scan of that list.
    #[inline]
    fn set_lane_def(&mut self, lane: usize, d: Reg, v: Val, leader_v: Val) {
        if val_bits_eq(v, leader_v) {
            if self.reg_diff[lane].get(d) {
                self.reg_diff[lane].set(d, false);
            }
        } else {
            let ri = self.flat(d);
            if !self.reg_diff[lane].get(d) {
                self.lanes_with_reg[ri].push(lane as u32);
            }
            self.reg_over[lane][ri] = v;
            self.reg_diff[lane].set(d, true);
        }
    }

    /// Add to `active` (stamp-deduped) every live lane whose diff bit
    /// for `r` is set, compacting stale index entries on the way.
    fn collect_reg_lanes(&mut self, r: Reg, active: &mut Vec<usize>) {
        let ri = self.flat(r);
        let mut i = 0;
        while i < self.lanes_with_reg[ri].len() {
            let lane = self.lanes_with_reg[ri][i] as usize;
            if self.status[lane] != LaneStatus::Live || !self.reg_diff[lane].get(r) {
                self.lanes_with_reg[ri].swap_remove(i);
                continue;
            }
            i += 1;
            if self.mark[lane] != self.stamp {
                self.mark[lane] = self.stamp;
                active.push(lane);
            }
        }
    }

    /// Same for the lanes holding differing memory words.
    fn collect_mem_lanes(&mut self, active: &mut Vec<usize>) {
        let mut i = 0;
        while i < self.lanes_with_mem.len() {
            let lane = self.lanes_with_mem[i] as usize;
            if self.status[lane] != LaneStatus::Live || self.mem_over[lane].is_empty() {
                self.lanes_with_mem.swap_remove(i);
                continue;
            }
            i += 1;
            if self.mark[lane] != self.stamp {
                self.mark[lane] = self.stamp;
                active.push(lane);
            }
        }
    }

    /// Verdict for a lane whose memory address differs from the
    /// leader's. Lane values are exact and lane timing has equalled
    /// leader timing so far (same instruction sequence, same
    /// addresses), so if the lane's own memory rejects the address its
    /// run traps at exactly this dynamic instruction: `Exception`,
    /// with nothing left to prove. A differing address that is *in*
    /// bounds perturbs future cache/MSHR timing instead — the batch
    /// proves nothing about that lane and the caller must replay it.
    fn addr_divergence(&self, addr: i64) -> LaneVerdict {
        // Lane memory has the leader's geometry by construction (same
        // module, fixed word count); only contents can differ.
        let words = self.leader.mem.len_words();
        if casted_ir::semantics::check_addr(addr, words).is_err() {
            LaneVerdict::Exception
        } else {
            LaneVerdict::Diverged
        }
    }

    /// Retire every not-yet-retired lane with `v` (watchdog, leader
    /// halt fallthrough, or abnormal leader stop).
    fn retire_all_live(&mut self, v: LaneVerdict) {
        for lane in 0..self.inj.len() {
            if self.status[lane] != LaneStatus::Done {
                self.retire(lane, v);
            }
        }
    }

    /// Step every lane to retirement. Verdicts are returned in the
    /// caller's lane order (the order of `injections` passed to
    /// [`BatchState::new`]).
    pub fn run(mut self) -> (Vec<LaneVerdict>, BatchStats) {
        let sp = self.sp;
        let func = sp.module.entry_fn();
        let config = &sp.config;
        let delay = config.inter_cluster_delay as u64;
        let lat = &config.latency;
        let n = self.inj.len();

        // Leader-side phase-1 buffers, mirrored from `run_machine`.
        let mut val_buf: Vec<Val> = Vec::with_capacity(64);
        // Scratch for a lane's operand values on the slow path.
        let mut lane_scratch: Vec<Val> = Vec::with_capacity(8);
        // Lanes this bundle can actually affect (rebuilt per bundle):
        // a lane steps a bundle only if the bundle reads or redefines
        // one of its differing registers, touches memory while the
        // lane has differing words, or halts. Everything else is a
        // no-op on the lane's overlay and is skipped wholesale.
        let mut active_lanes: Vec<usize> = Vec::new();
        let mut meta_buf: Vec<(casted_ir::Cluster, casted_ir::InsnId, u32, u32)> =
            Vec::with_capacity(16);

        'outer: while self.live > 0 {
            let sb = &sp.blocks[self.leader.block.index()];

            while self.leader.bundle_idx < sb.bundles.len() {
                if self.live == 0 {
                    break 'outer;
                }
                let bundle = &sb.bundles[self.leader.bundle_idx];
                if self.leader.cycle > self.max_cycles {
                    // The cycle count is structural (shared): every
                    // surviving lane's own run hits the watchdog at
                    // exactly this bundle.
                    self.retire_all_live(LaneVerdict::Timeout);
                    break 'outer;
                }

                // ---- stall until every operand is usable (shared) ----
                let st = &mut self.leader;
                let mut issue = st.cycle;
                for (cluster, iid) in bundle.iter() {
                    let insn = func.insn(iid);
                    for r in insn.reg_uses() {
                        let (mut avail, writer) = st.ready.get(r);
                        if writer != cluster.0 {
                            avail += delay;
                            st.stats.cross_reads += 1;
                        }
                        issue = issue.max(avail);
                    }
                }
                st.stats.stall_cycles += issue - st.cycle;
                st.stats.bundles += 1;
                self.stats.bundles_stepped += 1;

                // ---- phase 1: VLIW parallel operand read ----
                // The leader reads its registers; every live lane
                // reads the same operand list from its own registers.
                // Values written later in this bundle are *not* seen —
                // exactly `run_machine`'s two-phase rule.
                val_buf.clear();
                meta_buf.clear();
                let mut bundle_has_mem = false;
                let mut bundle_has_halt = false;
                for (cluster, iid) in bundle.iter() {
                    let insn = func.insn(iid);
                    match insn.op {
                        Opcode::Load | Opcode::FLoad | Opcode::Store | Opcode::FStore => {
                            bundle_has_mem = true;
                        }
                        Opcode::Halt => bundle_has_halt = true,
                        _ => {}
                    }
                    let off = val_buf.len() as u32;
                    for o in &insn.uses {
                        val_buf.push(match o {
                            Operand::Reg(r) => self.leader.rf.get(*r),
                            Operand::Imm(v) => Val::I(*v),
                            Operand::FImm(v) => Val::F(*v),
                        });
                    }
                    meta_buf.push((cluster, iid, off, insn.uses.len() as u32));
                }
                // A lane is *active* this bundle iff the bundle reads
                // or redefines one of its differing registers, touches
                // memory while it holds differing words, or halts —
                // found through the inverted index, so lanes the
                // bundle cannot affect cost nothing at all.
                self.stamp += 1;
                active_lanes.clear();
                if self.materialized_live > 0 {
                    for (_c, iid) in bundle.iter() {
                        let insn = func.insn(iid);
                        for o in &insn.uses {
                            if let Operand::Reg(r) = o {
                                self.collect_reg_lanes(*r, &mut active_lanes);
                            }
                        }
                        for &d in &insn.defs {
                            self.collect_reg_lanes(d, &mut active_lanes);
                        }
                    }
                    if bundle_has_mem {
                        self.collect_mem_lanes(&mut active_lanes);
                    }
                    if bundle_has_halt {
                        let mut li = 0;
                        while li < self.live_list.len() {
                            let lane = self.live_list[li];
                            if self.status[lane] != LaneStatus::Live {
                                self.live_list.swap_remove(li);
                                continue;
                            }
                            li += 1;
                            if self.mark[lane] != self.stamp {
                                self.mark[lane] = self.stamp;
                                active_lanes.push(lane);
                            }
                        }
                    }
                    // Phase-1 operand overrides, active lanes only (a
                    // skipped lane has none by construction).
                    for &lane in &active_lanes {
                        self.ovr[lane].clear();
                        if self.reg_diff[lane].count == 0 {
                            continue;
                        }
                        let mut s = 0u32;
                        for (_c, iid) in bundle.iter() {
                            for o in &func.insn(iid).uses {
                                if let Operand::Reg(r) = o {
                                    if self.reg_diff[lane].get(*r) {
                                        let ri = self.flat(*r);
                                        let v = self.reg_over[lane][ri];
                                        self.ovr[lane].push((s, v));
                                    }
                                }
                                s += 1;
                            }
                        }
                    }
                }

                // ---- phase 2: execute and write back, leader first ----
                for k in 0..meta_buf.len() {
                    let (cluster, iid, off, len) = meta_buf[k];
                    let range = off as usize..(off + len) as usize;
                    let insn = func.insn(iid);
                    let st = &mut self.leader;
                    st.stats.dyn_insns += 1;
                    st.stats.per_cluster[cluster.index()] += 1;
                    let dyn_insns = st.stats.dyn_insns;

                    // Leader-side structural facts of this insn,
                    // compared against each lane below.
                    let mut leader_addr: Option<i64> = None;
                    let mut leader_def: Option<(Reg, Val, u32)> = None;
                    let mut leader_pred: Option<bool> = None;
                    let mut leader_out: Option<OutVal> = None;

                    {
                        let vals = &val_buf[range.clone()];
                        match insn.op {
                            Opcode::Load | Opcode::FLoad => {
                                let addr = vals[0].as_i().wrapping_add(insn.imm);
                                leader_addr = Some(addr);
                                let loaded = if insn.op == Opcode::Load {
                                    st.mem.load_int(addr).map(Val::I)
                                } else {
                                    st.mem.load_float(addr).map(Val::F)
                                };
                                match loaded {
                                    Ok(v) => {
                                        let mut l =
                                            st.cache.access(addr as u64).max(lat.load_hit);
                                        let l1_lat = config
                                            .cache_levels
                                            .first()
                                            .map(|c| c.latency)
                                            .unwrap_or(lat.load_hit);
                                        if l > l1_lat {
                                            st.mshr.retain(|&c| c > issue);
                                            if st.mshr.len() >= config.mshr_entries {
                                                if let Some(&min) = st.mshr.iter().min() {
                                                    l += (min.saturating_sub(issue)) as u32;
                                                }
                                            }
                                            st.mshr.push(issue + l as u64);
                                        }
                                        st.rf.set(insn.defs[0], v);
                                        st.ready
                                            .set(insn.defs[0], issue + l as u64, cluster.0);
                                        leader_def = Some((insn.defs[0], v, l));
                                    }
                                    Err(_) => {
                                        // The leader is the golden
                                        // replay; it cannot trap unless
                                        // the trace itself is abnormal.
                                        // Prove nothing: replay them all.
                                        self.retire_all_live(LaneVerdict::Diverged);
                                        break 'outer;
                                    }
                                }
                            }
                            Opcode::Store | Opcode::FStore => {
                                let addr = vals[0].as_i().wrapping_add(insn.imm);
                                leader_addr = Some(addr);
                                let res = match insn.op {
                                    Opcode::Store => st.mem.store_int(addr, vals[1].as_i()),
                                    _ => st.mem.store_float(addr, vals[1].as_f()),
                                };
                                match res {
                                    Ok(()) => {
                                        st.cache.access(addr as u64);
                                    }
                                    Err(_) => {
                                        self.retire_all_live(LaneVerdict::Diverged);
                                        break 'outer;
                                    }
                                }
                            }
                            Opcode::Out => {
                                let v = OutVal::Int(vals[0].as_i());
                                st.stream.push(v);
                                leader_out = Some(v);
                            }
                            Opcode::FOut => {
                                let v = OutVal::Float(vals[0].as_f());
                                st.stream.push(v);
                                leader_out = Some(v);
                            }
                            Opcode::Br => st.next_block = insn.target,
                            Opcode::BrCond => {
                                let p = vals[0].as_b();
                                leader_pred = Some(p);
                                st.next_block = if p { insn.target } else { insn.target2 };
                            }
                            Opcode::DetectBr => {
                                if vals[0].as_b() {
                                    // Golden replays never detect.
                                    self.retire_all_live(LaneVerdict::Diverged);
                                    break 'outer;
                                }
                            }
                            Opcode::ChkNe => {
                                if eval_cmp_vals(CmpKind::Ne, vals[0], vals[1]) {
                                    self.retire_all_live(LaneVerdict::Diverged);
                                    break 'outer;
                                }
                            }
                            Opcode::Halt => st.halt = Some(vals[0].as_i()),
                            Opcode::Nop => {}
                            op => match eval_pure(op, vals) {
                                Ok(v) => {
                                    let latency = op.latency(lat);
                                    st.rf.set(insn.defs[0], v);
                                    st.ready
                                        .set(insn.defs[0], issue + latency as u64, cluster.0);
                                    leader_def = Some((insn.defs[0], v, latency));
                                }
                                Err(_) => {
                                    self.retire_all_live(LaneVerdict::Diverged);
                                    break 'outer;
                                }
                            },
                        }
                    }

                    // ---- lanes: value work + structural comparison ----
                    let mut li = 0;
                    while li < active_lanes.len() {
                        let lane = active_lanes[li];
                        li += 1;
                        if self.status[lane] != LaneStatus::Live {
                            continue;
                        }
                        self.stats.lane_insn_steps += 1;
                        // Does any operand of this insn carry a
                        // phase-1 override? (`ovr` is tiny — the
                        // operands whose register is in the overlay.)
                        let mut overridden = false;
                        for &(slot, _) in &self.ovr[lane] {
                            let slot = slot as usize;
                            if slot >= range.start && slot < range.end {
                                overridden = true;
                                break;
                            }
                        }
                        if !overridden {
                            // Fast path: every operand equals the
                            // leader's parallel read, so the lane
                            // computes exactly what the leader
                            // computed — same predicate, same emitted
                            // value, same non-firing checks. Only
                            // memory words and the def's diff bit can
                            // need attention.
                            match insn.op {
                                Opcode::Load | Opcode::FLoad => {
                                    // Same address; the loaded value
                                    // differs iff the lane's word does.
                                    let addr = leader_addr.expect("leader loaded too");
                                    let (d, lv, _lat) = leader_def.expect("leader loaded too");
                                    let v = match self.mem_over[lane].get(&addr) {
                                        Some(&bits) if insn.op == Opcode::Load => Val::I(bits),
                                        Some(&bits) => Val::F(f64::from_bits(bits as u64)),
                                        None => lv,
                                    };
                                    if self.rbed && !val_bits_eq(v, lv) {
                                        // A differing retired value
                                        // diverges the lane's digest.
                                        self.retire(lane, LaneVerdict::Diverged);
                                        continue;
                                    }
                                    self.set_lane_def(lane, d, v, lv);
                                }
                                Opcode::Store | Opcode::FStore => {
                                    // Same address, same stored value:
                                    // the word equals the leader's
                                    // afterwards whatever it held.
                                    let addr = leader_addr.expect("leader stored too");
                                    self.mem_over[lane].remove(&addr);
                                }
                                Opcode::Halt => {
                                    self.halt[lane] = Some(val_buf[range.start].as_i());
                                }
                                _ => {
                                    // A pure op over equal operands
                                    // re-derives the leader's value:
                                    // writeback can only *clear* the
                                    // def's diff bit.
                                    if let Some((d, _, _)) = leader_def {
                                        if self.reg_diff[lane].get(d) {
                                            self.reg_diff[lane].set(d, false);
                                        }
                                    }
                                }
                            }
                            continue;
                        }
                        // Slow path: at least one operand differs.
                        // Materialize this insn's operand values by
                        // patching the overrides over the leader's.
                        lane_scratch.clear();
                        lane_scratch.extend_from_slice(&val_buf[range.clone()]);
                        for &(slot, v) in &self.ovr[lane] {
                            let slot = slot as usize;
                            if slot >= range.start && slot < range.end {
                                lane_scratch[slot - range.start] = v;
                            }
                        }
                        let vals = &lane_scratch[..];
                        match insn.op {
                            Opcode::Load | Opcode::FLoad => {
                                let addr = vals[0].as_i().wrapping_add(insn.imm);
                                if Some(addr) != leader_addr {
                                    self.retire(lane, self.addr_divergence(addr));
                                    continue;
                                }
                                let (d, lv, _lat) = leader_def.expect("leader loaded too");
                                let v = match self.mem_over[lane].get(&addr) {
                                    Some(&bits) if insn.op == Opcode::Load => Val::I(bits),
                                    Some(&bits) => Val::F(f64::from_bits(bits as u64)),
                                    None => lv,
                                };
                                if self.rbed && !val_bits_eq(v, lv) {
                                    self.retire(lane, LaneVerdict::Diverged);
                                    continue;
                                }
                                self.set_lane_def(lane, d, v, lv);
                            }
                            Opcode::Store | Opcode::FStore => {
                                let addr = vals[0].as_i().wrapping_add(insn.imm);
                                if Some(addr) != leader_addr {
                                    self.retire(lane, self.addr_divergence(addr));
                                    continue;
                                }
                                // Stores overwrite the whole word;
                                // compare raw word bits (the layout
                                // `Memory` itself stores).
                                let (lane_bits, leader_bits) = match insn.op {
                                    Opcode::Store => {
                                        (vals[1].as_i(), val_buf[range.start + 1].as_i())
                                    }
                                    _ => (
                                        vals[1].as_f().to_bits() as i64,
                                        val_buf[range.start + 1].as_f().to_bits() as i64,
                                    ),
                                };
                                if lane_bits == leader_bits {
                                    self.mem_over[lane].remove(&addr);
                                } else if self.rbed {
                                    // The digest absorbs stored values.
                                    self.retire(lane, LaneVerdict::Diverged);
                                    continue;
                                } else {
                                    if self.mem_over[lane].is_empty() {
                                        self.lanes_with_mem.push(lane as u32);
                                    }
                                    self.mem_over[lane].insert(addr, lane_bits);
                                }
                            }
                            Opcode::Out => {
                                let v = OutVal::Int(vals[0].as_i());
                                if !v.bit_eq(&leader_out.expect("leader emitted too")) {
                                    if self.rbed {
                                        // The digest absorbs emitted
                                        // values: the real run may
                                        // Detect at the next boundary,
                                        // not silently corrupt.
                                        self.retire(lane, LaneVerdict::Diverged);
                                        continue;
                                    }
                                    self.stream_differs[lane] = true;
                                }
                            }
                            Opcode::FOut => {
                                let v = OutVal::Float(vals[0].as_f());
                                if !v.bit_eq(&leader_out.expect("leader emitted too")) {
                                    if self.rbed {
                                        self.retire(lane, LaneVerdict::Diverged);
                                        continue;
                                    }
                                    self.stream_differs[lane] = true;
                                }
                            }
                            Opcode::Br => {}
                            Opcode::BrCond => {
                                if Some(vals[0].as_b()) != leader_pred {
                                    self.retire(lane, LaneVerdict::Diverged);
                                }
                            }
                            Opcode::DetectBr => {
                                if vals[0].as_b() {
                                    self.detect[lane] = true;
                                }
                            }
                            Opcode::ChkNe => {
                                if eval_cmp_vals(CmpKind::Ne, vals[0], vals[1]) {
                                    self.detect[lane] = true;
                                }
                            }
                            Opcode::Halt => self.halt[lane] = Some(vals[0].as_i()),
                            Opcode::Nop => {}
                            Opcode::Vote => {
                                // A vote over a differing operand
                                // corrects (or fails to correct) in a
                                // way the verdict vocabulary cannot
                                // carry: the classifier needs the
                                // run's correction count to tell
                                // Corrected from Benign. Prove
                                // nothing; replay this trial exactly.
                                self.retire(lane, LaneVerdict::Diverged);
                                continue;
                            }
                            op => match eval_pure(op, vals) {
                                Ok(v) => {
                                    let (d, lv, _lat) =
                                        leader_def.expect("leader executed the same pure op");
                                    if self.rbed && !val_bits_eq(v, lv) {
                                        self.retire(lane, LaneVerdict::Diverged);
                                        continue;
                                    }
                                    self.set_lane_def(lane, d, v, lv);
                                }
                                Err(_) => {
                                    // Exact values, leader-validated
                                    // structure: the lane's own run
                                    // traps right here.
                                    self.retire(lane, LaneVerdict::Exception);
                                }
                            },
                        }
                    }

                    // ---- materialize virtual lanes whose site fires ----
                    // Mirrors `run_machine`'s rule: the injection lands
                    // at the first dynamic instruction with
                    // `dyn_insns >= at` that has a victim (its own def,
                    // or the register-file target), *after* writeback.
                    while self.cursor < n {
                        let lane = self.cursor;
                        if self.status[lane] != LaneStatus::Virtual {
                            self.cursor += 1;
                            continue;
                        }
                        if self.inj[lane].at_dyn_insn > dyn_insns {
                            break;
                        }
                        let victim = match self.inj[lane].target {
                            Some(r) => Some(r),
                            None => insn.def(),
                        };
                        let Some(d) = victim else {
                            // No victim here: every due lane slides to
                            // the next def-carrying instruction.
                            break;
                        };
                        // The lane equals the leader up to and
                        // including this writeback: it starts as an
                        // empty overlay holding just the flipped
                        // victim — no register-file or memory clone.
                        let orig_v = self.leader.rf.get(d);
                        let flipped = self.inj[lane].flip(orig_v, d.class.bits());
                        let mut diff = RegDiff::sized(func);
                        let differs = !val_bits_eq(flipped, orig_v);
                        diff.set(d, differs);
                        self.reg_over[lane] = vec![Val::I(0); self.total_regs as usize];
                        if differs {
                            let ri = self.flat(d);
                            self.reg_over[lane][ri] = flipped;
                            self.lanes_with_reg[ri].push(lane as u32);
                        }
                        self.mem_over[lane].clear();
                        // For the rest of this bundle the lane's
                        // phase-1 operands are the leader's: the flip
                        // happened after this bundle's parallel read,
                        // so there are no overrides to record.
                        self.ovr[lane].clear();
                        self.reg_diff[lane] = diff;
                        self.halt[lane] = self.leader.halt;
                        self.status[lane] = LaneStatus::Live;
                        self.materialized_live += 1;
                        self.live_list.push(lane);
                        // Step the rest of this bundle: a later slot
                        // may redefine (and so clear) the victim.
                        active_lanes.push(lane);
                        self.cursor += 1;
                    }
                }

                // ---- end of bundle: detections, convergence ----
                // Skipped lanes did not change state (and the leader's
                // halt flag did not change under them), so only active
                // lanes can newly detect or converge.
                let mut li = 0;
                while li < active_lanes.len() {
                    let lane = active_lanes[li];
                    li += 1;
                    if self.status[lane] != LaneStatus::Live {
                        continue;
                    }
                    if self.detect[lane] {
                        // `run_machine` stops a detected run at the end
                        // of the bundle; the stop reason is all the
                        // classifier reads.
                        self.retire(lane, LaneVerdict::Detected);
                        continue;
                    }
                    if self.reg_diff[lane].count == 0
                        && self.mem_over[lane].is_empty()
                        && !self.stream_differs[lane]
                        && self.halt[lane] == self.leader.halt
                    {
                        // The fault was masked: every observable bit of
                        // lane state equals the leader, so the
                        // remainder replays the golden remainder.
                        self.retire(lane, LaneVerdict::Converged);
                    }
                }

                self.leader.cycle = issue + 1;
                self.leader.bundle_idx += 1;
            }

            // ---- end of block (leader drives control) ----
            if let Some(code) = self.leader.halt {
                for lane in 0..n {
                    match self.status[lane] {
                        LaneStatus::Done => {}
                        LaneStatus::Virtual => {
                            // Injection never landed: the lane IS the
                            // golden run.
                            self.retire(lane, LaneVerdict::Halted { matches_golden: true });
                        }
                        LaneStatus::Live => {
                            let matches = self.halt[lane] == Some(code)
                                && !self.stream_differs[lane];
                            self.retire(lane, LaneVerdict::Halted { matches_golden: matches });
                        }
                    }
                }
                break;
            }
            match self.leader.next_block {
                Some(b) => {
                    self.leader.block = b;
                    self.leader.bundle_idx = 0;
                    self.leader.next_block = None;
                    self.leader.halt = None;
                    let mut li = 0;
                    while li < self.live_list.len() {
                        let lane = self.live_list[li];
                        if self.status[lane] != LaneStatus::Live {
                            self.live_list.swap_remove(li);
                            continue;
                        }
                        li += 1;
                        self.halt[lane] = None;
                    }
                }
                None => {
                    // Fell off a block with no branch: the golden run
                    // cannot do this; prove nothing.
                    self.retire_all_live(LaneVerdict::Diverged);
                    break;
                }
            }
        }

        // Lanes can only still be unretired if we broke out with
        // live == 0; every exit path above retires the rest.
        debug_assert!(self.verdicts.iter().all(|v| v.is_some()));
        let stats = self.stats;
        let verdicts = self
            .verdicts
            .into_iter()
            .map(|v| v.expect("every lane retired"))
            .collect();
        (verdicts, stats)
    }
}

/// Run one batch of trials from the checkpoint at `ckpt_idx`:
/// convenience wrapper over [`BatchState`]. Verdicts come back in the
/// order of `injections`; `Diverged` lanes must be replayed
/// individually by the caller (`replay_trial`).
pub fn run_batch(
    sp: &ScheduledProgram,
    trace: &GoldenTrace,
    ckpt_idx: usize,
    injections: &[Injection],
    max_cycles: u64,
) -> (Vec<LaneVerdict>, BatchStats) {
    BatchState::new(sp, trace, ckpt_idx, injections, max_cycles).run()
}

/// [`run_batch`] with the restore checkpoint chosen per the whole
/// batch: the last checkpoint strictly before the *earliest* injection
/// site in the batch — every lane's replay would restore at or after
/// it, so starting there reproduces each landing site exactly.
pub fn run_batch_auto(
    sp: &ScheduledProgram,
    trace: &GoldenTrace,
    injections: &[Injection],
    max_cycles: u64,
) -> (Vec<LaneVerdict>, BatchStats) {
    let earliest = injections
        .iter()
        .map(|i| i.at_dyn_insn)
        .min()
        .unwrap_or(u64::MAX);
    run_batch(sp, trace, trace.restore_index(earliest), injections, max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::golden_with_checkpoints;
    use crate::machine::{simulate_quiet, SimOptions};
    use casted_ir::interp::StopReason;
    use casted_ir::vliw::{Bundle, ScheduledBlock};
    use casted_ir::{Cluster, FunctionBuilder, MachineConfig, Module};
    use std::collections::HashMap;

    fn sequential(m: &Module, config: MachineConfig) -> ScheduledProgram {
        let func = m.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = HashMap::new();
        let mut blocks = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let mut bundles = Vec::new();
            for &iid in &block.insns {
                assignment[iid.index()] = Some(Cluster::MAIN);
                for &d in &func.insn(iid).defs {
                    home.entry(d).or_insert(Cluster::MAIN);
                }
                let mut b = Bundle::empty(config.clusters);
                b.slots[0].push(iid);
                bundles.push(b);
            }
            blocks.push(ScheduledBlock { block: bid, bundles });
        }
        ScheduledProgram {
            module: m.clone(),
            config,
            assignment,
            home,
            blocks,
        }
    }

    fn looping_module(iters: i64) -> Module {
        let mut m = Module::new("t");
        let (_, addr) =
            m.add_global("g", casted_ir::func::GlobalClass::Int, 16, (0..16).collect());
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let base = b.imm(addr);
        let m16 = b.binop(Opcode::And, Operand::Reg(i), Operand::Imm(15));
        let sh = b.binop(Opcode::Shl, Operand::Reg(m16), Operand::Imm(3));
        let ea = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(sh));
        let v = b.load(ea, 0);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(v));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(iters));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    /// Classify a from-scratch faulty run the way `casted_faults`
    /// does, reduced to what a batch verdict can be compared against.
    fn scratch_class(
        sp: &ScheduledProgram,
        golden: &crate::machine::SimResult,
        inj: Injection,
        max_cycles: u64,
    ) -> &'static str {
        let r = simulate_quiet(
            sp,
            &SimOptions {
                max_cycles,
                injection: Some(inj),
                ..SimOptions::default()
            },
        );
        match r.stop {
            StopReason::Detected => "detected",
            StopReason::Exception(_) => "exception",
            StopReason::Timeout => "timeout",
            StopReason::Halt(code) => {
                let same = golden.stop == StopReason::Halt(code)
                    && golden.stream.len() == r.stream.len()
                    && golden.stream.iter().zip(&r.stream).all(|(a, b)| a.bit_eq(b));
                if same {
                    "benign"
                } else {
                    "corrupt"
                }
            }
        }
    }

    fn verdict_class(v: LaneVerdict) -> &'static str {
        match v {
            LaneVerdict::Halted { matches_golden: true } | LaneVerdict::Converged => "benign",
            LaneVerdict::Halted { matches_golden: false } => "corrupt",
            LaneVerdict::Detected => "detected",
            LaneVerdict::Exception => "exception",
            LaneVerdict::Timeout => "timeout",
            LaneVerdict::Diverged => "diverged",
        }
    }

    #[test]
    fn batch_verdicts_match_scratch_classification() {
        let m = looping_module(80);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        let trace = golden_with_checkpoints(&sp);
        let max_cycles = trace.result.stats.cycles * 10;
        let dyn_insns = trace.result.stats.dyn_insns;
        let injections: Vec<Injection> = (0..24u64)
            .map(|k| Injection::single(1 + (k * 13) % dyn_insns, (k * 7 % 64) as u32, None))
            .collect();
        let (verdicts, stats) = run_batch_auto(&sp, &trace, &injections, max_cycles);
        assert_eq!(verdicts.len(), injections.len());
        assert_eq!(stats.lanes, injections.len() as u64);
        let mut in_batch = 0;
        for (v, &inj) in verdicts.iter().zip(&injections) {
            if *v == LaneVerdict::Diverged {
                continue; // the campaign replays these individually
            }
            in_batch += 1;
            assert_eq!(
                verdict_class(*v),
                scratch_class(&sp, &trace.result, inj, max_cycles),
                "lane at={} bit={} verdict {v:?} disagrees with scratch run",
                inj.at_dyn_insn,
                inj.bit
            );
        }
        assert!(in_batch > 0, "every lane diverged — the batch proved nothing");
    }

    #[test]
    fn virtual_lanes_cost_nothing_and_finish_benign() {
        let m = looping_module(50);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let trace = golden_with_checkpoints(&sp);
        // Sites past the end never land: lanes stay virtual for the
        // whole batch and retire exactly like the golden run.
        let injections: Vec<Injection> = (0..8)
            .map(|k| Injection::single(trace.result.stats.dyn_insns + 1 + k, 5, None))
            .collect();
        let (verdicts, stats) =
            run_batch_auto(&sp, &trace, &injections, trace.result.stats.cycles * 10);
        assert!(verdicts
            .iter()
            .all(|v| *v == LaneVerdict::Halted { matches_golden: true }));
        assert_eq!(stats.lane_insn_steps, 0, "virtual lanes must be free");
        assert_eq!(stats.retired_finished, 8);
    }

    #[test]
    fn converged_lanes_retire_before_the_leader_halts() {
        // A register that is rewritten with the same constant every
        // iteration and never read: a register-file strike on it is
        // erased at the next rewrite, so lanes must retire Converged
        // long before the leader halts.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let junk = b.imm(7);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        b.push(Opcode::MovI, vec![junk], vec![Operand::Imm(7)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(100));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(i));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let trace = golden_with_checkpoints(&sp);
        let max_cycles = trace.result.stats.cycles * 10;
        let injections: Vec<Injection> = (0..8u64)
            .map(|k| Injection::single(4 + k * 11, 3, Some(junk)))
            .collect();
        let (verdicts, stats) = run_batch_auto(&sp, &trace, &injections, max_cycles);
        assert!(
            stats.retired_converged > 0,
            "no lane converged despite the struck register being rewritten: {stats:?}"
        );
        for v in verdicts {
            assert!(
                matches!(
                    v,
                    LaneVerdict::Converged | LaneVerdict::Halted { matches_golden: true }
                ),
                "strike on a never-read register must be benign, got {v:?}"
            );
        }
    }

    #[test]
    fn missing_checkpoint_index_falls_back_to_power_on() {
        let m = looping_module(10);
        let sp = sequential(&m, MachineConfig::perfect_memory(1, 1));
        let trace = golden_with_checkpoints(&sp);
        let inj = Injection::single(3, 2, None);
        // An out-of-range checkpoint index must not panic — the batch
        // starts from the power-on state instead.
        let (verdicts, _stats) =
            run_batch(&sp, &trace, usize::MAX, &[inj], trace.result.stats.cycles * 10);
        assert_eq!(verdicts.len(), 1);
        let class = verdict_class(verdicts[0]);
        if verdicts[0] != LaneVerdict::Diverged {
            assert_eq!(
                class,
                scratch_class(&sp, &trace.result, inj, trace.result.stats.cycles * 10)
            );
        }
    }
}
