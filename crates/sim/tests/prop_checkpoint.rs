//! Property tests for the checkpoint/replay engine: for randomly
//! generated programs, random machine configurations and random
//! injection sites,
//!
//! * a replayed faulty trial is **bit-identical** (stop reason,
//!   stream, full stats, injected flag) to simulating the same
//!   injection from scratch — unless it was convergence-pruned, in
//!   which case the from-scratch run must classify Benign against the
//!   golden run, and
//! * an uninjected run resumed from every captured checkpoint
//!   reproduces the golden result exactly.
//!
//! Driven by the in-repo harness (`casted_util::prop`).

use casted_ir::testgen::{random_module, GenOptions};
use casted_ir::vliw::{Bundle, ScheduledBlock, ScheduledProgram};
use casted_ir::{Cluster, MachineConfig, Module};
use casted_sim::{
    golden_with_checkpoints, replay_trial, simulate_quiet, Injection, SimOptions, SimResult,
    TrialRun,
};
use casted_util::prop::run_cases;
use casted_util::{prop_assert, prop_assert_eq};
use std::collections::HashMap;

fn opts() -> GenOptions {
    GenOptions {
        body_ops: 25,
        iterations: 5,
        globals: 2,
        with_float: true,
        diamonds: 1,
        inner_loops: 1,
        lib_calls: 1,
    }
}

/// One-instruction-per-bundle sequential schedule on cluster 0.
fn sequential(module: &Module, config: MachineConfig) -> ScheduledProgram {
    let func = module.entry_fn();
    let mut assignment = vec![None; func.insns.len()];
    let mut home = HashMap::new();
    let mut blocks = Vec::new();
    for (bid, block) in func.iter_blocks() {
        let mut bundles = Vec::new();
        for &iid in &block.insns {
            assignment[iid.index()] = Some(Cluster::MAIN);
            for &d in &func.insn(iid).defs {
                home.entry(d).or_insert(Cluster::MAIN);
            }
            let mut b = Bundle::empty(config.clusters);
            b.slots[0].push(iid);
            bundles.push(b);
        }
        blocks.push(ScheduledBlock { block: bid, bundles });
    }
    ScheduledProgram {
        module: module.clone(),
        config,
        assignment,
        home,
        blocks,
    }
}

fn bit_identical(a: &SimResult, b: &SimResult) -> bool {
    a.stop == b.stop
        && a.injected == b.injected
        && a.stats == b.stats
        && a.stream.len() == b.stream.len()
        && a.stream.iter().zip(&b.stream).all(|(x, y)| x.bit_eq(y))
}

fn random_config(rng: &mut casted_util::Rng) -> MachineConfig {
    let clusters = rng.gen_range(1..=2usize);
    let delay = rng.gen_range(1..=4u32);
    if rng.gen_range(0..2u32) == 0 {
        MachineConfig::perfect_memory(clusters, delay)
    } else {
        MachineConfig::itanium2_like(clusters, delay)
    }
}

#[test]
fn replay_is_bit_identical_to_scratch_run() {
    run_cases("replay_is_bit_identical_to_scratch_run", 24, |rng| {
        let m = random_module(rng.gen_range(0..1u64 << 48), &opts());
        let sp = sequential(&m, random_config(rng));
        let golden = simulate_quiet(&sp, &SimOptions::default());
        if !matches!(golden.stop, casted_ir::interp::StopReason::Halt(_)) {
            return Ok(()); // campaign preconditions not met; skip
        }
        let trace = golden_with_checkpoints(&sp);
        let max_cycles = golden.stats.cycles.saturating_mul(10);
        for _ in 0..6 {
            let at = rng.gen_range(1..=golden.stats.dyn_insns);
            let bit = rng.gen_range(0..64u32);
            let inj = Injection::single(at, bit, None);
            let scratch = simulate_quiet(
                &sp,
                &SimOptions {
                    max_cycles,
                    injection: Some(inj),
                    ..SimOptions::default()
                },
            );
            match replay_trial(&sp, &trace, inj, max_cycles) {
                (TrialRun::Finished(r), stats) => {
                    prop_assert!(
                        bit_identical(&r, &scratch),
                        "replay of at={at} bit={bit} diverged: {:?} vs scratch {:?}",
                        r.stop,
                        scratch.stop
                    );
                    prop_assert!(
                        stats.skipped_insns < at,
                        "restored a checkpoint at/after the injection site"
                    );
                }
                (TrialRun::Converged, stats) => {
                    prop_assert!(stats.pruned);
                    // Pruning claims the trial is Benign: the scratch
                    // run must agree (same halt, bit-equal stream).
                    prop_assert_eq!(scratch.stop, golden.stop);
                    prop_assert!(
                        scratch.stream.len() == golden.stream.len()
                            && scratch
                                .stream
                                .iter()
                                .zip(&golden.stream)
                                .all(|(x, y)| x.bit_eq(y)),
                        "pruned trial (at={at} bit={bit}) is not benign from scratch"
                    );
                }
            }
        }
        Ok(())
    });
}

#[test]
fn resume_from_any_checkpoint_reproduces_golden_run() {
    run_cases("resume_from_any_checkpoint_reproduces_golden_run", 16, |rng| {
        let m = random_module(rng.gen_range(0..1u64 << 48), &opts());
        let sp = sequential(&m, random_config(rng));
        let golden = simulate_quiet(&sp, &SimOptions::default());
        if !matches!(golden.stop, casted_ir::interp::StopReason::Halt(_)) {
            return Ok(());
        }
        let trace = golden_with_checkpoints(&sp);
        // An injection past the end of the run never lands, so the
        // replay exercises pure snapshot → restore → resume from the
        // deepest checkpoint; the result must equal the golden run.
        let inj = Injection::single(golden.stats.dyn_insns + 1, rng.gen_range(0..64u32), None);
        match replay_trial(&sp, &trace, inj, golden.stats.cycles.saturating_mul(10)) {
            (TrialRun::Finished(r), _) => {
                prop_assert!(
                    bit_identical(&r, &golden),
                    "uninjected resume diverged from the golden run: {:?} vs {:?}",
                    r.stop,
                    golden.stop
                );
            }
            (TrialRun::Converged, _) => {
                return Err("uninjected resume cannot be pruned".into());
            }
        }
        Ok(())
    });
}
