//! Property tests for the batched trial engine: for randomly
//! generated programs, random machine configurations and random
//! injection sites, a batch of N lanes must classify every lane it
//! keeps (everything except `Diverged`, which the campaign replays
//! individually) exactly like N independent `replay_trial` runs.
//!
//! Injection sites are deliberately biased toward **checkpoint
//! boundaries** — the dynamic-instruction counts where
//! `GoldenTrace::restore_index` switches buckets — because an
//! off-by-one there silently lands the flip on the wrong instruction
//! while still producing a plausible tally.
//!
//! Driven by the in-repo harness (`casted_util::prop`).

use casted_ir::interp::StopReason;
use casted_ir::testgen::{random_module, GenOptions};
use casted_ir::vliw::{Bundle, ScheduledBlock, ScheduledProgram};
use casted_ir::{Cluster, MachineConfig, Module};
use casted_sim::{
    golden_with_checkpoints, replay_trial, run_batch, run_batch_auto, simulate_quiet, GoldenTrace,
    Injection, LaneVerdict, SimOptions, TrialRun,
};
use casted_util::prop::run_cases;
use casted_util::prop_assert_eq;
use std::collections::HashMap;

fn opts() -> GenOptions {
    GenOptions {
        body_ops: 25,
        iterations: 5,
        globals: 2,
        with_float: true,
        diamonds: 1,
        inner_loops: 1,
        lib_calls: 1,
    }
}

/// One-instruction-per-bundle sequential schedule on cluster 0.
fn sequential(module: &Module, config: MachineConfig) -> ScheduledProgram {
    let func = module.entry_fn();
    let mut assignment = vec![None; func.insns.len()];
    let mut home = HashMap::new();
    let mut blocks = Vec::new();
    for (bid, block) in func.iter_blocks() {
        let mut bundles = Vec::new();
        for &iid in &block.insns {
            assignment[iid.index()] = Some(Cluster::MAIN);
            for &d in &func.insn(iid).defs {
                home.entry(d).or_insert(Cluster::MAIN);
            }
            let mut b = Bundle::empty(config.clusters);
            b.slots[0].push(iid);
            bundles.push(b);
        }
        blocks.push(ScheduledBlock { block: bid, bundles });
    }
    ScheduledProgram {
        module: module.clone(),
        config,
        assignment,
        home,
        blocks,
    }
}

fn random_config(rng: &mut casted_util::Rng) -> MachineConfig {
    let clusters = rng.gen_range(1..=2usize);
    let delay = rng.gen_range(1..=4u32);
    if rng.gen_range(0..2u32) == 0 {
        MachineConfig::perfect_memory(clusters, delay)
    } else {
        MachineConfig::itanium2_like(clusters, delay)
    }
}

/// The dynamic-instruction counts at which `restore_index` switches
/// buckets, found by probing the public partition rule itself (the
/// checkpoint list is private). Site `b` in the result is the first
/// injection site served by a deeper checkpoint than site `b - 1`.
fn boundary_sites(trace: &GoldenTrace, dyn_insns: u64) -> Vec<u64> {
    let mut sites = Vec::new();
    let mut prev = trace.restore_index(1);
    for at in 2..=dyn_insns {
        let idx = trace.restore_index(at);
        if idx != prev {
            sites.push(at);
            prev = idx;
        }
    }
    sites
}

/// Classify one injection through the independent per-trial path the
/// campaign trusts (`replay_trial`, itself property-tested against
/// from-scratch simulation in `prop_checkpoint.rs`).
fn replay_class(
    sp: &ScheduledProgram,
    trace: &GoldenTrace,
    inj: Injection,
    max_cycles: u64,
) -> &'static str {
    match replay_trial(sp, trace, inj, max_cycles) {
        (TrialRun::Finished(r), _) => match r.stop {
            StopReason::Detected => "detected",
            StopReason::Exception(_) => "exception",
            StopReason::Timeout => "timeout",
            StopReason::Halt(code) => {
                let g = &trace.result;
                let same = g.stop == StopReason::Halt(code)
                    && g.stream.len() == r.stream.len()
                    && g.stream.iter().zip(&r.stream).all(|(a, b)| a.bit_eq(b));
                if same {
                    "benign"
                } else {
                    "corrupt"
                }
            }
        },
        (TrialRun::Converged, _) => "benign",
    }
}

fn verdict_class(v: LaneVerdict) -> Option<&'static str> {
    match v {
        LaneVerdict::Halted {
            matches_golden: true,
        }
        | LaneVerdict::Converged => Some("benign"),
        LaneVerdict::Halted {
            matches_golden: false,
        } => Some("corrupt"),
        LaneVerdict::Detected => Some("detected"),
        LaneVerdict::Exception => Some("exception"),
        LaneVerdict::Timeout => Some("timeout"),
        LaneVerdict::Diverged => None,
    }
}

#[test]
fn batch_matches_independent_replays_at_checkpoint_boundaries() {
    run_cases(
        "batch_matches_independent_replays_at_checkpoint_boundaries",
        16,
        |rng| {
            let m = random_module(rng.gen_range(0..1u64 << 48), &opts());
            let sp = sequential(&m, random_config(rng));
            let golden = simulate_quiet(&sp, &SimOptions::default());
            if !matches!(golden.stop, StopReason::Halt(_)) {
                return Ok(()); // campaign preconditions not met; skip
            }
            let trace = golden_with_checkpoints(&sp);
            let dyn_insns = golden.stats.dyn_insns;
            let max_cycles = golden.stats.cycles.saturating_mul(10);

            // Every checkpoint-boundary site, its neighbours, and a
            // handful of uniform sites — one batch over all of them.
            let mut sites: Vec<u64> = Vec::new();
            for b in boundary_sites(&trace, dyn_insns) {
                sites.push(b - 1);
                sites.push(b);
                sites.push((b + 1).min(dyn_insns));
            }
            for _ in 0..6 {
                sites.push(rng.gen_range(1..=dyn_insns));
            }
            let injections: Vec<Injection> = sites
                .iter()
                .map(|&at| Injection::single(at, rng.gen_range(0..64u32), None))
                .collect();

            let (verdicts, stats) = run_batch_auto(&sp, &trace, &injections, max_cycles);
            prop_assert_eq!(verdicts.len(), injections.len());
            prop_assert_eq!(stats.lanes, injections.len() as u64);
            for (v, &inj) in verdicts.iter().zip(&injections) {
                let Some(batch_class) = verdict_class(*v) else {
                    continue; // Diverged: the campaign replays it
                };
                prop_assert_eq!(
                    batch_class,
                    replay_class(&sp, &trace, inj, max_cycles),
                    "lane at={} bit={} verdict {v:?} disagrees with its independent replay",
                    inj.at_dyn_insn,
                    inj.bit
                );
            }
            Ok(())
        },
    );
}

#[test]
fn explicit_checkpoint_grouping_matches_auto_restore() {
    run_cases("explicit_checkpoint_grouping_matches_auto_restore", 10, |rng| {
        let m = random_module(rng.gen_range(0..1u64 << 48), &opts());
        let sp = sequential(&m, random_config(rng));
        let golden = simulate_quiet(&sp, &SimOptions::default());
        if !matches!(golden.stop, StopReason::Halt(_)) {
            return Ok(());
        }
        let trace = golden_with_checkpoints(&sp);
        let dyn_insns = golden.stats.dyn_insns;
        let max_cycles = golden.stats.cycles.saturating_mul(10);

        // Group sites by restore bucket (the campaign's partition) and
        // run each group from its own checkpoint: verdict classes must
        // match the whole-list auto batch, lane for lane.
        let injections: Vec<Injection> = (0..12)
            .map(|_| Injection::single(rng.gen_range(1..=dyn_insns), rng.gen_range(0..64u32), None))
            .collect();
        let (auto, _) = run_batch_auto(&sp, &trace, &injections, max_cycles);

        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, inj) in injections.iter().enumerate() {
            groups
                .entry(trace.restore_index(inj.at_dyn_insn))
                .or_default()
                .push(i);
        }
        for (ckpt_idx, ids) in groups {
            let group: Vec<Injection> = ids.iter().map(|&i| injections[i]).collect();
            let (verdicts, _) = run_batch(&sp, &trace, ckpt_idx, &group, max_cycles);
            for (v, &i) in verdicts.iter().zip(&ids) {
                // A lane may diverge in one grouping and not the other
                // only if materialization order differs — it cannot:
                // both restore strictly before the site. Classes of
                // retained lanes must agree exactly.
                match (verdict_class(*v), verdict_class(auto[i])) {
                    (Some(a), Some(b)) => prop_assert_eq!(
                        a,
                        b,
                        "lane at={} classified {a:?} from checkpoint {ckpt_idx} but {b:?} in the auto batch",
                        injections[i].at_dyn_insn
                    ),
                    _ => {
                        // Diverged on either side: the campaign would
                        // replay it; nothing to compare.
                    }
                }
            }
        }
        Ok(())
    });
}
