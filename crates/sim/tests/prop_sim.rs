//! Property-based tests of the simulator against the reference
//! interpreter: for any generated program and any machine
//! configuration, functional behaviour must be identical and timing
//! invariants must hold.
//!
//! Driven by the in-repo harness (`casted_util::prop`).

use casted_ir::testgen::{random_module, GenOptions};
use casted_ir::vliw::{Bundle, ScheduledBlock, ScheduledProgram};
use casted_ir::{interp, Cluster, MachineConfig, Module};
use casted_sim::{simulate, SimOptions};
use casted_util::prop::run_cases;
use casted_util::{prop_assert, prop_assert_eq};
use std::collections::HashMap;

fn opts() -> GenOptions {
    GenOptions {
        body_ops: 25,
        iterations: 4,
        globals: 2,
        with_float: true,
        diamonds: 1,
        inner_loops: 1,
        lib_calls: 1,
    }
}

/// One-instruction-per-bundle sequential schedule on cluster 0 — the
/// simplest valid schedule, used to isolate simulator semantics from
/// scheduler behaviour.
fn sequential(module: &Module, config: MachineConfig) -> ScheduledProgram {
    let func = module.entry_fn();
    let mut assignment = vec![None; func.insns.len()];
    let mut home = HashMap::new();
    let mut blocks = Vec::new();
    for (bid, block) in func.iter_blocks() {
        let mut bundles = Vec::new();
        for &iid in &block.insns {
            assignment[iid.index()] = Some(Cluster::MAIN);
            for &d in &func.insn(iid).defs {
                home.entry(d).or_insert(Cluster::MAIN);
            }
            let mut b = Bundle::empty(config.clusters);
            b.slots[0].push(iid);
            bundles.push(b);
        }
        blocks.push(ScheduledBlock { block: bid, bundles });
    }
    ScheduledProgram {
        module: module.clone(),
        config,
        assignment,
        home,
        blocks,
    }
}

#[test]
fn simulator_matches_interpreter() {
    run_cases("simulator_matches_interpreter", 32, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let issue = rng.gen_range(1usize..=4);
        let delay = rng.gen_range(1u32..=4);
        let golden = interp::run(&m, 2_000_000).unwrap();
        let sp = sequential(&m, MachineConfig::itanium2_like(issue, delay));
        let r = simulate(&sp, &SimOptions::default());
        prop_assert_eq!(&r.stop, &golden.stop);
        prop_assert_eq!(r.stats.dyn_insns, golden.dyn_insns);
        prop_assert_eq!(r.stream.len(), golden.stream.len());
        for (x, y) in r.stream.iter().zip(&golden.stream) {
            prop_assert!(x.bit_eq(y));
        }
        Ok(())
    });
}

#[test]
fn cycle_accounting_invariants() {
    run_cases("cycle_accounting_invariants", 32, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let sp = sequential(&m, MachineConfig::itanium2_like(1, 2));
        let r = simulate(&sp, &SimOptions::default());
        // Sequential one-insn bundles: every cycle is a bundle or a stall.
        prop_assert_eq!(r.stats.cycles, r.stats.bundles + r.stats.stall_cycles);
        prop_assert_eq!(r.stats.dyn_insns, r.stats.bundles);
        // Cycles can never undercut instructions on a 1-wide machine.
        prop_assert!(r.stats.cycles >= r.stats.dyn_insns);
        Ok(())
    });
}

#[test]
fn perfect_memory_never_slower() {
    run_cases("perfect_memory_never_slower", 32, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let cached = simulate(&sequential(&m, MachineConfig::itanium2_like(2, 2)), &SimOptions::default());
        let perfect = simulate(&sequential(&m, MachineConfig::perfect_memory(2, 2)), &SimOptions::default());
        prop_assert!(perfect.stats.cycles <= cached.stats.cycles);
        Ok(())
    });
}

#[test]
fn injected_run_always_classifiable() {
    run_cases("injected_run_always_classifiable", 32, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let at_frac = rng.gen_range(1u64..100);
        let bit = rng.gen_range(0u32..64);
        let sp = sequential(&m, MachineConfig::perfect_memory(2, 1));
        let golden = simulate(&sp, &SimOptions::default());
        let at = (golden.stats.dyn_insns * at_frac / 100).max(1);
        let r = simulate(&sp, &SimOptions {
            max_cycles: golden.stats.cycles * 10 + 1000,
            injection: Some(casted_sim::Injection::single(at, bit, None)),
            ..SimOptions::default()
        });
        // Whatever happens, the run must terminate with one of the
        // five outcomes — never hang or panic.
        let outcome = casted_faults_lite_classify(&golden, &r);
        prop_assert!(outcome < 5);
        Ok(())
    });
}

/// Minimal classification (the faults crate is not a dependency of
/// casted-sim; this mirrors its logic for the property above).
fn casted_faults_lite_classify(golden: &casted_sim::SimResult, r: &casted_sim::SimResult) -> u8 {
    use casted_ir::interp::StopReason;
    match r.stop {
        StopReason::Detected => 1,
        StopReason::Exception(_) => 2,
        StopReason::Timeout => 4,
        StopReason::Halt(_) => {
            let same = golden.stop == r.stop
                && golden.stream.len() == r.stream.len()
                && golden.stream.iter().zip(&r.stream).all(|(a, b)| a.bit_eq(b));
            if same { 0 } else { 3 }
        }
    }
}
