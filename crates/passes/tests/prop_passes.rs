//! Property-based tests over the compiler passes: for arbitrary
//! generated programs, every transformation must preserve observable
//! semantics and every schedule must be structurally valid.
//!
//! Driven by the in-repo harness (`casted_util::prop`).

use casted_ir::testgen::{random_module, GenOptions};
use casted_ir::{interp, Cluster, MachineConfig};
use casted_passes::{error_detection, prepare, schedule_function, Placement, Scheme};
use casted_util::prop::run_cases;
use casted_util::{prop_assert, prop_assert_eq};

fn opts() -> GenOptions {
    GenOptions {
        body_ops: 25,
        iterations: 4,
        globals: 2,
        with_float: true,
        diamonds: 2,
        inner_loops: 1,
        lib_calls: 1,
    }
}

fn streams_equal(a: &interp::ExecResult, b: &interp::ExecResult) -> bool {
    a.stop == b.stop
        && a.stream.len() == b.stream.len()
        && a.stream.iter().zip(&b.stream).all(|(x, y)| x.bit_eq(y))
}

#[test]
fn error_detection_preserves_semantics() {
    run_cases("error_detection_preserves_semantics", 24, |rng| {
        let mut m = random_module(rng.next_u64(), &opts());
        let golden = interp::run(&m, 2_000_000).unwrap();
        let stats = error_detection(&mut m);
        prop_assert!(casted_ir::verify::verify_module(&m).is_ok());
        let r = interp::run(&m, 20_000_000).unwrap();
        prop_assert!(streams_equal(&golden, &r));
        prop_assert!(stats.replicated > 0);
        Ok(())
    });
}

#[test]
fn schedules_validate_for_all_placements() {
    run_cases("schedules_validate_for_all_placements", 24, |rng| {
        let mut m = random_module(rng.next_u64(), &opts());
        let issue = rng.gen_range(1usize..=4);
        let delay = rng.gen_range(1u32..=4);
        error_detection(&mut m);
        let cfg = MachineConfig::perfect_memory(issue, delay);
        for p in [Placement::AllOn(Cluster::MAIN), Placement::ByStream, Placement::Adaptive] {
            let sp = schedule_function(&m, &cfg, p);
            prop_assert!(sp.validate().is_ok(), "{:?} produced invalid schedule", p);
        }
        Ok(())
    });
}

#[test]
fn full_pipeline_preserves_semantics_for_every_scheme() {
    run_cases("full_pipeline_preserves_semantics_for_every_scheme", 24, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let golden = interp::run(&m, 2_000_000).unwrap();
        let cfg = MachineConfig::itanium2_like(2, 2);
        for scheme in Scheme::FULL {
            let prep = prepare(&m, scheme, &cfg).unwrap();
            let r = casted_sim::simulate(&prep.sp, &casted_sim::SimOptions::default());
            prop_assert_eq!(&r.stop, &golden.stop);
            prop_assert_eq!(r.stream.len(), golden.stream.len());
            for (x, y) in r.stream.iter().zip(&golden.stream) {
                prop_assert!(x.bit_eq(y), "{} changed output", scheme);
            }
        }
        Ok(())
    });
}

#[test]
fn adaptive_never_much_worse_than_fixed() {
    run_cases("adaptive_never_much_worse_than_fixed", 24, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let delay = rng.gen_range(1u32..=4);
        let cfg = MachineConfig::perfect_memory(2, delay);
        let mut cycles = std::collections::HashMap::new();
        for scheme in [Scheme::Sced, Scheme::Dced, Scheme::Casted] {
            let prep = prepare(&m, scheme, &cfg).unwrap();
            let r = casted_sim::simulate(&prep.sp, &casted_sim::SimOptions::default());
            cycles.insert(scheme, r.stats.cycles);
        }
        let best = cycles[&Scheme::Sced].min(cycles[&Scheme::Dced]) as f64;
        prop_assert!(
            (cycles[&Scheme::Casted] as f64) <= best * 1.15,
            "CASTED {} vs best fixed {}",
            cycles[&Scheme::Casted],
            best
        );
        Ok(())
    });
}

#[test]
fn spilling_a_random_register_preserves_semantics() {
    run_cases("spilling_a_random_register_preserves_semantics", 24, |rng| {
        use casted_ir::RegClass;
        let mut m = random_module(rng.next_u64(), &opts());
        let golden = interp::run(&m, 2_000_000).unwrap();
        // Spill an arbitrary mid-range GP register.
        let count = m.entry_fn().reg_count(RegClass::Gp);
        let victim = casted_ir::Reg::gp(count / 2);
        casted_passes::spill::spill_register(&mut m, victim);
        prop_assert!(casted_ir::verify::verify_module(&m).is_ok());
        let r = interp::run(&m, 20_000_000).unwrap();
        prop_assert!(streams_equal(&golden, &r));
        Ok(())
    });
}

#[test]
fn physical_assignment_matches_pressure() {
    run_cases("physical_assignment_matches_pressure", 24, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let cfg = MachineConfig::perfect_memory(2, 2);
        let prep = prepare(&m, Scheme::Sced, &cfg).unwrap();
        let ivs = casted_passes::spill::intervals(&prep.sp);
        let pressure = casted_passes::spill::max_pressure(&prep.sp, &ivs);
        for c in 0..2 {
            for (k, class) in casted_ir::RegClass::ALL.iter().enumerate() {
                prop_assert!(pressure[c][k] <= class.file_size() as u32);
                prop_assert!(prep.phys.peak[c][k] <= class.file_size() as u32);
                // Linear scan can never beat the true pressure bound.
                prop_assert!(prep.phys.peak[c][k] <= pressure[c][k]);
            }
        }
        Ok(())
    });
}
