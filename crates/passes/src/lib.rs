//! # casted-passes — the CASTED compiler back-end passes
//!
//! This crate implements the paper's two back-end algorithms plus the
//! supporting machinery a real back-end needs around them:
//!
//! * [`errordetect`] — **Algorithm 1**, the SWIFT-style single-threaded
//!   error-detection transformation: instruction replication, register
//!   renaming (redundant-stream isolation), and check insertion before
//!   every non-replicated instruction.
//! * [`schedule`] — the unified cluster-assignment + list-scheduling
//!   engine. Under a *fixed* placement policy it reproduces the SCED
//!   (all on one core) and DCED (original on core 0, redundant on
//!   core 1) baselines; under the *adaptive* policy it is **Algorithm
//!   2**, the Bottom-Up-Greedy (BUG) completion-cycle heuristic that
//!   gives CASTED its adaptivity.
//! * [`ifconvert`] — if-conversion of small branch diamonds into
//!   predicated `sel` code (opt-in; enlarges scheduling regions the way
//!   production VLIW compilers do).
//! * [`opt`] — constant folding, local value numbering and DCE, used by
//!   the §IV-A methodology experiment (`opt_impact`).
//! * [`spill`] — register-pressure limiting so the code respects the
//!   per-cluster 64GP/64FL/32PR register files (the paper attributes
//!   part of SCED's slowdown variation to the extra spilling its
//!   doubled register pressure causes).
//! * [`physreg`] — final linear-scan mapping of virtual registers to
//!   physical per-cluster register indices (a validation artifact; the
//!   simulator executes on virtual registers with home clusters).
//! * [`pipeline`] — the end-to-end driver: [`pipeline::Scheme`] selects
//!   NOED / SCED / DCED / CASTED (plus the recovery-capable TMRED and
//!   RBED extensions) and [`pipeline::prepare`] produces a
//!   simulator-ready [`casted_ir::vliw::ScheduledProgram`].
//! * [`schemes`] — the pluggable scheme registry: one descriptor row
//!   per scheme (name, aliases, transform, replication factor,
//!   correction capability, placement), plus the TMR transform that
//!   backs TMRED's majority-vote recovery.

pub mod errordetect;
pub mod ifconvert;
pub mod opt;
pub mod physreg;
pub mod pipeline;
pub mod schedule;
pub mod schemes;
pub mod spill;
pub mod stages;

pub use errordetect::{error_detection, EdStats};
pub use pipeline::{prepare, PrepareOptions, Prepared, Scheme};
pub use schedule::{schedule_function, Placement};
pub use schemes::{SchemeDescriptor, Transform};
