//! Unified cluster assignment + VLIW list scheduling.
//!
//! One engine drives all four evaluated schemes:
//!
//! * **Fixed placement** ([`Placement::AllOn`] / [`Placement::ByStream`])
//!   reproduces NOED & SCED (everything on cluster 0) and DCED
//!   (original stream on cluster 0, redundant stream on cluster 1).
//!   Scheduling is a classic critical-path list scheduler over the
//!   block DFG with a per-(cluster, cycle) reservation table.
//! * **Adaptive placement** ([`Placement::Adaptive`]) is the paper's
//!   Algorithm 2, Bottom-Up-Greedy (BUG, after Ellis' Bulldog): visit
//!   the DFG "in topological order, giving preference to the critical
//!   path", compute the *completion cycle* of the instruction on every
//!   cluster — operand ready times plus the inter-cluster delay for
//!   operands homed on the other cluster, constrained by reservation-
//!   table slot availability — and assign the instruction to the
//!   cluster where it finishes earliest.
//!
//! The completion-cycle heuristic is both *resource aware* (it searches
//! for a free issue slot) and *delay aware* (it charges
//! `inter_cluster_delay` on cross-cluster data edges), which is exactly
//! what lets CASTED degrade to SCED-like placement when the delay is
//! large and to DCED-like placement when cores are narrow.

use std::collections::HashMap;

use casted_ir::dfg::{BlockDfg, DepKind};
use casted_ir::vliw::{Bundle, ScheduledBlock, ScheduledProgram};
use casted_ir::{Cluster, InsnId, MachineConfig, Module, Provenance, Reg};

/// Cluster-placement policy for the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Every instruction on one cluster (NOED, SCED).
    AllOn(Cluster),
    /// DCED: instructions of the redundant stream (duplicates, checks,
    /// isolation copies) on [`Cluster::REDUNDANT`]; everything else —
    /// original code and the non-replicated instructions — on
    /// [`Cluster::MAIN`].
    ByStream,
    /// CASTED: Bottom-Up-Greedy adaptive assignment (Algorithm 2).
    Adaptive,
    /// Ablation: adaptive assignment, but the check instructions are
    /// pinned to the redundant cluster (as a DCED-style scheme would).
    /// The paper stresses that in CASTED "not only the replicated
    /// instructions but also the check instructions are moved across
    /// cores"; this variant measures what that freedom is worth.
    AdaptivePinnedChecks,
}

impl Placement {
    /// The fixed cluster for `prov` under this policy, or `None` when
    /// the choice is adaptive.
    fn fixed_cluster(self, prov: Provenance) -> Option<Cluster> {
        match self {
            Placement::AllOn(c) => Some(c),
            Placement::ByStream => Some(if prov.is_redundant_stream() {
                Cluster::REDUNDANT
            } else {
                Cluster::MAIN
            }),
            Placement::Adaptive => None,
            Placement::AdaptivePinnedChecks => {
                if matches!(prov, Provenance::CheckCmp | Provenance::CheckBr) {
                    Some(Cluster::REDUNDANT)
                } else {
                    None
                }
            }
        }
    }

    /// True for the BUG-driven variants.
    pub fn is_adaptive(self) -> bool {
        matches!(self, Placement::Adaptive | Placement::AdaptivePinnedChecks)
    }
}

/// Per-cluster issue reservation table for one block.
struct Reservation {
    used: Vec<Vec<u32>>, // [cluster][cycle] = issued count
    width: u32,
}

impl Reservation {
    fn new(clusters: usize, width: usize) -> Self {
        Reservation {
            used: vec![Vec::new(); clusters],
            width: width as u32,
        }
    }

    /// First cycle >= `from` with a free slot on `c`.
    fn first_free(&mut self, c: Cluster, from: u32) -> u32 {
        let lane = &mut self.used[c.index()];
        let mut t = from as usize;
        loop {
            if t >= lane.len() {
                lane.resize(t + 1, 0);
            }
            if lane[t] < self.width {
                return t as u32;
            }
            t += 1;
        }
    }

    fn reserve(&mut self, c: Cluster, cycle: u32) {
        let lane = &mut self.used[c.index()];
        if cycle as usize >= lane.len() {
            lane.resize(cycle as usize + 1, 0);
        }
        lane[cycle as usize] += 1;
        debug_assert!(lane[cycle as usize] <= self.width);
    }

    fn load(&self, c: Cluster) -> u32 {
        self.used[c.index()].iter().sum()
    }
}

/// Cross-block placement hints harvested from a previous scheduling
/// pass: the (frequency-weighted) majority writer and reader cluster of
/// each virtual register. A greedy per-block pass cannot see that a
/// cheap split decision in a cold block anchors a loop-carried value on
/// the wrong cluster; feeding the previous pass's global view back in
/// fixes exactly that.
#[derive(Clone, Debug, Default)]
struct Hints {
    writer: HashMap<Reg, Cluster>,
    reader: HashMap<Reg, Cluster>,
}

/// Harvest [`Hints`] from a scheduled program, weighting each access by
/// the block's static frequency estimate.
fn collect_hints(sp: &ScheduledProgram, freq: &[u64]) -> Hints {
    let func = sp.module.entry_fn();
    let clusters = sp.config.clusters;
    let mut wr: HashMap<Reg, Vec<u64>> = HashMap::new();
    let mut rd: HashMap<Reg, Vec<u64>> = HashMap::new();
    for sb in &sp.blocks {
        let w = freq[sb.block.index()].max(1);
        for bundle in &sb.bundles {
            for (cluster, iid) in bundle.iter() {
                let ci = cluster.index();
                let insn = func.insn(iid);
                for r in insn.reg_uses() {
                    rd.entry(r).or_insert_with(|| vec![0; clusters])[ci] += w;
                }
                for &d in &insn.defs {
                    wr.entry(d).or_insert_with(|| vec![0; clusters])[ci] += w;
                }
            }
        }
    }
    let majority = |m: HashMap<Reg, Vec<u64>>| {
        m.into_iter()
            .map(|(r, counts)| {
                let best = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                (r, Cluster(best as u8))
            })
            .collect()
    };
    Hints {
        writer: majority(wr),
        reader: majority(rd),
    }
}

/// Frequency-weighted static cost of a schedule: the loop-depth
/// estimate stands in for a profile.
fn weighted_cost(sp: &ScheduledProgram, freq: &[u64]) -> u64 {
    sp.blocks
        .iter()
        .map(|sb| sb.length() as u64 * freq[sb.block.index()].max(1))
        .sum()
}

/// Schedule the entry function of `module` under `placement`,
/// producing a simulator-ready [`ScheduledProgram`].
///
/// Fixed placements (NOED/SCED/DCED) schedule in one pass. The
/// adaptive placement (CASTED's BUG) runs up to three passes,
/// feeding each pass's global register-placement view back into the
/// next ([`Hints`]) and keeping the schedule with the lowest
/// frequency-weighted static cost.
pub fn schedule_function(
    module: &Module,
    config: &MachineConfig,
    placement: Placement,
) -> ScheduledProgram {
    let freq = casted_ir::cfg::frequency_estimate(module.entry_fn());
    let mut best = schedule_once(module, config, placement, &Hints::default());
    if placement.is_adaptive() {
        let mut best_cost = schedule_cost(&best, &freq);
        let mut hints = collect_hints(&best, &freq);
        for _ in 0..2 {
            let cand = schedule_once(module, config, placement, &hints);
            let cost = schedule_cost(&cand, &freq);
            hints = collect_hints(&cand, &freq);
            if cost < best_cost {
                best = cand;
                best_cost = cost;
            }
        }
        // The paper (§II-A): "CASTED uses these parameters to decide
        // whether it is preferable to assign the whole error detection
        // code in one core or it is more efficient to split the code
        // into different cores." The degenerate whole-program-on-one-
        // cluster placement is therefore always in the candidate set;
        // at wide issue / high delay it wins and CASTED adapts to the
        // SCED-like layout. (Not applicable to the pinned-checks
        // ablation, whose whole point is the placement constraint.)
        if placement == Placement::Adaptive {
            let single = schedule_once(
                module,
                config,
                Placement::AllOn(Cluster::MAIN),
                &Hints::default(),
            );
            if schedule_cost(&single, &freq) < best_cost {
                best = single;
            }
        }
    }
    best
}

/// Cost of a candidate schedule for the refinement loop: the timing
/// model's cycle count when the program terminates within the budget,
/// otherwise the frequency-weighted static length. Evaluating the
/// candidates on the machine timing model is what lets the adaptive
/// scheme see *inter-block* communication stalls (loop-carried values
/// bouncing between clusters) that per-block static lengths cannot
/// express.
fn schedule_cost(sp: &ScheduledProgram, freq: &[u64]) -> u64 {
    let r = casted_sim::simulate(
        sp,
        &casted_sim::SimOptions {
            max_cycles: 200_000_000,
            ..casted_sim::SimOptions::default()
        },
    );
    match r.stop {
        casted_ir::interp::StopReason::Halt(_) => r.stats.cycles,
        _ => weighted_cost(sp, freq),
    }
}

fn schedule_once(
    module: &Module,
    config: &MachineConfig,
    placement: Placement,
    hints: &Hints,
) -> ScheduledProgram {
    let func = module.entry_fn();
    let mut assignment: Vec<Option<Cluster>> = vec![None; func.insns.len()];
    // First-definition cluster: decides which physical register file
    // the value occupies (pressure accounting / regalloc).
    let mut home: HashMap<Reg, Cluster> = HashMap::new();
    // Most recent definition cluster in layout order: estimates which
    // cluster holds the live value at block boundaries (the simulator
    // charges the inter-cluster delay relative to the writer).
    let mut last_writer: HashMap<Reg, Cluster> = HashMap::new();
    let mut blocks: Vec<ScheduledBlock> = Vec::with_capacity(func.blocks.len());

    for (bid, _) in func.iter_blocks() {
        let dfg = BlockDfg::build(func, bid, &config.latency);
        let n = dfg.len();
        let mut res = Reservation::new(config.clusters, config.issue_width);
        let mut cycle_of: Vec<Option<u32>> = vec![None; n];
        let mut cluster_of: Vec<Cluster> = vec![Cluster::MAIN; n];
        let mut unsched_preds: Vec<usize> = dfg.preds.iter().map(|p| p.len()).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| unsched_preds[i] == 0).collect();
        let mut done = 0usize;
        let mut scheduled = vec![false; n];
        // Finite scheduling window (in program-order positions past the
        // first unscheduled instruction). Real back-end schedulers bound
        // their lookahead; an unbounded window would hoist far-future
        // independent instructions into idle issue slots and inflate
        // register pressure without bound, defeating the spiller.
        const SCHED_WINDOW: usize = 40;
        let mut frontier = 0usize;
        // Hoist bound in *cycles*: an instruction may not issue more
        // than this far before the current schedule tail. Without it a
        // value feeding a long serial chain gets parked in an idle slot
        // arbitrarily early, stretching its live range so far that no
        // amount of spilling can satisfy the register file.
        const HOIST_WINDOW: u32 = 32;
        let mut tail: u32 = 0;

        // Registers defined earlier within this block (their cross
        // penalty is handled through data edges, not the home map).
        let mut defined_in_block: std::collections::HashSet<Reg> = std::collections::HashSet::new();

        while done < n {
            while frontier < n && scheduled[frontier] {
                frontier += 1;
            }
            // Pick the ready node with the greatest critical-path
            // height (ties: program order) — BUG's visit order —
            // among nodes within the scheduling window. The first
            // unscheduled node always qualifies (its predecessors all
            // precede it in program order and are scheduled), so
            // progress is guaranteed.
            let (k, &node) = ready
                .iter()
                .enumerate()
                .filter(|(_, &i)| i < frontier + SCHED_WINDOW)
                .max_by(|(_, &a), (_, &b)| {
                    dfg.height[a]
                        .cmp(&dfg.height[b])
                        .then(b.cmp(&a)) // lower index wins ties
                })
                .expect("scheduler: no ready node in window");
            ready.swap_remove(k);
            scheduled[node] = true;

            let insn = func.insn(dfg.nodes[node]);
            let candidates: Vec<Cluster> = match placement.fixed_cluster(insn.prov) {
                Some(c) => vec![c],
                None => config.cluster_ids().collect(),
            };

            // Completion-cycle heuristic per candidate cluster:
            // (penalized completion, cross reads, load, cluster) is the
            // comparison key; the raw issue cycle rides along for the
            // reservation.
            let mut best: Option<((u32, u32, Cluster, u32), u32)> = None;
            for c in candidates {
                let mut earliest = tail.saturating_sub(HOIST_WINDOW);
                let mut cross_reads = 0u32;
                for e in &dfg.preds[node] {
                    let p = e.to;
                    let pc = cycle_of[p].expect("pred not scheduled");
                    let mut t = pc + e.weight;
                    if let DepKind::Data(_) = e.kind {
                        if cluster_of[p] != c {
                            t += config.inter_cluster_delay;
                            cross_reads += 1;
                        }
                    }
                    earliest = earliest.max(t);
                }
                // Live-in operands: value sits in its home register
                // file since block entry; a remote read is available
                // `delay` cycles into the block.
                for r in insn.reg_uses() {
                    if !defined_in_block.contains(&r) {
                        let est = last_writer.get(&r).or_else(|| hints.writer.get(&r));
                        if let Some(&h) = est {
                            if h != c {
                                earliest = earliest.max(config.inter_cluster_delay);
                                cross_reads += 1;
                            }
                        }
                    }
                }
                // A definition whose register already has a home on the
                // other cluster must travel back there (loop-carried
                // values: the next iteration reads it from the home
                // file) — charge that on the completion cycle.
                let mut def_penalty = 0u32;
                for &d in &insn.defs {
                    // Prefer placing a value where its readers are (the
                    // previous pass's global view), falling back to
                    // keeping multi-definition registers (loop-carried
                    // variables) on a stable cluster.
                    let pref = hints.reader.get(&d).or_else(|| last_writer.get(&d));
                    if let Some(&h) = pref {
                        if h != c {
                            def_penalty = config.inter_cluster_delay;
                        }
                    }
                }
                let t = res.first_free(c, earliest);
                // Tie-break: issue cycle, then fewer cross-cluster
                // reads, then the lower cluster. Preferring the lower
                // cluster on full ties makes the adaptive placement
                // degenerate to the single-cluster (SCED-like) layout
                // when spreading buys nothing — splitting only happens
                // when it actually improves the completion cycle.
                let key = (t + def_penalty, cross_reads, c, res.load(c));
                if best.map(|(bk, _)| key < bk).unwrap_or(true) {
                    best = Some((key, t));
                }
            }
            let ((_, _, c, _), t) = best.expect("no candidate cluster");
            res.reserve(c, t);
            tail = tail.max(t);
            cycle_of[node] = Some(t);
            cluster_of[node] = c;
            assignment[dfg.nodes[node].index()] = Some(c);
            for &d in &func.insn(dfg.nodes[node]).defs {
                home.entry(d).or_insert(c);
                last_writer.insert(d, c);
                defined_in_block.insert(d);
            }
            done += 1;
            for e in &dfg.succs[node] {
                unsched_preds[e.to] -= 1;
                if unsched_preds[e.to] == 0 {
                    ready.push(e.to);
                }
            }
        }

        // Materialize dense bundles.
        let len = cycle_of
            .iter()
            .map(|c| c.unwrap() + 1)
            .max()
            .unwrap_or(0) as usize;
        let mut bundles: Vec<Bundle> = (0..len).map(|_| Bundle::empty(config.clusters)).collect();
        // Program order within a lane for determinism.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (cycle_of[i].unwrap(), i));
        for i in order {
            bundles[cycle_of[i].unwrap() as usize].slots[cluster_of[i].index()]
                .push(dfg.nodes[i]);
        }
        blocks.push(ScheduledBlock {
            block: bid,
            bundles,
        });
    }

    let sp = ScheduledProgram {
        module: module.clone(),
        config: config.clone(),
        assignment,
        home,
        blocks,
    };
    debug_assert!(
        sp.validate().is_ok(),
        "scheduler produced invalid schedule: {:?}",
        sp.validate().err()
    );
    sp
}

/// Convenience: sum of static schedule lengths weighted by a profile of
/// block execution counts. Used by tests and by BUG-quality
/// diagnostics; the real dynamic number comes from the simulator.
pub fn weighted_static_cycles(sp: &ScheduledProgram, counts: &HashMap<InsnId, u64>) -> u64 {
    let func = sp.module.entry_fn();
    let mut total = 0u64;
    for sb in &sp.blocks {
        // Execution count of a block = count of its terminator.
        let cnt = func
            .terminator(sb.block)
            .and_then(|t| counts.get(&t).copied())
            .unwrap_or(0);
        total += cnt * sb.length() as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::{FunctionBuilder, Opcode, Operand};

    /// A chain of dependent adds plus an independent chain: enough ILP
    /// for 2 clusters to beat 1 narrow one.
    fn two_chain_module(len: usize) -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let mut a = b.imm(1);
        let mut c = b.imm(2);
        for _ in 0..len {
            a = b.binop(Opcode::Add, Operand::Reg(a), Operand::Imm(1));
            c = b.binop(Opcode::Add, Operand::Reg(c), Operand::Imm(1));
        }
        b.out(Operand::Reg(a));
        b.out(Operand::Reg(c));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn all_on_one_cluster_respects_width() {
        let m = two_chain_module(8);
        let cfg = MachineConfig::perfect_memory(1, 1);
        let sp = schedule_function(&m, &cfg, Placement::AllOn(Cluster::MAIN));
        sp.validate().unwrap();
        assert_eq!(sp.cluster_occupancy()[1], 0);
        // 1-wide: schedule length == instruction count.
        assert_eq!(sp.blocks[0].length(), m.entry_fn().static_size());
    }

    #[test]
    fn adaptive_uses_both_clusters_when_narrow() {
        let m = two_chain_module(8);
        let cfg = MachineConfig::perfect_memory(1, 1);
        let sp = schedule_function(&m, &cfg, Placement::Adaptive);
        sp.validate().unwrap();
        let occ = sp.cluster_occupancy();
        assert!(occ[0] > 0 && occ[1] > 0, "adaptive left a cluster idle: {occ:?}");
        // And it must be faster than the single-cluster schedule.
        let sced = schedule_function(&m, &cfg, Placement::AllOn(Cluster::MAIN));
        assert!(
            sp.blocks[0].length() < sced.blocks[0].length(),
            "adaptive {} !< single {}",
            sp.blocks[0].length(),
            sced.blocks[0].length()
        );
    }

    #[test]
    fn adaptive_prefers_one_cluster_when_delay_is_huge() {
        // With an enormous inter-cluster delay, splitting a dependent
        // chain across clusters is catastrophic; BUG must keep each
        // chain on one side.
        let m = two_chain_module(6);
        let cfg = MachineConfig::perfect_memory(2, 50);
        let sp = schedule_function(&m, &cfg, Placement::Adaptive);
        // Schedule must not be longer than the best single-cluster one.
        let sced = schedule_function(&m, &cfg, Placement::AllOn(Cluster::MAIN));
        assert!(sp.blocks[0].length() <= sced.blocks[0].length());
        // No data edge of a chain should cross clusters: cheap proxy —
        // static length far below the cross-cluster worst case.
        assert!(sp.blocks[0].length() < 30);
    }

    #[test]
    fn by_stream_pins_redundant_code_to_cluster_one() {
        let mut m = two_chain_module(3);
        crate::errordetect::error_detection(&mut m);
        let cfg = MachineConfig::perfect_memory(2, 1);
        let sp = schedule_function(&m, &cfg, Placement::ByStream);
        sp.validate().unwrap();
        let f = sp.module.entry_fn();
        for (_, block) in f.iter_blocks() {
            for &iid in &block.insns {
                let insn = f.insn(iid);
                let c = sp.cluster_of(iid).unwrap();
                if insn.prov.is_redundant_stream() {
                    assert_eq!(c, Cluster::REDUNDANT, "redundant insn on main cluster");
                } else {
                    assert_eq!(c, Cluster::MAIN, "original insn on redundant cluster");
                }
            }
        }
    }

    #[test]
    fn terminator_is_last_and_data_edges_are_respected() {
        let m = two_chain_module(4);
        let cfg = MachineConfig::perfect_memory(2, 2);
        for p in [
            Placement::AllOn(Cluster::MAIN),
            Placement::ByStream,
            Placement::Adaptive,
        ] {
            let sp = schedule_function(&m, &cfg, p);
            sp.validate().unwrap();
        }
    }

    #[test]
    fn wider_issue_never_hurts() {
        let mut m = two_chain_module(10);
        crate::errordetect::error_detection(&mut m);
        let mut prev = u32::MAX;
        for w in 1..=4 {
            let cfg = MachineConfig::perfect_memory(w, 1);
            let sp = schedule_function(&m, &cfg, Placement::Adaptive);
            let len = sp.blocks[0].length() as u32;
            assert!(len <= prev, "issue {w} lengthened the schedule");
            prev = len;
        }
    }

    #[test]
    fn weighted_static_cycles_uses_profile() {
        let m = two_chain_module(2);
        let cfg = MachineConfig::perfect_memory(1, 1);
        let sp = schedule_function(&m, &cfg, Placement::AllOn(Cluster::MAIN));
        let f = sp.module.entry_fn();
        let term = f.terminator(f.entry).unwrap();
        let mut counts = HashMap::new();
        counts.insert(term, 5u64);
        assert_eq!(
            weighted_static_cycles(&sp, &counts),
            5 * sp.blocks[0].length() as u64
        );
    }

    #[test]
    fn home_cluster_is_cluster_of_first_def() {
        let m = two_chain_module(4);
        let cfg = MachineConfig::perfect_memory(1, 1);
        let sp = schedule_function(&m, &cfg, Placement::AllOn(Cluster::MAIN));
        for (&_r, &h) in sp.home.iter() {
            assert_eq!(h, Cluster::MAIN);
        }
    }
}
