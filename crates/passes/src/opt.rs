//! Classic scalar optimizations: constant folding, local value
//! numbering (CSE), and dead-code elimination.
//!
//! These exist to validate the paper's §IV-A methodology note: "We
//! turned off the late stages of the Common Subexpression Elimination
//! (CSE) and Dead Code Elimination (DCE) optimizations that get called
//! after the CASTED passes. This is common practice ([SWIFT]) to
//! prevent these optimizations from removing the replicated code."
//!
//! Running [`local_cse`] *after* error detection merges each duplicate
//! with its original through the isolation copies (`NEW = OLD` gives
//! both streams the same value numbers), collapsing the two redundant
//! data flows into one — the checks then compare a value against
//! itself and can no longer detect anything. The `opt_impact` bench
//! binary demonstrates exactly this coverage collapse, and measures
//! the (small) performance cost of keeping the late optimizations off.

use std::collections::{HashMap, HashSet};

use casted_ir::{CmpKind, Function, Insn, InsnId, Module, Opcode, Operand, Reg};

/// Statistics from one optimization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
    /// Instructions replaced with copies by value numbering.
    pub cse_replaced: usize,
    /// Instructions folded to constants.
    pub folded: usize,
}

/// True if the instruction has an observable effect and must never be
/// removed: memory writes, output, control flow, detection.
fn has_side_effect(op: Opcode) -> bool {
    op.is_store_class() || op.is_control_flow()
}

/// Dead-code elimination over the whole function: removes pure
/// instructions whose results are never (transitively) used by a
/// side-effecting instruction. Conservative for multi-definition
/// registers: if a register is needed anywhere, all its definitions
/// stay.
pub fn dce(func: &mut Function) -> usize {
    // Registers needed by side-effecting roots, propagated backwards.
    let mut needed: HashSet<Reg> = HashSet::new();
    for (_, block) in func.iter_blocks() {
        for &iid in &block.insns {
            let insn = func.insn(iid);
            if has_side_effect(insn.op) {
                needed.extend(insn.reg_uses());
            }
        }
    }
    loop {
        let mut changed = false;
        for (_, block) in func.iter_blocks() {
            for &iid in &block.insns {
                let insn = func.insn(iid);
                if insn.defs.iter().any(|d| needed.contains(d)) {
                    for r in insn.reg_uses() {
                        changed |= needed.insert(r);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut removed = 0;
    for b in 0..func.blocks.len() {
        let old = std::mem::take(&mut func.blocks[b].insns);
        let kept: Vec<InsnId> = old
            .into_iter()
            .filter(|&iid| {
                let insn = func.insn(iid);
                let live = has_side_effect(insn.op)
                    || insn.defs.is_empty()
                    || insn.defs.iter().any(|d| needed.contains(d));
                if !live {
                    removed += 1;
                }
                live
            })
            .collect();
        func.blocks[b].insns = kept;
    }
    removed
}

/// A value number.
type Vn = u32;

/// Local value numbering (block-scoped CSE): identical pure
/// computations over identical value numbers are replaced by a copy of
/// the first computation's result.
///
/// **Deliberately unsafe after error detection** — see module docs.
pub fn local_cse(func: &mut Function) -> usize {
    let mut replaced = 0;
    for b in 0..func.blocks.len() {
        let list = func.blocks[b].insns.clone();
        // Current value number of each register.
        let mut vn_of_reg: HashMap<Reg, Vn> = HashMap::new();
        let mut next_vn: Vn = 0;
        let fresh = |vn_of_reg: &mut HashMap<Reg, Vn>, r: Reg, next_vn: &mut Vn| {
            let v = *next_vn;
            *next_vn += 1;
            vn_of_reg.insert(r, v);
            v
        };
        // Expression table: (op-key, operand vns, imm) -> (vn, rep reg).
        let mut exprs: HashMap<(String, Vec<Vn>, i64), (Vn, Reg)> = HashMap::new();
        // Memory epoch: any store invalidates prior load availability
        // (redundant-load elimination, as real CSE stages perform).
        let mut mem_epoch: i64 = 0;

        for iid in list {
            let insn = func.insn(iid).clone();
            // Operand value numbers (immediates get stable pseudo-vns
            // via a hash of their bits, folded into the key below).
            let mut key_vns: Vec<Vn> = Vec::with_capacity(insn.uses.len());
            let mut key_imms: i64 = insn.imm;
            for u in &insn.uses {
                match u {
                    Operand::Reg(r) => {
                        let v = match vn_of_reg.get(r) {
                            Some(&v) => v,
                            None => fresh(&mut vn_of_reg, *r, &mut next_vn),
                        };
                        key_vns.push(v);
                    }
                    Operand::Imm(v) => {
                        key_vns.push(u32::MAX);
                        key_imms = key_imms.wrapping_mul(31).wrapping_add(*v);
                    }
                    Operand::FImm(v) => {
                        key_vns.push(u32::MAX - 1);
                        key_imms = key_imms
                            .wrapping_mul(31)
                            .wrapping_add(v.to_bits() as i64);
                    }
                }
            }
            if insn.op.is_mem_store() {
                mem_epoch += 1;
            }
            let is_load = insn.op.is_load();
            if is_load {
                // Redundant-load elimination: a load is available until
                // the next store (conservative, no alias analysis).
                key_imms = key_imms.wrapping_mul(31).wrapping_add(mem_epoch);
            }
            let pure = (insn.op.is_replicable() && !insn.op.is_memory() || is_load)
                && insn.defs.len() == 1;
            if !pure {
                for &d in &insn.defs {
                    fresh(&mut vn_of_reg, d, &mut next_vn);
                }
                continue;
            }

            let d = insn.defs[0];
            // Copies: destination takes the source's value number.
            if matches!(insn.op, Opcode::MovI | Opcode::FMovI) {
                if let Operand::Reg(src) = insn.uses[0] {
                    let v = match vn_of_reg.get(&src) {
                        Some(&v) => v,
                        None => fresh(&mut vn_of_reg, src, &mut next_vn),
                    };
                    vn_of_reg.insert(d, v);
                    continue;
                }
            }

            let key = (insn.op.mnemonic(), key_vns, key_imms);
            match exprs.get(&key) {
                // The representative must still hold the value it was
                // numbered with (it may have been redefined since).
                Some(&(v, rep)) if rep != d && vn_of_reg.get(&rep) == Some(&v) => {
                    // Same value already available in `rep`: replace the
                    // computation with a copy.
                    let mov_op = if d.class == casted_ir::RegClass::Fp {
                        Opcode::FMovI
                    } else if d.class == casted_ir::RegClass::Pr {
                        // No predicate copy instruction: keep the compare.
                        for &dd in &insn.defs {
                            fresh(&mut vn_of_reg, dd, &mut next_vn);
                        }
                        continue;
                    } else {
                        Opcode::MovI
                    };
                    *func.insn_mut(iid) =
                        Insn::new(mov_op, vec![d], vec![Operand::Reg(rep)]).with_prov(insn.prov);
                    vn_of_reg.insert(d, v);
                    replaced += 1;
                }
                _ => {
                    let v = fresh(&mut vn_of_reg, d, &mut next_vn);
                    exprs.insert(key, (v, d));
                }
            }
        }
    }
    replaced
}

/// Fold pure integer operations whose operands are all immediates into
/// `mov` instructions.
pub fn const_fold(func: &mut Function) -> usize {
    use casted_ir::semantics::{eval_pure, Val};
    let mut folded = 0;
    for b in 0..func.blocks.len() {
        let list = func.blocks[b].insns.clone();
        for iid in list {
            let insn = func.insn(iid);
            if !insn.op.is_replicable() || insn.op.is_memory() || insn.defs.len() != 1 {
                continue;
            }
            if matches!(insn.op, Opcode::MovI | Opcode::FMovI) {
                continue;
            }
            let vals: Option<Vec<Val>> = insn
                .uses
                .iter()
                .map(|u| match u {
                    Operand::Imm(v) => Some(Val::I(*v)),
                    Operand::FImm(v) => Some(Val::F(*v)),
                    Operand::Reg(_) => None,
                })
                .collect();
            let Some(vals) = vals else { continue };
            let Ok(v) = eval_pure(insn.op, &vals) else { continue };
            let prov = insn.prov;
            let d = insn.defs[0];
            let new = match v {
                Val::I(x) => Insn::new(Opcode::MovI, vec![d], vec![Operand::Imm(x)]),
                Val::F(x) => Insn::new(Opcode::FMovI, vec![d], vec![Operand::FImm(x)]),
                Val::B(x) => {
                    // Predicates have no immediate form; synthesize via
                    // a constant compare.
                    Insn::new(
                        Opcode::Cmp(if x { CmpKind::Eq } else { CmpKind::Ne }),
                        vec![d],
                        vec![Operand::Imm(0), Operand::Imm(0)],
                    )
                }
            };
            *func.insn_mut(iid) = new.with_prov(prov);
            folded += 1;
        }
    }
    folded
}

/// Run the full optimization pipeline (fold → CSE → DCE) on the entry
/// function, as a front-end `-O1` stand-in. Safe **before** error
/// detection; destructive **after** it (see module docs).
pub fn optimize(module: &mut Module) -> OptStats {
    let func = module.entry_fn_mut();
    let folded = const_fold(func);
    let cse_replaced = local_cse(func);
    let dce_removed = dce(func);
    debug_assert!(casted_ir::verify::verify_function(func).is_ok());
    OptStats {
        dce_removed,
        cse_replaced,
        folded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, OutVal};
    use casted_ir::{FunctionBuilder, Module};

    fn run(m: &Module) -> Vec<OutVal> {
        interp::run(m, 1_000_000).unwrap().stream
    }

    #[test]
    fn dce_removes_dead_chain_keeps_live() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let live = b.imm(3);
        let dead1 = b.imm(10);
        let _dead2 = b.binop(Opcode::Mul, Operand::Reg(dead1), Operand::Imm(5));
        let out = b.binop(Opcode::Add, Operand::Reg(live), Operand::Imm(1));
        b.out(Operand::Reg(out));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let before = run(&m);
        let removed = dce(m.entry_fn_mut());
        assert_eq!(removed, 2);
        casted_ir::verify::verify_module(&m).unwrap();
        assert_eq!(run(&m), before);
    }

    #[test]
    fn cse_merges_identical_computations() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let a = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        let c = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7)); // same expr
        let s = b.binop(Opcode::Add, Operand::Reg(a), Operand::Reg(c));
        b.out(Operand::Reg(s));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let before = run(&m);
        let replaced = local_cse(m.entry_fn_mut());
        assert_eq!(replaced, 1);
        casted_ir::verify::verify_module(&m).unwrap();
        assert_eq!(run(&m), before);
        // The second mul became a copy.
        let f = m.entry_fn();
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&i| f.insn(i).op == Opcode::Mul)
            .count();
        assert_eq!(muls, 1);
    }

    #[test]
    fn cse_respects_redefinitions() {
        // x redefined between the two identical expressions: no merge.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let a = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        b.push(Opcode::MovI, vec![x], vec![Operand::Imm(8)]);
        let c = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        let s = b.binop(Opcode::Add, Operand::Reg(a), Operand::Reg(c));
        b.out(Operand::Reg(s));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let before = run(&m);
        let replaced = local_cse(m.entry_fn_mut());
        assert_eq!(replaced, 0);
        assert_eq!(run(&m), before);
        assert_eq!(before, vec![OutVal::Int(42 + 56)]);
    }

    #[test]
    fn const_fold_folds_immediates() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let d = b.binop(Opcode::Mul, Operand::Imm(6), Operand::Imm(7));
        b.out(Operand::Reg(d));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        assert_eq!(const_fold(m.entry_fn_mut()), 1);
        casted_ir::verify::verify_module(&m).unwrap();
        assert_eq!(run(&m), vec![OutVal::Int(42)]);
    }

    #[test]
    fn optimize_preserves_benchmark_semantics() {
        for w in casted_workloads_like_source() {
            let mut m = w;
            let before = run(&m);
            let stats = optimize(&mut m);
            casted_ir::verify::verify_module(&m).unwrap();
            assert_eq!(run(&m), before);
            let _ = stats;
        }
    }

    /// A couple of structured programs built directly (the workloads
    /// crate depends on this one, so we can't use it here).
    fn casted_workloads_like_source() -> Vec<Module> {
        let mut out = Vec::new();
        for seed in [3u64, 17, 99] {
            out.push(casted_ir::testgen::random_module(
                seed,
                &casted_ir::testgen::GenOptions::default(),
            ));
        }
        out
    }

    #[test]
    fn cse_after_error_detection_destroys_redundancy() {
        // The §IV-A rationale, demonstrated: CSE after ED merges the
        // duplicate stream into the original, so an injected fault in
        // the shared computation reaches the store unchecked.
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 2, vec![]);
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        let base = b.imm(addr);
        b.store(base, 0, Operand::Reg(y));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);

        crate::errordetect::error_detection(&mut m);
        let replaced = local_cse(m.entry_fn_mut());
        assert!(replaced > 0, "CSE should find duplicate computations");
        // Count surviving *computations* of the mul: only one remains.
        let f = m.entry_fn();
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&i| f.insn(i).op == Opcode::Mul)
            .count();
        assert_eq!(muls, 1, "redundant computation must have been merged away");
    }
}

#[cfg(test)]
mod lvn_safety_tests {
    use super::*;
    use casted_ir::interp::{self, OutVal};
    use casted_ir::{FunctionBuilder, Module};

    #[test]
    fn cse_skips_redefined_representative() {
        // a = x*7; a = 0; c = x*7  -> c must be recomputed, not copied
        // from the clobbered a.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let a = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        b.push(Opcode::MovI, vec![a], vec![Operand::Imm(0)]);
        let c = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        b.out(Operand::Reg(a));
        b.out(Operand::Reg(c));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let before = interp::run(&m, 1000).unwrap().stream;
        local_cse(m.entry_fn_mut());
        casted_ir::verify::verify_module(&m).unwrap();
        let after = interp::run(&m, 1000).unwrap().stream;
        assert_eq!(before, after);
        assert_eq!(after, vec![OutVal::Int(0), OutVal::Int(42)]);
    }

    #[test]
    fn optimize_on_random_programs_preserves_semantics() {
        for seed in 0..20u64 {
            let mut m = casted_ir::testgen::random_module(
                seed,
                &casted_ir::testgen::GenOptions::default(),
            );
            let before = interp::run(&m, 2_000_000).unwrap();
            optimize(&mut m);
            casted_ir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            let after = interp::run(&m, 2_000_000).unwrap();
            assert_eq!(before.stream, after.stream, "seed {seed}");
            assert_eq!(before.stop, after.stop, "seed {seed}");
        }
    }
}
