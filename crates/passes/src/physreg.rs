//! Linear-scan assignment of virtual registers to physical per-cluster
//! register indices.
//!
//! The simulator executes on virtual registers (each with a home
//! cluster), so this mapping is not needed for timing — it exists to
//! *prove* that the schedule respects the architectural register files
//! of Table I (64GP / 64FL / 32PR per cluster) after the spiller has
//! run, and to let the printer show architecturally meaningful names.

use std::collections::HashMap;

use casted_ir::vliw::ScheduledProgram;
use casted_ir::{Reg, RegClass};

use crate::spill::{intervals, Interval};

/// Result of physical assignment.
#[derive(Clone, Debug, Default)]
pub struct PhysAssignment {
    /// Virtual register -> physical index within its home cluster's
    /// file of its class.
    pub map: HashMap<Reg, u32>,
    /// Peak number of simultaneously allocated physical registers, per
    /// `[cluster][class.index()]`.
    pub peak: Vec<[u32; 3]>,
}

impl PhysAssignment {
    /// Physical index assigned to `reg`, if it was live at all.
    pub fn phys(&self, reg: Reg) -> Option<u32> {
        self.map.get(&reg).copied()
    }
}

/// Assign physical registers by linear scan over the conservative live
/// intervals. Fails with a descriptive message if any (cluster, class)
/// group needs more registers than the file provides — callers must
/// spill and reschedule first.
pub fn assign_physical(sp: &ScheduledProgram) -> Result<PhysAssignment, String> {
    let ivs = intervals(sp);
    let mut out = PhysAssignment {
        map: HashMap::new(),
        peak: vec![[0; 3]; sp.config.clusters],
    };

    // Group intervals by (home cluster, class).
    let mut groups: HashMap<(usize, usize), Vec<Interval>> = HashMap::new();
    for iv in ivs {
        let c = sp.home_of(iv.reg).index();
        groups
            .entry((c, iv.reg.class.index()))
            .or_default()
            .push(iv);
    }

    for ((cluster, class_idx), mut group) in groups {
        let class = RegClass::ALL[class_idx];
        let limit = class.file_size() as u32;
        group.sort_by_key(|iv| (iv.start, iv.end));
        // Free list of physical indices; active = (end, phys).
        let mut free: Vec<u32> = (0..limit).rev().collect();
        let mut active: Vec<(u32, u32)> = Vec::new();
        let mut peak = 0u32;
        for iv in group {
            // Expire finished intervals.
            active.retain(|&(end, phys)| {
                if end < iv.start {
                    free.push(phys);
                    false
                } else {
                    true
                }
            });
            let Some(phys) = free.pop() else {
                return Err(format!(
                    "register file overflow: cluster {cluster} class {class} needs more than {limit} registers"
                ));
            };
            active.push((iv.end, phys));
            peak = peak.max(active.len() as u32);
            out.map.insert(iv.reg, phys);
        }
        out.peak[cluster][class_idx] = peak;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule_function, Placement};
    use casted_ir::{Cluster, FunctionBuilder, MachineConfig, Module, Opcode, Operand};

    fn module_with_values(k: usize) -> Module {
        // Def chain consumed in reverse: pressure = k at the crossover
        // regardless of scheduling.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let mut prev = b.imm(1);
        let mut regs = vec![prev];
        for _ in 1..k {
            prev = b.binop(Opcode::Add, Operand::Reg(prev), Operand::Imm(1));
            regs.push(prev);
        }
        let mut acc = b.imm(0);
        for r in regs.iter().rev() {
            acc = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(*r));
        }
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn assignment_fits_and_is_injective_while_live() {
        let m = module_with_values(30);
        let cfg = MachineConfig::perfect_memory(2, 1);
        let sp = schedule_function(&m, &cfg, Placement::AllOn(Cluster::MAIN));
        let pa = assign_physical(&sp).unwrap();
        // Peak within file size.
        assert!(pa.peak[0][0] <= 64);
        // Overlapping intervals never share a physical index.
        let ivs = intervals(&sp);
        for a in &ivs {
            for b in &ivs {
                if a.reg != b.reg
                    && a.reg.class == b.reg.class
                    && sp.home_of(a.reg) == sp.home_of(b.reg)
                    && a.start <= b.end
                    && b.start <= a.end
                {
                    assert_ne!(
                        pa.phys(a.reg),
                        pa.phys(b.reg),
                        "{} and {} overlap but share a physical register",
                        a.reg,
                        b.reg
                    );
                }
            }
        }
    }

    #[test]
    fn overflow_is_reported() {
        let m = module_with_values(100);
        let cfg = MachineConfig::perfect_memory(2, 1);
        let sp = schedule_function(&m, &cfg, Placement::AllOn(Cluster::MAIN));
        let err = assign_physical(&sp).unwrap_err();
        assert!(err.contains("overflow"));
    }

    #[test]
    fn dced_splits_pressure_across_clusters() {
        let mut m = module_with_values(40);
        crate::errordetect::error_detection(&mut m);
        let cfg = MachineConfig::perfect_memory(2, 1);
        let sp = schedule_function(&m, &cfg, Placement::ByStream);
        let pa = assign_physical(&sp).unwrap();
        // Redundant copies live on cluster 1's file.
        assert!(pa.peak[1][0] > 0, "no pressure on redundant cluster");
    }
}
