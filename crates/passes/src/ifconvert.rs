//! If-conversion: turn small branch diamonds/triangles into straight-
//! line predicated code using the `sel` instruction.
//!
//! Clustered VLIWs live and die by basic-block size — the paper's
//! schedulers (both the fixed baselines and BUG) only exploit ILP
//! inside a block. Production VLIW compilers therefore if-convert
//! small conditionals; this pass does the same for MiniC's branchy
//! kernels (`clip`, saturation, accept/reject logic):
//!
//! ```text
//! P:  p = cmp ...            P:  p = cmp ...
//!     br.cond p -> T / F         t' = <T body, renamed>
//! T:  r = eT;  br J     =>       f' = <F body, renamed>
//! F:  r = eF;  br J              r  = sel p, t', f'
//! J:  use r                      br J
//! ```
//!
//! Conversion criteria (conservative):
//! * both arms have the convert-point block as their only predecessor,
//! * both arms end in an unconditional branch to the same join block,
//! * arm bodies contain only pure, non-memory, GP/PR-defining
//!   instructions (loads/stores/outs/detects never move across a
//!   control decision),
//! * arm bodies are short (≤ [`MAX_ARM_INSNS`] instructions each).
//!
//! The pass runs before error detection: the converted code is then
//! replicated and checked like any other straight-line code, and the
//! branch that disappeared no longer needs its predicate checked —
//! if-conversion trades a control-flow vulnerability for a data-flow
//! one that the checks cover.

use std::collections::HashMap;

use casted_ir::cfg::predecessors;
use casted_ir::{Function, Insn, InsnId, Module, Opcode, Operand, Provenance, Reg, RegClass};

/// Maximum instructions per converted arm.
pub const MAX_ARM_INSNS: usize = 8;

/// True if the instruction may be speculated (executed regardless of
/// the branch direction): pure, register-only, single GP def.
fn speculable(insn: &Insn) -> bool {
    insn.op.is_replicable()
        && !insn.op.is_memory()
        && insn.defs.len() == 1
        && insn
            .defs
            .iter()
            .all(|d| d.class == RegClass::Gp || d.class == RegClass::Pr)
        // Library code may be speculated like any other pure code (it
        // keeps its provenance, so it stays outside the sphere of
        // replication); only pass-generated code is off-limits, since
        // the pass must run before error detection.
        && matches!(insn.prov, Provenance::Original | Provenance::LibraryCode)
}

/// An arm eligible for conversion: its body (without the terminator)
/// and the join block it branches to.
fn eligible_arm(func: &Function, block: casted_ir::BlockId) -> Option<(Vec<InsnId>, casted_ir::BlockId)> {
    let insns = &func.block(block).insns;
    if insns.is_empty() || insns.len() > MAX_ARM_INSNS + 1 {
        return None;
    }
    let (&term, body) = insns.split_last()?;
    let t = func.insn(term);
    if t.op != Opcode::Br {
        return None;
    }
    if !body.iter().all(|&i| speculable(func.insn(i))) {
        return None;
    }
    Some((body.to_vec(), t.target?))
}

/// Copy `body` into the end of `into`, renaming every definition to a
/// fresh register; returns the final renaming (original reg -> last
/// fresh reg holding its arm-local value).
fn splice_renamed(func: &mut Function, into: casted_ir::BlockId, body: &[InsnId]) -> HashMap<Reg, Reg> {
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    for &iid in body {
        let mut insn = func.insn(iid).clone();
        for u in insn.uses.iter_mut() {
            if let Operand::Reg(r) = u {
                if let Some(nr) = map.get(r) {
                    *u = Operand::Reg(*nr);
                }
            }
        }
        let d = insn.defs[0];
        let fresh = func.new_reg(d.class);
        insn.defs[0] = fresh;
        map.insert(d, fresh);
        let id = func.add_insn(insn);
        func.block_mut(into).insns.push(id);
    }
    map
}

/// Try to convert the diamond/triangle hanging off `block`'s
/// conditional terminator. Returns true on success.
fn convert_at(func: &mut Function, block: casted_ir::BlockId) -> bool {
    let Some(term) = func.terminator(block) else {
        return false;
    };
    let ti = func.insn(term);
    if ti.op != Opcode::BrCond {
        return false;
    }
    let pred_reg = match ti.uses[0] {
        Operand::Reg(r) => r,
        _ => return false,
    };
    let term_prov = ti.prov;
    let (t_blk, f_blk) = (ti.target.unwrap(), ti.target2.unwrap());
    if t_blk == f_blk || t_blk == block || f_blk == block {
        return false;
    }

    let preds = predecessors(func);
    let single_pred =
        |b: casted_ir::BlockId| preds[b.index()].len() == 1 && preds[b.index()][0] == block;

    // Diamond: both arms join at the same block. Triangle: the taken
    // arm joins at the fall-through block (or vice versa).
    let t_arm = single_pred(t_blk).then(|| eligible_arm(func, t_blk)).flatten();
    let f_arm = single_pred(f_blk).then(|| eligible_arm(func, f_blk)).flatten();

    enum Shape {
        Diamond {
            t_body: Vec<InsnId>,
            f_body: Vec<InsnId>,
            join: casted_ir::BlockId,
        },
        TriangleTaken {
            t_body: Vec<InsnId>,
            join: casted_ir::BlockId,
        },
        TriangleFall {
            f_body: Vec<InsnId>,
            join: casted_ir::BlockId,
        },
    }

    let shape = match (&t_arm, &f_arm) {
        (Some((tb, tj)), Some((fb, fj))) if tj == fj => Shape::Diamond {
            t_body: tb.clone(),
            f_body: fb.clone(),
            join: *tj,
        },
        (Some((tb, tj)), _) if *tj == f_blk => Shape::TriangleTaken {
            t_body: tb.clone(),
            join: f_blk,
        },
        (_, Some((fb, fj))) if *fj == t_blk => Shape::TriangleFall {
            f_body: fb.clone(),
            join: t_blk,
        },
        _ => return false,
    };

    // Only GP-defined registers can be merged with `sel`.
    let gp_defs_only = |body: &[InsnId], func: &Function| {
        body.iter().all(|&i| {
            let d = func.insn(i).defs[0];
            // Predicate defs inside arms are fine as long as their
            // value is arm-local (they get fresh names); but a PR that
            // escapes can't be sel-merged. Conservative: require that
            // PR defs are only used inside the arm itself.
            d.class == RegClass::Gp || !escapes(func, body, d)
        })
    };
    fn escapes(func: &Function, body: &[InsnId], d: Reg) -> bool {
        // Used anywhere outside the arm?
        for (_, block) in func.iter_blocks() {
            for &iid in &block.insns {
                if body.contains(&iid) {
                    continue;
                }
                if func.insn(iid).reg_uses().any(|r| r == d) {
                    return true;
                }
            }
        }
        false
    }

    // Drop the conditional terminator; splice arms; emit sels; branch
    // to the join.
    let (t_map, f_map, join) = match &shape {
        Shape::Diamond { t_body, f_body, join } => {
            if !gp_defs_only(t_body, func) || !gp_defs_only(f_body, func) {
                return false;
            }
            func.block_mut(block).insns.pop();
            let t_map = splice_renamed(func, block, t_body);
            let f_map = splice_renamed(func, block, f_body);
            (t_map, f_map, *join)
        }
        Shape::TriangleTaken { t_body, join } => {
            if !gp_defs_only(t_body, func) {
                return false;
            }
            func.block_mut(block).insns.pop();
            let t_map = splice_renamed(func, block, t_body);
            (t_map, HashMap::new(), *join)
        }
        Shape::TriangleFall { f_body, join } => {
            if !gp_defs_only(f_body, func) {
                return false;
            }
            func.block_mut(block).insns.pop();
            let f_map = splice_renamed(func, block, f_body);
            (HashMap::new(), f_map, *join)
        }
    };

    // The arm blocks are now unreachable; shrink them to a lone
    // terminator so they stay verifier-valid without bloating the
    // scheduler's work.
    let mut shrink = |b: casted_ir::BlockId| {
        let term = *func.block(b).insns.last().unwrap();
        func.block_mut(b).insns = vec![term];
    };
    match &shape {
        Shape::Diamond { .. } => {
            shrink(t_blk);
            shrink(f_blk);
        }
        Shape::TriangleTaken { .. } => shrink(t_blk),
        Shape::TriangleFall { .. } => shrink(f_blk),
    }

    // Merge every register either arm assigned: R = sel p, T-value,
    // F-value (falling back to the pre-branch value of R).
    let mut merged: Vec<Reg> = t_map.keys().chain(f_map.keys()).copied().collect();
    merged.sort();
    merged.dedup();
    for r in merged {
        if r.class != RegClass::Gp {
            continue; // arm-local predicate, fully renamed away
        }
        let tv = t_map.get(&r).copied().unwrap_or(r);
        let fv = f_map.get(&r).copied().unwrap_or(r);
        if tv == fv {
            continue;
        }
        let sel = Insn::new(
            Opcode::Sel,
            vec![r],
            vec![Operand::Reg(pred_reg), Operand::Reg(tv), Operand::Reg(fv)],
        )
        .with_prov(term_prov);
        let id = func.add_insn(sel);
        func.block_mut(block).insns.push(id);
    }
    let mut br = Insn::new(Opcode::Br, vec![], vec![]).with_prov(term_prov);
    br.target = Some(join);
    let id = func.add_insn(br);
    func.block_mut(block).insns.push(id);
    true
}

/// Run if-conversion to a fixed point over the module's entry
/// function. Returns the number of conversions performed.
pub fn if_convert(module: &mut Module) -> usize {
    let func = module.entry_fn_mut();
    let mut total = 0;
    loop {
        let mut changed = false;
        for b in 0..func.blocks.len() {
            if convert_at(func, casted_ir::BlockId(b as u32)) {
                total += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(
        casted_ir::verify::verify_function(func).is_ok(),
        "if-conversion produced invalid IR"
    );
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, OutVal};
    use casted_ir::{CmpKind, FunctionBuilder, Module};

    /// out(clip-like): if x < 0 { r = 0 } else { r = x } ; out(r)
    fn diamond_module(x: i64) -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x_reg = b.imm(x);
        let r = b.imm(-1);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(x_reg), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(0)]);
        b.br(j);
        b.switch_to(e);
        b.push(Opcode::MovI, vec![r], vec![Operand::Reg(x_reg)]);
        b.br(j);
        b.switch_to(j);
        b.out(Operand::Reg(r));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn converts_diamond_and_preserves_semantics() {
        for x in [-5i64, 0, 7] {
            let mut m = diamond_module(x);
            let golden = interp::run(&m, 1000).unwrap();
            let n = if_convert(&mut m);
            assert_eq!(n, 1, "x={x}: expected one conversion");
            casted_ir::verify::verify_module(&m).unwrap();
            let r = interp::run(&m, 1000).unwrap();
            assert_eq!(r.stream, golden.stream, "x={x}");
            // The entry block must now contain a sel and no br.cond.
            let f = m.entry_fn();
            let entry = f.block(f.entry);
            assert!(entry.insns.iter().any(|&i| f.insn(i).op == Opcode::Sel));
            assert!(!entry.insns.iter().any(|&i| f.insn(i).op == Opcode::BrCond));
        }
    }

    #[test]
    fn triangle_conversion() {
        // if x > 10 { r = 10 } ; out(r)   (taken arm only)
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let j = b.new_block("j");
        let x = b.imm(42);
        let r = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(0));
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(10));
        b.br_cond(p, t, j);
        b.switch_to(t);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(10)]);
        b.br(j);
        b.switch_to(j);
        b.out(Operand::Reg(r));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let golden = interp::run(&m, 1000).unwrap();
        assert_eq!(if_convert(&mut m), 1);
        let rr = interp::run(&m, 1000).unwrap();
        assert_eq!(rr.stream, golden.stream);
        assert_eq!(rr.stream, vec![OutVal::Int(10)]);
    }

    #[test]
    fn refuses_memory_in_arms() {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 2, vec![]);
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x = b.imm(1);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        let base = b.imm(addr);
        b.store(base, 0, Operand::Imm(1)); // side effect: must not speculate
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        assert_eq!(if_convert(&mut m), 0);
    }

    #[test]
    fn refuses_arms_with_other_predecessors() {
        // The "then" arm has a second predecessor outside the diamond,
        // so neither a diamond nor a triangle may form around it.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let p_blk = b.new_block("p");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x = b.imm(1);
        let r = b.imm(0);
        let q = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(5));
        b.br_cond(q, t, p_blk); // entry is t's second predecessor
        b.switch_to(p_blk);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(1)]);
        b.br(j);
        b.switch_to(e);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(2)]);
        b.br(j);
        b.switch_to(j);
        b.out(Operand::Reg(r));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let golden = interp::run(&m, 1000).unwrap();
        assert_eq!(if_convert(&mut m), 0);
        let rr = interp::run(&m, 1000).unwrap();
        assert_eq!(rr.stream, golden.stream);
    }

    #[test]
    fn empty_else_arm_folds_the_branch_away() {
        // if p { } else { } style CFG with an empty arm: the branch is
        // legitimately folded even when the taken side has other
        // predecessors, because nothing needs merging.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x = b.imm(1);
        let r = b.imm(0);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(1)]);
        b.br(j);
        b.switch_to(e);
        b.br(t); // empty arm straight to t
        b.switch_to(j);
        b.out(Operand::Reg(r));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let golden = interp::run(&m, 1000).unwrap();
        assert_eq!(if_convert(&mut m), 1);
        casted_ir::verify::verify_module(&m).unwrap();
        let rr = interp::run(&m, 1000).unwrap();
        assert_eq!(rr.stream, golden.stream);
        assert_eq!(rr.stream, vec![OutVal::Int(1)]);
    }

    #[test]
    fn nested_diamonds_convert_to_fixpoint() {
        // if a { if b { r=1 } else { r=2 } } else { r=3 }
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let outer_t = b.new_block("ot");
        let outer_e = b.new_block("oe");
        let inner_t = b.new_block("it");
        let inner_e = b.new_block("ie");
        let inner_j = b.new_block("ij");
        let j = b.new_block("j");
        let a = b.imm(1);
        let c = b.imm(0);
        let r = b.imm(0);
        let pa = b.cmp(CmpKind::Gt, Operand::Reg(a), Operand::Imm(0));
        b.br_cond(pa, outer_t, outer_e);
        b.switch_to(outer_t);
        let pb = b.cmp(CmpKind::Gt, Operand::Reg(c), Operand::Imm(0));
        b.br_cond(pb, inner_t, inner_e);
        b.switch_to(inner_t);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(1)]);
        b.br(inner_j);
        b.switch_to(inner_e);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(2)]);
        b.br(inner_j);
        b.switch_to(inner_j);
        b.br(j);
        b.switch_to(outer_e);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(3)]);
        b.br(j);
        b.switch_to(j);
        b.out(Operand::Reg(r));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let golden = interp::run(&m, 1000).unwrap();
        let n = if_convert(&mut m);
        assert!(n >= 1, "expected at least the inner diamond to convert");
        casted_ir::verify::verify_module(&m).unwrap();
        let rr = interp::run(&m, 1000).unwrap();
        assert_eq!(rr.stream, golden.stream);
        assert_eq!(rr.stream, vec![OutVal::Int(2)]);
    }

    #[test]
    fn random_programs_survive_if_conversion() {
        for seed in 0..15u64 {
            let mut m = casted_ir::testgen::random_module(
                seed,
                &casted_ir::testgen::GenOptions::default(),
            );
            let golden = interp::run(&m, 2_000_000).unwrap();
            if_convert(&mut m);
            casted_ir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            let r = interp::run(&m, 2_000_000).unwrap();
            assert_eq!(r.stream, golden.stream, "seed {seed}");
        }
    }

    #[test]
    fn converted_code_still_protected_by_error_detection() {
        let mut m = diamond_module(7);
        if_convert(&mut m);
        let golden = interp::run(&m, 1000).unwrap();
        crate::errordetect::error_detection(&mut m);
        let r = interp::run(&m, 1000).unwrap();
        assert_eq!(r.stream, golden.stream);
        // The sel must have been replicated (it is a pure instruction).
        let f = m.entry_fn();
        let sel_dups = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&i| {
                f.insn(i).op == Opcode::Sel && f.insn(i).prov == Provenance::Duplicate
            })
            .count();
        assert!(sel_dups >= 1, "sel not replicated");
    }
}
