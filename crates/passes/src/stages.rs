//! Memoized back-end stages of the staged compile pipeline.
//!
//! [`pipeline::prepare_custom`] runs the back end as one monolithic
//! function: ED-transform, the spill↔schedule fixed point, and physical
//! register assignment. This module re-expresses that exact computation
//! as three **memoized stages** — `ed` → `sched` → `ra` — whose outputs
//! live in a content-addressed [`ArtifactStore`] (`casted_util::store`)
//! and whose keys are Fnv64 digests of each stage's canonical input:
//! the digest of the upstream artifact's payload bytes plus *only* the
//! configuration fields the stage actually reads.
//!
//! That last clause is the invalidation contract (pinned by the
//! key-stability tests below): the scheduler reads `clusters`,
//! `issue_width`, `inter_cluster_delay` and the instruction latencies —
//! and nothing else — so cache geometry, memory latency, MSHR count,
//! fault-campaign trial counts or batch lane widths must never
//! invalidate a schedule artifact, and no machine-config field at all
//! may invalidate an ED artifact. A schedule artifact is likewise
//! serialized *without* its embedded `MachineConfig`; the caller's
//! current config is re-installed on decode (exact, because the key
//! pins every scheduler-visible field).
//!
//! Exactness: a stage hit decodes to a value equal to what the stage
//! function would have produced, so a warm [`prepare_staged`] returns a
//! [`Prepared`] byte-identical (under `casted_ir::codec`) to a cold
//! monolithic [`pipeline::prepare_with`]. The property tests, the
//! store sabotage tests, difftest oracle layer 9 and the ci.sh
//! cold/warm byte-compare all enforce this.
//!
//! The MiniC front-end stages (`lexparse` → `sema` → `codegen`) that
//! feed this module live one layer up, in `casted::stages` — this
//! crate cannot see the front end, which is exactly what lets
//! `casted-difftest` drive these back-end stages from generated IR
//! modules ([`prepare_staged`] is module-rooted: any canonical module
//! digest works as the input key).

use casted_ir::vliw::ScheduledProgram;
use casted_ir::{codec as ircodec, MachineConfig, Module, Reg};
use casted_util::codec::{get_bytes, get_uvarint, put_bytes, put_uvarint};
use casted_util::hash::{fnv1a, Fnv64};
use casted_util::store::ArtifactStore;

use crate::errordetect::{error_detection_with, EdOptions, EdStats};
use crate::physreg::{assign_physical, PhysAssignment};
use crate::pipeline::{PrepareOptions, Prepared, Scheme};
use crate::schedule::{schedule_function, Placement};
use crate::spill::{choose_spills, intervals, spill_register};

/// Per-stage format versions, mixed into every stage key: bumping one
/// invalidates that stage's artifacts (and, through the digest chain,
/// everything downstream) without touching the store envelope.
pub const STAGE_FORMAT_VERSION_ED: u64 = 1;
/// Schedule-stage format version.
pub const STAGE_FORMAT_VERSION_SCHED: u64 = 1;
/// Regalloc-stage format version.
pub const STAGE_FORMAT_VERSION_RA: u64 = 1;

/// Artifact-kind tags (and on-disk file extensions).
pub const KIND_ED: &str = "ed";
/// Schedule artifacts.
pub const KIND_SCHED: &str = "sched";
/// Physical-register-assignment artifacts.
pub const KIND_RA: &str = "ra";

/// Bound for decoded byte fields inside stage payloads.
const MAX_LEN: usize = 1 << 30;

/// Hit/miss tally of one staged run — the per-call view of the
/// `compile.stages.{total,hit,miss}` obs counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stages consulted.
    pub total: u64,
    /// Stages answered from the artifact store.
    pub hit: u64,
    /// Stages recomputed (and re-saved).
    pub miss: u64,
}

impl StageStats {
    /// Record one stage consultation, mirroring it into the global
    /// `compile.stages.*` counters.
    pub fn note(&mut self, hit: bool) {
        self.total += 1;
        casted_obs::inc("compile.stages.total");
        if hit {
            self.hit += 1;
            casted_obs::inc("compile.stages.hit");
        } else {
            self.miss += 1;
            casted_obs::inc("compile.stages.miss");
        }
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: StageStats) {
        self.total += other.total;
        self.hit += other.hit;
        self.miss += other.miss;
    }
}

/// Store load that meters the in-process front cache: a load answered
/// from memory (no file I/O, no checksum re-verification) additionally
/// bumps `compile.stages.mem_hit`. All staged-pipeline loads — front
/// end and back end — go through here, so the counter is the proof
/// that a long-lived host stops re-reading disk for hot artifacts.
pub fn load_metered(store: &ArtifactStore, kind: &str, key: u64) -> Option<Vec<u8>> {
    let (payload, src) = store.load_traced(kind, key)?;
    if src == casted_util::store::LoadSource::Memory {
        casted_obs::inc("compile.stages.mem_hit");
    }
    Some(payload)
}

/// Canonical content digest of a module — the module-rooted input key
/// of the back-end stage chain.
pub fn module_content_key(module: &Module) -> u64 {
    fnv1a(&ircodec::encode_module(module))
}

// ------------------------- stage keys ------------------------------

/// Key of the ED-transform artifact. Depends on the input module's
/// content digest and the transform's own knobs — **no machine-config
/// field**: error detection is placement- and machine-independent, so
/// an (issue-width, delay) change must keep ED artifacts warm.
pub fn ed_stage_key(input_digest: u64, scheme: Scheme, opts: &PrepareOptions) -> u64 {
    let ed = EdOptions::default();
    let mut h = Fnv64::new();
    h.write(b"casted:stage:ed");
    h.write_u64(STAGE_FORMAT_VERSION_ED);
    h.write_u64(input_digest);
    // Registry transform tag. `None = 0` / `DupCompare = 1` coincide
    // with the historical `has_error_detection() as u8` byte, so
    // pre-registry artifacts and the pinned golden keys stay valid;
    // RBED (tag 0) deliberately shares NOED's ED artifact — both leave
    // the module untouched.
    h.write_u8(scheme.descriptor().transform.tag());
    h.write_u8(ed.fused_checks as u8);
    h.write_u8(ed.selective as u8);
    h.write_u8(opts.if_convert as u8);
    h.finish()
}

fn placement_tag(p: Placement) -> (u64, u64) {
    match p {
        Placement::AllOn(c) => (0, c.0 as u64),
        Placement::ByStream => (1, 0),
        Placement::Adaptive => (2, 0),
        Placement::AdaptivePinnedChecks => (3, 0),
    }
}

/// Key of the schedule artifact: the ED artifact's payload digest,
/// the placement policy, and **exactly** the machine-config fields the
/// scheduler and the spill pass read. Simulator-only fields (cache
/// levels, memory latency, MSHRs) are deliberately absent — see the
/// `irrelevant_config_knobs_do_not_touch_stage_keys` regression test.
pub fn sched_stage_key(
    ed_digest: u64,
    scheme: Scheme,
    config: &MachineConfig,
    opts: &PrepareOptions,
) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"casted:stage:sched");
    h.write_u64(STAGE_FORMAT_VERSION_SCHED);
    h.write_u64(ed_digest);
    let (ptag, parg) = placement_tag(scheme.placement());
    h.write_u64(ptag);
    h.write_u64(parg);
    h.write_u64(config.clusters as u64);
    h.write_u64(config.issue_width as u64);
    h.write_u64(config.inter_cluster_delay as u64);
    let l = &config.latency;
    for v in [
        l.alu, l.mul, l.div, l.cmp, l.fcmp, l.fadd, l.fmul, l.fdiv, l.fcvt, l.load_hit, l.store,
        l.branch,
    ] {
        h.write_u64(v as u64);
    }
    h.write_u64(opts.max_spill_rounds as u64);
    h.finish()
}

/// Key of the physical-register-assignment artifact: purely a function
/// of the schedule artifact it proves correct.
pub fn ra_stage_key(sched_digest: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"casted:stage:ra");
    h.write_u64(STAGE_FORMAT_VERSION_RA);
    h.write_u64(sched_digest);
    h.finish()
}

// ------------------------- stage payload codecs --------------------

fn put_ed_stats(buf: &mut Vec<u8>, st: &Option<EdStats>) {
    match st {
        None => put_uvarint(buf, 0),
        Some(s) => {
            put_uvarint(buf, 1);
            put_uvarint(buf, s.replicated as u64);
            put_uvarint(buf, s.isolation_copies as u64);
            put_uvarint(buf, s.checks as u64);
            put_uvarint(buf, s.renamed_regs as u64);
            put_uvarint(buf, s.size_before as u64);
            put_uvarint(buf, s.size_after as u64);
        }
    }
}

fn get_ed_stats(buf: &[u8], pos: &mut usize) -> Option<Option<EdStats>> {
    match get_uvarint(buf, pos)? {
        0 => Some(None),
        1 => {
            let mut next = || -> Option<usize> { usize::try_from(get_uvarint(buf, pos)?).ok() };
            let replicated = next()?;
            let isolation_copies = next()?;
            let checks = next()?;
            let renamed_regs = next()?;
            let size_before = next()?;
            let size_after = next()?;
            Some(Some(EdStats {
                replicated,
                isolation_copies,
                checks,
                renamed_regs,
                size_before,
                size_after,
            }))
        }
        _ => None,
    }
}

/// ED artifact payload: the transformed module plus its statistics.
pub fn encode_ed_artifact(module: &Module, stats: &Option<EdStats>) -> Vec<u8> {
    let mut buf = Vec::new();
    put_bytes(&mut buf, &ircodec::encode_module(module));
    put_ed_stats(&mut buf, stats);
    buf
}

/// Strict inverse of [`encode_ed_artifact`].
pub fn decode_ed_artifact(buf: &[u8]) -> Option<(Module, Option<EdStats>)> {
    let mut pos = 0;
    let module = ircodec::decode_module(get_bytes(buf, &mut pos, MAX_LEN)?)?;
    let stats = get_ed_stats(buf, &mut pos)?;
    (pos == buf.len()).then_some((module, stats))
}

/// Schedule artifact payload: the scheduled program (config excluded —
/// see `casted_ir::codec`) plus the spill count.
pub fn encode_sched_artifact(sp: &ScheduledProgram, spilled: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    put_bytes(&mut buf, &ircodec::encode_scheduled(sp));
    put_uvarint(&mut buf, spilled as u64);
    buf
}

/// Strict inverse of [`encode_sched_artifact`]; installs `config`.
pub fn decode_sched_artifact(
    buf: &[u8],
    config: &MachineConfig,
) -> Option<(ScheduledProgram, usize)> {
    let mut pos = 0;
    let sp = ircodec::decode_scheduled(get_bytes(buf, &mut pos, MAX_LEN)?, config)?;
    let spilled = usize::try_from(get_uvarint(buf, &mut pos)?).ok()?;
    (pos == buf.len()).then_some((sp, spilled))
}

/// Regalloc artifact payload: the assignment map (sorted by register,
/// so the bytes are canonical) plus the per-cluster peak table.
pub fn encode_ra_artifact(phys: &PhysAssignment) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut pairs: Vec<(Reg, u32)> = phys.map.iter().map(|(r, v)| (*r, *v)).collect();
    pairs.sort_unstable();
    put_uvarint(&mut buf, pairs.len() as u64);
    for (r, v) in pairs {
        put_uvarint(&mut buf, r.class.index() as u64);
        put_uvarint(&mut buf, r.index as u64);
        put_uvarint(&mut buf, v as u64);
    }
    put_uvarint(&mut buf, phys.peak.len() as u64);
    for peak in &phys.peak {
        for v in peak {
            put_uvarint(&mut buf, *v as u64);
        }
    }
    buf
}

/// Strict inverse of [`encode_ra_artifact`].
pub fn decode_ra_artifact(buf: &[u8]) -> Option<PhysAssignment> {
    use casted_ir::RegClass;
    let mut pos = 0;
    let n = usize::try_from(get_uvarint(buf, &mut pos)?).ok()?;
    if n > MAX_LEN {
        return None;
    }
    let mut map = std::collections::HashMap::with_capacity(n.min(65536));
    let mut prev: Option<Reg> = None;
    for _ in 0..n {
        let class = *RegClass::ALL
            .get(usize::try_from(get_uvarint(buf, &mut pos)?).ok()?)?;
        let index = u32::try_from(get_uvarint(buf, &mut pos)?).ok()?;
        let r = Reg::new(class, index);
        if let Some(p) = prev {
            if r <= p {
                return None;
            }
        }
        prev = Some(r);
        map.insert(r, u32::try_from(get_uvarint(buf, &mut pos)?).ok()?);
    }
    let n_peak = usize::try_from(get_uvarint(buf, &mut pos)?).ok()?;
    if n_peak > MAX_LEN {
        return None;
    }
    let mut peak = Vec::with_capacity(n_peak.min(64));
    for _ in 0..n_peak {
        let mut row = [0u32; 3];
        for slot in &mut row {
            *slot = u32::try_from(get_uvarint(buf, &mut pos)?).ok()?;
        }
        peak.push(row);
    }
    (pos == buf.len()).then_some(PhysAssignment { map, peak })
}

// ------------------------- stage execution -------------------------

/// The ED-transform stage body — exactly the front half of
/// [`pipeline::prepare_custom`] under scheme-default options.
fn run_ed_stage(
    module: &Module,
    scheme: Scheme,
    opts: &PrepareOptions,
) -> (Module, Option<EdStats>) {
    let mut m = module.clone();
    if opts.if_convert {
        crate::ifconvert::if_convert(&mut m);
    }
    let ed_stats = match scheme.descriptor().transform {
        crate::schemes::Transform::None => None,
        crate::schemes::Transform::DupCompare => {
            Some(error_detection_with(&mut m, &EdOptions::default()))
        }
        crate::schemes::Transform::Tmr => Some(crate::schemes::tmr_transform(&mut m)),
    };
    if casted_obs::enabled() {
        if let Some(st) = &ed_stats {
            casted_obs::add("passes.ed.replicated", st.replicated as u64);
            casted_obs::add("passes.ed.checks", st.checks as u64);
            casted_obs::add("passes.ed.isolation_copies", st.isolation_copies as u64);
            casted_obs::add("passes.ed.renamed_regs", st.renamed_regs as u64);
            casted_obs::add(crate::pipeline::checks_counter(scheme), st.checks as u64);
        }
    }
    (m, ed_stats)
}

/// The schedule stage body — the spill↔schedule fixed point of
/// [`pipeline::prepare_custom`], verbatim.
fn run_sched_stage(
    ed_module: &Module,
    scheme: Scheme,
    config: &MachineConfig,
    opts: &PrepareOptions,
) -> Result<(ScheduledProgram, usize), String> {
    let placement = scheme.placement();
    let mut m = ed_module.clone();
    let mut spilled = 0usize;
    let mut rounds = 0usize;
    let sp = loop {
        let sp = schedule_function(&m, config, placement);
        let ivs = intervals(&sp);
        let picks = choose_spills(&sp, &ivs);
        if picks.is_empty() {
            break sp;
        }
        rounds += 1;
        if rounds > opts.max_spill_rounds {
            return Err(format!(
                "register pressure not reducible after {} spill rounds ({} spills)",
                opts.max_spill_rounds, spilled
            ));
        }
        for reg in picks {
            spill_register(&mut m, reg);
            spilled += 1;
        }
    };
    if casted_obs::enabled() {
        casted_obs::add("passes.spilled_regs", spilled as u64);
        casted_obs::add("passes.sched.bundles", sp.bundle_count() as u64);
        casted_obs::add("passes.sched.nop_slots", sp.nop_slots() as u64);
        casted_obs::add(
            "passes.sched.cross_cluster_edges",
            sp.cross_cluster_edges() as u64,
        );
    }
    Ok((sp, spilled))
}

/// Run the memoized back-end stage chain on a module whose canonical
/// content digest is `input_digest` (use [`module_content_key`], or the
/// digest of the codegen artifact when driven from the front end —
/// they coincide, since the codegen artifact *is* the encoded module).
///
/// Every stage is consulted in order; a verified artifact is a hit, a
/// missing/damaged one is recomputed from the upstream value and
/// re-saved (store healing). The returned [`Prepared`] equals what
/// [`pipeline::prepare_with`] computes from scratch.
pub fn prepare_staged(
    store: &ArtifactStore,
    input_digest: u64,
    module: &Module,
    scheme: Scheme,
    config: &MachineConfig,
    opts: &PrepareOptions,
    stats: &mut StageStats,
) -> Result<Prepared, String> {
    // --- stage: ed ---------------------------------------------------
    let ed_key = ed_stage_key(input_digest, scheme, opts);
    let mut ed_payload = load_metered(store, KIND_ED, ed_key);
    let (ed_module, ed_stats) = match ed_payload.as_deref().and_then(decode_ed_artifact) {
        Some(v) => {
            stats.note(true);
            v
        }
        None => {
            stats.note(false);
            let (m, st) = run_ed_stage(module, scheme, opts);
            let payload = encode_ed_artifact(&m, &st);
            let _ = store.save(KIND_ED, ed_key, &payload);
            ed_payload = Some(payload);
            (m, st)
        }
    };
    let ed_digest = fnv1a(ed_payload.as_deref().expect("ed payload present"));

    // --- stage: sched ------------------------------------------------
    let sched_key = sched_stage_key(ed_digest, scheme, config, opts);
    let mut sched_payload = load_metered(store, KIND_SCHED, sched_key);
    let (sp, spilled) = match sched_payload
        .as_deref()
        .and_then(|b| decode_sched_artifact(b, config))
    {
        Some(v) => {
            stats.note(true);
            v
        }
        None => {
            stats.note(false);
            let (sp, spilled) = run_sched_stage(&ed_module, scheme, config, opts)?;
            let payload = encode_sched_artifact(&sp, spilled);
            let _ = store.save(KIND_SCHED, sched_key, &payload);
            sched_payload = Some(payload);
            (sp, spilled)
        }
    };
    let sched_digest = fnv1a(sched_payload.as_deref().expect("sched payload present"));

    // --- stage: ra ---------------------------------------------------
    let ra_key = ra_stage_key(sched_digest);
    let phys = match load_metered(store, KIND_RA, ra_key).as_deref().and_then(decode_ra_artifact) {
        Some(v) => {
            stats.note(true);
            v
        }
        None => {
            stats.note(false);
            let phys = assign_physical(&sp)?;
            let _ = store.save(KIND_RA, ra_key, &encode_ra_artifact(&phys));
            phys
        }
    };

    Ok(Prepared {
        sp,
        scheme,
        ed_stats,
        spilled,
        phys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_with;
    use casted_ir::testgen::{random_module, GenOptions};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "casted-stages-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Canonical fingerprint of a `Prepared` for byte-identity checks.
    fn prepared_bytes(p: &Prepared) -> Vec<u8> {
        let mut buf = ircodec::encode_scheduled(&p.sp);
        put_uvarint(&mut buf, p.spilled as u64);
        put_ed_stats(&mut buf, &p.ed_stats);
        buf.extend_from_slice(&encode_ra_artifact(&p.phys));
        buf
    }

    #[test]
    fn staged_cold_and_warm_match_the_monolith() {
        let dir = temp_dir("exact");
        let store = ArtifactStore::open(&dir).unwrap();
        let cfg = MachineConfig::itanium2_like(2, 2);
        let opts = PrepareOptions::default();
        for seed in [0u64, 3, 9] {
            let m = random_module(seed, &GenOptions::default());
            let key = module_content_key(&m);
            let mut tags_seen = std::collections::HashSet::new();
            for scheme in Scheme::FULL {
                let legacy = prepare_with(&m, scheme, &cfg, &opts).unwrap();
                let mut cold_stats = StageStats::default();
                let cold =
                    prepare_staged(&store, key, &m, scheme, &cfg, &opts, &mut cold_stats).unwrap();
                let mut warm_stats = StageStats::default();
                let warm =
                    prepare_staged(&store, key, &m, scheme, &cfg, &opts, &mut warm_stats).unwrap();
                assert_eq!(prepared_bytes(&legacy), prepared_bytes(&cold));
                assert_eq!(prepared_bytes(&legacy), prepared_bytes(&warm));
                assert_eq!(warm_stats.hit, 3, "warm rerun must hit every stage");
                // Schemes running the same registry transform share the
                // machine-independent ED artifact (SCED/DCED/CASTED all
                // dup-and-compare; RBED reuses NOED's untouched module;
                // TMRED's triplication is its own artifact). Downstream
                // stages are placement-specific and miss — except RBED,
                // which compiles to NOED's exact schedule (same module,
                // same placement) and therefore hits the whole chain.
                let tag = scheme.descriptor().transform.tag();
                let expect_hits = if scheme == Scheme::Rbed {
                    3
                } else {
                    tags_seen.contains(&tag) as u64
                };
                assert_eq!(cold_stats.hit, expect_hits, "{scheme:?}");
                tags_seen.insert(tag);
                // The full machine config (simulator fields included)
                // rides along on both paths.
                assert_eq!(
                    format!("{:?}", legacy.sp.config),
                    format!("{:?}", warm.sp.config)
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_reuses_the_ed_artifact() {
        let dir = temp_dir("config");
        let store = ArtifactStore::open(&dir).unwrap();
        let opts = PrepareOptions::default();
        let m = random_module(5, &GenOptions::default());
        let key = module_content_key(&m);
        let mut s1 = StageStats::default();
        prepare_staged(
            &store,
            key,
            &m,
            Scheme::Casted,
            &MachineConfig::itanium2_like(2, 2),
            &opts,
            &mut s1,
        )
        .unwrap();
        // A different (issue, delay) pair restarts at the schedule
        // stage: the ED artifact is machine-independent and must hit.
        let mut s2 = StageStats::default();
        let p = prepare_staged(
            &store,
            key,
            &m,
            Scheme::Casted,
            &MachineConfig::itanium2_like(4, 1),
            &opts,
            &mut s2,
        )
        .unwrap();
        assert_eq!(s2.hit, 1, "ED artifact must be reused across configs");
        assert_eq!(s2.miss, 2, "schedule + regalloc must recompute");
        let legacy = prepare_with(
            &m,
            Scheme::Casted,
            &MachineConfig::itanium2_like(4, 1),
            &opts,
        )
        .unwrap();
        assert_eq!(prepared_bytes(&legacy), prepared_bytes(&p));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ed_artifacts_are_shared_across_ed_schemes() {
        // SCED, DCED and CASTED run the same machine-independent
        // transform, so the second scheme's ED stage hits the first's
        // artifact.
        let dir = temp_dir("share");
        let store = ArtifactStore::open(&dir).unwrap();
        let cfg = MachineConfig::itanium2_like(2, 2);
        let opts = PrepareOptions::default();
        let m = random_module(7, &GenOptions::default());
        let key = module_content_key(&m);
        let mut s1 = StageStats::default();
        prepare_staged(&store, key, &m, Scheme::Sced, &cfg, &opts, &mut s1).unwrap();
        let mut s2 = StageStats::default();
        prepare_staged(&store, key, &m, Scheme::Dced, &cfg, &opts, &mut s2).unwrap();
        assert_eq!(s1.hit, 0);
        assert_eq!(s2.hit, 1, "DCED must reuse SCED's ED artifact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_scheme_keys_partition_by_transform() {
        // RBED leaves the module untouched, so its ED key equals
        // NOED's and its ED artifact is shared; TMRED's triplication
        // is a distinct transform and must key (and miss) separately
        // from every dup-and-compare scheme.
        let opts = PrepareOptions::default();
        let digest = 0xD1_6E57u64;
        let k_noed = ed_stage_key(digest, Scheme::Noed, &opts);
        let k_sced = ed_stage_key(digest, Scheme::Sced, &opts);
        let k_tmred = ed_stage_key(digest, Scheme::Tmred, &opts);
        let k_rbed = ed_stage_key(digest, Scheme::Rbed, &opts);
        assert_eq!(k_rbed, k_noed, "RBED shares NOED's ED artifact");
        assert_ne!(k_tmred, k_sced);
        assert_ne!(k_tmred, k_noed);
        assert_eq!(
            ed_stage_key(digest, Scheme::Dced, &opts),
            k_sced,
            "all dup-and-compare schemes share one ED key"
        );

        let dir = temp_dir("recovery");
        let store = ArtifactStore::open(&dir).unwrap();
        let cfg = MachineConfig::itanium2_like(2, 2);
        let m = random_module(13, &GenOptions::default());
        let key = module_content_key(&m);
        let mut s1 = StageStats::default();
        prepare_staged(&store, key, &m, Scheme::Noed, &cfg, &opts, &mut s1).unwrap();
        let mut s2 = StageStats::default();
        prepare_staged(&store, key, &m, Scheme::Rbed, &cfg, &opts, &mut s2).unwrap();
        assert_eq!(
            s2.hit, 3,
            "RBED compiles to NOED's exact schedule and must hit every stage"
        );
        let mut s3 = StageStats::default();
        prepare_staged(&store, key, &m, Scheme::Tmred, &cfg, &opts, &mut s3).unwrap();
        assert_eq!(s3.hit, 0, "TMRED's transform is its own artifact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifacts_heal_as_misses_with_identical_results() {
        let dir = temp_dir("heal");
        let store = ArtifactStore::open(&dir).unwrap();
        let cfg = MachineConfig::itanium2_like(2, 2);
        let opts = PrepareOptions::default();
        let m = random_module(11, &GenOptions::default());
        let key = module_content_key(&m);
        let mut stats = StageStats::default();
        let clean =
            prepare_staged(&store, key, &m, Scheme::Casted, &cfg, &opts, &mut stats).unwrap();
        let clean_bytes = prepared_bytes(&clean);

        // Flip one byte in the middle of each stored artifact in turn:
        // the checksum rejects it, the stage recomputes, the result is
        // unchanged and the store is healed (a further run hits again).
        // Each round opens a fresh store handle: the in-memory front
        // cache deliberately serves already-verified bytes without
        // re-reading disk, so disk corruption is (correctly) invisible
        // to the process that wrote the artifact — detection is a
        // fresh-process property.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();

            let store = ArtifactStore::open(&dir).unwrap();
            let mut s = StageStats::default();
            let healed =
                prepare_staged(&store, key, &m, Scheme::Casted, &cfg, &opts, &mut s).unwrap();
            assert_eq!(clean_bytes, prepared_bytes(&healed));
            assert!(s.miss >= 1, "corruption of {path:?} was not detected");

            let mut s2 = StageStats::default();
            prepare_staged(&store, key, &m, Scheme::Casted, &cfg, &opts, &mut s2).unwrap();
            assert_eq!(s2.hit, 3, "store did not heal after {path:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn irrelevant_config_knobs_do_not_touch_stage_keys() {
        let opts = PrepareOptions::default();
        let base = MachineConfig::itanium2_like(2, 2);
        let ed = ed_stage_key(0xD16E57, Scheme::Casted, &opts);
        let sched = sched_stage_key(0xFEED, Scheme::Casted, &base, &opts);

        // Simulator-only machine fields must leave both keys alone.
        let mut sim_only = base.clone();
        sim_only.memory_latency += 50;
        sim_only.mshr_entries += 7;
        sim_only.cache_levels.clear();
        assert_eq!(sched, sched_stage_key(0xFEED, Scheme::Casted, &sim_only, &opts));

        // Scheduler-visible fields must change the schedule key...
        let mut wider = base.clone();
        wider.issue_width += 1;
        assert_ne!(sched, sched_stage_key(0xFEED, Scheme::Casted, &wider, &opts));
        let mut slower = base.clone();
        slower.latency.mul += 1;
        assert_ne!(sched, sched_stage_key(0xFEED, Scheme::Casted, &slower, &opts));

        // ...while no machine field at all reaches the ED key (the
        // signature makes this structural; pin it anyway).
        assert_eq!(ed, ed_stage_key(0xD16E57, Scheme::Casted, &opts));
    }

    #[test]
    fn stage_keys_are_pinned_against_goldens() {
        // Golden key values for a fixed input: any unintentional change
        // to key derivation (field order, a new field, a version bump)
        // trips this test and must be accompanied by a STAGE_FORMAT_
        // VERSION bump. Regenerate by printing the three values.
        let opts = PrepareOptions::default();
        let cfg = MachineConfig::itanium2_like(2, 2);
        let ed = ed_stage_key(0x1234_5678_9ABC_DEF0, Scheme::Casted, &opts);
        let sched = sched_stage_key(ed, Scheme::Casted, &cfg, &opts);
        let ra = ra_stage_key(sched);
        assert_eq!(
            (ed, sched, ra),
            (
                0x3ca5_3bdd_b234_0d22,
                0x241f_9862_e153_f99a,
                0x0a94_050b_c6b4_6b2f,
            ),
            "stage keys moved: {ed:#018x} {sched:#018x} {ra:#018x}"
        );
    }

    #[test]
    fn ra_artifact_round_trips() {
        use std::collections::HashMap;
        let mut map = HashMap::new();
        map.insert(Reg::gp(3), 1);
        map.insert(Reg::gp(0), 0);
        map.insert(Reg::fp(2), 5);
        map.insert(Reg::pr(1), 2);
        let phys = PhysAssignment {
            map,
            peak: vec![[3, 1, 0], [2, 2, 2]],
        };
        let bytes = encode_ra_artifact(&phys);
        let back = decode_ra_artifact(&bytes).unwrap();
        assert_eq!(phys.map, back.map);
        assert_eq!(phys.peak, back.peak);
        assert_eq!(bytes, encode_ra_artifact(&back));
        for cut in 0..bytes.len() {
            assert!(decode_ra_artifact(&bytes[..cut]).is_none());
        }
    }
}
