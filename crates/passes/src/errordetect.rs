//! Algorithm 1 of the paper: the single-threaded error-detection
//! transformation.
//!
//! Three steps, run over the whole entry function:
//!
//! 1. **Replication** (`replicate_insns`): every eligible instruction
//!    gets an exact duplicate emitted *just before* it. Eligible means:
//!    not control flow, not store-class, not compiler-generated, not
//!    unprotected library code (paper §III-B). The duplicate is recorded
//!    in the replicated-instructions table (Fig. 4a).
//! 2. **Isolation** (`register_rename`): the duplicates are renamed so
//!    the redundant stream never writes an original register. Values
//!    produced by instructions *without* duplicates (library code) that
//!    the redundant stream consumes get an isolation copy
//!    (`NEW = OLD`) emitted right after the producer — the
//!    "no duplicates" arm of `rename_writes_and_uses`. The rename map
//!    is the table of Fig. 4b.
//! 3. **Check insertion** (`emit_check_insns`): before every
//!    non-replicated instruction, each register it reads is compared
//!    against its renamed copy (`cmp.ne` to a fresh predicate) followed
//!    by a detection branch (`br.detect`) that diverts execution to the
//!    fault handler if they differ.
//!
//! The checks are deliberately a **compare + branch pair**, as in the
//! paper ("the checking code consists of compare and jump
//! instructions") — this is what makes check-dense code sequential and
//! reproduces the h263enc scaling anomaly of §IV-B2.

use std::collections::HashMap;

use std::collections::HashSet;

use casted_ir::{
    CmpKind, Function, Insn, InsnId, Module, Opcode, Operand, Provenance, Reg, RegClass,
};

/// Error-detection variants.
///
/// The default reproduces the paper exactly. The other knobs exist for
/// the ablation studies in `casted-bench`:
///
/// * `fused_checks` — emit a single fused `chk.ne` instruction instead
///   of the paper's `cmp.ne` + `br.detect` pair, quantifying how much
///   of the overhead (and of the h263enc sequential-check effect) the
///   two-instruction encoding is responsible for.
/// * `selective` — Shoestring-style partial redundancy: replicate only
///   the instructions whose values (transitively) feed store-class
///   operands, and check only store-class instructions; control flow
///   is left to symptoms (exceptions/timeouts). Trades coverage for
///   performance, as in the paper's related work [9][14].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdOptions {
    /// Fuse each check pair into one `chk.ne` slot.
    pub fused_checks: bool,
    /// Shoestring-style selective replication.
    pub selective: bool,
}

/// Statistics of one error-detection run (code-growth figures the
/// paper quotes: replicated + checking code more than doubles size).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdStats {
    /// Instructions eligible and duplicated.
    pub replicated: usize,
    /// Isolation copies inserted for unduplicated producers.
    pub isolation_copies: usize,
    /// Check compare/branch *pairs* inserted.
    pub checks: usize,
    /// Distinct registers renamed into the redundant stream (size of
    /// the Fig. 4b rename table).
    pub renamed_regs: usize,
    /// Static size before the pass.
    pub size_before: usize,
    /// Static size after the pass.
    pub size_after: usize,
}

impl EdStats {
    /// Code growth factor (paper: ~2.4x on average).
    pub fn growth(&self) -> f64 {
        if self.size_before == 0 {
            1.0
        } else {
            self.size_after as f64 / self.size_before as f64
        }
    }
}

/// The pass state: the two side tables of Fig. 4.
struct Ed {
    /// Fig. 4a — original instruction -> its duplicate.
    dup_of: HashMap<InsnId, InsnId>,
    /// Fig. 4b — original register -> renamed redundant register.
    renamed: HashMap<Reg, Reg>,
    stats: EdStats,
}

/// Registers whose values (transitively) reach a store-class operand —
/// the "high-value" set selective replication protects.
fn store_feeding_regs(func: &Function) -> HashSet<Reg> {
    let mut set: HashSet<Reg> = HashSet::new();
    for (_, block) in func.iter_blocks() {
        for &iid in &block.insns {
            let insn = func.insn(iid);
            if insn.op.is_store_class() {
                set.extend(insn.reg_uses());
            }
        }
    }
    loop {
        let mut changed = false;
        for (_, block) in func.iter_blocks() {
            for &iid in &block.insns {
                let insn = func.insn(iid);
                if insn.defs.iter().any(|d| set.contains(d)) {
                    for r in insn.reg_uses() {
                        changed |= set.insert(r);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    set
}

/// Step 1: emit an exact duplicate just before every eligible
/// instruction.
fn replicate_insns(func: &mut Function, ed: &mut Ed, opts: &EdOptions) {
    let protected = opts.selective.then(|| store_feeding_regs(func));
    for b in 0..func.blocks.len() {
        let old: Vec<InsnId> = func.blocks[b].insns.clone();
        let mut new_list: Vec<InsnId> = Vec::with_capacity(old.len() * 2);
        for iid in old {
            let insn = func.insn(iid);
            let eligible = insn.is_replicable()
                && protected
                    .as_ref()
                    .map(|set| insn.defs.iter().any(|d| set.contains(d)))
                    .unwrap_or(true);
            if eligible {
                let dup = insn.clone().with_prov(Provenance::Duplicate);
                let dup_id = func.add_insn(dup);
                ed.dup_of.insert(iid, dup_id);
                ed.stats.replicated += 1;
                new_list.push(dup_id);
            }
            new_list.push(iid);
        }
        func.blocks[b].insns = new_list;
    }
}

/// Collect the set of original registers read by any duplicate — the
/// values the redundant stream consumes. Producers without duplicates
/// must supply isolation copies for exactly these.
fn regs_used_by_duplicates(func: &Function, ed: &Ed) -> std::collections::HashSet<Reg> {
    let mut set = std::collections::HashSet::new();
    for dup_id in ed.dup_of.values() {
        for r in func.insn(*dup_id).reg_uses() {
            set.insert(r);
        }
    }
    set
}

/// Step 2: isolate the redundant stream by renaming every register it
/// writes, inserting copies after unduplicated producers.
fn register_rename(func: &mut Function, ed: &mut Ed) {
    let dup_consumed = regs_used_by_duplicates(func, ed);

    // Walk instructions in program order; handle each original
    // definition (paper: `for INSN in instructions, skip duplicates`).
    for b in 0..func.blocks.len() {
        let list: Vec<InsnId> = func.blocks[b].insns.clone();
        let mut insertions: Vec<(usize, InsnId)> = Vec::new();
        for (pos, iid) in list.iter().enumerate() {
            let insn = func.insn(*iid);
            if insn.prov == Provenance::Duplicate {
                continue;
            }
            let defs: Vec<Reg> = insn.defs.clone();
            if let Some(&dup_id) = ed.dup_of.get(iid) {
                // Duplicated producer: rename the duplicate's defs.
                for regw in defs {
                    let new_reg = *ed
                        .renamed
                        .entry(regw)
                        .or_insert_with(|| func.new_reg(regw.class));
                    let dup = func.insn_mut(dup_id);
                    for d in dup.defs.iter_mut() {
                        if *d == regw {
                            *d = new_reg;
                        }
                    }
                }
            } else {
                // Unduplicated producer (library / compiler-generated
                // code): if the redundant stream reads its value, emit
                // an isolation copy NEW_REG = REGW right after it.
                for regw in defs {
                    if !dup_consumed.contains(&regw) {
                        continue;
                    }
                    let new_reg = *ed
                        .renamed
                        .entry(regw)
                        .or_insert_with(|| func.new_reg(regw.class));
                    let copy_op = match regw.class {
                        RegClass::Gp => Opcode::MovI,
                        RegClass::Fp => Opcode::FMovI,
                        // Predicate copy via self-comparison is not in
                        // the ISA; duplicate the producer's value with
                        // a cmp against constant-true instead. In
                        // practice predicates are only produced by
                        // compares, which are replicable, so this arm
                        // is unreachable for well-formed programs.
                        RegClass::Pr => Opcode::MovI,
                    };
                    let copy = Insn::new(copy_op, vec![new_reg], vec![Operand::Reg(regw)])
                        .with_prov(Provenance::IsolationCopy);
                    let copy_id = func.add_insn(copy);
                    insertions.push((pos + 1, copy_id));
                    ed.stats.isolation_copies += 1;
                }
            }
        }
        // Apply insertions back-to-front so positions stay valid.
        insertions.sort_by(|a, b| b.0.cmp(&a.0));
        for (pos, id) in insertions {
            func.blocks[b].insns.insert(pos, id);
        }
    }

    // Rename the *uses* of every duplicated instruction to the
    // redundant registers.
    let dup_ids: Vec<InsnId> = ed.dup_of.values().copied().collect();
    for dup_id in dup_ids {
        let renames: Vec<(usize, Reg)> = func
            .insn(dup_id)
            .uses
            .iter()
            .enumerate()
            .filter_map(|(k, o)| match o {
                Operand::Reg(r) => ed.renamed.get(r).map(|nr| (k, *nr)),
                _ => None,
            })
            .collect();
        let insn = func.insn_mut(dup_id);
        for (k, nr) in renames {
            insn.uses[k] = Operand::Reg(nr);
        }
    }
}

/// Step 3: insert `cmp.ne` + `br.detect` pairs before every
/// non-replicated instruction, one pair per distinct renamed register
/// it reads.
fn emit_check_insns(func: &mut Function, ed: &mut Ed, opts: &EdOptions) {
    for b in 0..func.blocks.len() {
        let list: Vec<InsnId> = func.blocks[b].insns.clone();
        let mut new_list: Vec<InsnId> = Vec::with_capacity(list.len());
        for iid in list {
            let insn = func.insn(iid);
            let wants_checks = if opts.selective {
                // Selective mode checks only the store-class sites;
                // corrupted branches surface as symptoms instead.
                insn.op.is_store_class() && !matches!(insn.prov, Provenance::LibraryCode)
            } else {
                insn.needs_operand_checks()
            };
            if wants_checks
                && !matches!(
                    insn.prov,
                    Provenance::Duplicate | Provenance::CheckCmp | Provenance::CheckBr
                )
            {
                let mut seen = Vec::new();
                let regs: Vec<Reg> = insn.reg_uses().collect();
                for reg in regs {
                    if seen.contains(&reg) {
                        continue;
                    }
                    seen.push(reg);
                    let Some(&renamed) = ed.renamed.get(&reg) else {
                        // Value has no redundant copy (produced by
                        // unprotected code and never isolated): nothing
                        // to compare against.
                        continue;
                    };
                    if opts.fused_checks {
                        // Ablation: one fused compare-and-detect slot.
                        let chk = Insn::new(
                            Opcode::ChkNe,
                            vec![],
                            vec![Operand::Reg(reg), Operand::Reg(renamed)],
                        )
                        .with_prov(Provenance::CheckCmp);
                        new_list.push(func.add_insn(chk));
                    } else {
                        // The paper's encoding: compare + detect branch.
                        let p = func.new_reg(RegClass::Pr);
                        let cmp = Insn::new(
                            Opcode::Cmp(CmpKind::Ne),
                            vec![p],
                            vec![Operand::Reg(reg), Operand::Reg(renamed)],
                        )
                        .with_prov(Provenance::CheckCmp);
                        let cmp_id = func.add_insn(cmp);
                        let br = Insn::new(Opcode::DetectBr, vec![], vec![Operand::Reg(p)])
                            .with_prov(Provenance::CheckBr);
                        let br_id = func.add_insn(br);
                        new_list.push(cmp_id);
                        new_list.push(br_id);
                    }
                    ed.stats.checks += 1;
                }
            }
            new_list.push(iid);
        }
        func.blocks[b].insns = new_list;
    }
}

/// Run the full error-detection transformation (Algorithm 1,
/// `relaxed_main`) on the module's entry function. Returns statistics.
pub fn error_detection(module: &mut Module) -> EdStats {
    error_detection_with(module, &EdOptions::default())
}

/// [`error_detection`] with explicit [`EdOptions`] (ablations).
pub fn error_detection_with(module: &mut Module, opts: &EdOptions) -> EdStats {
    let func = module.entry_fn_mut();
    let mut ed = Ed {
        dup_of: HashMap::new(),
        renamed: HashMap::new(),
        stats: EdStats {
            size_before: func.static_size(),
            ..EdStats::default()
        },
    };
    replicate_insns(func, &mut ed, opts);
    register_rename(func, &mut ed);
    emit_check_insns(func, &mut ed, opts);
    ed.stats.renamed_regs = ed.renamed.len();
    ed.stats.size_after = func.static_size();
    debug_assert!(
        casted_ir::verify::verify_function(func).is_ok(),
        "error-detection produced invalid IR"
    );
    ed.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, OutVal, StopReason};
    use casted_ir::FunctionBuilder;

    /// x=6; y=x*7; out(y) — with a store thrown in.
    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 2, vec![]);
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        let base = b.imm(addr);
        b.store(base, 0, Operand::Reg(y));
        let v = b.load(base, 0);
        b.out(Operand::Reg(v));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn transformed_program_behaves_identically() {
        let mut m = sample_module();
        let golden = interp::run(&m, 10_000).unwrap();
        let stats = error_detection(&mut m);
        let r = interp::run(&m, 10_000).unwrap();
        assert_eq!(r.stop, golden.stop);
        assert_eq!(r.stream, golden.stream);
        assert!(stats.replicated >= 4); // movs, mul, load
        assert!(stats.checks >= 3); // store base+val, out, halt
        assert!(stats.growth() > 2.0, "growth {} too small", stats.growth());
    }

    #[test]
    fn duplicates_are_placed_before_originals() {
        let mut m = sample_module();
        error_detection(&mut m);
        let f = m.entry_fn();
        for (_, block) in f.iter_blocks() {
            let mut seen_dup_for: Vec<InsnId> = Vec::new();
            for (pos, &iid) in block.insns.iter().enumerate() {
                let insn = f.insn(iid);
                if insn.prov == Provenance::Duplicate {
                    // The next original instruction with same opcode
                    // must follow at pos+1 (exact duplicate just
                    // before the original).
                    let orig = f.insn(block.insns[pos + 1]);
                    assert_eq!(orig.op, insn.op);
                    assert_eq!(orig.prov, Provenance::Original);
                    seen_dup_for.push(iid);
                }
            }
        }
    }

    #[test]
    fn redundant_stream_never_writes_original_registers() {
        let mut m = sample_module();
        let orig_regs: std::collections::HashSet<Reg> = {
            let f = m.entry_fn();
            f.blocks
                .iter()
                .flat_map(|b| &b.insns)
                .flat_map(|&i| f.insn(i).defs.clone())
                .collect()
        };
        error_detection(&mut m);
        let f = m.entry_fn();
        for (_, block) in f.iter_blocks() {
            for &iid in &block.insns {
                let insn = f.insn(iid);
                if insn.prov.is_redundant_stream() {
                    for d in &insn.defs {
                        assert!(
                            !orig_regs.contains(d) || insn.prov == Provenance::CheckCmp,
                            "redundant insn writes original register {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn checks_guard_stores_outs_and_halt() {
        let mut m = sample_module();
        error_detection(&mut m);
        let f = m.entry_fn();
        let block = f.block(f.entry);
        for (pos, &iid) in block.insns.iter().enumerate() {
            let insn = f.insn(iid);
            if insn.op.is_store_class() && insn.prov == Provenance::Original {
                // Walk backwards over the check pairs.
                let mut k = pos;
                let mut found_check = false;
                while k >= 2 {
                    let prev = f.insn(block.insns[k - 1]);
                    if prev.prov == Provenance::CheckBr {
                        found_check = true;
                        k -= 2;
                    } else {
                        break;
                    }
                }
                assert!(found_check, "store-class insn at {pos} has no check");
            }
        }
    }

    #[test]
    fn library_code_is_not_replicated() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        b.prov = Provenance::LibraryCode;
        let x = b.imm(3);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(2));
        b.prov = Provenance::Original;
        let z = b.binop(Opcode::Add, Operand::Reg(y), Operand::Imm(1));
        b.out(Operand::Reg(z));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);

        let stats = error_detection(&mut m);
        let f = m.entry_fn();
        // Library mul/mov must not have duplicates...
        let dup_ops: Vec<Opcode> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&i| f.insn(i).prov == Provenance::Duplicate)
            .map(|&i| f.insn(i).op)
            .collect();
        assert_eq!(dup_ops, vec![Opcode::Add]);
        // ...but the value flowing from library code into the redundant
        // stream gets an isolation copy.
        assert_eq!(stats.isolation_copies, 1);
        // Program behaviour unchanged.
        let r = interp::run(&m, 1000).unwrap();
        assert_eq!(r.stream, vec![OutVal::Int(7)]);
    }

    #[test]
    fn control_flow_predicates_are_checked() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let x = b.imm(1);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.halt_imm(1);
        b.switch_to(e);
        b.halt_imm(2);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        error_detection(&mut m);
        let f = m.entry_fn();
        // The entry block must contain a predicate-class check compare.
        let has_pr_check = f
            .block(f.entry)
            .insns
            .iter()
            .any(|&i| {
                let insn = f.insn(i);
                insn.prov == Provenance::CheckCmp
                    && insn.reg_uses().next().map(|r| r.class) == Some(RegClass::Pr)
            });
        assert!(has_pr_check, "branch predicate not checked");
        let r = interp::run(&m, 1000).unwrap();
        assert_eq!(r.stop, StopReason::Halt(1));
    }

    #[test]
    fn injected_fault_in_checked_value_is_detected() {
        // Manually corrupt an original register after the duplicate has
        // produced its copy: the check before `out` must fire.
        let mut m = sample_module();
        error_detection(&mut m);
        // Append a corruption: find the original `mul` def and xor it
        // by inserting a CompilerGen xor right after the original mul.
        let f = m.entry_fn_mut();
        let entry = f.entry;
        let list = f.block(entry).insns.clone();
        let mut mul_pos = None;
        let mut mul_def = None;
        for (pos, &iid) in list.iter().enumerate() {
            let insn = f.insn(iid);
            if insn.op == Opcode::Mul && insn.prov == Provenance::Original {
                mul_pos = Some(pos);
                mul_def = insn.def();
            }
        }
        let (pos, d) = (mul_pos.unwrap(), mul_def.unwrap());
        let corrupt = Insn::new(
            Opcode::Xor,
            vec![d],
            vec![Operand::Reg(d), Operand::Imm(1 << 5)],
        )
        .with_prov(Provenance::CompilerGen);
        let cid = f.add_insn(corrupt);
        f.block_mut(entry).insns.insert(pos + 1, cid);
        let r = interp::run(&m, 10_000).unwrap();
        assert_eq!(r.stop, StopReason::Detected);
    }

    #[test]
    fn double_transformation_is_rejected_implicitly() {
        // Running the pass twice must not replicate duplicates/checks.
        let mut m = sample_module();
        let s1 = error_detection(&mut m);
        let size_after_first = m.entry_fn().static_size();
        let s2 = error_detection(&mut m);
        // Second run finds no Original replicable instructions beyond
        // what it already transformed... originals are still Original,
        // so they get re-duplicated; but duplicates/checks must not be.
        assert!(s2.replicated <= s1.replicated);
        assert!(m.entry_fn().static_size() >= size_after_first);
    }

    #[test]
    fn loop_carried_values_survive_transformation() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(i));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(10));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);

        error_detection(&mut m);
        let r = interp::run(&m, 100_000).unwrap();
        assert_eq!(r.stream, vec![OutVal::Int(45)]);
        assert_eq!(r.stop, StopReason::Halt(0));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use casted_ir::interp::{self, OutVal, StopReason};
    use casted_ir::FunctionBuilder;

    fn sample() -> Module {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 2, vec![]);
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        let base = b.imm(addr);
        b.store(base, 0, Operand::Reg(y));
        let v = b.load(base, 0);
        b.out(Operand::Reg(v));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn fused_checks_preserve_semantics_and_shrink_code() {
        let mut pair = sample();
        let mut fused = sample();
        let sp = error_detection_with(&mut pair, &EdOptions::default());
        let sf = error_detection_with(
            &mut fused,
            &EdOptions {
                fused_checks: true,
                ..Default::default()
            },
        );
        assert_eq!(sp.checks, sf.checks);
        assert!(sf.size_after < sp.size_after, "fused must be smaller");
        let rp = interp::run(&pair, 10_000).unwrap();
        let rf = interp::run(&fused, 10_000).unwrap();
        assert_eq!(rp.stream, rf.stream);
        assert_eq!(rf.stream, vec![OutVal::Int(42)]);
    }

    #[test]
    fn fused_checks_detect_faults() {
        let mut m = sample();
        error_detection_with(
            &mut m,
            &EdOptions {
                fused_checks: true,
                ..Default::default()
            },
        );
        // Corrupt the original mul result right after it executes.
        let f = m.entry_fn_mut();
        let entry = f.entry;
        let list = f.block(entry).insns.clone();
        let (pos, d) = list
            .iter()
            .enumerate()
            .find_map(|(p, &i)| {
                let insn = f.insn(i);
                (insn.op == Opcode::Mul && insn.prov == Provenance::Original)
                    .then(|| (p, insn.def().unwrap()))
            })
            .unwrap();
        let corrupt = Insn::new(Opcode::Xor, vec![d], vec![Operand::Reg(d), Operand::Imm(4)])
            .with_prov(Provenance::CompilerGen);
        let cid = f.add_insn(corrupt);
        f.block_mut(entry).insns.insert(pos + 1, cid);
        let r = interp::run(&m, 10_000).unwrap();
        assert_eq!(r.stop, StopReason::Detected);
    }

    #[test]
    fn selective_replication_is_cheaper_but_still_guards_stores() {
        let mut full = sample();
        let mut sel = sample();
        let sf = error_detection_with(&mut full, &EdOptions::default());
        let ss = error_detection_with(
            &mut sel,
            &EdOptions {
                selective: true,
                ..Default::default()
            },
        );
        assert!(ss.size_after <= sf.size_after);
        assert!(ss.checks <= sf.checks);
        assert!(ss.checks > 0, "stores must still be checked");
        let r = interp::run(&sel, 10_000).unwrap();
        assert_eq!(r.stream, vec![OutVal::Int(42)]);
    }

    #[test]
    fn selective_skips_branch_only_chains() {
        // A value used only by a branch is not replicated selectively.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let cond_src = b.imm(1); // feeds only the branch
        let p = b.cmp(CmpKind::Gt, Operand::Reg(cond_src), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        let v = b.imm(10); // feeds out -> protected
        b.out(Operand::Reg(v));
        b.halt_imm(0);
        b.switch_to(e);
        b.halt_imm(1);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let st = error_detection_with(
            &mut m,
            &EdOptions {
                selective: true,
                ..Default::default()
            },
        );
        // Only the out-feeding mov is replicated; cmp and cond mov are not.
        assert_eq!(st.replicated, 1, "{st:?}");
        let r = interp::run(&m, 1000).unwrap();
        assert_eq!(r.stop, StopReason::Halt(0));
    }
}
