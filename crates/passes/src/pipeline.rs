//! End-to-end back-end driver: scheme selection → error detection →
//! (spill ↔ schedule) fixed point → physical-register validation.
//!
//! This is the programmatic equivalent of the paper's Fig. 5: the
//! CASTED passes sit in the back end just before instruction
//! scheduling; here they run as a library pipeline over a module
//! produced by the MiniC front end.

use casted_ir::vliw::ScheduledProgram;
use casted_ir::{Cluster, MachineConfig, Module};

use crate::errordetect::{error_detection_with, EdOptions, EdStats};
use crate::physreg::{assign_physical, PhysAssignment};
use crate::schedule::{schedule_function, Placement};
use crate::spill::{choose_spills, intervals, spill_register};

/// The four evaluated code-generation schemes of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No error detection; unmodified code on a single cluster. The
    /// normalization baseline of Figs. 6–8.
    Noed,
    /// Single-Core Error Detection: original + redundant code
    /// interleaved on one cluster (SWIFT-style placement).
    Sced,
    /// Dual-Core Error Detection: original code pinned to cluster 0,
    /// redundant code pinned to cluster 1 (SRMT/DAFT-style placement).
    Dced,
    /// Core-Adaptive (the paper's contribution): error-detection code
    /// placed by the BUG completion-cycle heuristic.
    Casted,
}

impl Scheme {
    /// All schemes in presentation order.
    pub const ALL: [Scheme; 4] = [Scheme::Noed, Scheme::Sced, Scheme::Dced, Scheme::Casted];

    /// The schemes that carry error detection (everything but NOED).
    pub const ED: [Scheme; 3] = [Scheme::Sced, Scheme::Dced, Scheme::Casted];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Noed => "NOED",
            Scheme::Sced => "SCED",
            Scheme::Dced => "DCED",
            Scheme::Casted => "CASTED",
        }
    }

    /// Whether the error-detection transformation runs.
    pub fn has_error_detection(self) -> bool {
        self != Scheme::Noed
    }

    /// The placement policy handed to the scheduler.
    pub fn placement(self) -> Placement {
        match self {
            Scheme::Noed | Scheme::Sced => Placement::AllOn(Cluster::MAIN),
            Scheme::Dced => Placement::ByStream,
            Scheme::Casted => Placement::Adaptive,
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Pipeline tuning knobs.
#[derive(Clone, Debug)]
pub struct PrepareOptions {
    /// Maximum spill→reschedule rounds before giving up.
    pub max_spill_rounds: usize,
    /// Run if-conversion before error detection (off by default: the
    /// recorded EXPERIMENTS.md numbers use the paper's plain pipeline;
    /// the `ablation` binary measures what this buys).
    pub if_convert: bool,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            max_spill_rounds: 16,
            if_convert: false,
        }
    }
}

/// A fully prepared, simulator-ready program plus pass artifacts.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The scheduled program (owns the transformed module).
    pub sp: ScheduledProgram,
    /// Scheme that produced it.
    pub scheme: Scheme,
    /// Error-detection statistics (None for NOED).
    pub ed_stats: Option<EdStats>,
    /// Number of registers spilled to satisfy the register files.
    pub spilled: usize,
    /// Physical register assignment (proof the schedule fits the
    /// architectural files).
    pub phys: PhysAssignment,
}

/// Run the full back end on (a clone of) `module` for `scheme` on
/// machine `config`.
pub fn prepare(
    module: &Module,
    scheme: Scheme,
    config: &MachineConfig,
) -> Result<Prepared, String> {
    prepare_with(module, scheme, config, &PrepareOptions::default())
}

/// [`prepare`] with explicit options.
pub fn prepare_with(
    module: &Module,
    scheme: Scheme,
    config: &MachineConfig,
    opts: &PrepareOptions,
) -> Result<Prepared, String> {
    prepare_custom(
        module,
        scheme,
        scheme.has_error_detection().then(EdOptions::default),
        scheme.placement(),
        config,
        opts,
    )
}

/// Fully custom pipeline entry for ablation studies: choose the
/// error-detection variant and the placement policy independently.
/// `scheme` is only a label carried into [`Prepared`].
pub fn prepare_custom(
    module: &Module,
    scheme: Scheme,
    ed: Option<EdOptions>,
    placement: Placement,
    config: &MachineConfig,
    opts: &PrepareOptions,
) -> Result<Prepared, String> {
    let _t = casted_obs::span("passes.prepare_ns");
    let mut m = module.clone();
    if opts.if_convert {
        crate::ifconvert::if_convert(&mut m);
    }
    let ed_stats = ed.map(|e| error_detection_with(&mut m, &e));

    let mut spilled = 0usize;
    let mut rounds = 0usize;
    let sp = loop {
        let sp = schedule_function(&m, config, placement);
        let ivs = intervals(&sp);
        let picks = choose_spills(&sp, &ivs);
        if picks.is_empty() {
            break sp;
        }
        rounds += 1;
        if rounds > opts.max_spill_rounds {
            return Err(format!(
                "register pressure not reducible after {} spill rounds ({} spills)",
                opts.max_spill_rounds, spilled
            ));
        }
        for reg in picks {
            spill_register(&mut m, reg);
            spilled += 1;
        }
    };

    let phys = assign_physical(&sp)?;
    record_prepare_metrics(scheme, &ed_stats, spilled, &sp);
    Ok(Prepared {
        sp,
        scheme,
        ed_stats,
        spilled,
        phys,
    })
}

/// Per-scheme check-emission counter name (static, so recording never
/// allocates; nonzero iff the scheme carries error detection).
pub(crate) fn checks_counter(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Noed => "passes.ed.checks.noed",
        Scheme::Sced => "passes.ed.checks.sced",
        Scheme::Dced => "passes.ed.checks.dced",
        Scheme::Casted => "passes.ed.checks.casted",
    }
}

/// Flush one successful back-end run into the global metrics registry
/// (all counters — deterministic, snapshot-visible).
fn record_prepare_metrics(
    scheme: Scheme,
    ed_stats: &Option<EdStats>,
    spilled: usize,
    sp: &ScheduledProgram,
) {
    if !casted_obs::enabled() {
        return;
    }
    casted_obs::inc("passes.prepared");
    if let Some(st) = ed_stats {
        casted_obs::add("passes.ed.replicated", st.replicated as u64);
        casted_obs::add("passes.ed.checks", st.checks as u64);
        casted_obs::add("passes.ed.isolation_copies", st.isolation_copies as u64);
        casted_obs::add("passes.ed.renamed_regs", st.renamed_regs as u64);
        casted_obs::add(checks_counter(scheme), st.checks as u64);
    }
    casted_obs::add("passes.spilled_regs", spilled as u64);
    casted_obs::add("passes.sched.bundles", sp.bundle_count() as u64);
    casted_obs::add("passes.sched.nop_slots", sp.nop_slots() as u64);
    casted_obs::add(
        "passes.sched.cross_cluster_edges",
        sp.cross_cluster_edges() as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, StopReason};
    use casted_ir::{FunctionBuilder, Opcode, Operand};

    fn sum_loop_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(i));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(50));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn all_schemes_prepare_and_preserve_semantics() {
        let m = sum_loop_module();
        let golden = interp::run(&m, 100_000).unwrap();
        for scheme in Scheme::ALL {
            let cfg = MachineConfig::itanium2_like(2, 2);
            let prep = prepare(&m, scheme, &cfg).unwrap_or_else(|e| {
                panic!("{scheme}: prepare failed: {e}");
            });
            prep.sp.validate().unwrap();
            let r = interp::run(&prep.sp.module, 1_000_000).unwrap();
            assert_eq!(r.stream, golden.stream, "{scheme} changed the output");
            assert_eq!(r.stop, StopReason::Halt(0));
            if scheme.has_error_detection() {
                let st = prep.ed_stats.unwrap();
                assert!(st.replicated > 0);
                assert!(st.checks > 0);
            } else {
                assert!(prep.ed_stats.is_none());
            }
        }
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(Scheme::Noed.name(), "NOED");
        assert!(!Scheme::Noed.has_error_detection());
        assert!(Scheme::Casted.has_error_detection());
        assert_eq!(Scheme::Dced.placement(), Placement::ByStream);
        assert_eq!(Scheme::ALL.len(), 4);
        assert_eq!(Scheme::ED.len(), 3);
    }

    #[test]
    fn ed_schemes_grow_code_over_twofold() {
        let m = sum_loop_module();
        let cfg = MachineConfig::itanium2_like(4, 1);
        let prep = prepare(&m, Scheme::Sced, &cfg).unwrap();
        assert!(prep.ed_stats.unwrap().growth() > 1.8);
    }
}
