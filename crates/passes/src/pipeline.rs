//! End-to-end back-end driver: scheme selection → error detection →
//! (spill ↔ schedule) fixed point → physical-register validation.
//!
//! This is the programmatic equivalent of the paper's Fig. 5: the
//! CASTED passes sit in the back end just before instruction
//! scheduling; here they run as a library pipeline over a module
//! produced by the MiniC front end.

use casted_ir::vliw::ScheduledProgram;
use casted_ir::{MachineConfig, Module};

use crate::errordetect::{error_detection_with, EdOptions, EdStats};
use crate::physreg::{assign_physical, PhysAssignment};
use crate::schedule::{schedule_function, Placement};
use crate::spill::{choose_spills, intervals, spill_register};

/// The evaluated code-generation schemes: the paper's four plus the
/// recovery-capable extensions (TMR majority voting, replay-based
/// detection). Per-scheme metadata lives in the registry
/// (`crate::schemes`); the methods here are thin views of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No error detection; unmodified code on a single cluster. The
    /// normalization baseline of Figs. 6–8.
    Noed,
    /// Single-Core Error Detection: original + redundant code
    /// interleaved on one cluster (SWIFT-style placement).
    Sced,
    /// Dual-Core Error Detection: original code pinned to cluster 0,
    /// redundant code pinned to cluster 1 (SRMT/DAFT-style placement).
    Dced,
    /// Core-Adaptive (the paper's contribution): error-detection code
    /// placed by the BUG completion-cycle heuristic.
    Casted,
    /// Triple-Modular-Redundant Error Detection (ELZAR-style): two
    /// redundant streams plus majority `vote` instructions at every
    /// check site, so single-lane strikes are *corrected* in place
    /// (golden output preserved) instead of merely reported.
    Tmred,
    /// Replay-Based Error Detection (RepTFD-style): code untouched;
    /// fault campaigns accumulate a per-chunk digest of retired
    /// results and detect on divergence from the golden digests.
    Rbed,
}

impl Scheme {
    /// The paper's four schemes in presentation order (the figure
    /// grids of Figs. 6–9 iterate exactly these).
    pub const ALL: [Scheme; 4] = [Scheme::Noed, Scheme::Sced, Scheme::Dced, Scheme::Casted];

    /// Every production scheme, extensions included, in registry order.
    pub const FULL: [Scheme; 6] = [
        Scheme::Noed,
        Scheme::Sced,
        Scheme::Dced,
        Scheme::Casted,
        Scheme::Tmred,
        Scheme::Rbed,
    ];

    /// The paper schemes that carry error detection.
    pub const ED: [Scheme; 3] = [Scheme::Sced, Scheme::Dced, Scheme::Casted];

    /// Accepted `--scheme` spellings, for CLI usage strings.
    pub const ACCEPTED: &'static str = "noed|sced|dced|casted|tmred|rbed";

    /// Case-insensitive parse over registry names and aliases
    /// (`noed|none`, `sced|single`, `dced|dual`, `casted|adaptive`,
    /// `tmred|tmr`, `rbed|replay`).
    pub fn parse(input: &str) -> Result<Scheme, String> {
        crate::schemes::parse(input)
            .ok_or_else(|| format!("unknown scheme '{input}' (accepted: {})", Scheme::ACCEPTED))
    }

    /// The registry row describing this scheme.
    pub fn descriptor(self) -> &'static crate::schemes::SchemeDescriptor {
        crate::schemes::descriptor(self)
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// Whether a compile-time protection transform runs (and so
    /// whether [`Prepared::ed_stats`] is populated). RBED is
    /// deliberately `false`: its code is NOED-identical and detection
    /// happens at the fault-campaign layer.
    pub fn has_error_detection(self) -> bool {
        self.descriptor().transform != crate::schemes::Transform::None
    }

    /// Copies of each protected computation at runtime (1, 2 or 3).
    pub fn replication_factor(self) -> u8 {
        self.descriptor().replication_factor
    }

    /// Whether a detected single-lane strike is repaired in place
    /// (`Outcome::Corrected`) rather than merely reported.
    pub fn corrects(self) -> bool {
        self.descriptor().corrects
    }

    /// Whether fault campaigns must enable the replay-digest detector
    /// (`CampaignConfig::replay_detect`) for this scheme.
    pub fn replay_detect(self) -> bool {
        self.descriptor().replay_detect
    }

    /// The placement policy handed to the scheduler.
    pub fn placement(self) -> Placement {
        self.descriptor().placement
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Pipeline tuning knobs.
#[derive(Clone, Debug)]
pub struct PrepareOptions {
    /// Maximum spill→reschedule rounds before giving up.
    pub max_spill_rounds: usize,
    /// Run if-conversion before error detection (off by default: the
    /// recorded EXPERIMENTS.md numbers use the paper's plain pipeline;
    /// the `ablation` binary measures what this buys).
    pub if_convert: bool,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            max_spill_rounds: 16,
            if_convert: false,
        }
    }
}

/// A fully prepared, simulator-ready program plus pass artifacts.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The scheduled program (owns the transformed module).
    pub sp: ScheduledProgram,
    /// Scheme that produced it.
    pub scheme: Scheme,
    /// Error-detection statistics (None for NOED).
    pub ed_stats: Option<EdStats>,
    /// Number of registers spilled to satisfy the register files.
    pub spilled: usize,
    /// Physical register assignment (proof the schedule fits the
    /// architectural files).
    pub phys: PhysAssignment,
}

/// Run the full back end on (a clone of) `module` for `scheme` on
/// machine `config`.
pub fn prepare(
    module: &Module,
    scheme: Scheme,
    config: &MachineConfig,
) -> Result<Prepared, String> {
    prepare_with(module, scheme, config, &PrepareOptions::default())
}

/// [`prepare`] with explicit options. Scheme-default behaviour: the
/// registry (`crate::schemes`) decides which protection transform
/// runs and which placement policy the scheduler gets.
pub fn prepare_with(
    module: &Module,
    scheme: Scheme,
    config: &MachineConfig,
    opts: &PrepareOptions,
) -> Result<Prepared, String> {
    use crate::schemes::Transform;
    match scheme.descriptor().transform {
        Transform::Tmr => prepare_transformed(
            module,
            scheme,
            Some(&|m| crate::schemes::tmr_transform(m)),
            scheme.placement(),
            config,
            opts,
        ),
        Transform::DupCompare => prepare_custom(
            module,
            scheme,
            Some(EdOptions::default()),
            scheme.placement(),
            config,
            opts,
        ),
        Transform::None => {
            prepare_custom(module, scheme, None, scheme.placement(), config, opts)
        }
    }
}

/// Fully custom pipeline entry for ablation studies: choose the
/// error-detection variant and the placement policy independently.
/// `scheme` is only a label carried into [`Prepared`].
pub fn prepare_custom(
    module: &Module,
    scheme: Scheme,
    ed: Option<EdOptions>,
    placement: Placement,
    config: &MachineConfig,
    opts: &PrepareOptions,
) -> Result<Prepared, String> {
    let transform = ed.map(|e| {
        move |m: &mut Module| error_detection_with(m, &e)
    });
    prepare_transformed(
        module,
        scheme,
        transform
            .as_ref()
            .map(|f| f as &dyn Fn(&mut Module) -> EdStats),
        placement,
        config,
        opts,
    )
}

/// The pipeline body shared by every scheme: optional if-conversion,
/// an arbitrary protection transform, then the spill↔schedule fixed
/// point and physical-register validation.
fn prepare_transformed(
    module: &Module,
    scheme: Scheme,
    transform: Option<&dyn Fn(&mut Module) -> EdStats>,
    placement: Placement,
    config: &MachineConfig,
    opts: &PrepareOptions,
) -> Result<Prepared, String> {
    let _t = casted_obs::span("passes.prepare_ns");
    let mut m = module.clone();
    if opts.if_convert {
        crate::ifconvert::if_convert(&mut m);
    }
    let ed_stats = transform.map(|f| f(&mut m));

    let mut spilled = 0usize;
    let mut rounds = 0usize;
    let sp = loop {
        let sp = schedule_function(&m, config, placement);
        let ivs = intervals(&sp);
        let picks = choose_spills(&sp, &ivs);
        if picks.is_empty() {
            break sp;
        }
        rounds += 1;
        if rounds > opts.max_spill_rounds {
            return Err(format!(
                "register pressure not reducible after {} spill rounds ({} spills)",
                opts.max_spill_rounds, spilled
            ));
        }
        for reg in picks {
            spill_register(&mut m, reg);
            spilled += 1;
        }
    };

    let phys = assign_physical(&sp)?;
    record_prepare_metrics(scheme, &ed_stats, spilled, &sp);
    Ok(Prepared {
        sp,
        scheme,
        ed_stats,
        spilled,
        phys,
    })
}

/// Per-scheme check-emission counter name (static, so recording never
/// allocates; nonzero iff the scheme carries error detection).
pub(crate) fn checks_counter(scheme: Scheme) -> &'static str {
    scheme.descriptor().checks_counter
}

/// Flush one successful back-end run into the global metrics registry
/// (all counters — deterministic, snapshot-visible).
fn record_prepare_metrics(
    scheme: Scheme,
    ed_stats: &Option<EdStats>,
    spilled: usize,
    sp: &ScheduledProgram,
) {
    if !casted_obs::enabled() {
        return;
    }
    casted_obs::inc("passes.prepared");
    if let Some(st) = ed_stats {
        casted_obs::add("passes.ed.replicated", st.replicated as u64);
        casted_obs::add("passes.ed.checks", st.checks as u64);
        casted_obs::add("passes.ed.isolation_copies", st.isolation_copies as u64);
        casted_obs::add("passes.ed.renamed_regs", st.renamed_regs as u64);
        casted_obs::add(checks_counter(scheme), st.checks as u64);
    }
    casted_obs::add("passes.spilled_regs", spilled as u64);
    casted_obs::add("passes.sched.bundles", sp.bundle_count() as u64);
    casted_obs::add("passes.sched.nop_slots", sp.nop_slots() as u64);
    casted_obs::add(
        "passes.sched.cross_cluster_edges",
        sp.cross_cluster_edges() as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, StopReason};
    use casted_ir::{FunctionBuilder, Opcode, Operand};

    fn sum_loop_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(i));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(50));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn all_schemes_prepare_and_preserve_semantics() {
        let m = sum_loop_module();
        let golden = interp::run(&m, 100_000).unwrap();
        for scheme in Scheme::ALL {
            let cfg = MachineConfig::itanium2_like(2, 2);
            let prep = prepare(&m, scheme, &cfg).unwrap_or_else(|e| {
                panic!("{scheme}: prepare failed: {e}");
            });
            prep.sp.validate().unwrap();
            let r = interp::run(&prep.sp.module, 1_000_000).unwrap();
            assert_eq!(r.stream, golden.stream, "{scheme} changed the output");
            assert_eq!(r.stop, StopReason::Halt(0));
            if scheme.has_error_detection() {
                let st = prep.ed_stats.unwrap();
                assert!(st.replicated > 0);
                assert!(st.checks > 0);
            } else {
                assert!(prep.ed_stats.is_none());
            }
        }
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(Scheme::Noed.name(), "NOED");
        assert!(!Scheme::Noed.has_error_detection());
        assert!(Scheme::Casted.has_error_detection());
        assert_eq!(Scheme::Dced.placement(), Placement::ByStream);
        assert_eq!(Scheme::ALL.len(), 4);
        assert_eq!(Scheme::ED.len(), 3);
    }

    #[test]
    fn ed_schemes_grow_code_over_twofold() {
        let m = sum_loop_module();
        let cfg = MachineConfig::itanium2_like(4, 1);
        let prep = prepare(&m, Scheme::Sced, &cfg).unwrap();
        assert!(prep.ed_stats.unwrap().growth() > 1.8);
    }
}
