//! Register-pressure analysis and spilling.
//!
//! The target's register files are finite (64GP/64FL/32PR per cluster,
//! Table I). Error detection roughly doubles register pressure — the
//! paper attributes part of SCED's slowdown variation to "the variation
//! of register spilling it causes" — so the pipeline must be able to
//! spill.
//!
//! Strategy: after scheduling, compute one conservative live *interval*
//! per virtual register over the linearized schedule (block layout
//! order × bundle cycle). A register's pressure contribution is charged
//! to its **home cluster** (the cluster whose register file holds it).
//! While any (cluster, class) pressure exceeds the file size, the
//! longest-interval registers of that group are spilled to dedicated
//! static slots — store after every definition, reload before every
//! use — and the function is rescheduled. Interval-overlap pressure is
//! exactly the measure the linear-scan assigner in [`crate::physreg`]
//! uses, so once pressure fits, physical assignment is guaranteed to
//! succeed.

use std::collections::HashMap;

use casted_ir::func::GlobalClass;
use casted_ir::liveness::Liveness;
use casted_ir::vliw::ScheduledProgram;
use casted_ir::{Insn, Module, Opcode, Operand, Provenance, Reg, RegClass};

/// A conservative live interval over the linearized schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// The register.
    pub reg: Reg,
    /// First linear position where the value may be live.
    pub start: u32,
    /// Last linear position where the value may be live (inclusive).
    pub end: u32,
}

/// Compute conservative intervals for every register placed in the
/// schedule. Cross-block liveness extends an interval over the whole
/// body of every block where the register is live-in or live-out.
pub fn intervals(sp: &ScheduledProgram) -> Vec<Interval> {
    let func = sp.module.entry_fn();
    let live = Liveness::analyze(func);

    // Linear position base of each block.
    let mut base = vec![0u32; func.blocks.len()];
    let mut pos = 0u32;
    for sb in &sp.blocks {
        base[sb.block.index()] = pos;
        pos += sb.length().max(1) as u32;
    }
    let total = pos;

    let mut range: HashMap<Reg, (u32, u32)> = HashMap::new();
    let touch = |r: Reg, p: u32, range: &mut HashMap<Reg, (u32, u32)>| {
        let e = range.entry(r).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };

    for sb in &sp.blocks {
        let b = sb.block.index();
        for (cycle, bundle) in sb.bundles.iter().enumerate() {
            let p = base[b] + cycle as u32;
            for (_, iid) in bundle.iter() {
                let insn = func.insn(iid);
                for r in insn.reg_uses() {
                    touch(r, p, &mut range);
                }
                for &r in &insn.defs {
                    touch(r, p, &mut range);
                }
            }
        }
        let b_start = base[b];
        let b_end = base[b] + (sb.length().max(1) as u32 - 1);
        for &r in &live.live_in[b] {
            touch(r, b_start, &mut range);
        }
        for &r in &live.live_out[b] {
            touch(r, b_end, &mut range);
        }
    }
    let _ = total;
    let mut ivs: Vec<Interval> = range
        .into_iter()
        .map(|(reg, (start, end))| Interval { reg, start, end })
        .collect();
    // HashMap iteration order is per-instance random; canonicalize so
    // every downstream consumer (spill choice tie-breaks, linear-scan
    // assignment) is a pure function of the schedule. The memoized
    // stage pipeline (`stages.rs`) relies on this: a replayed `ra`
    // artifact must equal a fresh `assign_physical` run byte-for-byte.
    ivs.sort_unstable_by_key(|iv| iv.reg);
    ivs
}

/// Maximum simultaneous interval overlap per (cluster, register class).
/// Indexing: `pressure[cluster][class.index()]`.
pub fn max_pressure(sp: &ScheduledProgram, ivs: &[Interval]) -> Vec<[u32; 3]> {
    let clusters = sp.config.clusters;
    let mut events: Vec<Vec<Vec<(u32, i32)>>> = vec![vec![Vec::new(); 3]; clusters];
    for iv in ivs {
        let c = sp.home_of(iv.reg).index();
        let k = iv.reg.class.index();
        events[c][k].push((iv.start, 1));
        events[c][k].push((iv.end + 1, -1));
    }
    let mut out = vec![[0u32; 3]; clusters];
    for c in 0..clusters {
        for k in 0..3 {
            let ev = &mut events[c][k];
            ev.sort();
            let mut cur = 0i32;
            let mut max = 0i32;
            for &(_, d) in ev.iter() {
                cur += d;
                max = max.max(cur);
            }
            out[c][k] = max as u32;
        }
    }
    out
}

/// Registers to spill to bring each over-pressure group under its
/// limit: the longest intervals first (classic Belady-flavoured
/// furthest-use heuristic on intervals). Predicate registers are never
/// spill candidates (no predicate load/store in the ISA); callers
/// should treat PR overflow as an error.
pub fn choose_spills(sp: &ScheduledProgram, ivs: &[Interval]) -> Vec<Reg> {
    let pressure = max_pressure(sp, ivs);
    let mut picks = Vec::new();
    for c in 0..sp.config.clusters {
        for class in [RegClass::Gp, RegClass::Fp] {
            let limit = class.file_size() as u32;
            let over = pressure[c][class.index()].saturating_sub(limit);
            if over == 0 {
                continue;
            }
            let mut group: Vec<&Interval> = ivs
                .iter()
                .filter(|iv| {
                    iv.reg.class == class
                        && sp.home_of(iv.reg).index() == c
                        && iv.end > iv.start + 2 // spilling tiny ranges is useless
                })
                .collect();
            group.sort_by_key(|iv| std::cmp::Reverse(iv.end - iv.start));
            picks.extend(group.iter().take(over as usize * 2).map(|iv| iv.reg));
        }
    }
    picks
}

/// Spill `reg` of the entry function to a fresh static slot: a store
/// after every definition, a reload into a fresh register before every
/// use. All inserted instructions are compiler-generated (never
/// replicated by a subsequent error-detection pass — spill traffic sits
/// outside the sphere of replication, as in SWIFT).
pub fn spill_register(module: &mut Module, reg: Reg) {
    assert_ne!(reg.class, RegClass::Pr, "predicate registers cannot be spilled");
    let class = if reg.class == RegClass::Fp {
        GlobalClass::Float
    } else {
        GlobalClass::Int
    };
    let n = module.globals.len();
    let (_, addr) = module.add_global(format!("__spill_{n}"), class, 1, vec![]);
    let func = module.entry_fn_mut();

    for b in 0..func.blocks.len() {
        let old: Vec<_> = func.blocks[b].insns.clone();
        let mut new_list = Vec::with_capacity(old.len());
        for iid in old {
            let uses_reg = func.insn(iid).reg_uses().any(|r| r == reg);
            if uses_reg {
                // Reload with absolute addressing (spill slots have
                // link-time-constant addresses), so no address register
                // lengthens live ranges.
                let fresh = func.new_reg(reg.class);
                let ld_op = if reg.class == RegClass::Fp {
                    Opcode::FLoad
                } else {
                    Opcode::Load
                };
                let ld = Insn::new(ld_op, vec![fresh], vec![Operand::Imm(addr)])
                    .with_prov(Provenance::CompilerGen);
                new_list.push(func.add_insn(ld));
                for u in func.insn_mut(iid).uses.iter_mut() {
                    if let Operand::Reg(r) = u {
                        if *r == reg {
                            *u = Operand::Reg(fresh);
                        }
                    }
                }
            }
            new_list.push(iid);
            let defs_reg = func.insn(iid).defs.contains(&reg);
            if defs_reg {
                let st_op = if reg.class == RegClass::Fp {
                    Opcode::FStore
                } else {
                    Opcode::Store
                };
                let st = Insn::new(
                    st_op,
                    vec![],
                    vec![Operand::Imm(addr), Operand::Reg(reg)],
                )
                .with_prov(Provenance::CompilerGen);
                new_list.push(func.add_insn(st));
            }
        }
        func.blocks[b].insns = new_list;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule_function, Placement};
    use casted_ir::interp::{self, OutVal};
    use casted_ir::{Cluster, FunctionBuilder, MachineConfig};

    /// Create `k` long-lived values (a def chain) consumed in reverse
    /// order (a use chain): at the crossover all `k` values are live at
    /// once and no scheduler reordering can shorten the ranges.
    fn pressure_module(k: usize) -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let mut prev = b.imm(1);
        let mut regs = vec![prev];
        for _ in 1..k {
            prev = b.binop(Opcode::Add, Operand::Reg(prev), Operand::Imm(1));
            regs.push(prev);
        }
        let mut acc = b.imm(0);
        for r in regs.iter().rev() {
            acc = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(*r));
        }
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    fn sched(m: &Module) -> ScheduledProgram {
        let cfg = MachineConfig::perfect_memory(2, 1);
        schedule_function(m, &cfg, Placement::AllOn(Cluster::MAIN))
    }

    #[test]
    fn pressure_counts_simultaneous_values() {
        let m = pressure_module(10);
        let sp = sched(&m);
        let ivs = intervals(&sp);
        let p = max_pressure(&sp, &ivs);
        assert!(p[0][RegClass::Gp.index()] >= 10);
        assert_eq!(p[1][RegClass::Gp.index()], 0);
    }

    #[test]
    fn no_spills_needed_under_limit() {
        let m = pressure_module(10);
        let sp = sched(&m);
        let ivs = intervals(&sp);
        assert!(choose_spills(&sp, &ivs).is_empty());
    }

    #[test]
    fn over_pressure_selects_spill_candidates() {
        let m = pressure_module(80);
        let sp = sched(&m);
        let ivs = intervals(&sp);
        let picks = choose_spills(&sp, &ivs);
        assert!(!picks.is_empty());
        assert!(picks.iter().all(|r| r.class == RegClass::Gp));
    }

    #[test]
    fn spilling_preserves_semantics() {
        let mut m = pressure_module(20);
        let golden = interp::run(&m, 100_000).unwrap();
        // Spill five arbitrary long-lived registers.
        let sp = sched(&m);
        let mut ivs = intervals(&sp);
        ivs.sort_by_key(|iv| std::cmp::Reverse(iv.end - iv.start));
        let victims: Vec<Reg> = ivs
            .iter()
            .filter(|iv| iv.reg.class == RegClass::Gp)
            .take(5)
            .map(|iv| iv.reg)
            .collect();
        for v in victims {
            spill_register(&mut m, v);
        }
        casted_ir::verify::verify_module(&m).unwrap();
        let r = interp::run(&m, 100_000).unwrap();
        assert_eq!(r.stream, golden.stream);
        assert_eq!(r.stop, golden.stop);
    }

    #[test]
    fn spilling_reduces_pressure() {
        let mut m = pressure_module(80);
        let sp = sched(&m);
        let ivs = intervals(&sp);
        let before = max_pressure(&sp, &ivs)[0][RegClass::Gp.index()];
        for reg in choose_spills(&sp, &ivs) {
            spill_register(&mut m, reg);
        }
        let sp2 = sched(&m);
        let ivs2 = intervals(&sp2);
        let after = max_pressure(&sp2, &ivs2)[0][RegClass::Gp.index()];
        assert!(after < before, "pressure {before} -> {after}");
    }

    #[test]
    fn spill_code_is_compiler_generated() {
        let mut m = pressure_module(5);
        let victim = {
            let sp = sched(&m);
            intervals(&sp)
                .iter()
                .filter(|iv| iv.reg.class == RegClass::Gp)
                .max_by_key(|iv| iv.end - iv.start)
                .unwrap()
                .reg
        };
        let before = m.entry_fn().static_size();
        spill_register(&mut m, victim);
        let f = m.entry_fn();
        assert!(f.static_size() > before);
        let cg: Vec<_> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&i| f.insn(i).prov == Provenance::CompilerGen)
            .collect();
        assert!(!cg.is_empty());
    }

    #[test]
    fn loop_carried_spill_is_correct() {
        // acc accumulates across a loop; spilling acc must preserve the
        // final sum.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(i));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(10));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);

        spill_register(&mut m, acc);
        casted_ir::verify::verify_module(&m).unwrap();
        let r = interp::run(&m, 100_000).unwrap();
        assert_eq!(r.stream, vec![OutVal::Int(45)]);
    }
}
