//! The pluggable detection-scheme registry.
//!
//! Every compile-time property of a scheme — display name, CLI
//! aliases, which module transform runs, the placement policy handed
//! to the scheduler, how many copies of each protected computation
//! exist at runtime, whether a detected strike is *corrected* rather
//! than merely reported — lives in one [`SchemeDescriptor`] row here.
//! The `Scheme` methods in `pipeline.rs`, the staged-compile ED keys
//! in `stages.rs`, and every `--scheme` CLI site consult this table
//! instead of hardwiring per-scheme `match`es, so adding a scheme is
//! one new row plus its transform.
//!
//! The six production rows:
//!
//! | scheme | transform    | copies | corrects | detects via          |
//! |--------|--------------|--------|----------|----------------------|
//! | NOED   | none         | 1      | no       | nothing (baseline)   |
//! | SCED   | dup+compare  | 2      | no       | `cmp.ne`+`br.detect` |
//! | DCED   | dup+compare  | 2      | no       | `cmp.ne`+`br.detect` |
//! | CASTED | dup+compare  | 2      | no       | `cmp.ne`+`br.detect` |
//! | TMRED  | triplicate   | 3      | **yes**  | majority `vote`      |
//! | RBED   | none         | 1      | no       | replay digest        |
//!
//! TMRED is the ELZAR-style recovery scheme: at every site the paper's
//! schemes would check, it votes the original register against two
//! independently renamed copies and writes the majority back, so a
//! single-lane strike is repaired in place (`Outcome::Corrected`).
//! RBED is the RepTFD-style replay scheme: the code is untouched
//! (NOED-identical schedule); the fault campaign accumulates an FNV-64
//! digest of retired results per golden-trace chunk and detects on
//! digest divergence (`CampaignConfig::replay_detect`).

mod tmr;

pub use tmr::tmr_transform;

use casted_ir::Cluster;

use crate::pipeline::Scheme;
use crate::schedule::Placement;

/// Which compile-time transform a scheme runs over the module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Code left untouched (NOED baseline; RBED detects at the
    /// campaign layer from retired-result digests instead).
    None,
    /// The paper's Algorithm 1: duplicate + compare + detect-branch.
    DupCompare,
    /// Triplicate + majority vote ([`tmr_transform`]).
    Tmr,
}

impl Transform {
    /// Stable tag mixed into the staged-compile ED artifact key.
    /// `None = 0` and `DupCompare = 1` deliberately coincide with the
    /// historical `has_error_detection() as u8` byte, so pre-registry
    /// ED artifacts (and the pinned golden stage keys) stay valid; it
    /// also makes RBED share NOED's ED artifact, which is exactly
    /// right — both leave the module untouched.
    pub fn tag(self) -> u8 {
        match self {
            Transform::None => 0,
            Transform::DupCompare => 1,
            Transform::Tmr => 2,
        }
    }
}

/// One registry row: everything the pipeline, the staged compiler and
/// the CLIs need to know about a scheme without matching on it.
#[derive(Clone, Copy, Debug)]
pub struct SchemeDescriptor {
    /// The scheme this row describes.
    pub scheme: Scheme,
    /// Display name as used in the paper's figures (and in CSVs).
    pub name: &'static str,
    /// Accepted `--scheme` spellings besides `name` (all matching is
    /// case-insensitive).
    pub aliases: &'static [&'static str],
    /// Module transform the back end runs.
    pub transform: Transform,
    /// Copies of each protected computation at runtime (1 = none,
    /// 2 = duplicate-and-compare, 3 = TMR).
    pub replication_factor: u8,
    /// Whether a detected single-lane strike is repaired in place
    /// (golden output preserved, `Outcome::Corrected`) rather than
    /// merely reported.
    pub corrects: bool,
    /// Whether fault campaigns must run the replay-digest detector
    /// (`CampaignConfig::replay_detect`) for this scheme.
    pub replay_detect: bool,
    /// Placement policy handed to the scheduler.
    pub placement: Placement,
    /// Per-scheme check-emission counter (static, so recording never
    /// allocates).
    pub checks_counter: &'static str,
}

/// The registry, in presentation order: the paper's four schemes
/// first, then the recovery-capable extensions.
pub const REGISTRY: [SchemeDescriptor; 6] = [
    SchemeDescriptor {
        scheme: Scheme::Noed,
        name: "NOED",
        aliases: &["none"],
        transform: Transform::None,
        replication_factor: 1,
        corrects: false,
        replay_detect: false,
        placement: Placement::AllOn(Cluster::MAIN),
        checks_counter: "passes.ed.checks.noed",
    },
    SchemeDescriptor {
        scheme: Scheme::Sced,
        name: "SCED",
        aliases: &["single"],
        transform: Transform::DupCompare,
        replication_factor: 2,
        corrects: false,
        replay_detect: false,
        placement: Placement::AllOn(Cluster::MAIN),
        checks_counter: "passes.ed.checks.sced",
    },
    SchemeDescriptor {
        scheme: Scheme::Dced,
        name: "DCED",
        aliases: &["dual"],
        transform: Transform::DupCompare,
        replication_factor: 2,
        corrects: false,
        replay_detect: false,
        placement: Placement::ByStream,
        checks_counter: "passes.ed.checks.dced",
    },
    SchemeDescriptor {
        scheme: Scheme::Casted,
        name: "CASTED",
        aliases: &["adaptive"],
        transform: Transform::DupCompare,
        replication_factor: 2,
        corrects: false,
        replay_detect: false,
        placement: Placement::Adaptive,
        checks_counter: "passes.ed.checks.casted",
    },
    SchemeDescriptor {
        scheme: Scheme::Tmred,
        name: "TMRED",
        aliases: &["tmr"],
        transform: Transform::Tmr,
        replication_factor: 3,
        corrects: true,
        replay_detect: false,
        placement: Placement::Adaptive,
        checks_counter: "passes.ed.checks.tmred",
    },
    SchemeDescriptor {
        scheme: Scheme::Rbed,
        name: "RBED",
        aliases: &["replay"],
        transform: Transform::None,
        replication_factor: 1,
        corrects: false,
        replay_detect: true,
        placement: Placement::AllOn(Cluster::MAIN),
        checks_counter: "passes.ed.checks.rbed",
    },
];

/// The registry row for `scheme`.
pub fn descriptor(scheme: Scheme) -> &'static SchemeDescriptor {
    REGISTRY
        .iter()
        .find(|d| d.scheme == scheme)
        .expect("every Scheme variant has a registry row")
}

/// Case-insensitive scheme lookup over names and aliases — the single
/// parser behind every `--scheme` CLI site.
pub fn parse(input: &str) -> Option<Scheme> {
    REGISTRY
        .iter()
        .find(|d| {
            d.name.eq_ignore_ascii_case(input)
                || d.aliases.iter().any(|a| a.eq_ignore_ascii_case(input))
        })
        .map(|d| d.scheme)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_scheme_exactly_once() {
        assert_eq!(REGISTRY.len(), Scheme::FULL.len());
        for (row, &s) in REGISTRY.iter().zip(Scheme::FULL.iter()) {
            assert_eq!(row.scheme, s, "registry order must match Scheme::FULL");
        }
    }

    #[test]
    fn parse_accepts_names_and_aliases_case_insensitively() {
        for row in &REGISTRY {
            for spelling in std::iter::once(&row.name).chain(row.aliases) {
                assert_eq!(parse(spelling), Some(row.scheme), "{spelling}");
                assert_eq!(parse(&spelling.to_uppercase()), Some(row.scheme));
                assert_eq!(parse(&spelling.to_lowercase()), Some(row.scheme));
            }
        }
        assert_eq!(parse("noed"), Some(Scheme::Noed));
        assert_eq!(parse("TMR"), Some(Scheme::Tmred));
        assert_eq!(parse("Replay"), Some(Scheme::Rbed));
        assert_eq!(parse(""), None);
        assert_eq!(parse("bogus"), None);
    }

    #[test]
    fn descriptor_metadata_is_consistent() {
        for row in &REGISTRY {
            // A correcting scheme must hold a strict majority of copies.
            if row.corrects {
                assert!(row.replication_factor >= 3);
            }
            // Replay detection implies untouched code, and vice versa
            // for the baseline: exactly the transform-free schemes have
            // replication factor 1.
            assert_eq!(
                row.replication_factor == 1,
                row.transform == Transform::None
            );
            assert_eq!(descriptor(row.scheme).name, row.name);
        }
        // Tag stability: the pre-registry key byte was
        // `has_error_detection() as u8`.
        assert_eq!(Transform::None.tag(), 0);
        assert_eq!(Transform::DupCompare.tag(), 1);
        assert_eq!(Transform::Tmr.tag(), 2);
    }
}
