//! The TMRED transform: triplicate + majority vote.
//!
//! Structure mirrors Algorithm 1 (`crate::errordetect`) with one
//! replication stream replaced by two and the compare/branch pairs
//! replaced by `vote` instructions:
//!
//! 1. **Triplication** (`triplicate_insns`): every eligible
//!    instruction (same eligibility rules as the paper's pass —
//!    replicable opcode, `Original` provenance) gets **two** exact
//!    duplicates emitted just before it, one per redundant stream.
//! 2. **Isolation** (`register_rename`): each stream gets its own
//!    rename map, so neither redundant stream ever writes an original
//!    register *or a register of the other stream*. Values produced by
//!    unduplicated code (library routines) that the redundant streams
//!    consume get **two separate** isolation copies — one per stream.
//!    A shared copy would be a single point of failure: one strike on
//!    it would corrupt both redundant copies and out-vote the healthy
//!    original at the next vote.
//! 3. **Vote insertion** (`emit_vote_insns`): before every
//!    non-replicated instruction (store-class and control flow — the
//!    exact sites the paper's pass checks), each distinct original
//!    register it reads is rewritten with the bitwise majority of
//!    itself and its two copies: `vote r, r, rA, rB`. In a fault-free
//!    run all three agree and the write is a no-op; under a
//!    single-lane strike the two healthy copies out-vote the corrupt
//!    one, so execution continues on golden values — detection *with
//!    recovery*, where `cmp.ne` + `br.detect` only aborts.
//!
//! Why correction is exact under the single-strike model: the three
//! lanes share no written registers (step 2), so one strike perturbs
//! at most one lane's value chain. At every vote site the other two
//! lanes carry the golden value and the bitwise majority
//! `(a&b)|(a&c)|(b&c)` equals it in every bit. The simulator counts a
//! correction whenever vote operands disagree (`SimStats::corrections`),
//! which is what lets the fault classifier tell a repaired run
//! (`Outcome::Corrected`) from one the fault never touched (Benign) —
//! both halt with the golden stream and exit code.

use std::collections::{HashMap, HashSet};

use casted_ir::{Insn, InsnId, Module, Opcode, Operand, Provenance, Reg, RegClass};

use crate::errordetect::EdStats;

/// The two redundant streams' side tables (Fig. 4, doubled).
struct Tmr {
    /// Original instruction -> its first/second duplicate.
    dup_a: HashMap<InsnId, InsnId>,
    dup_b: HashMap<InsnId, InsnId>,
    /// Original register -> renamed register, per stream.
    renamed_a: HashMap<Reg, Reg>,
    renamed_b: HashMap<Reg, Reg>,
    stats: EdStats,
}

/// Step 1: emit two exact duplicates just before every eligible
/// instruction (stream A first, then B, then the original — relative
/// order among the three is immaterial once renamed).
fn triplicate_insns(func: &mut casted_ir::Function, tmr: &mut Tmr) {
    for b in 0..func.blocks.len() {
        let old: Vec<InsnId> = func.blocks[b].insns.clone();
        let mut new_list: Vec<InsnId> = Vec::with_capacity(old.len() * 3);
        for iid in old {
            let insn = func.insn(iid).clone();
            if insn.is_replicable() {
                let a = func.add_insn(insn.clone().with_prov(Provenance::Duplicate));
                let bb = func.add_insn(insn.with_prov(Provenance::Duplicate));
                tmr.dup_a.insert(iid, a);
                tmr.dup_b.insert(iid, bb);
                tmr.stats.replicated += 2;
                new_list.push(a);
                new_list.push(bb);
            }
            new_list.push(iid);
        }
        func.blocks[b].insns = new_list;
    }
}

/// Original registers read by either redundant stream (identical sets
/// before renaming, so one scan of stream A suffices).
fn regs_used_by_duplicates(func: &casted_ir::Function, tmr: &Tmr) -> HashSet<Reg> {
    let mut set = HashSet::new();
    for dup_id in tmr.dup_a.values() {
        for r in func.insn(*dup_id).reg_uses() {
            set.insert(r);
        }
    }
    set
}

/// Step 2: isolate both redundant streams behind their own rename
/// maps, inserting one isolation copy *per stream* after unduplicated
/// producers the streams consume.
fn register_rename(func: &mut casted_ir::Function, tmr: &mut Tmr) {
    let dup_consumed = regs_used_by_duplicates(func, tmr);

    for b in 0..func.blocks.len() {
        let list: Vec<InsnId> = func.blocks[b].insns.clone();
        let mut insertions: Vec<(usize, InsnId)> = Vec::new();
        for (pos, iid) in list.iter().enumerate() {
            let insn = func.insn(*iid);
            if insn.prov == Provenance::Duplicate {
                continue;
            }
            let defs: Vec<Reg> = insn.defs.clone();
            if tmr.dup_a.contains_key(iid) {
                // Triplicated producer: rename each duplicate's defs
                // into its own stream.
                for regw in defs {
                    for (dup_of, renamed) in [
                        (&tmr.dup_a, &mut tmr.renamed_a),
                        (&tmr.dup_b, &mut tmr.renamed_b),
                    ] {
                        let dup_id = dup_of[iid];
                        let new_reg = *renamed
                            .entry(regw)
                            .or_insert_with(|| func.new_reg(regw.class));
                        let dup = func.insn_mut(dup_id);
                        for d in dup.defs.iter_mut() {
                            if *d == regw {
                                *d = new_reg;
                            }
                        }
                    }
                }
            } else {
                // Unduplicated producer: one isolation copy per
                // stream (separate copies — a shared one would let a
                // single strike out-vote the original; see module
                // docs).
                for regw in defs {
                    if !dup_consumed.contains(&regw) {
                        continue;
                    }
                    for renamed in [&mut tmr.renamed_a, &mut tmr.renamed_b] {
                        let new_reg = *renamed
                            .entry(regw)
                            .or_insert_with(|| func.new_reg(regw.class));
                        let copy_op = match regw.class {
                            RegClass::Gp => Opcode::MovI,
                            RegClass::Fp => Opcode::FMovI,
                            // See `errordetect::register_rename`:
                            // unreachable for well-formed programs.
                            RegClass::Pr => Opcode::MovI,
                        };
                        let copy =
                            Insn::new(copy_op, vec![new_reg], vec![Operand::Reg(regw)])
                                .with_prov(Provenance::IsolationCopy);
                        let copy_id = func.add_insn(copy);
                        insertions.push((pos + 1, copy_id));
                        tmr.stats.isolation_copies += 1;
                    }
                }
            }
        }
        insertions.sort_by(|a, b| b.0.cmp(&a.0));
        for (pos, id) in insertions {
            func.blocks[b].insns.insert(pos, id);
        }
    }

    // Rename each duplicate's *uses* into its own stream.
    for (dup_of, renamed) in [(&tmr.dup_a, &tmr.renamed_a), (&tmr.dup_b, &tmr.renamed_b)] {
        for &dup_id in dup_of.values() {
            let renames: Vec<(usize, Reg)> = func
                .insn(dup_id)
                .uses
                .iter()
                .enumerate()
                .filter_map(|(k, o)| match o {
                    Operand::Reg(r) => renamed.get(r).map(|nr| (k, *nr)),
                    _ => None,
                })
                .collect();
            let insn = func.insn_mut(dup_id);
            for (k, nr) in renames {
                insn.uses[k] = Operand::Reg(nr);
            }
        }
    }
}

/// Step 3: before every non-replicated instruction, rewrite each
/// distinct original register it reads with the majority of the three
/// lanes: `vote r, r, rA, rB`.
fn emit_vote_insns(func: &mut casted_ir::Function, tmr: &mut Tmr) {
    for b in 0..func.blocks.len() {
        let list: Vec<InsnId> = func.blocks[b].insns.clone();
        let mut new_list: Vec<InsnId> = Vec::with_capacity(list.len());
        for iid in list {
            let insn = func.insn(iid);
            if insn.needs_operand_checks()
                && !matches!(
                    insn.prov,
                    Provenance::Duplicate | Provenance::CheckCmp | Provenance::CheckBr
                )
            {
                let mut seen = Vec::new();
                let regs: Vec<Reg> = insn.reg_uses().collect();
                for reg in regs {
                    if seen.contains(&reg) {
                        continue;
                    }
                    seen.push(reg);
                    let (Some(&a), Some(&bb)) =
                        (tmr.renamed_a.get(&reg), tmr.renamed_b.get(&reg))
                    else {
                        // Value has no redundant copies (unprotected
                        // code, never isolated): nothing to vote.
                        continue;
                    };
                    let vote = Insn::new(
                        Opcode::Vote,
                        vec![reg],
                        vec![Operand::Reg(reg), Operand::Reg(a), Operand::Reg(bb)],
                    )
                    .with_prov(Provenance::CheckCmp);
                    new_list.push(func.add_insn(vote));
                    tmr.stats.checks += 1;
                }
            }
            new_list.push(iid);
        }
        func.blocks[b].insns = new_list;
    }
}

/// Run the full TMR transformation on the module's entry function.
/// Returns the same statistics shape as the paper's pass; `checks`
/// counts vote instructions.
pub fn tmr_transform(module: &mut Module) -> EdStats {
    let func = module.entry_fn_mut();
    let mut tmr = Tmr {
        dup_a: HashMap::new(),
        dup_b: HashMap::new(),
        renamed_a: HashMap::new(),
        renamed_b: HashMap::new(),
        stats: EdStats {
            size_before: func.static_size(),
            ..EdStats::default()
        },
    };
    triplicate_insns(func, &mut tmr);
    register_rename(func, &mut tmr);
    emit_vote_insns(func, &mut tmr);
    tmr.stats.renamed_regs = tmr.renamed_a.len() + tmr.renamed_b.len();
    tmr.stats.size_after = func.static_size();
    debug_assert!(
        casted_ir::verify::verify_function(func).is_ok(),
        "TMR transform produced invalid IR"
    );
    tmr.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, OutVal, StopReason};
    use casted_ir::{CmpKind, FunctionBuilder};

    /// x=6; y=x*7; store/load round trip; out(y).
    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 2, vec![]);
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        let base = b.imm(addr);
        b.store(base, 0, Operand::Reg(y));
        let v = b.load(base, 0);
        b.out(Operand::Reg(v));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    #[test]
    fn transformed_program_behaves_identically() {
        let mut m = sample_module();
        let golden = interp::run(&m, 10_000).unwrap();
        let stats = tmr_transform(&mut m);
        let r = interp::run(&m, 10_000).unwrap();
        assert_eq!(r.stop, golden.stop);
        assert_eq!(r.stream, golden.stream);
        assert!(stats.replicated >= 8, "{stats:?}"); // two dups per eligible insn
        assert!(stats.checks >= 3, "{stats:?}"); // votes at store/out/halt
        assert!(stats.growth() > 2.5, "growth {} too small", stats.growth());
    }

    #[test]
    fn each_eligible_insn_has_two_duplicates() {
        let mut m = sample_module();
        tmr_transform(&mut m);
        let f = m.entry_fn();
        for (_, block) in f.iter_blocks() {
            for (pos, &iid) in block.insns.iter().enumerate() {
                let insn = f.insn(iid);
                if insn.prov == Provenance::Original && insn.op.is_replicable() {
                    assert!(pos >= 2, "original at {pos} lacks two preceding duplicates");
                    for back in [1, 2] {
                        let dup = f.insn(block.insns[pos - back]);
                        assert_eq!(dup.op, insn.op);
                        assert_eq!(dup.prov, Provenance::Duplicate);
                    }
                }
            }
        }
    }

    #[test]
    fn streams_are_register_disjoint() {
        // Neither redundant stream writes an original register, and the
        // two streams never write the same register — the property that
        // makes one strike perturb at most one vote lane.
        let mut m = sample_module();
        let orig_defs: HashSet<Reg> = {
            let f = m.entry_fn();
            f.blocks
                .iter()
                .flat_map(|b| &b.insns)
                .flat_map(|&i| f.insn(i).defs.clone())
                .collect()
        };
        tmr_transform(&mut m);
        let f = m.entry_fn();
        let mut dup_defs: Vec<Reg> = Vec::new();
        for (_, block) in f.iter_blocks() {
            for &iid in &block.insns {
                let insn = f.insn(iid);
                if matches!(
                    insn.prov,
                    Provenance::Duplicate | Provenance::IsolationCopy
                ) {
                    for &d in &insn.defs {
                        assert!(!orig_defs.contains(&d), "stream writes original reg {d}");
                        dup_defs.push(d);
                    }
                }
            }
        }
        // MovI-style redefinitions repeat a register *within* a stream;
        // what must never happen is stream A and B sharing one. The
        // rename maps are disjoint by construction (every target is a
        // fresh `new_reg`), so any repeated def must come from a
        // repeated original def, of which the sample has none.
        let unique: HashSet<&Reg> = dup_defs.iter().collect();
        assert_eq!(unique.len(), dup_defs.len(), "streams share a register");
    }

    #[test]
    fn single_lane_corruption_is_corrected() {
        // Corrupt the ORIGINAL mul result after its duplicates ran: the
        // vote before the store must repair it and the program must
        // halt with the golden stream — where the dup-compare pass
        // would abort with StopReason::Detected.
        let mut m = sample_module();
        tmr_transform(&mut m);
        let f = m.entry_fn_mut();
        let entry = f.entry;
        let list = f.block(entry).insns.clone();
        let (pos, d) = list
            .iter()
            .enumerate()
            .find_map(|(p, &i)| {
                let insn = f.insn(i);
                (insn.op == Opcode::Mul && insn.prov == Provenance::Original)
                    .then(|| (p, insn.def().unwrap()))
            })
            .unwrap();
        let corrupt = Insn::new(
            Opcode::Xor,
            vec![d],
            vec![Operand::Reg(d), Operand::Imm(1 << 5)],
        )
        .with_prov(Provenance::CompilerGen);
        let cid = f.add_insn(corrupt);
        f.block_mut(entry).insns.insert(pos + 1, cid);
        let r = interp::run(&m, 10_000).unwrap();
        assert_eq!(r.stop, StopReason::Halt(0), "vote did not repair the strike");
        assert_eq!(r.stream, vec![OutVal::Int(42)]);
    }

    #[test]
    fn duplicate_lane_corruption_never_outvotes_the_original() {
        // Corrupt ONE redundant copy instead: the original + the other
        // copy hold the majority, so the output stays golden.
        let mut m = sample_module();
        tmr_transform(&mut m);
        let f = m.entry_fn_mut();
        let entry = f.entry;
        let list = f.block(entry).insns.clone();
        let (pos, d) = list
            .iter()
            .enumerate()
            .find_map(|(p, &i)| {
                let insn = f.insn(i);
                (insn.op == Opcode::Mul && insn.prov == Provenance::Duplicate)
                    .then(|| (p, insn.def().unwrap()))
            })
            .unwrap();
        let corrupt = Insn::new(
            Opcode::Xor,
            vec![d],
            vec![Operand::Reg(d), Operand::Imm(0x7F)],
        )
        .with_prov(Provenance::CompilerGen);
        let cid = f.add_insn(corrupt);
        // The two duplicates precede the original: inserting after the
        // first duplicate corrupts stream A before the vote.
        f.block_mut(entry).insns.insert(pos + 1, cid);
        let r = interp::run(&m, 10_000).unwrap();
        assert_eq!(r.stop, StopReason::Halt(0));
        assert_eq!(r.stream, vec![OutVal::Int(42)]);
    }

    #[test]
    fn control_flow_predicates_are_voted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let x = b.imm(1);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.halt_imm(1);
        b.switch_to(e);
        b.halt_imm(2);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        tmr_transform(&mut m);
        let f = m.entry_fn();
        let has_pr_vote = f.block(f.entry).insns.iter().any(|&i| {
            let insn = f.insn(i);
            insn.op == Opcode::Vote
                && insn.reg_uses().next().map(|r| r.class) == Some(RegClass::Pr)
        });
        assert!(has_pr_vote, "branch predicate not voted");
        let r = interp::run(&m, 1000).unwrap();
        assert_eq!(r.stop, StopReason::Halt(1));
    }

    #[test]
    fn library_code_gets_isolation_copies_per_stream() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        b.prov = Provenance::LibraryCode;
        let x = b.imm(3);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(2));
        b.prov = Provenance::Original;
        let z = b.binop(Opcode::Add, Operand::Reg(y), Operand::Imm(1));
        b.out(Operand::Reg(z));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let stats = tmr_transform(&mut m);
        // One consumed library value, two streams: two separate copies.
        assert_eq!(stats.isolation_copies, 2);
        let r = interp::run(&m, 1000).unwrap();
        assert_eq!(r.stream, vec![OutVal::Int(7)]);
    }

    #[test]
    fn loop_carried_values_survive_transformation() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(i));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(10));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        tmr_transform(&mut m);
        let r = interp::run(&m, 100_000).unwrap();
        assert_eq!(r.stream, vec![OutVal::Int(45)]);
        assert_eq!(r.stop, StopReason::Halt(0));
    }
}
