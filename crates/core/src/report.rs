//! Plain-text rendering of experiment results: ASCII bar charts in the
//! style of the paper's figures, and CSV for downstream plotting.

use crate::experiments::{CoveragePoint, PerfTable};
use crate::Scheme;
use casted_faults::Outcome;

/// A horizontal ASCII bar scaled to `width` characters at `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let frac = if max > 0.0 { (value / max).clamp(0.0, 1.0) } else { 0.0 };
    let n = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { ' ' });
    }
    s
}

/// Render one benchmark's Fig. 6/7-style panel: slowdown vs NOED for
/// each (issue, delay, scheme).
pub fn perf_panel(table: &PerfTable, benchmark: &str, issues: &[usize], delays: &[u32]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {benchmark}: slowdown vs NOED (per issue width) ==\n"));
    for &d in delays {
        out.push_str(&format!("-- delay {d} --\n"));
        for &i in issues {
            for scheme in [Scheme::Sced, Scheme::Dced, Scheme::Casted] {
                if let Some(s) = table.slowdown(benchmark, scheme, i, d) {
                    out.push_str(&format!(
                        "  issue {i} {:7} {s:5.2}x |{}|\n",
                        scheme.name(),
                        bar(s, 3.5, 40)
                    ));
                }
            }
        }
    }
    out
}

/// Render the Fig. 8-style ILP scaling panel: speedup of each scheme
/// at growing issue widths, normalized to the same scheme at issue 1.
pub fn scaling_panel(table: &PerfTable, benchmark: &str, issues: &[usize], delay: u32) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {benchmark}: ILP scaling (delay {delay}) ==\n"));
    for scheme in Scheme::ALL {
        out.push_str(&format!("  {:7}", scheme.name()));
        for &i in issues {
            match table.scaling(benchmark, scheme, delay, i) {
                Some(s) => out.push_str(&format!("  i{i}:{s:4.2}x")),
                None => out.push_str(&format!("  i{i}:  - ")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render a Fig. 9/10-style coverage panel.
pub fn coverage_panel(points: &[CoveragePoint]) -> String {
    let mut out = String::new();
    out.push_str(
        "benchmark    scheme  issue delay clust   Benign Detected Exception Corrupt Timeout Corrected\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:12} {:7} {:5} {:5} {:5} {:7.1}% {:7.1}% {:8.1}% {:6.1}% {:6.1}% {:8.1}%\n",
            p.benchmark,
            p.scheme.name(),
            p.issue,
            p.delay,
            p.clusters,
            100.0 * p.tally.fraction(Outcome::Benign),
            100.0 * p.tally.fraction(Outcome::Detected),
            100.0 * p.tally.fraction(Outcome::Exception),
            100.0 * p.tally.fraction(Outcome::DataCorrupt),
            100.0 * p.tally.fraction(Outcome::Timeout),
            100.0 * p.tally.fraction(Outcome::Corrected),
        ));
    }
    out
}

/// Dump the performance grid as CSV.
pub fn perf_csv(table: &PerfTable) -> String {
    let mut out = String::from(
        "benchmark,scheme,issue,delay,cycles,dyn_insns,slowdown_vs_noed,spilled,code_growth,occ0,occ1\n",
    );
    for p in &table.points {
        let slow = table
            .slowdown(&p.benchmark, p.scheme, p.issue, p.delay)
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.4},{},{:.3},{},{}\n",
            p.benchmark,
            p.scheme.name(),
            p.issue,
            p.delay,
            p.cycles,
            p.dyn_insns,
            slow,
            p.spilled,
            p.code_growth,
            p.occupancy.first().copied().unwrap_or(0),
            p.occupancy.get(1).copied().unwrap_or(0),
        ));
    }
    out
}

/// Dump coverage points as CSV.
pub fn coverage_csv(points: &[CoveragePoint]) -> String {
    let mut out = String::from(
        "benchmark,scheme,issue,delay,clusters,benign,detected,exception,corrupt,timeout,corrected\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            p.benchmark,
            p.scheme.name(),
            p.issue,
            p.delay,
            p.clusters,
            p.tally.count(Outcome::Benign),
            p.tally.count(Outcome::Detected),
            p.tally.count(Outcome::Exception),
            p.tally.count(Outcome::DataCorrupt),
            p.tally.count(Outcome::Timeout),
            p.tally.count(Outcome::Corrected),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 2.0, 10), "          ");
        assert_eq!(bar(1.0, 2.0, 10), "#####     ");
        assert_eq!(bar(2.0, 2.0, 10), "##########");
        assert_eq!(bar(5.0, 2.0, 10), "##########");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let table = PerfTable::default();
        let csv = perf_csv(&table);
        assert!(csv.starts_with("benchmark,scheme"));
        assert_eq!(csv.lines().count(), 1);
    }

    fn fake_table() -> PerfTable {
        use crate::experiments::PerfPoint;
        let mut t = PerfTable::default();
        for (scheme, cycles) in [
            (Scheme::Noed, 1000u64),
            (Scheme::Sced, 1700),
            (Scheme::Dced, 1300),
            (Scheme::Casted, 1250),
        ] {
            for issue in [1usize, 2] {
                t.add_point(PerfPoint {
                    benchmark: "fake".into(),
                    scheme,
                    issue,
                    delay: 1,
                    cycles: cycles / issue as u64,
                    dyn_insns: 500,
                    spilled: 0,
                    code_growth: if scheme == Scheme::Noed { 1.0 } else { 2.3 },
                    occupancy: vec![10, 5],
                });
            }
        }
        t
    }

    #[test]
    fn perf_panel_contains_all_schemes_and_slowdowns() {
        let t = fake_table();
        let panel = perf_panel(&t, "fake", &[1, 2], &[1]);
        assert!(panel.contains("SCED"));
        assert!(panel.contains("DCED"));
        assert!(panel.contains("CASTED"));
        assert!(panel.contains("1.70x"), "{panel}");
        assert!(panel.contains("1.25x"), "{panel}");
    }

    #[test]
    fn scaling_panel_normalizes_to_issue_one() {
        let t = fake_table();
        let panel = scaling_panel(&t, "fake", &[1, 2], 1);
        // cycles halve from issue 1 to 2 => 2.00x scaling everywhere.
        assert!(panel.contains("i1:1.00x"));
        assert!(panel.contains("i2:2.00x"));
    }

    #[test]
    fn coverage_panel_and_csv_agree_on_counts() {
        use crate::experiments::CoveragePoint;
        let mut tally = casted_faults::Tally::default();
        for _ in 0..7 {
            tally.record(Outcome::Detected);
        }
        for _ in 0..3 {
            tally.record(Outcome::Benign);
        }
        let pts = vec![CoveragePoint {
            benchmark: "fake".into(),
            scheme: Scheme::Casted,
            issue: 2,
            delay: 2,
            clusters: 2,
            tally,
        }];
        let panel = coverage_panel(&pts);
        assert!(panel.contains("70.0%"), "{panel}");
        assert!(panel.contains("30.0%"), "{panel}");
        let csv = coverage_csv(&pts);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("fake,CASTED,2,2,2,"), "{row}");
        assert!(row.ends_with(",3,7,0,0,0,0"), "{row}");
    }

    #[test]
    fn perf_csv_row_matches_point() {
        let t = fake_table();
        let csv = perf_csv(&t);
        // NOED issue 1 row: slowdown exactly 1.0.
        let row = csv
            .lines()
            .find(|l| l.starts_with("fake,NOED,1,"))
            .unwrap();
        assert!(row.contains(",1.0000,"), "{row}");
        assert!(row.ends_with(",10,5"), "{row}");
    }
}
