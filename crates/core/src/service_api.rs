//! Pure request-level facade over the pipeline — the layer
//! `casted-serve` handlers call so the service never duplicates
//! compile → prepare → simulate wiring.
//!
//! Three entry points mirror the service's three request types:
//!
//! * [`compile_stats`] — MiniC source → scheduled-program statistics
//!   (no simulation),
//! * [`simulate_stats`] — source → fault-free cycle-accurate run, with
//!   the per-request **deadline enforced through the simulator's cycle
//!   limit** (`SimOptions::max_cycles`) rather than wall-clock timers,
//! * [`inject_tally`] — source → Monte-Carlo fault campaign on either
//!   engine (PR 4's checkpointed engine by default).
//!
//! Everything is a total function from request to
//! `Result<Reply, String>`: bad source, bad machine parameters, or a
//! run that blows its deadline come back as `Err`, never as a panic —
//! a service worker must survive arbitrary client input. Replies carry
//! **integers only** (floats are scaled to permille), so their wire
//! encoding is byte-stable and a cached reply is provably identical to
//! a recomputed one — the property `casted-serve`'s content-addressed
//! cache rests on (see `docs/SERVING.md`).

use casted_faults::{
    run_campaign_engine, run_campaign_incremental, CampaignConfig, Engine, Outcome, SectionStore,
};
use casted_ir::interp::{OutVal, StopReason};
use casted_ir::MachineConfig;
use casted_passes::Scheme;
use casted_sim::{simulate_quiet, SimOptions};
use casted_util::Fnv64;

/// Bounds on machine parameters a request may ask for. Issue widths
/// and delays outside the paper's explored range are rejected up
/// front rather than handed to the scheduler.
pub const MAX_ISSUE: usize = 8;
/// Maximum accepted inter-cluster delay.
pub const MAX_DELAY: u32 = 16;

/// One compile-or-run job: which program, which scheme, which machine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// MiniC source text.
    pub source: String,
    /// Code-generation scheme.
    pub scheme: Scheme,
    /// Issue width per cluster (1..=[`MAX_ISSUE`]).
    pub issue: usize,
    /// Inter-cluster delay in cycles (0..=[`MAX_DELAY`]).
    pub delay: u32,
}

impl JobSpec {
    fn validate(&self) -> Result<(), String> {
        if self.issue == 0 || self.issue > MAX_ISSUE {
            return Err(format!("issue width {} outside 1..={MAX_ISSUE}", self.issue));
        }
        if self.delay > MAX_DELAY {
            return Err(format!("inter-cluster delay {} outside 0..={MAX_DELAY}", self.delay));
        }
        Ok(())
    }
}

/// Scheduled-program statistics for a *compile* request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompileReply {
    /// Static VLIW bundles in the schedule.
    pub bundles: u64,
    /// Empty issue slots across all bundles.
    pub nop_slots: u64,
    /// DFG edges whose producer and consumer sit on different clusters.
    pub cross_cluster_edges: u64,
    /// Registers spilled to fit the architectural files.
    pub spilled: u64,
    /// Static code growth vs the unprotected program, in permille
    /// (1000 = no growth). Integer so the reply encodes byte-stably.
    pub code_growth_permille: u64,
    /// Instructions placed per cluster.
    pub occupancy: Vec<u64>,
}

/// Fault-free simulation summary for a *simulate* request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimulateReply {
    /// Machine cycles.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub dyn_insns: u64,
    /// Bundles issued.
    pub bundles: u64,
    /// Cycles stalled on operands (cache misses, cross-cluster reads).
    pub stall_cycles: u64,
    /// Register reads that crossed clusters.
    pub cross_reads: u64,
    /// Exit code of the program's `halt`.
    pub exit_code: i64,
    /// Number of `out`/`fout` values emitted.
    pub stream_len: u64,
    /// FNV-1a digest of the output stream (tag + bits per value).
    pub stream_digest: u64,
}

/// Fault-campaign summary for an *inject* request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectReply {
    /// Trials run.
    pub trials: u64,
    /// Outcome counts in [`Outcome::ALL`] order.
    pub counts: [u64; 6],
    /// Fault-free cycle count of the target.
    pub golden_cycles: u64,
    /// Fault-free dynamic instruction count.
    pub golden_dyn: u64,
}

/// Digest an output stream: one tag byte + the value bits per entry,
/// so `Int(1)` and `Float(5e-324)` can never collide.
pub fn stream_digest(stream: &[OutVal]) -> u64 {
    let mut h = Fnv64::new();
    for v in stream {
        match v {
            OutVal::Int(i) => {
                h.write_u8(1);
                h.write_u64(*i as u64);
            }
            OutVal::Float(f) => {
                h.write_u8(2);
                h.write_u64(f.to_bits());
            }
        }
    }
    h.finish()
}

/// Compile and schedule `spec`, collecting the diagnostics of every
/// stage into one error string. With a pipeline, the work runs through
/// the memoized stage graph (`docs/PIPELINE.md`) — exactness makes the
/// two paths indistinguishable, so replies stay byte-stable either way.
fn prepare_via(
    spec: &JobSpec,
    pipeline: Option<&crate::stages::ArtifactPipeline>,
) -> Result<casted_passes::Prepared, String> {
    spec.validate()?;
    let config = MachineConfig::itanium2_like(spec.issue, spec.delay);
    if let Some(p) = pipeline {
        return p
            .prepare("request", &spec.source, spec.scheme, &config)
            .map(|(prep, _stats)| prep)
            .map_err(|e| match e {
                crate::stages::StagedError::Frontend(diags) => {
                    let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
                    format!("compile failed: {}", msgs.join("; "))
                }
                crate::stages::StagedError::Backend(msg) => format!("prepare failed: {msg}"),
            });
    }
    let module = casted_frontend::compile("request", &spec.source).map_err(|diags| {
        let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        format!("compile failed: {}", msgs.join("; "))
    })?;
    casted_passes::prepare(&module, spec.scheme, &config)
        .map_err(|e| format!("prepare failed: {e}"))
}

/// *Compile* request: frontend + full back end, no simulation.
pub fn compile_stats(spec: &JobSpec) -> Result<CompileReply, String> {
    compile_stats_with(spec, None)
}

/// [`compile_stats`], optionally through the staged artifact pipeline.
pub fn compile_stats_with(
    spec: &JobSpec,
    pipeline: Option<&crate::stages::ArtifactPipeline>,
) -> Result<CompileReply, String> {
    let prep = prepare_via(spec, pipeline)?;
    let growth = prep.ed_stats.as_ref().map(|s| s.growth()).unwrap_or(1.0);
    Ok(CompileReply {
        bundles: prep.sp.bundle_count() as u64,
        nop_slots: prep.sp.nop_slots() as u64,
        cross_cluster_edges: prep.sp.cross_cluster_edges() as u64,
        spilled: prep.spilled as u64,
        code_growth_permille: (growth * 1000.0).round() as u64,
        occupancy: prep.sp.cluster_occupancy().iter().map(|&n| n as u64).collect(),
    })
}

/// *Simulate* request: fault-free cycle-accurate run under a cycle
/// deadline. A run that has not halted within `max_cycles` returns
/// `Err` — the deadline is the simulator's own step limit, so an
/// adversarial infinite loop costs a bounded amount of work.
///
/// Runs **quiet** ([`simulate_quiet`]): a serving hot path would drown
/// the per-run `sim.*` counters, and keeping them out preserves the
/// deterministic counter-snapshot contract (`docs/OBSERVABILITY.md`).
pub fn simulate_stats(spec: &JobSpec, max_cycles: u64) -> Result<SimulateReply, String> {
    simulate_stats_with(spec, max_cycles, None)
}

/// [`simulate_stats`], optionally through the staged artifact pipeline:
/// the compile half is memoized, the simulation always runs fresh.
pub fn simulate_stats_with(
    spec: &JobSpec,
    max_cycles: u64,
    pipeline: Option<&crate::stages::ArtifactPipeline>,
) -> Result<SimulateReply, String> {
    let prep = prepare_via(spec, pipeline)?;
    let r = simulate_quiet(
        &prep.sp,
        &SimOptions {
            max_cycles,
            injection: None,
            ..SimOptions::default()
        },
    );
    match r.stop {
        StopReason::Halt(code) => Ok(SimulateReply {
            cycles: r.stats.cycles,
            dyn_insns: r.stats.dyn_insns,
            bundles: r.stats.bundles,
            stall_cycles: r.stats.stall_cycles,
            cross_reads: r.stats.cross_reads,
            exit_code: code,
            stream_len: r.stream.len() as u64,
            stream_digest: stream_digest(&r.stream),
        }),
        StopReason::Timeout => Err(format!(
            "deadline exceeded: program did not halt within {max_cycles} cycles"
        )),
        StopReason::Detected => Err("fault-free run took a br.detect exit".into()),
        StopReason::Exception(e) => Err(format!("fault-free run raised an exception: {e:?}")),
    }
}

/// *Inject* request: Monte-Carlo fault campaign with an explicit
/// engine, trial count and seed.
///
/// The campaign engines `assert!` the golden run halts, so the target
/// is pre-screened here under the same cycle deadline as
/// [`simulate_stats`] — a non-terminating or trapping program is an
/// `Err` reply, not a worker panic.
pub fn inject_tally(
    spec: &JobSpec,
    trials: u64,
    seed: u64,
    engine: Engine,
    max_cycles: u64,
) -> Result<InjectReply, String> {
    inject_tally_with(spec, trials, seed, engine, max_cycles, None)
}

/// [`inject_tally`], optionally through the staged artifact pipeline.
pub fn inject_tally_with(
    spec: &JobSpec,
    trials: u64,
    seed: u64,
    engine: Engine,
    max_cycles: u64,
    pipeline: Option<&crate::stages::ArtifactPipeline>,
) -> Result<InjectReply, String> {
    let prep = prepare_via(spec, pipeline)?;
    let screen = simulate_quiet(
        &prep.sp,
        &SimOptions {
            max_cycles,
            injection: None,
            ..SimOptions::default()
        },
    );
    if !matches!(screen.stop, StopReason::Halt(_)) {
        return Err(format!(
            "campaign target must halt fault-free within {max_cycles} cycles, got {:?}",
            screen.stop
        ));
    }
    let cfg = CampaignConfig {
        trials: trials as usize,
        seed,
        replay_detect: spec.scheme.replay_detect(),
        ..Default::default()
    };
    let r = run_campaign_engine(&prep.sp, &cfg, engine);
    Ok(reply_of(&r))
}

/// [`inject_tally`] in streaming form: the campaign runs in chunks of
/// `every` trials, reporting the running `(done, counts)` tally to
/// `progress` at each chunk boundary short of the total; returning
/// `false` cancels the campaign. The result's `completed` flag says
/// whether every trial ran.
///
/// Exactness (from [`casted_faults::run_campaign_streaming`]): a
/// completed streaming reply equals [`inject_tally`] under any engine
/// field for field, and a partial tally at `done = M` equals
/// [`inject_tally`] with `trials = M` — so `casted-serve` can stream
/// long campaigns and still promise byte-identical terminal frames.
pub fn inject_stream_with(
    spec: &JobSpec,
    trials: u64,
    seed: u64,
    max_cycles: u64,
    every: u64,
    pipeline: Option<&crate::stages::ArtifactPipeline>,
    progress: &mut dyn FnMut(u64, &[u64; 6]) -> bool,
) -> Result<(InjectReply, bool), String> {
    let prep = prepare_via(spec, pipeline)?;
    let screen = simulate_quiet(
        &prep.sp,
        &SimOptions {
            max_cycles,
            injection: None,
            ..SimOptions::default()
        },
    );
    if !matches!(screen.stop, StopReason::Halt(_)) {
        return Err(format!(
            "campaign target must halt fault-free within {max_cycles} cycles, got {:?}",
            screen.stop
        ));
    }
    let cfg = CampaignConfig {
        trials: trials as usize,
        seed,
        replay_detect: spec.scheme.replay_detect(),
        ..Default::default()
    };
    let (r, completed) = casted_faults::run_campaign_streaming(
        &prep.sp,
        &cfg,
        every.max(1) as usize,
        &mut |done, tally| {
            let mut counts = [0u64; 6];
            for o in Outcome::ALL {
                counts[o.index()] = tally.count(o) as u64;
            }
            progress(done, &counts)
        },
    );
    Ok((reply_of(&r), completed))
}

/// [`inject_tally`] through the compositional section cache: the
/// campaign keys each golden-trace section into the on-disk store at
/// `section_cache`, so a repeat request — or a request for an *edited*
/// program sharing most sections — recombines cached section evidence
/// and re-injects only what changed. The reply is byte-identical to
/// [`inject_tally`] on any engine (the recombination exactness
/// guarantee, `docs/INCREMENTAL.md`), which is what lets
/// `casted-serve` substitute this path under its exact-reply cache:
/// whole-request hits still come from the reply cache, and misses now
/// degrade to *partial* section hits instead of cold campaigns.
pub fn inject_tally_incremental(
    spec: &JobSpec,
    trials: u64,
    seed: u64,
    section_cache: &std::path::Path,
    max_cycles: u64,
) -> Result<InjectReply, String> {
    inject_tally_incremental_with(spec, trials, seed, section_cache, max_cycles, None)
}

/// [`inject_tally_incremental`], optionally through the staged artifact
/// pipeline — both caches compose: compile artifacts memoize the front
/// half, section evidence memoizes the campaign.
pub fn inject_tally_incremental_with(
    spec: &JobSpec,
    trials: u64,
    seed: u64,
    section_cache: &std::path::Path,
    max_cycles: u64,
    pipeline: Option<&crate::stages::ArtifactPipeline>,
) -> Result<InjectReply, String> {
    let prep = prepare_via(spec, pipeline)?;
    let screen = simulate_quiet(
        &prep.sp,
        &SimOptions {
            max_cycles,
            injection: None,
            ..SimOptions::default()
        },
    );
    if !matches!(screen.stop, StopReason::Halt(_)) {
        return Err(format!(
            "campaign target must halt fault-free within {max_cycles} cycles, got {:?}",
            screen.stop
        ));
    }
    let store = SectionStore::open(section_cache)
        .map_err(|e| format!("cannot open section cache {}: {e}", section_cache.display()))?;
    let cfg = CampaignConfig {
        trials: trials as usize,
        seed,
        replay_detect: spec.scheme.replay_detect(),
        ..Default::default()
    };
    let r = run_campaign_incremental(&prep.sp, &cfg, &store);
    Ok(reply_of(&r))
}

fn reply_of(r: &casted_faults::CampaignResult) -> InjectReply {
    let mut counts = [0u64; 6];
    for o in Outcome::ALL {
        counts[o.index()] = r.tally.count(o) as u64;
    }
    InjectReply {
        trials: r.tally.total() as u64,
        counts,
        golden_cycles: r.golden_cycles,
        golden_dyn: r.golden_dyn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "fn main() { var s: int = 0; for i in 0..50 { s = s + i * i; } out(s); }";

    fn spec(scheme: Scheme) -> JobSpec {
        JobSpec {
            source: SRC.into(),
            scheme,
            issue: 2,
            delay: 2,
        }
    }

    #[test]
    fn compile_stats_reports_schedule_shape() {
        let noed = compile_stats(&spec(Scheme::Noed)).unwrap();
        let casted = compile_stats(&spec(Scheme::Casted)).unwrap();
        assert!(noed.bundles > 0);
        assert_eq!(noed.code_growth_permille, 1000, "NOED never grows code");
        assert!(casted.code_growth_permille > 1000, "ED must replicate code");
        assert_eq!(noed.occupancy.len(), 2);
    }

    #[test]
    fn simulate_stats_matches_the_facade_measurement() {
        let s = spec(Scheme::Casted);
        let reply = simulate_stats(&s, u64::MAX).unwrap();
        let module = crate::compile("t", SRC).unwrap();
        let prep = crate::build(&module, Scheme::Casted, &MachineConfig::itanium2_like(2, 2)).unwrap();
        let r = crate::measure(&prep);
        assert_eq!(reply.cycles, r.stats.cycles);
        assert_eq!(reply.dyn_insns, r.stats.dyn_insns);
        assert_eq!(reply.stream_digest, stream_digest(&r.stream));
        assert_eq!(reply.exit_code, 0);
    }

    #[test]
    fn deadline_is_an_err_not_a_panic() {
        let err = simulate_stats(&spec(Scheme::Noed), 3).unwrap_err();
        assert!(err.contains("deadline exceeded"), "{err}");
    }

    #[test]
    fn bad_source_and_bad_machine_are_errs() {
        let mut s = spec(Scheme::Noed);
        s.source = "fn main( {".into();
        assert!(compile_stats(&s).unwrap_err().contains("compile failed"));
        let mut s = spec(Scheme::Noed);
        s.issue = 0;
        assert!(compile_stats(&s).unwrap_err().contains("issue width"));
        let mut s = spec(Scheme::Noed);
        s.delay = MAX_DELAY + 1;
        assert!(compile_stats(&s).unwrap_err().contains("delay"));
    }

    #[test]
    fn inject_tally_is_deterministic_and_engine_independent() {
        let s = spec(Scheme::Casted);
        let a = inject_tally(&s, 40, 7, Engine::Checkpointed, u64::MAX).unwrap();
        let b = inject_tally(&s, 40, 7, Engine::Checkpointed, u64::MAX).unwrap();
        assert_eq!(a, b);
        let r = inject_tally(&s, 40, 7, Engine::Reference, u64::MAX).unwrap();
        assert_eq!(a, r, "engines must agree field for field");
        let bt = inject_tally(&s, 40, 7, Engine::Batched, u64::MAX).unwrap();
        assert_eq!(a, bt, "batched engine must agree field for field");
        assert_eq!(a.trials, 40);
        assert_eq!(a.counts.iter().sum::<u64>(), 40);
    }

    /// Streaming replies must be indistinguishable from one-shot
    /// replies at the facade level too: same final struct, and a
    /// cancelled stream's last progress tally is a real prefix.
    #[test]
    fn inject_stream_matches_one_shot_and_cancels_exactly() {
        let s = spec(Scheme::Casted);
        let mut updates: Vec<(u64, [u64; 6])> = Vec::new();
        let (reply, completed) =
            inject_stream_with(&s, 40, 7, u64::MAX, 16, None, &mut |done, counts| {
                updates.push((done, *counts));
                true
            })
            .unwrap();
        assert!(completed);
        assert_eq!(reply, inject_tally(&s, 40, 7, Engine::Batched, u64::MAX).unwrap());
        assert_eq!(updates.iter().map(|(d, _)| *d).collect::<Vec<_>>(), vec![16, 32]);

        let (partial, completed) =
            inject_stream_with(&s, 40, 7, u64::MAX, 16, None, &mut |_, _| false).unwrap();
        assert!(!completed);
        assert_eq!(partial, inject_tally(&s, 16, 7, Engine::Batched, u64::MAX).unwrap());
    }

    /// The serve-facing exactness contract: the incremental path's
    /// reply is byte-identical to every engine's, cold and warm — a
    /// cached serve reply computed cold can be reproduced through the
    /// section cache and nobody can tell the difference.
    #[test]
    fn inject_tally_incremental_matches_engines_cold_and_warm() {
        let s = spec(Scheme::Casted);
        let dir = std::env::temp_dir().join(format!("casted-api-sect-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = inject_tally_incremental(&s, 40, 7, &dir, u64::MAX).unwrap();
        let full = inject_tally(&s, 40, 7, Engine::Batched, u64::MAX).unwrap();
        assert_eq!(cold, full, "incremental reply diverged from the engines");
        let warm = inject_tally_incremental(&s, 40, 7, &dir, u64::MAX).unwrap();
        assert_eq!(warm, cold, "warm recombination changed the reply");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inject_incremental_screens_non_halting_targets() {
        let mut s = spec(Scheme::Noed);
        s.source = "fn main() { var x: int = 1; for i in 0..1000000 { x = x + i; } out(x); }".into();
        let dir = std::env::temp_dir().join(format!("casted-api-screen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = inject_tally_incremental(&s, 10, 1, &dir, 100).unwrap_err();
        assert!(err.contains("must halt"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inject_screens_non_halting_targets() {
        let mut s = spec(Scheme::Noed);
        s.source = "fn main() { var x: int = 1; for i in 0..1000000 { x = x + i; } out(x); }".into();
        let err = inject_tally(&s, 10, 1, Engine::Checkpointed, 100).unwrap_err();
        assert!(err.contains("must halt"), "{err}");
    }

    #[test]
    fn stream_digest_separates_types_and_orders() {
        let a = stream_digest(&[OutVal::Int(1), OutVal::Int(2)]);
        let b = stream_digest(&[OutVal::Int(2), OutVal::Int(1)]);
        let c = stream_digest(&[OutVal::Float(f64::from_bits(1)), OutVal::Int(2)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, stream_digest(&[OutVal::Int(1), OutVal::Int(2)]));
    }
}
