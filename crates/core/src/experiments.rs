//! Experiment drivers reproducing the paper's evaluation (§IV).
//!
//! * [`perf_sweep`] — the measurement grid behind Figs. 6, 7 and 8:
//!   every (benchmark × scheme × issue-width × inter-cluster delay)
//!   cell, with cycle counts from the cycle-accurate simulator and
//!   slowdowns normalized to NOED at the same issue width.
//! * [`coverage_sweep`] — the Monte-Carlo fault-injection grids behind
//!   Figs. 9 and 10.
//! * [`summarize`] / [`casted_vs_best_fixed`] — the headline numbers of
//!   §IV-B (scheme slowdown ranges/averages, CASTED's win over the
//!   best non-adaptive scheme).
//!
//! Sweeps run cells on a small scoped thread pool
//! ([`casted_util::pool`]) sized to the host's parallelism. Cell
//! results are collected in input order, so a sweep's output is
//! deterministic regardless of worker scheduling.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use casted_faults::{CampaignConfig, Engine, Tally};
use casted_ir::MachineConfig;
use casted_passes::Scheme;
use casted_util::pool::{pool_threads, run_pool};
use casted_workloads::Workload;

/// Per-sweep pool accounting: per-cell wall-time lands in the
/// `<sweep>.cell_ns` histogram, and the busy-time sum over all cells,
/// divided by `workers × sweep wall-time`, gives the pool-utilization
/// gauge (in permille — 1000 means every worker was busy for the
/// whole sweep). All of it is timing data: full export only, never in
/// the counter-only snapshot.
struct SweepMeter {
    cell_hist: &'static str,
    busy_ns: AtomicU64,
    started: Instant,
}

impl SweepMeter {
    fn start(cell_hist: &'static str) -> Self {
        SweepMeter {
            cell_hist,
            busy_ns: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Wrap one cell task: time it, record the histogram sample, and
    /// accumulate busy time.
    fn observe_cell<T>(&self, task: impl FnOnce() -> T) -> T {
        if !casted_obs::enabled() {
            return task();
        }
        let t0 = Instant::now();
        let out = task();
        let ns = t0.elapsed().as_nanos() as u64;
        casted_obs::observe_ns(self.cell_hist, ns);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        out
    }

    /// Record the sweep-level gauges once all cells are done.
    fn finish(&self, tasks: usize, wall_hist: &'static str, util_gauge: &'static str) {
        if !casted_obs::enabled() {
            return;
        }
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        casted_obs::observe_ns(wall_hist, wall_ns);
        let workers = pool_threads().min(tasks.max(1)) as u64;
        casted_obs::gauge_set("core.pool.workers", workers);
        if wall_ns > 0 {
            let busy = self.busy_ns.load(Ordering::Relaxed);
            casted_obs::gauge_set(
                util_gauge,
                busy.saturating_mul(1000) / (workers * wall_ns),
            );
        }
    }
}

/// The sweep grid. The paper's full grid is issue widths 1–4 ×
/// delays 1–4 × all four schemes.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Issue widths per cluster.
    pub issues: Vec<usize>,
    /// Inter-cluster delays in cycles.
    pub delays: Vec<u32>,
    /// Schemes to run.
    pub schemes: Vec<Scheme>,
    /// Cluster counts for the *coverage* grid (the perf figures fix
    /// the paper's 2-cluster machine). The quick grid includes a
    /// 4-cluster entry so every scheme is exercised beyond the
    /// 2-cluster machine the paper evaluates.
    pub clusters: Vec<usize>,
}

impl GridSpec {
    /// The paper's full grid (Figs. 6/7): issue 1–4, delay 1–4, all
    /// four schemes.
    pub fn paper_full() -> Self {
        GridSpec {
            issues: vec![1, 2, 3, 4],
            delays: vec![1, 2, 3, 4],
            schemes: Scheme::ALL.to_vec(),
            clusters: vec![2],
        }
    }

    /// A reduced grid for quick runs and tests.
    pub fn quick() -> Self {
        GridSpec {
            issues: vec![1, 2],
            delays: vec![1, 3],
            schemes: Scheme::ALL.to_vec(),
            clusters: vec![2, 4],
        }
    }
}

/// One measured cell of the performance grid.
#[derive(Clone, Debug)]
pub struct PerfPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme.
    pub scheme: Scheme,
    /// Issue width per cluster.
    pub issue: usize,
    /// Inter-cluster delay (meaningful for DCED/CASTED; NOED and SCED
    /// use one cluster and are delay-insensitive).
    pub delay: u32,
    /// Fault-free cycle count.
    pub cycles: u64,
    /// Dynamic instructions.
    pub dyn_insns: u64,
    /// Registers spilled by the pipeline.
    pub spilled: usize,
    /// Static code growth from error detection (1.0 for NOED).
    pub code_growth: f64,
    /// Instructions placed on each cluster.
    pub occupancy: Vec<usize>,
}

/// The full measured grid with lookup helpers.
///
/// `points` stays in input order (sweeps collect cells
/// deterministically), while `get` is O(1) via a hash index keyed by
/// `(benchmark, scheme, issue, delay)` — `summarize` and
/// [`casted_vs_best_fixed`] call it once per cell, so a linear scan
/// made them O(n²) over the paper's full grid.
#[derive(Clone, Debug, Default)]
pub struct PerfTable {
    /// All measured points, in insertion order.
    pub points: Vec<PerfPoint>,
    /// Cell key → index into `points`. Maintained by [`add_point`];
    /// lookups fall back to a linear scan whenever the index is out
    /// of sync with `points` (e.g. a caller pushed directly).
    ///
    /// [`add_point`]: PerfTable::add_point
    index: HashMap<(String, Scheme, usize, u32), usize>,
    /// `(benchmark, issue)` → first NOED point, for the baseline
    /// lookup every `slowdown` call performs.
    noed: HashMap<(String, usize), usize>,
}

impl PerfTable {
    /// Append a point, keeping the lookup indexes in sync. First write
    /// wins for duplicate keys, matching the old `find` semantics.
    pub fn add_point(&mut self, p: PerfPoint) {
        self.index
            .entry((p.benchmark.clone(), p.scheme, p.issue, p.delay))
            .or_insert(self.points.len());
        if p.scheme == Scheme::Noed {
            self.noed
                .entry((p.benchmark.clone(), p.issue))
                .or_insert(self.points.len());
        }
        self.points.push(p);
    }

    /// Find a cell. O(1) when every point was added via
    /// [`PerfTable::add_point`]; degrades to a linear scan otherwise.
    pub fn get(&self, benchmark: &str, scheme: Scheme, issue: usize, delay: u32) -> Option<&PerfPoint> {
        if self.index.len() == self.points.len() {
            return self
                .index
                .get(&(benchmark.to_string(), scheme, issue, delay))
                .map(|&i| &self.points[i]);
        }
        self.points.iter().find(|p| {
            p.benchmark == benchmark && p.scheme == scheme && p.issue == issue && p.delay == delay
        })
    }

    /// NOED baseline cycles for a benchmark at an issue width (NOED is
    /// delay-independent; any measured delay cell is the baseline).
    pub fn noed_cycles(&self, benchmark: &str, issue: usize) -> Option<u64> {
        if self.index.len() == self.points.len() {
            return self
                .noed
                .get(&(benchmark.to_string(), issue))
                .map(|&i| self.points[i].cycles);
        }
        self.points
            .iter()
            .find(|p| p.benchmark == benchmark && p.scheme == Scheme::Noed && p.issue == issue)
            .map(|p| p.cycles)
    }

    /// Slowdown of a cell relative to NOED at the same issue width —
    /// the y-axis of Figs. 6 and 7.
    pub fn slowdown(&self, benchmark: &str, scheme: Scheme, issue: usize, delay: u32) -> Option<f64> {
        let p = self.get(benchmark, scheme, issue, delay)?;
        let base = self.noed_cycles(benchmark, issue)?;
        Some(p.cycles as f64 / base as f64)
    }

    /// Speedup of a scheme as the issue width grows, normalized to the
    /// same scheme at issue 1 (Fig. 8's ILP-scaling curves).
    pub fn scaling(&self, benchmark: &str, scheme: Scheme, delay: u32, issue: usize) -> Option<f64> {
        let base = self.get(benchmark, scheme, 1, delay)?.cycles;
        let p = self.get(benchmark, scheme, issue, delay)?.cycles;
        Some(base as f64 / p as f64)
    }

    /// Benchmarks present, in first-seen order.
    pub fn benchmarks(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.points {
            if !out.contains(&p.benchmark) {
                out.push(p.benchmark.clone());
            }
        }
        out
    }
}

/// Measure the full performance grid for `benchmarks` over `spec`.
///
/// NOED and SCED are delay-insensitive (one cluster); their cells are
/// measured once per issue width and replicated across delays so the
/// table is dense.
pub fn perf_sweep(benchmarks: &[Workload], spec: &GridSpec) -> PerfTable {
    perf_sweep_with_cache(benchmarks, spec, None)
}

/// [`perf_sweep`] with an optional staged artifact cache: the grid
/// re-prepares each module under every (scheme, issue, delay) cell,
/// which is exactly the access pattern the memoized stage pipeline
/// collapses — the machine-independent ED transform runs once per
/// (module, protection) instead of once per cell, and a re-run of the
/// whole sweep restarts at the schedule stage at most
/// (see `docs/PIPELINE.md`). Results are byte-identical either way.
pub fn perf_sweep_with_cache(
    benchmarks: &[Workload],
    spec: &GridSpec,
    artifact_cache: Option<&std::path::Path>,
) -> PerfTable {
    let store = artifact_cache.map(|dir| {
        casted_util::store::ArtifactStore::open(dir)
            .unwrap_or_else(|e| panic!("cannot open artifact cache {}: {e}", dir.display()))
    });
    // Compile every benchmark once (and, when staged, digest it once).
    let modules: Vec<(String, casted_ir::Module, u64)> = benchmarks
        .iter()
        .map(|w| {
            let m = w
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e:?}", w.name));
            let digest = if store.is_some() {
                casted_passes::stages::module_content_key(&m)
            } else {
                0
            };
            (w.name.to_string(), m, digest)
        })
        .collect();

    // Enumerate unique measurement cells.
    struct Cell<'a> {
        name: &'a str,
        module: &'a casted_ir::Module,
        digest: u64,
        scheme: Scheme,
        issue: usize,
        delay: u32,
        replicate_delays: Vec<u32>,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for (name, module, digest) in &modules {
        for &scheme in &spec.schemes {
            // Delay-sensitive iff the scheme's placement policy uses
            // more than one cluster (registry-driven: DCED/CASTED/
            // TMRED spread streams, NOED/SCED/RBED stay on MAIN).
            let delay_sensitive =
                !matches!(scheme.placement(), casted_passes::Placement::AllOn(_));
            for &issue in &spec.issues {
                if delay_sensitive {
                    for &delay in &spec.delays {
                        cells.push(Cell {
                            name,
                            module,
                            digest: *digest,
                            scheme,
                            issue,
                            delay,
                            replicate_delays: vec![delay],
                        });
                    }
                } else {
                    cells.push(Cell {
                        name,
                        module,
                        digest: *digest,
                        scheme,
                        issue,
                        delay: spec.delays[0],
                        replicate_delays: spec.delays.clone(),
                    });
                }
            }
        }
    }

    let meter = SweepMeter::start("core.perf_sweep.cell_ns");
    let tasks: Vec<_> = cells
        .into_iter()
        .map(|cell| {
            let meter = &meter;
            let store = store.as_ref();
            move || meter.observe_cell(|| {
                let config = MachineConfig::itanium2_like(cell.issue, cell.delay);
                let prep = match store {
                    Some(st) => {
                        let mut stats = casted_passes::stages::StageStats::default();
                        casted_passes::stages::prepare_staged(
                            st,
                            cell.digest,
                            cell.module,
                            cell.scheme,
                            &config,
                            &casted_passes::pipeline::PrepareOptions::default(),
                            &mut stats,
                        )
                    }
                    None => casted_passes::prepare(cell.module, cell.scheme, &config),
                }
                    .unwrap_or_else(|e| {
                        panic!("{} {} i{} d{}: {e}", cell.name, cell.scheme, cell.issue, cell.delay)
                    });
                let r = casted_sim::simulate(&prep.sp, &casted_sim::SimOptions::default());
                assert!(
                    matches!(r.stop, casted_ir::interp::StopReason::Halt(_)),
                    "{} {} did not halt: {:?}",
                    cell.name,
                    cell.scheme,
                    r.stop
                );
                let occ = prep.sp.cluster_occupancy();
                cell.replicate_delays
                    .iter()
                    .map(|&d| PerfPoint {
                        benchmark: cell.name.to_string(),
                        scheme: cell.scheme,
                        issue: cell.issue,
                        delay: d,
                        cycles: r.stats.cycles,
                        dyn_insns: r.stats.dyn_insns,
                        spilled: prep.spilled,
                        code_growth: prep.ed_stats.map(|s| s.growth()).unwrap_or(1.0),
                        occupancy: occ.clone(),
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let n_tasks = tasks.len();
    let mut table = PerfTable::default();
    for group in run_pool(tasks) {
        for p in group {
            table.add_point(p);
        }
    }
    casted_obs::add("core.perf_sweep.cells", n_tasks as u64);
    meter.finish(
        n_tasks,
        "core.perf_sweep.wall_ns",
        "core.perf_sweep.pool_utilization_permille",
    );
    table
}

/// One cell of a coverage grid.
#[derive(Clone, Debug)]
pub struct CoveragePoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme.
    pub scheme: Scheme,
    /// Issue width.
    pub issue: usize,
    /// Inter-cluster delay.
    pub delay: u32,
    /// Cluster count of the machine the campaign ran on.
    pub clusters: usize,
    /// Outcome tallies.
    pub tally: Tally,
}

/// Run fault-injection campaigns over a grid (Figs. 9 and 10) with
/// the default (checkpointed) engine.
pub fn coverage_sweep(
    benchmarks: &[Workload],
    spec: &GridSpec,
    campaign: &CampaignConfig,
) -> Vec<CoveragePoint> {
    coverage_sweep_with(benchmarks, spec, campaign, Engine::default())
}

/// [`coverage_sweep`] with an explicit campaign engine. Both engines
/// produce byte-identical tallies (the difftest oracles enforce it);
/// the knob exists for the CI cross-check and for benchmarking the
/// reference path.
pub fn coverage_sweep_with(
    benchmarks: &[Workload],
    spec: &GridSpec,
    campaign: &CampaignConfig,
    engine: Engine,
) -> Vec<CoveragePoint> {
    let modules: Vec<(String, casted_ir::Module)> = benchmarks
        .iter()
        .map(|w| (w.name.to_string(), w.compile().expect("compile failed")))
        .collect();

    let meter = SweepMeter::start("core.coverage_sweep.cell_ns");
    let mut tasks = Vec::new();
    for (name, module) in &modules {
        for &scheme in &spec.schemes {
            for &issue in &spec.issues {
                for &delay in &spec.delays {
                    for &clusters in &spec.clusters {
                        // Per-cell override: RBED cells must run the
                        // replay-digest detector regardless of what the
                        // grid-wide config says.
                        let campaign = CampaignConfig {
                            replay_detect: scheme.replay_detect(),
                            ..campaign.clone()
                        };
                        let meter = &meter;
                        tasks.push(move || meter.observe_cell(|| {
                            let mut config = MachineConfig::itanium2_like(issue, delay);
                            config.clusters = clusters;
                            let prep = casted_passes::prepare(module, scheme, &config)
                                .expect("prepare failed");
                            let r = casted_faults::run_campaign_engine(&prep.sp, &campaign, engine);
                            CoveragePoint {
                                benchmark: name.clone(),
                                scheme,
                                issue,
                                delay,
                                clusters,
                                tally: r.tally,
                            }
                        }));
                    }
                }
            }
        }
    }
    let n_tasks = tasks.len();
    let points = run_pool(tasks);
    casted_obs::add("core.coverage_sweep.cells", n_tasks as u64);
    meter.finish(
        n_tasks,
        "core.coverage_sweep.wall_ns",
        "core.coverage_sweep.pool_utilization_permille",
    );
    points
}

/// [`coverage_sweep`] through the compositional section cache
/// ([`casted_faults::run_campaign_incremental`]): every cell keys its
/// sections into the shared on-disk store at `store_dir`, so a rerun
/// of an unchanged grid recombines from cache and an edited benchmark
/// re-injects only the sections it touched. Tallies are byte-identical
/// to [`coverage_sweep_with`] on any engine — the fig9 incremental
/// smoke in `scripts/ci.sh` byte-compares the CSVs.
pub fn coverage_sweep_incremental(
    benchmarks: &[Workload],
    spec: &GridSpec,
    campaign: &CampaignConfig,
    store_dir: &std::path::Path,
) -> Vec<CoveragePoint> {
    let store = casted_faults::SectionStore::open(store_dir)
        .unwrap_or_else(|e| panic!("cannot open section cache {}: {e}", store_dir.display()));
    let modules: Vec<(String, casted_ir::Module)> = benchmarks
        .iter()
        .map(|w| (w.name.to_string(), w.compile().expect("compile failed")))
        .collect();

    let meter = SweepMeter::start("core.coverage_sweep.cell_ns");
    let mut tasks = Vec::new();
    for (name, module) in &modules {
        for &scheme in &spec.schemes {
            for &issue in &spec.issues {
                for &delay in &spec.delays {
                    for &clusters in &spec.clusters {
                        let campaign = CampaignConfig {
                            replay_detect: scheme.replay_detect(),
                            ..campaign.clone()
                        };
                        let meter = &meter;
                        let store = &store;
                        tasks.push(move || meter.observe_cell(|| {
                            let mut config = MachineConfig::itanium2_like(issue, delay);
                            config.clusters = clusters;
                            let prep = casted_passes::prepare(module, scheme, &config)
                                .expect("prepare failed");
                            let r = casted_faults::run_campaign_incremental(&prep.sp, &campaign, store);
                            CoveragePoint {
                                benchmark: name.clone(),
                                scheme,
                                issue,
                                delay,
                                clusters,
                                tally: r.tally,
                            }
                        }));
                    }
                }
            }
        }
    }
    let n_tasks = tasks.len();
    let points = run_pool(tasks);
    casted_obs::add("core.coverage_sweep.cells", n_tasks as u64);
    meter.finish(
        n_tasks,
        "core.coverage_sweep.wall_ns",
        "core.coverage_sweep.pool_utilization_permille",
    );
    points
}

/// Headline slowdown statistics for one scheme (§IV-B quotes SCED
/// 1.34–2.22 avg 1.7; DCED 1.31–3.32 avg 2.1; CASTED 1.19–2.1 avg
/// 1.58 on the authors' setup).
#[derive(Clone, Debug)]
pub struct SchemeSummary {
    /// Scheme.
    pub scheme: Scheme,
    /// Minimum slowdown across all cells.
    pub min: f64,
    /// Average slowdown.
    pub avg: f64,
    /// Maximum slowdown.
    pub max: f64,
}

/// Compute min/avg/max slowdown (vs NOED at equal issue width) per
/// ED scheme over the whole grid.
pub fn summarize(table: &PerfTable) -> Vec<SchemeSummary> {
    let mut out = Vec::new();
    for scheme in [Scheme::Sced, Scheme::Dced, Scheme::Casted] {
        let mut vals = Vec::new();
        for p in table.points.iter().filter(|p| p.scheme == scheme) {
            if let Some(s) = table.slowdown(&p.benchmark, scheme, p.issue, p.delay) {
                vals.push(s);
            }
        }
        if vals.is_empty() {
            continue;
        }
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        out.push(SchemeSummary {
            scheme,
            min,
            avg,
            max,
        });
    }
    out
}

/// CASTED's gain over the best fixed scheme per cell:
/// `best(SCED, DCED) / CASTED - 1`, in percent. Returns
/// `(best_gain_pct, worst_gap_pct, per-cell rows)`; positive numbers
/// mean CASTED is faster than the best non-adaptive scheme.
pub fn casted_vs_best_fixed(table: &PerfTable) -> (f64, f64, Vec<(String, usize, u32, f64)>) {
    let mut rows = Vec::new();
    let mut best_gain = f64::NEG_INFINITY;
    let mut worst_gap = f64::INFINITY;
    for p in table.points.iter().filter(|p| p.scheme == Scheme::Casted) {
        let (b, i, d) = (&p.benchmark, p.issue, p.delay);
        let (Some(sced), Some(dced)) = (
            table.get(b, Scheme::Sced, i, d).map(|x| x.cycles),
            table.get(b, Scheme::Dced, i, d).map(|x| x.cycles),
        ) else {
            continue;
        };
        let best_fixed = sced.min(dced) as f64;
        let gain = (best_fixed / p.cycles as f64 - 1.0) * 100.0;
        best_gain = best_gain.max(gain);
        worst_gap = worst_gap.min(gain);
        rows.push((b.clone(), i, d, gain));
    }
    (best_gain, worst_gap, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        Workload {
            name: "tiny",
            suite: casted_workloads::Suite::MediaBench2,
            source: format!(
                "{}\nfn main() {{ var s: int = 0; for i in 0..40 {{ s = s + clip(i * 3, 0, 64); }} out(s); }}",
                casted_workloads::PRELUDE
            ),
        }
    }

    #[test]
    fn perf_sweep_produces_dense_grid() {
        let spec = GridSpec::quick();
        let table = perf_sweep(&[tiny_workload()], &spec);
        // 4 schemes x 2 issues x 2 delays = 16 dense cells.
        assert_eq!(table.points.len(), 16);
        for &scheme in &spec.schemes {
            for &i in &spec.issues {
                for &d in &spec.delays {
                    assert!(table.get("tiny", scheme, i, d).is_some());
                }
            }
        }
    }

    #[test]
    fn slowdowns_are_at_least_one_for_ed_schemes() {
        let table = perf_sweep(&[tiny_workload()], &GridSpec::quick());
        for p in &table.points {
            if p.scheme != Scheme::Noed {
                let s = table
                    .slowdown(&p.benchmark, p.scheme, p.issue, p.delay)
                    .unwrap();
                assert!(s >= 1.0, "{:?} slowdown {} < 1", p.scheme, s);
            }
        }
    }

    #[test]
    fn noed_is_delay_insensitive() {
        let table = perf_sweep(&[tiny_workload()], &GridSpec::quick());
        let a = table.get("tiny", Scheme::Noed, 1, 1).unwrap().cycles;
        let b = table.get("tiny", Scheme::Noed, 1, 3).unwrap().cycles;
        assert_eq!(a, b);
    }

    #[test]
    fn summary_covers_three_schemes() {
        let table = perf_sweep(&[tiny_workload()], &GridSpec::quick());
        let sums = summarize(&table);
        assert_eq!(sums.len(), 3);
        for s in sums {
            assert!(s.min <= s.avg && s.avg <= s.max);
            assert!(s.min >= 1.0);
        }
    }

    #[test]
    fn casted_within_tolerance_of_best_fixed() {
        let table = perf_sweep(&[tiny_workload()], &GridSpec::quick());
        let (_best, worst, rows) = casted_vs_best_fixed(&table);
        assert_eq!(rows.len(), 4); // 2 issues x 2 delays
        // Adaptive placement should never be drastically worse than
        // the best fixed placement (paper: "at least as good ... in
        // the majority of cases").
        assert!(worst > -25.0, "CASTED loses {worst}% somewhere");
    }

    #[test]
    fn indexed_lookup_matches_linear_scan_fallback() {
        let table = perf_sweep(&[tiny_workload()], &GridSpec::quick());
        // Rebuild the same table by pushing directly to `points`,
        // bypassing the index, so `get` takes the scan fallback.
        let mut pushed = PerfTable::default();
        for p in &table.points {
            pushed.points.push(p.clone());
        }
        for p in &table.points {
            let a = table.get(&p.benchmark, p.scheme, p.issue, p.delay).unwrap();
            let b = pushed.get(&p.benchmark, p.scheme, p.issue, p.delay).unwrap();
            assert_eq!(a.cycles, b.cycles);
        }
        assert_eq!(table.noed_cycles("tiny", 1), pushed.noed_cycles("tiny", 1));
        assert!(table.noed_cycles("tiny", 1).is_some());
        assert!(table.get("tiny", Scheme::Noed, 9, 9).is_none());
        assert!(table.get("absent", Scheme::Noed, 1, 1).is_none());
    }

    /// The fallback must agree with the indexed path on a table that
    /// has **no NOED baseline at all** — the case where `noed_cycles`
    /// and `slowdown` must return `None` on both paths rather than
    /// panic or disagree (e.g. a partial sweep that measured only the
    /// protected schemes).
    #[test]
    fn fallback_agrees_on_table_with_missing_noed_baseline() {
        let point = |scheme, issue, delay, cycles| PerfPoint {
            benchmark: "tiny".into(),
            scheme,
            issue,
            delay,
            cycles,
            dyn_insns: cycles,
            spilled: 0,
            code_growth: 2.0,
            occupancy: vec![1, 1],
        };
        let pts = [
            point(Scheme::Sced, 1, 1, 300),
            point(Scheme::Dced, 1, 1, 250),
            point(Scheme::Casted, 1, 1, 220),
            point(Scheme::Casted, 2, 1, 150),
        ];
        // Indexed table (built through add_point)…
        let mut indexed = PerfTable::default();
        for p in &pts {
            indexed.add_point(p.clone());
        }
        assert_eq!(indexed.index.len(), indexed.points.len());
        // …and the same points pushed raw, forcing the scan fallback.
        let mut scanned = PerfTable::default();
        scanned.points.extend(pts.iter().cloned());
        assert_ne!(scanned.index.len(), scanned.points.len());

        for p in &pts {
            let a = indexed.get(&p.benchmark, p.scheme, p.issue, p.delay);
            let b = scanned.get(&p.benchmark, p.scheme, p.issue, p.delay);
            assert_eq!(a.map(|p| p.cycles), b.map(|p| p.cycles));
            assert_eq!(a.map(|p| p.cycles), Some(p.cycles));
        }
        // No NOED points ⇒ no baseline and no slowdown, on either path.
        for table in [&indexed, &scanned] {
            assert_eq!(table.noed_cycles("tiny", 1), None);
            assert_eq!(table.slowdown("tiny", Scheme::Casted, 1, 1), None);
            assert_eq!(table.get("tiny", Scheme::Noed, 1, 1).map(|p| p.cycles), None);
        }
        // Fig. 8-style scaling needs no NOED baseline and must still
        // work on both paths.
        assert_eq!(
            indexed.scaling("tiny", Scheme::Casted, 1, 2),
            scanned.scaling("tiny", Scheme::Casted, 1, 2)
        );
        assert_eq!(indexed.scaling("tiny", Scheme::Casted, 1, 2), Some(220.0 / 150.0));
    }

    #[test]
    fn coverage_sweep_engines_agree() {
        let spec = GridSpec {
            issues: vec![2],
            delays: vec![2],
            schemes: vec![Scheme::Casted],
            clusters: vec![2],
        };
        let campaign = CampaignConfig {
            trials: 30,
            ..Default::default()
        };
        let a = coverage_sweep_with(&[tiny_workload()], &spec, &campaign, Engine::Reference);
        for engine in [Engine::Checkpointed, Engine::Batched] {
            let b = coverage_sweep_with(&[tiny_workload()], &spec, &campaign, engine);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.tally, y.tally, "{} engines disagree", x.benchmark);
            }
        }
    }

    #[test]
    fn coverage_sweep_runs_small_campaign() {
        let spec = GridSpec {
            issues: vec![2],
            delays: vec![2],
            schemes: vec![Scheme::Noed, Scheme::Casted],
            clusters: vec![2],
        };
        let campaign = CampaignConfig {
            trials: 20,
            ..Default::default()
        };
        let pts = coverage_sweep(&[tiny_workload()], &spec, &campaign);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.tally.total(), 20);
        }
        // The protected scheme must detect at least occasionally what
        // the unprotected one cannot detect at all.
        let noed = pts.iter().find(|p| p.scheme == Scheme::Noed).unwrap();
        assert_eq!(noed.tally.count(casted_faults::Outcome::Detected), 0);
    }
}
