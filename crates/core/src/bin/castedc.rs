//! `castedc` — command-line driver for the CASTED toolchain.
//!
//! ```text
//! castedc ir <file.mc>                      dump the compiled IR
//! castedc build <file.mc> [opts]            compile + pass statistics
//! castedc run <file.mc> [opts]              simulate and print output
//! castedc schedule <file.mc> [opts]         print the VLIW schedules
//! castedc inject <file.mc> [opts]           Monte-Carlo fault campaign
//! castedc trace <file.mc> [opts]            first 200 issued instructions
//!
//! options:
//!   --scheme noed|sced|dced|casted|tmred|rbed
//!                                    (default casted; case-insensitive,
//!                                    aliases none|single|dual|adaptive|
//!                                    tmr|replay accepted)
//!   --issue N                        issue width per cluster (default 2)
//!   --delay N                        inter-cluster delay (default 2)
//!   --clusters N                     cluster count (default 2)
//!   --trials N                       injection trials (default 300)
//!   --seed N                         campaign seed
//!   --fault-model single|burst2|burst4
//!                                    bits flipped per strike (default
//!                                    single; bursts hit adjacent bits)
//!   --incremental                    inject through the section cache
//!                                    (compositional campaign; same
//!                                    tally bytes as a cold run)
//!   --section-cache DIR              on-disk section store for
//!                                    --incremental (default
//!                                    .casted-sections)
//!   --artifact-cache DIR             memoize the compile through the
//!                                    staged artifact store: a repeat
//!                                    build restarts at the first
//!                                    stage whose input changed
//!                                    (docs/PIPELINE.md)
//!   --metrics FILE                   write full metrics JSON on exit
//!   --metrics-counters FILE          write the deterministic
//!                                    counter-only snapshot on exit
//! ```

use std::process::ExitCode;

use casted::ir::MachineConfig;
use casted::Scheme;

struct Args {
    cmd: String,
    file: String,
    scheme: Scheme,
    issue: usize,
    delay: u32,
    clusters: usize,
    trials: usize,
    seed: u64,
    flip: casted_faults::FlipModel,
    incremental: bool,
    section_cache: String,
    artifact_cache: Option<String>,
    metrics: Option<String>,
    metrics_counters: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: castedc <ir|build|run|schedule|inject> <file.mc> \
         [--scheme noed|sced|dced|casted|tmred|rbed] [--issue N] [--delay N] [--clusters N] \
         [--trials N] [--seed N] [--fault-model single|burst2|burst4]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().ok_or_else(usage)?;
    let file = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        cmd,
        file,
        scheme: Scheme::Casted,
        issue: 2,
        delay: 2,
        clusters: 2,
        trials: 300,
        seed: 0xCA57ED,
        flip: casted_faults::FlipModel::Single,
        incremental: false,
        section_cache: ".casted-sections".to_string(),
        artifact_cache: None,
        metrics: None,
        metrics_counters: None,
    };
    while let Some(a) = argv.next() {
        let mut val = || argv.next().ok_or_else(usage);
        match a.as_str() {
            "--scheme" => {
                // Registry-backed: case-insensitive, accepts aliases.
                args.scheme = match Scheme::parse(&val()?) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("{e}");
                        return Err(ExitCode::from(2));
                    }
                };
            }
            "--issue" => args.issue = val()?.parse().map_err(|_| usage())?,
            "--delay" => args.delay = val()?.parse().map_err(|_| usage())?,
            "--clusters" => args.clusters = val()?.parse().map_err(|_| usage())?,
            "--trials" => args.trials = val()?.parse().map_err(|_| usage())?,
            "--seed" => args.seed = val()?.parse().map_err(|_| usage())?,
            "--fault-model" => {
                let v = val()?;
                args.flip = match casted_faults::FlipModel::parse(&v) {
                    Some(m) => m,
                    None => {
                        eprintln!(
                            "unknown fault model {v:?} (accepted: {})",
                            casted_faults::FlipModel::ACCEPTED
                        );
                        return Err(ExitCode::from(2));
                    }
                };
            }
            "--incremental" => args.incremental = true,
            "--section-cache" => args.section_cache = val()?,
            "--artifact-cache" => args.artifact_cache = Some(val()?),
            "--metrics" => args.metrics = Some(val()?),
            "--metrics-counters" => args.metrics_counters = Some(val()?),
            other => {
                eprintln!("unknown option {other:?}");
                return Err(ExitCode::from(2));
            }
        }
    }
    if args.metrics.is_some() || args.metrics_counters.is_some() {
        casted::obs::set_enabled(true);
    }
    Ok(args)
}

/// Write the requested metrics artifacts (no-op without the flags).
fn write_metrics(args: &Args) {
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, casted::obs::export_json()) {
            eprintln!("castedc: cannot write {path}: {e}");
        }
    }
    if let Some(path) = &args.metrics_counters {
        if let Err(e) = std::fs::write(path, casted::obs::snapshot_json()) {
            eprintln!("castedc: cannot write {path}: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(c) => return c,
    };
    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("castedc: cannot read {}: {e}", args.file);
            return ExitCode::from(1);
        }
    };
    let pipeline = match &args.artifact_cache {
        Some(dir) => match casted::stages::ArtifactPipeline::open(std::path::Path::new(dir)) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("castedc: cannot open artifact cache {dir}: {e}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };
    let report_diags = |diags: Vec<casted::frontend::Diag>| {
        for d in diags {
            eprintln!("{}: {d}", args.file);
        }
        ExitCode::from(1)
    };

    if args.cmd == "ir" {
        let module = match &pipeline {
            Some(p) => {
                let mut stats = casted::passes::stages::StageStats::default();
                match p.compile(&args.file, &source, &mut stats) {
                    Ok((m, _digest)) => m,
                    Err(casted::stages::StagedError::Frontend(diags)) => return report_diags(diags),
                    Err(casted::stages::StagedError::Backend(e)) => {
                        eprintln!("castedc: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            None => match casted::compile(&args.file, &source) {
                Ok(m) => m,
                Err(diags) => return report_diags(diags),
            },
        };
        print!("{module}");
        write_metrics(&args);
        return ExitCode::SUCCESS;
    }

    let mut config = MachineConfig::itanium2_like(args.issue, args.delay);
    config.clusters = args.clusters;
    let prep = match &pipeline {
        Some(p) => match p.prepare(&args.file, &source, args.scheme, &config) {
            Ok((prep, _stats)) => prep,
            Err(casted::stages::StagedError::Frontend(diags)) => return report_diags(diags),
            Err(casted::stages::StagedError::Backend(e)) => {
                eprintln!("castedc: back-end failed: {e}");
                return ExitCode::from(1);
            }
        },
        None => {
            let module = match casted::compile(&args.file, &source) {
                Ok(m) => m,
                Err(diags) => return report_diags(diags),
            };
            match casted::build(&module, args.scheme, &config) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("castedc: back-end failed: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    };

    match args.cmd.as_str() {
        "build" => {
            println!("scheme:        {}", args.scheme.name());
            println!("machine:       issue {} x delay {}", args.issue, args.delay);
            let f = prep.sp.module.entry_fn();
            println!("blocks:        {}", f.blocks.len());
            println!("instructions:  {}", f.static_size());
            if let Some(st) = prep.ed_stats {
                println!("replicated:    {}", st.replicated);
                println!("checks:        {}", st.checks);
                println!("iso copies:    {}", st.isolation_copies);
                println!("code growth:   {:.2}x", st.growth());
            }
            println!("spilled regs:  {}", prep.spilled);
            println!("occupancy:     {:?}", prep.sp.cluster_occupancy());
            let peak = &prep.phys.peak;
            println!(
                "reg peaks:     c0 gp{}/fp{}/pr{}  c1 gp{}/fp{}/pr{}",
                peak[0][0], peak[0][1], peak[0][2], peak[1][0], peak[1][1], peak[1][2]
            );
        }
        "run" => {
            let r = casted::measure(&prep);
            for v in &r.stream {
                match v {
                    casted::ir::interp::OutVal::Int(x) => println!("{x}"),
                    casted::ir::interp::OutVal::Float(x) => println!("{x}"),
                }
            }
            eprintln!("-- stop:   {:?}", r.stop);
            eprintln!("-- cycles: {}", r.stats.cycles);
            eprintln!("-- insns:  {} (ipc {:.2})", r.stats.dyn_insns, r.stats.ipc());
            eprintln!(
                "-- stalls: {} | cross-cluster reads: {} | L1 miss {:.1}%",
                r.stats.stall_cycles,
                r.stats.cross_reads,
                100.0 * r.stats.cache.l1_miss_ratio()
            );
        }
        "schedule" => {
            let f = prep.sp.module.entry_fn();
            for (bid, _) in f.iter_blocks() {
                print!("{}", prep.sp.render_block(bid));
                println!();
            }
        }
        "trace" => {
            let r = casted_sim::simulate(
                &prep.sp,
                &casted_sim::SimOptions {
                    trace_limit: 200,
                    ..casted_sim::SimOptions::default()
                },
            );
            let f = prep.sp.module.entry_fn();
            println!("cycle  blk  cl  stall  instruction");
            for e in &r.trace {
                println!(
                    "{:>5} {:>4} {:>3} {:>6}  {}",
                    e.cycle,
                    e.block.0,
                    e.cluster.index(),
                    e.stalled,
                    casted::ir::print::format_insn(f, f.insn(e.insn)),
                );
            }
            eprintln!("-- ({} of {} dynamic instructions)", r.trace.len(), r.stats.dyn_insns);
        }
        "inject" => {
            let cfg = casted_faults::CampaignConfig {
                trials: args.trials,
                seed: args.seed,
                timeout_factor: 10,
                flip: args.flip,
                replay_detect: args.scheme.replay_detect(),
            };
            let r = if args.incremental {
                let store = match casted_faults::SectionStore::open(std::path::Path::new(
                    &args.section_cache,
                )) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("castedc: cannot open section cache {}: {e}", args.section_cache);
                        return ExitCode::from(1);
                    }
                };
                casted_faults::run_campaign_incremental(&prep.sp, &cfg, &store)
            } else {
                casted_faults::run_campaign(&prep.sp, &cfg)
            };
            if args.incremental {
                let s = r.engine.sections;
                eprintln!(
                    "-- sections: {} total, {} hit, {} miss, {} trials recombined",
                    s.total, s.hit, s.miss, s.recombined
                );
            }
            println!(
                "{} trials into {} ({} @ issue {} delay {}):",
                args.trials,
                args.file,
                args.scheme.name(),
                args.issue,
                args.delay
            );
            for o in casted_faults::Outcome::ALL {
                println!(
                    "  {:<12} {:>5}  ({:5.1}%)",
                    o.name(),
                    r.tally.count(o),
                    100.0 * r.tally.fraction(o)
                );
            }
        }
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    }
    write_metrics(&args);
    ExitCode::SUCCESS
}
