//! Source-rooted half of the memoized staged compile pipeline.
//!
//! `casted_passes::stages` memoizes the back end (`ed` → `sched` →
//! `ra`) starting from a canonical IR module. This module adds the
//! three front-end stages that turn MiniC source into that module —
//!
//! ```text
//! lexparse ──▶ sema ──▶ codegen ──▶ [ed ──▶ sched ──▶ ra]
//! ```
//!
//! — and the [`ArtifactPipeline`] driver that runs the whole chain
//! against one content-addressed [`ArtifactStore`].
//!
//! Key derivation (see `docs/PIPELINE.md` for the full table) chains
//! **content digests**, not keys: each downstream key hashes the
//! FNV-1a digest of the upstream artifact's *payload bytes*. That buys
//! early cutoff — a source edit that lexes to the identical token
//! stream (whitespace, comments) leaves `sema` and everything below it
//! warm, and a config-only change ((issue-width, delay) pair) re-enters
//! at the schedule stage with zero front-end work: no `frontend.*`
//! span ever fires on a warm path, and `compile.stages.hit` counts 4
//! (lexparse, sema, codegen, ed).
//!
//! The `codegen` artifact payload *is* `casted_ir::codec::encode_module`,
//! so its digest coincides with `casted_passes::stages::module_content_key`
//! — the front-end chain plugs into the module-rooted back-end chain
//! with no translation.
//!
//! Failing programs are never cached: a lex/parse/sema error returns
//! [`StagedError::Frontend`] immediately and writes nothing, so error
//! caching can never mask a later fix.

use std::io;
use std::path::Path;

use casted_frontend::{lex, parse, sema, Diag, Token, TokenKind};
use casted_ir::{codec as ircodec, MachineConfig, Module};
use casted_passes::pipeline::{PrepareOptions, Prepared};
use casted_passes::stages::{load_metered, prepare_staged, StageStats};
use casted_passes::Scheme;
use casted_util::codec::{get_str, get_uvarint, put_str, put_uvarint};
use casted_util::hash::{fnv1a, Fnv64};
use casted_util::store::ArtifactStore;

/// Lex/parse-stage format version (token-stream payload).
pub const STAGE_FORMAT_VERSION_LEX: u64 = 1;
/// Sema-stage format version (empty success-marker payload).
pub const STAGE_FORMAT_VERSION_SEMA: u64 = 1;
/// Codegen-stage format version (canonical module payload).
pub const STAGE_FORMAT_VERSION_CG: u64 = 1;

/// Artifact kinds (on-disk file extensions) of the front-end stages.
pub const KIND_TOK: &str = "tok";
/// Sema success markers.
pub const KIND_SEMA: &str = "sema";
/// Canonical IR modules.
pub const KIND_IR: &str = "ir";

/// Token-count bound accepted by [`decode_tokens`].
const MAX_TOKENS: u64 = 1 << 24;
/// Byte bound for token texts.
const MAX_TEXT: usize = 1 << 20;

/// A staged compile failed: either the program is bad (front end) or a
/// back-end invariant broke.
#[derive(Clone, Debug)]
pub enum StagedError {
    /// Lex, parse or sema diagnostics — the program's fault.
    Frontend(Vec<Diag>),
    /// Scheduler / register-allocator failure — the pipeline's fault.
    Backend(String),
}

impl std::fmt::Display for StagedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StagedError::Frontend(diags) => {
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            StagedError::Backend(msg) => write!(f, "{msg}"),
        }
    }
}

// ------------------------- stage keys ------------------------------

/// Key of the token-stream artifact: the source text itself.
pub fn lex_stage_key(source: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"casted:stage:lexparse");
    h.write_u64(STAGE_FORMAT_VERSION_LEX);
    h.write(source.as_bytes());
    h.finish()
}

/// Key of the sema success marker: the token stream's content digest.
pub fn sema_stage_key(tokens_digest: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"casted:stage:sema");
    h.write_u64(STAGE_FORMAT_VERSION_SEMA);
    h.write_u64(tokens_digest);
    h.finish()
}

/// Key of the canonical-module artifact: the token stream's digest
/// plus the module name (the name is embedded in the encoding).
pub fn codegen_stage_key(tokens_digest: u64, name: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"casted:stage:codegen");
    h.write_u64(STAGE_FORMAT_VERSION_CG);
    h.write_u64(STAGE_FORMAT_VERSION_SEMA);
    h.write_u64(tokens_digest);
    h.write(name.as_bytes());
    h.finish()
}

// ------------------------- token codec -----------------------------

/// `TokenKind` in declaration order; the index is the wire tag.
const TOKEN_KINDS: [TokenKind; 50] = [
    TokenKind::Ident,
    TokenKind::Int,
    TokenKind::Float,
    TokenKind::KwFn,
    TokenKind::KwLib,
    TokenKind::KwGlobal,
    TokenKind::KwConst,
    TokenKind::KwVar,
    TokenKind::KwIf,
    TokenKind::KwElse,
    TokenKind::KwWhile,
    TokenKind::KwFor,
    TokenKind::KwIn,
    TokenKind::KwBreak,
    TokenKind::KwContinue,
    TokenKind::KwReturn,
    TokenKind::KwInt,
    TokenKind::KwFloat,
    TokenKind::LParen,
    TokenKind::RParen,
    TokenKind::LBrace,
    TokenKind::RBrace,
    TokenKind::LBracket,
    TokenKind::RBracket,
    TokenKind::Comma,
    TokenKind::Semi,
    TokenKind::Colon,
    TokenKind::Arrow,
    TokenKind::DotDot,
    TokenKind::Assign,
    TokenKind::Plus,
    TokenKind::Minus,
    TokenKind::Star,
    TokenKind::Slash,
    TokenKind::Percent,
    TokenKind::Amp,
    TokenKind::Pipe,
    TokenKind::Caret,
    TokenKind::Shl,
    TokenKind::Shr,
    TokenKind::AndAnd,
    TokenKind::OrOr,
    TokenKind::Not,
    TokenKind::EqEq,
    TokenKind::NotEq,
    TokenKind::Lt,
    TokenKind::Le,
    TokenKind::Gt,
    TokenKind::Ge,
    TokenKind::Eof,
];

fn kind_tag(k: TokenKind) -> u64 {
    TOKEN_KINDS
        .iter()
        .position(|&t| t == k)
        .expect("every TokenKind has a wire tag") as u64
}

/// Canonical token-stream payload of the `lexparse` stage.
pub fn encode_tokens(tokens: &[Token]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_uvarint(&mut buf, tokens.len() as u64);
    for t in tokens {
        put_uvarint(&mut buf, kind_tag(t.kind));
        put_str(&mut buf, &t.text);
        put_uvarint(&mut buf, t.int_val as u64);
        put_uvarint(&mut buf, t.float_val.to_bits());
        put_uvarint(&mut buf, t.line as u64);
    }
    buf
}

/// Strict inverse of [`encode_tokens`] (`None` on any damage).
pub fn decode_tokens(buf: &[u8]) -> Option<Vec<Token>> {
    let mut pos = 0;
    let n = get_uvarint(buf, &mut pos)?;
    if n > MAX_TOKENS {
        return None;
    }
    let mut tokens = Vec::with_capacity((n as usize).min(65536));
    for _ in 0..n {
        let kind = *TOKEN_KINDS.get(usize::try_from(get_uvarint(buf, &mut pos)?).ok()?)?;
        let text = get_str(buf, &mut pos, MAX_TEXT)?.to_string();
        let int_val = get_uvarint(buf, &mut pos)? as i64;
        let float_val = f64::from_bits(get_uvarint(buf, &mut pos)?);
        let line = u32::try_from(get_uvarint(buf, &mut pos)?).ok()?;
        tokens.push(Token {
            kind,
            text,
            int_val,
            float_val,
            line,
        });
    }
    (pos == buf.len()).then_some(tokens)
}

// ------------------------- the pipeline ----------------------------

/// The staged compile pipeline: an open [`ArtifactStore`] plus the
/// stage drivers. One instance can serve any number of programs,
/// schemes and machine configs — artifacts are shared wherever the
/// key derivation says they may be.
pub struct ArtifactPipeline {
    store: ArtifactStore,
}

impl ArtifactPipeline {
    /// Open (creating if needed) the artifact store at `dir` with no
    /// byte budget.
    pub fn open(dir: &Path) -> io::Result<ArtifactPipeline> {
        Ok(ArtifactPipeline {
            store: ArtifactStore::open(dir)?,
        })
    }

    /// Open with an LRU byte budget (see [`ArtifactStore`]).
    pub fn open_with_budget(dir: &Path, budget: u64) -> io::Result<ArtifactPipeline> {
        Ok(ArtifactPipeline {
            store: ArtifactStore::open_with_budget(dir, budget)?,
        })
    }

    /// The underlying store (for diagnostics and tests).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Run the front-end stage chain: source → canonical module.
    /// Returns the module and its content digest (the back-end chain's
    /// input key). Records per-stage hit/miss into `stats` and the
    /// `compile.stages.*` counters; on a fully warm run no `frontend.*`
    /// span or counter fires.
    pub fn compile(
        &self,
        name: &str,
        source: &str,
        stats: &mut StageStats,
    ) -> Result<(Module, u64), StagedError> {
        // --- stage: lexparse -----------------------------------------
        let lex_key = lex_stage_key(source);
        let mut tok_payload = load_metered(&self.store, KIND_TOK, lex_key);
        let tokens_cache: Option<Vec<Token>>;
        match tok_payload.as_deref().and_then(decode_tokens) {
            Some(toks) => {
                stats.note(true);
                tokens_cache = Some(toks);
            }
            None => {
                stats.note(false);
                let toks = {
                    let _s = casted_obs::span("frontend.lex_ns");
                    lex(source).map_err(StagedError::Frontend)?
                };
                casted_obs::add("frontend.tokens", toks.len() as u64);
                let payload = encode_tokens(&toks);
                let _ = self.store.save(KIND_TOK, lex_key, &payload);
                tok_payload = Some(payload);
                tokens_cache = Some(toks);
            }
        }
        let tokens_digest = fnv1a(tok_payload.as_deref().expect("tok payload present"));
        let tokens = tokens_cache.expect("tokens present");

        // A parse is needed only when sema or codegen must recompute;
        // run it at most once.
        let mut program = None;
        let parsed =
            |tokens: &[Token],
             program: &mut Option<casted_frontend::Program>|
             -> Result<(), StagedError> {
                if program.is_none() {
                    let _s = casted_obs::span("frontend.parse_ns");
                    *program = Some(parse(tokens).map_err(StagedError::Frontend)?);
                }
                Ok(())
            };

        // --- stage: sema ---------------------------------------------
        let sema_key = sema_stage_key(tokens_digest);
        match load_metered(&self.store, KIND_SEMA, sema_key) {
            Some(marker) if marker.is_empty() => stats.note(true),
            _ => {
                stats.note(false);
                parsed(&tokens, &mut program)?;
                {
                    let _s = casted_obs::span("frontend.sema_ns");
                    sema::check(program.as_ref().expect("parsed"))
                        .map_err(StagedError::Frontend)?;
                }
                let _ = self.store.save(KIND_SEMA, sema_key, &[]);
            }
        }

        // --- stage: codegen ------------------------------------------
        let cg_key = codegen_stage_key(tokens_digest, name);
        let mut ir_payload = load_metered(&self.store, KIND_IR, cg_key);
        let module = match ir_payload.as_deref().and_then(ircodec::decode_module) {
            Some(m) => {
                stats.note(true);
                m
            }
            None => {
                stats.note(false);
                parsed(&tokens, &mut program)?;
                let module = {
                    let _s = casted_obs::span("frontend.codegen_ns");
                    casted_frontend::compile_program(name, program.as_ref().expect("parsed"))
                        .map_err(StagedError::Frontend)?
                };
                {
                    let _v = casted_obs::span("frontend.verify_ns");
                    if let Err(errs) = casted_ir::verify::verify_module(&module) {
                        return Err(StagedError::Frontend(
                            errs.into_iter()
                                .map(|e| Diag::new(0, format!("internal: generated invalid IR: {e}")))
                                .collect(),
                        ));
                    }
                }
                let payload = ircodec::encode_module(&module);
                let _ = self.store.save(KIND_IR, cg_key, &payload);
                ir_payload = Some(payload);
                module
            }
        };
        let module_digest = fnv1a(ir_payload.as_deref().expect("ir payload present"));
        Ok((module, module_digest))
    }

    /// Run the full staged chain: source → [`Prepared`] back end for
    /// `scheme` on `config`, with default [`PrepareOptions`].
    pub fn prepare(
        &self,
        name: &str,
        source: &str,
        scheme: Scheme,
        config: &MachineConfig,
    ) -> Result<(Prepared, StageStats), StagedError> {
        self.prepare_with(name, source, scheme, config, &PrepareOptions::default())
    }

    /// [`ArtifactPipeline::prepare`] with explicit options.
    pub fn prepare_with(
        &self,
        name: &str,
        source: &str,
        scheme: Scheme,
        config: &MachineConfig,
        opts: &PrepareOptions,
    ) -> Result<(Prepared, StageStats), StagedError> {
        let mut stats = StageStats::default();
        let (module, digest) = self.compile(name, source, &mut stats)?;
        let prepared = prepare_staged(
            &self.store,
            digest,
            &module,
            scheme,
            config,
            opts,
            &mut stats,
        )
        .map_err(StagedError::Backend)?;
        Ok((prepared, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_passes::stages::module_content_key;

    const SRC: &str = r#"
        fn main() -> int {
            var s: int = 0;
            for i in 0..20 { s = s + i * i; }
            if s > 100 { out(s); } else { out(0 - s); }
            return 0;
        }
    "#;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "casted-core-stages-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tokens_round_trip_and_reject_damage() {
        let toks = lex(SRC).unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::Eof));
        let bytes = encode_tokens(&toks);
        let back = decode_tokens(&bytes).unwrap();
        assert_eq!(toks.len(), back.len());
        for (a, b) in toks.iter().zip(&back) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.text, b.text);
            assert_eq!(a.int_val, b.int_val);
            assert_eq!(a.float_val.to_bits(), b.float_val.to_bits());
            assert_eq!(a.line, b.line);
        }
        assert_eq!(bytes, encode_tokens(&back), "codec must be canonical");
        for cut in 0..bytes.len() {
            assert!(decode_tokens(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut garbage = bytes.clone();
        garbage.push(0);
        assert!(decode_tokens(&garbage).is_none());
    }

    #[test]
    fn float_and_negative_literals_survive_the_token_codec() {
        let toks = lex("fn main() { out(1.5 + 0.25); out(0 - 9000000000); }").unwrap();
        let back = decode_tokens(&encode_tokens(&toks)).unwrap();
        for (a, b) in toks.iter().zip(&back) {
            assert_eq!(a.int_val, b.int_val);
            assert_eq!(a.float_val.to_bits(), b.float_val.to_bits());
        }
    }

    #[test]
    fn staged_compile_equals_monolithic_compile() {
        let dir = temp_dir("compile");
        let p = ArtifactPipeline::open(&dir).unwrap();
        let legacy = casted_frontend::compile("m", SRC).unwrap();
        let mut cold = StageStats::default();
        let (m1, d1) = p.compile("m", SRC, &mut cold).unwrap();
        let mut warm = StageStats::default();
        let (m2, d2) = p.compile("m", SRC, &mut warm).unwrap();
        assert_eq!(ircodec::encode_module(&legacy), ircodec::encode_module(&m1));
        assert_eq!(ircodec::encode_module(&legacy), ircodec::encode_module(&m2));
        assert_eq!(d1, d2);
        assert_eq!(d1, module_content_key(&legacy));
        assert_eq!(cold.hit, 0);
        assert_eq!(warm.hit, 3, "lexparse + sema + codegen must all hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn whitespace_edit_keeps_downstream_stages_warm() {
        let dir = temp_dir("ws");
        let p = ArtifactPipeline::open(&dir).unwrap();
        let mut first = StageStats::default();
        p.compile("m", SRC, &mut first).unwrap();
        // Same token stream, different source text: lexparse misses,
        // the content-digest chain keeps sema and codegen warm.
        let spaced = SRC.replace("s = s + i * i;", "s   =  s +  i *   i ;");
        assert_ne!(SRC, spaced);
        let mut second = StageStats::default();
        p.compile("m", &spaced, &mut second).unwrap();
        assert_eq!(second.miss, 1, "only lexparse re-runs");
        assert_eq!(second.hit, 2, "sema + codegen stay warm");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frontend_errors_are_not_cached() {
        let dir = temp_dir("err");
        let p = ArtifactPipeline::open(&dir).unwrap();
        let bad = "fn main() { out(nosuchvar); }";
        let mut s = StageStats::default();
        assert!(matches!(
            p.compile("m", bad, &mut s),
            Err(StagedError::Frontend(_))
        ));
        // Only the token artifact may exist; sema must not have been
        // marked successful.
        let mut s2 = StageStats::default();
        assert!(p.compile("m", bad, &mut s2).is_err());
        assert!(s2.hit <= 1, "a failing program must re-check every run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_only_change_skips_the_whole_front_end() {
        let dir = temp_dir("cfgonly");
        let p = ArtifactPipeline::open(&dir).unwrap();
        let (_, s1) = p
            .prepare("m", SRC, Scheme::Casted, &MachineConfig::itanium2_like(2, 2))
            .unwrap();
        assert_eq!(s1.total, 6);
        assert_eq!(s1.hit, 0);
        let (prep, s2) = p
            .prepare("m", SRC, Scheme::Casted, &MachineConfig::itanium2_like(4, 1))
            .unwrap();
        assert_eq!(s2.total, 6);
        assert_eq!(
            s2.hit, 4,
            "lexparse/sema/codegen/ed must all survive a machine-config change"
        );
        // And the result still equals a from-scratch monolithic build.
        let m = casted_frontend::compile("m", SRC).unwrap();
        let legacy =
            casted_passes::prepare(&m, Scheme::Casted, &MachineConfig::itanium2_like(4, 1))
                .unwrap();
        assert_eq!(
            ircodec::encode_scheduled(&legacy.sp),
            ircodec::encode_scheduled(&prep.sp)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
