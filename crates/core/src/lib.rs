//! # casted — Core-Adaptive Software Transient Error Detection
//!
//! A from-scratch Rust reproduction of *CASTED: Core-Adaptive Software
//! Transient Error Detection for Tightly Coupled Cores* (Mitropoulou,
//! Porpodas, Cintra — IPDPS 2013).
//!
//! This crate is the façade over the whole workspace:
//!
//! * [`compile`] MiniC source to IR (GCC's role in the paper),
//! * [`build`] a scheduled program for one of the four schemes
//!   (NOED / SCED / DCED / CASTED) on a configurable 2-cluster VLIW,
//! * [`measure`] its cycle count on the cycle-accurate simulator,
//! * [`experiments`] regenerates every table and figure of the paper's
//!   evaluation section (see `EXPERIMENTS.md` at the repo root).
//!
//! ## Quickstart
//!
//! ```
//! use casted::{build, measure, Scheme};
//! use casted::ir::MachineConfig;
//!
//! let src = r#"
//!     fn main() -> int {
//!         var s: int = 0;
//!         for i in 0..100 { s = s + i * i; }
//!         out(s);
//!         return 0;
//!     }
//! "#;
//! let module = casted::compile("demo", src).unwrap();
//! let config = MachineConfig::itanium2_like(2, 2);
//!
//! let noed = measure(&build(&module, Scheme::Noed, &config).unwrap());
//! let casted = measure(&build(&module, Scheme::Casted, &config).unwrap());
//! // Error detection costs cycles but must preserve the output.
//! assert_eq!(noed.stream, casted.stream);
//! assert!(casted.cycles() > noed.cycles());
//! ```

pub use casted_difftest as difftest;
pub use casted_faults as faults;
pub use casted_obs as obs;
pub use casted_frontend as frontend;
pub use casted_util as util;
pub use casted_ir as ir;
pub use casted_passes as passes;
pub use casted_sim as sim;
pub use casted_workloads as workloads;

pub use casted_passes::{Prepared, Scheme};
pub use casted_sim::SimResult;

pub mod experiments;
pub mod report;
pub mod service_api;
pub mod stages;

use casted_frontend::Diag;
use casted_ir::{MachineConfig, Module};

/// Compile MiniC source to a verified IR module.
pub fn compile(name: &str, source: &str) -> Result<Module, Vec<Diag>> {
    casted_frontend::compile(name, source)
}

/// Run the full back end (error detection, placement, scheduling,
/// spilling, register validation) for `scheme` on machine `config`.
pub fn build(module: &Module, scheme: Scheme, config: &MachineConfig) -> Result<Prepared, String> {
    casted_passes::prepare(module, scheme, config)
}

/// Simulate a prepared program fault-free and return timing + output.
pub fn measure(prep: &Prepared) -> SimResult {
    casted_sim::simulate(&prep.sp, &casted_sim::SimOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_compiles_builds_and_measures() {
        let m = compile("t", "fn main() { var s: int = 1; for i in 0..10 { s = s * 2; } out(s); }").unwrap();
        let cfg = MachineConfig::itanium2_like(2, 1);
        let prep = build(&m, Scheme::Casted, &cfg).unwrap();
        let r = measure(&prep);
        assert_eq!(r.stream, vec![ir::interp::OutVal::Int(1024)]);
    }
}
