//! The seven MiniC benchmark kernels.
//!
//! Each constructor returns a [`Workload`] whose source is the shared
//! library [`PRELUDE`](crate::PRELUDE) plus the kernel program. Inputs
//! are generated in-program from a fixed LCG seed, so every run is
//! bit-deterministic.

use crate::{Suite, Workload, PRELUDE};

fn make(name: &'static str, suite: Suite, body: &str) -> Workload {
    Workload {
        name,
        suite,
        source: format!("{PRELUDE}\n{body}"),
    }
}

/// `cjpeg` — JPEG-style encoder kernel: 8×8 forward transform,
/// quantization, scan-order run-length encoding. Moderate ILP;
/// quantization masks many injected faults (the paper notes encoders
/// are "less prone to errors ... as there is some data compression
/// (masking) involved").
pub fn cjpeg() -> Workload {
    make(
        "cjpeg",
        Suite::MediaBench2,
        r#"
const W: int = 24;            // image is W x W pixels
const NB: int = 9;            // (W/8)^2 blocks
global img: [int; 576];       // W*W
global C: [int; 64];          // transform matrix
global qtab: [int; 64];       // quantization table
global zz: [int; 64];         // scan order permutation
global blk: [int; 64];
global tmp: [int; 64];
global coef: [int; 64];

fn init() {
    var s: int = 12345;
    for i in 0..W*W {
        s = lcg(s);
        img[i] = (s >> 8) % 256;
    }
    for u in 0..8 {
        for x in 0..8 {
            C[u*8+x] = (u*2 + 3) * (x*3 + 1) % 17 - 8;
        }
    }
    for k in 0..64 {
        qtab[k] = 4 + (k * 3) / 8;
        zz[k] = k * 37 % 64;
    }
}

// Separable 2-D transform of blk into coef (rows then columns).
fn transform() {
    for u in 0..8 {
        for x in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[u*8+k] * blk[x*8+k];
            }
            tmp[u*8+x] = s >> 3;
        }
    }
    for u in 0..8 {
        for v in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[v*8+k] * tmp[k*8+u];
            }
            coef[v*8+u] = s >> 3;
        }
    }
}

fn main() -> int {
    init();
    var checksum: int = 0;
    var rle_total: int = 0;
    for by in 0..W/8 {
        for bx in 0..W/8 {
            // load block
            for y in 0..8 {
                for x in 0..8 {
                    blk[y*8+x] = img[(by*8+y)*W + bx*8 + x] - 128;
                }
            }
            transform();
            // quantize + run-length encode in scan order
            var run: int = 0;
            for k in 0..64 {
                var q: int = coef[zz[k]] / qtab[zz[k]];
                if q == 0 {
                    run = run + 1;
                } else {
                    rle_total = rle_total + run + 1;
                    checksum = checksum + q * (k + 1);
                    run = 0;
                }
            }
            out(checksum & 65535);
        }
    }
    out(rle_total);
    out(checksum);
    return 0;
}
"#,
    )
}

/// `h263dec` — video decoder kernel: coefficient dequantization,
/// inverse transform, motion compensation with clipping. Store-heavy
/// decode path.
pub fn h263dec() -> Workload {
    make(
        "h263dec",
        Suite::MediaBench2,
        r#"
const W: int = 24;            // decoded frame is W x W
const RW: int = 32;           // reference frame is RW x RW
global reff: [int; 1024];     // RW*RW
global frame: [int; 576];     // W*W
global C: [int; 64];
global coef: [int; 64];
global tmp: [int; 64];
global resid: [int; 64];

fn init() {
    var s: int = 777;
    for i in 0..RW*RW {
        s = lcg(s);
        reff[i] = (s >> 7) % 256;
    }
    for u in 0..8 {
        for x in 0..8 {
            C[u*8+x] = (u*3 + 1) * (x*2 + 5) % 15 - 7;
        }
    }
}

fn itransform() {
    for u in 0..8 {
        for x in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[k*8+u] * coef[x*8+k];
            }
            tmp[u*8+x] = s >> 4;
        }
    }
    for u in 0..8 {
        for v in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[k*8+v] * tmp[k*8+u];
            }
            resid[v*8+u] = s >> 4;
        }
    }
}

fn main() -> int {
    init();
    var s: int = 31337;
    var checksum: int = 0;
    for by in 0..W/8 {
        for bx in 0..W/8 {
            // "bitstream": dequantized coefficients, sparse
            for k in 0..64 {
                s = lcg(s);
                if s % 5 == 0 {
                    coef[k] = s % 64 - 32;
                } else {
                    coef[k] = 0;
                }
            }
            itransform();
            // motion vector from the stream, range [-3, 3]
            s = lcg(s);
            var mvx: int = s % 7 - 3;
            s = lcg(s);
            var mvy: int = s % 7 - 3;
            for y in 0..8 {
                for x in 0..8 {
                    var ry: int = by*8 + y + mvy + 4;
                    var rx: int = bx*8 + x + mvx + 4;
                    var pred: int = reff[ry*RW + rx];
                    var rec: int = clip(pred + resid[y*8+x], 0, 255);
                    frame[(by*8+y)*W + bx*8 + x] = rec;
                    checksum = checksum + rec * (x + y + 1);
                }
            }
        }
    }
    for i in 0..W {
        out(frame[i*W + i]);
    }
    out(checksum);
    return 0;
}
"#,
    )
}

/// `mpeg2dec` — MPEG-2-style decoder kernel: dequantize + saturate,
/// inverse transform, intra/inter block reconstruction with a skipped-
/// block copy path.
pub fn mpeg2dec() -> Workload {
    make(
        "mpeg2dec",
        Suite::MediaBench2,
        r#"
const W: int = 24;
const RW: int = 32;
global reff: [int; 1024];
global frame: [int; 576];
global C: [int; 64];
global qmat: [int; 64];
global coef: [int; 64];
global tmp: [int; 64];
global resid: [int; 64];

fn init() {
    var s: int = 4242;
    for i in 0..RW*RW {
        s = lcg(s);
        reff[i] = (s >> 9) % 256;
    }
    for u in 0..8 {
        for x in 0..8 {
            C[u*8+x] = (u + 2) * (x*5 + 1) % 13 - 6;
        }
    }
    for k in 0..64 {
        qmat[k] = 8 + k / 4;
    }
}

fn itransform() {
    for u in 0..8 {
        for x in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[k*8+u] * coef[x*8+k];
            }
            tmp[u*8+x] = s >> 4;
        }
    }
    for u in 0..8 {
        for v in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[k*8+v] * tmp[k*8+u];
            }
            resid[v*8+u] = s >> 4;
        }
    }
}

fn main() -> int {
    init();
    var s: int = 999331;
    var checksum: int = 0;
    for by in 0..W/8 {
        for bx in 0..W/8 {
            s = lcg(s);
            var mode: int = s % 4;
            if mode == 0 {
                // skipped block: straight copy from the reference
                for y in 0..8 {
                    for x in 0..8 {
                        var v: int = reff[(by*8+y+4)*RW + bx*8 + x + 4];
                        frame[(by*8+y)*W + bx*8 + x] = v;
                        checksum = checksum + v;
                    }
                }
            } else {
                // coded block: dequantize with saturation, transform
                for k in 0..64 {
                    s = lcg(s);
                    var level: int = s % 32 - 16;
                    var dq: int = level * qmat[k] * 2;
                    coef[k] = clip(dq, -2048, 2047);
                }
                itransform();
                for y in 0..8 {
                    for x in 0..8 {
                        var pred: int = 0;
                        if mode > 1 {
                            pred = reff[(by*8+y+4)*RW + bx*8 + x + 4];
                        }
                        var rec: int = clip(pred + resid[y*8+x], 0, 255);
                        frame[(by*8+y)*W + bx*8 + x] = rec;
                        checksum = checksum + rec * 3;
                    }
                }
            }
        }
    }
    for i in 0..W {
        out(frame[i*W + (W - 1 - i)]);
    }
    out(checksum);
    return 0;
}
"#,
    )
}

/// `h263enc` — video encoder kernel: sum-of-absolute-differences
/// motion estimation with early termination, then transform + quantize
/// of the residual. Branch- and store-dense: the error-detection pass
/// inserts many checks here, which makes SCED scale poorly (the
/// paper's §IV-B2 anomaly).
pub fn h263enc() -> Workload {
    make(
        "h263enc",
        Suite::MediaBench2,
        r#"
const W: int = 16;
const RW: int = 24;
global cur: [int; 256];
global reff: [int; 576];
global C: [int; 64];
global blk: [int; 64];
global tmp: [int; 64];
global coef: [int; 64];

fn init() {
    var s: int = 271828;
    for i in 0..RW*RW {
        s = lcg(s);
        reff[i] = (s >> 6) % 256;
    }
    // current frame = shifted reference + noise, so motion search
    // has real structure to find
    for y in 0..W {
        for x in 0..W {
            s = lcg(s);
            cur[y*W+x] = clip(reff[(y+5)*RW + x + 3] + s % 9 - 4, 0, 255);
        }
    }
    for u in 0..8 {
        for x in 0..8 {
            C[u*8+x] = (u*2 + 3) * (x*3 + 1) % 17 - 8;
        }
    }
}

fn transform() {
    for u in 0..8 {
        for x in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[u*8+k] * blk[x*8+k];
            }
            tmp[u*8+x] = s >> 3;
        }
    }
    for u in 0..8 {
        for v in 0..8 {
            var s: int = 0;
            for k in 0..8 {
                s = s + C[v*8+k] * tmp[k*8+u];
            }
            coef[v*8+u] = s >> 3;
        }
    }
}

fn main() -> int {
    init();
    var checksum: int = 0;
    var bits: int = 0;
    for by in 0..W/8 {
        for bx in 0..W/8 {
            // full-search motion estimation, window [-2, 2]^2,
            // early-terminating SAD
            var best: int = 1000000;
            var bestdx: int = 0;
            var bestdy: int = 0;
            for dy in 0..5 {
                for dx in 0..5 {
                    var sad: int = 0;
                    for y in 0..8 {
                        if sad < best {
                            for x in 0..8 {
                                var c: int = cur[(by*8+y)*W + bx*8 + x];
                                var r: int = reff[(by*8+y+dy+2)*RW + bx*8 + x + dx + 2];
                                sad = sad + iabs(c - r);
                            }
                        }
                    }
                    if sad < best {
                        best = sad;
                        bestdx = dx - 2;
                        bestdy = dy - 2;
                    }
                }
            }
            // residual block
            for y in 0..8 {
                for x in 0..8 {
                    var c: int = cur[(by*8+y)*W + bx*8 + x];
                    var r: int = reff[(by*8+y+bestdy+4)*RW + bx*8 + x + bestdx + 4];
                    blk[y*8+x] = c - r;
                }
            }
            transform();
            // quantize and entropy-model bit counting
            for k in 0..64 {
                var q: int = coef[k] / 12;
                if q != 0 {
                    bits = bits + 4 + imin(iabs(q), 8);
                    checksum = checksum + q * (k + 7);
                }
            }
            out((bestdx + 2) * 8 + bestdy + 2);
        }
    }
    out(bits);
    out(checksum);
    return 0;
}
"#,
    )
}

/// `175.vpr` — FPGA placement kernel: simulated-annealing cell swaps
/// with bounding-box wirelength cost, accept/reject control flow.
/// Mixed integer compute and data-dependent branching.
pub fn vpr() -> Workload {
    make(
        "175.vpr",
        Suite::SpecCint2000,
        r#"
const NCELLS: int = 64;
const NNETS: int = 32;
const PINS: int = 4;
const GRID: int = 16;
const MOVES: int = 48;
global posx: [int; NCELLS];
global posy: [int; NCELLS];
global nets: [int; 128];      // NNETS * PINS cell ids

fn net_cost(n: int) -> int {
    var minx: int = 1000;
    var maxx: int = -1000;
    var miny: int = 1000;
    var maxy: int = -1000;
    for p in 0..PINS {
        var c: int = nets[n*PINS + p];
        minx = imin(minx, posx[c]);
        maxx = imax(maxx, posx[c]);
        miny = imin(miny, posy[c]);
        maxy = imax(maxy, posy[c]);
    }
    return maxx - minx + maxy - miny;
}

fn total_cost() -> int {
    var c: int = 0;
    for n in 0..NNETS {
        c = c + net_cost(n);
    }
    return c;
}

fn main() -> int {
    var s: int = 1618;
    for c in 0..NCELLS {
        s = lcg(s);
        posx[c] = s % GRID;
        s = lcg(s);
        posy[c] = s % GRID;
    }
    for k in 0..NNETS*PINS {
        s = lcg(s);
        nets[k] = s % NCELLS;
    }

    var cost: int = total_cost();
    out(cost);
    var accepted: int = 0;
    var temp: int = 32;
    for m in 0..MOVES {
        s = lcg(s);
        var a: int = s % NCELLS;
        s = lcg(s);
        var b: int = s % NCELLS;
        // swap a and b
        var tx: int = posx[a]; var ty: int = posy[a];
        posx[a] = posx[b]; posy[a] = posy[b];
        posx[b] = tx; posy[b] = ty;
        var nc: int = total_cost();
        s = lcg(s);
        if nc < cost || s % 64 < temp {
            cost = nc;
            accepted = accepted + 1;
        } else {
            // undo
            tx = posx[a]; ty = posy[a];
            posx[a] = posx[b]; posy[a] = posy[b];
            posx[b] = tx; posy[b] = ty;
        }
        if m % 16 == 15 {
            temp = imax(temp - 4, 1);
            out(cost);
        }
    }
    out(accepted);
    out(cost);
    return 0;
}
"#,
    )
}

/// `181.mcf` — network-simplex-style kernel: pointer chasing over a
/// pseudo-random successor permutation plus arc cost relaxation.
/// Low ILP (serial dependent loads), cache-unfriendly footprint.
pub fn mcf() -> Workload {
    make(
        "181.mcf",
        Suite::SpecCint2000,
        r#"
const N: int = 4096;          // nodes; 32 KB per array
const ROUNDS: int = 2;
global nxt: [int; N];
global cost: [int; N];
global pot: [int; N];

fn main() -> int {
    // successor permutation: stride walk coprime with N
    var s: int = 55441;
    for i in 0..N {
        nxt[i] = (i * 2053 + 1) % N;
        s = lcg(s);
        cost[i] = s % 1009;
        pot[i] = 0;
    }
    var checksum: int = 0;
    // pointer chase with potential relaxation
    var node: int = 0;
    for r in 0..ROUNDS {
        for step in 0..N {
            var n2: int = nxt[node];
            var reduced: int = cost[node] - pot[node] + pot[n2];
            if reduced < 0 {
                pot[n2] = pot[n2] - reduced;
            } else {
                pot[node] = pot[node] + (reduced >> 5);
            }
            checksum = checksum + reduced;
            node = n2;
        }
        out(checksum);
    }
    var potsum: int = 0;
    for i in 0..N {
        if i % 64 == 0 {
            potsum = potsum + pot[i];
        }
    }
    out(potsum);
    out(node);
    return 0;
}
"#,
    )
}

/// `197.parser` — link-grammar-style kernel: table-driven DFA
/// tokenizer over generated text plus per-token dictionary binary
/// search. Very branchy, little ILP.
pub fn parser() -> Workload {
    make(
        "197.parser",
        Suite::SpecCint2000,
        r#"
const TEXT: int = 4000;
const STATES: int = 8;
const CLASSES: int = 6;
const DICT: int = 64;
global text: [int; TEXT];
global dfa: [int; 48];        // STATES * CLASSES
global dict: [int; DICT];
global histo: [int; STATES];

fn lookup(w: int) -> int {
    var lo: int = 0;
    var hi: int = DICT;
    while lo < hi {
        var mid: int = (lo + hi) >> 1;
        if dict[mid] < w {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

fn main() -> int {
    var s: int = 20011;
    for i in 0..TEXT {
        s = lcg(s);
        text[i] = s % 30;
    }
    for st in 0..STATES {
        for c in 0..CLASSES {
            dfa[st*CLASSES + c] = (st*3 + c*5 + 1) % STATES;
        }
    }
    for k in 0..DICT {
        dict[k] = k * k * 3 + k;
    }

    var state: int = 0;
    var tokens: int = 0;
    var word: int = 0;
    var checksum: int = 0;
    for i in 0..TEXT {
        var ch: int = text[i];
        var class: int = ch % CLASSES;
        var prev: int = state;
        state = dfa[state*CLASSES + class];
        histo[state] = histo[state] + 1;
        word = (word * 31 + ch) & 1048575;
        if state == 0 && prev != 0 {
            // token boundary: dictionary lookup
            tokens = tokens + 1;
            var idx: int = lookup(word % 12289);
            checksum = checksum + idx;
            word = 0;
        }
    }
    for st in 0..STATES {
        out(histo[st]);
    }
    out(tokens);
    out(checksum);
    return 0;
}
"#,
    )
}
