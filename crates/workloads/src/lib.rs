//! # casted-workloads — benchmark kernels (Table II substitutes)
//!
//! The paper evaluates on 4 MediaBench II video benchmarks and 3 SPEC
//! CINT2000 benchmarks (Table II). Real MediaBench/SPEC sources cannot
//! be compiled here (no GCC, no IA-64), so each benchmark is replaced
//! by a MiniC kernel with the same *computational character* the
//! paper's analysis leans on — ILP, branchiness, store/check density
//! and cache behaviour:
//!
//! | paper       | kernel here                                   | character |
//! |-------------|-----------------------------------------------|-----------|
//! | cjpeg       | 8×8 forward transform + quantize + RLE encode | moderate ILP, quantization masks faults |
//! | h263dec     | dequant + inverse transform + motion comp     | decode, store-heavy |
//! | mpeg2dec    | dequant + saturate + inverse transform + copy | decode, moderate ILP |
//! | h263enc     | SAD motion estimation + transform + quantize  | branch/store dense → many checks |
//! | 175.vpr     | simulated-annealing placement cost loop       | mixed control/compute |
//! | 181.mcf     | pointer-chasing arc relaxation                | low ILP, cache-miss bound |
//! | 197.parser  | table-driven tokenizer + link counting        | very branchy, low ILP |
//!
//! Every kernel generates its own input deterministically with an
//! in-program LCG (`lib fn lcg`), runs the kernel, and emits checksums
//! through `out()` — the observable output used for the Benign vs
//! DataCorrupt fault classification. The shared `lib fn` prelude plays
//! the role of binary system libraries: its inlined instructions are
//! not protected by the error-detection pass, reproducing the paper's
//! residual undetected-corruption tail (Fig. 9).

use casted_frontend::Diag;
use casted_ir::Module;

/// Benchmark suite of origin (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// MediaBench II video.
    MediaBench2,
    /// SPEC CINT2000.
    SpecCint2000,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::MediaBench2 => write!(f, "MediaBench2"),
            Suite::SpecCint2000 => write!(f, "SPEC CINT2000"),
        }
    }
}

/// One benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name used in figures (matches the paper's benchmark name).
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// MiniC source (prelude + kernel).
    pub source: String,
}

impl Workload {
    /// Compile to a verified IR module.
    pub fn compile(&self) -> Result<Module, Vec<Diag>> {
        casted_obs::inc("workloads.compiled");
        casted_frontend::compile(self.name, &self.source)
    }
}

/// The shared "system library" prelude. These functions are declared
/// `lib fn`, so the error-detection pass leaves their inlined code
/// unprotected — like libraries linked as binaries in the paper.
pub const PRELUDE: &str = r#"
lib fn clip(x: int, lo: int, hi: int) -> int {
    if x < lo { return lo; }
    if x > hi { return hi; }
    return x;
}
lib fn iabs(x: int) -> int {
    if x < 0 { return 0 - x; }
    return x;
}
lib fn imin(a: int, b: int) -> int {
    if a < b { return a; }
    return b;
}
lib fn imax(a: int, b: int) -> int {
    if a > b { return a; }
    return b;
}
lib fn lcg(s: int) -> int {
    return (s * 1103515245 + 12345) & 9007199254740991;
}
"#;

mod kernels;

pub use kernels::*;

/// All seven benchmarks in Table II order.
pub fn all() -> Vec<Workload> {
    vec![
        cjpeg(),
        h263dec(),
        mpeg2dec(),
        h263enc(),
        vpr(),
        mcf(),
        parser(),
    ]
}

/// Look a benchmark up by its paper name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, StopReason};

    #[test]
    fn seven_benchmarks_matching_table_ii() {
        let ws = all();
        assert_eq!(ws.len(), 7);
        let media = ws.iter().filter(|w| w.suite == Suite::MediaBench2).count();
        let spec = ws.iter().filter(|w| w.suite == Suite::SpecCint2000).count();
        assert_eq!(media, 4);
        assert_eq!(spec, 3);
        assert_eq!(
            ws.iter().map(|w| w.name).collect::<Vec<_>>(),
            vec!["cjpeg", "h263dec", "mpeg2dec", "h263enc", "175.vpr", "181.mcf", "197.parser"]
        );
    }

    #[test]
    fn all_benchmarks_compile_run_and_emit_output() {
        for w in all() {
            let m = w
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {:?}", w.name, e));
            let r = interp::run(&m, 100_000_000).unwrap();
            assert_eq!(r.stop, StopReason::Halt(0), "{} did not halt cleanly: {:?}", w.name, r.stop);
            assert!(!r.stream.is_empty(), "{} produced no output", w.name);
            // Dynamic length budget: long enough to be a benchmark,
            // short enough for 300-trial Monte-Carlo campaigns.
            assert!(
                (10_000..3_000_000).contains(&r.dyn_insns),
                "{}: {} dynamic instructions outside budget",
                w.name,
                r.dyn_insns
            );
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for w in all() {
            let m = w.compile().unwrap();
            let a = interp::run(&m, 100_000_000).unwrap();
            let b = interp::run(&m, 100_000_000).unwrap();
            assert_eq!(a.stream, b.stream, "{} is nondeterministic", w.name);
        }
    }

    #[test]
    fn benchmarks_use_library_code() {
        for w in all() {
            let m = w.compile().unwrap();
            let f = m.entry_fn();
            let libs = f
                .blocks
                .iter()
                .flat_map(|b| &b.insns)
                .filter(|&&i| f.insn(i).prov == casted_ir::Provenance::LibraryCode)
                .count();
            assert!(libs > 0, "{} inlines no library code", w.name);
        }
    }

    #[test]
    fn by_name_round_trips() {
        for w in all() {
            assert_eq!(by_name(w.name).unwrap().name, w.name);
        }
        assert!(by_name("nonexistent").is_none());
    }
}
