//! Property-based tests over the benchmark kernels: every workload is
//! deterministic, halts cleanly, and survives the full error-detection
//! + scheduling pipeline at randomly drawn machine shapes.
//!
//! Driven by the in-repo harness (`casted_util::prop`).

use casted_ir::interp;
use casted_util::prop::run_cases;
use casted_util::{prop_assert, prop_assert_eq};

#[test]
fn random_workload_is_deterministic() {
    run_cases("random_workload_is_deterministic", 7, |rng| {
        let ws = casted_workloads::all();
        let w = rng.pick(&ws);
        let m = w.compile().map_err(|e| format!("{}: {e:?}", w.name))?;
        let a = interp::run(&m, 100_000_000).unwrap();
        let b = interp::run(&m, 100_000_000).unwrap();
        prop_assert_eq!(&a.stop, &b.stop, "{}", w.name);
        prop_assert_eq!(a.stream.len(), b.stream.len());
        for (x, y) in a.stream.iter().zip(&b.stream) {
            prop_assert!(x.bit_eq(y), "{} output drifted between runs", w.name);
        }
        Ok(())
    });
}

#[test]
fn every_workload_halts_with_zero_under_error_detection() {
    run_cases("every_workload_halts_with_zero_under_error_detection", 7, |rng| {
        let ws = casted_workloads::all();
        let w = rng.pick(&ws);
        let mut m = w.compile().unwrap();
        let golden = interp::run(&m, 100_000_000).unwrap();
        prop_assert!(matches!(golden.stop, interp::StopReason::Halt(_)), "{}", w.name);
        // Error detection must not change a kernel's behaviour.
        casted_passes::error_detection(&mut m);
        prop_assert!(casted_ir::verify::verify_module(&m).is_ok(), "{}", w.name);
        let r = interp::run(&m, 200_000_000).unwrap();
        prop_assert_eq!(&r.stop, &golden.stop, "{}", w.name);
        prop_assert_eq!(r.stream.len(), golden.stream.len(), "{}", w.name);
        for (x, y) in r.stream.iter().zip(&golden.stream) {
            prop_assert!(x.bit_eq(y), "{}: ED changed the output", w.name);
        }
        Ok(())
    });
}

#[test]
fn workloads_survive_random_machine_shapes() {
    run_cases("workloads_survive_random_machine_shapes", 10, |rng| {
        let ws = casted_workloads::all();
        let w = rng.pick(&ws);
        let issue = rng.gen_range(1usize..=4);
        let delay = rng.gen_range(1u32..=4);
        let m = w.compile().unwrap();
        let cfg = casted_ir::MachineConfig::itanium2_like(issue, delay);
        let scheme = *rng.pick(&casted_passes::Scheme::ALL);
        let prep = casted_passes::prepare(&m, scheme, &cfg)
            .map_err(|e| format!("{} {scheme} i{issue} d{delay}: {e}", w.name))?;
        prop_assert!(prep.sp.validate().is_ok(), "{} {scheme}", w.name);
        let r = casted_sim::simulate(&prep.sp, &casted_sim::SimOptions::default());
        prop_assert!(
            matches!(r.stop, casted_ir::interp::StopReason::Halt(_)),
            "{} {scheme} i{issue} d{delay}: {:?}",
            w.name,
            r.stop
        );
        Ok(())
    });
}
