//! Golden snapshot tests: the benchmark kernels are part of the
//! experimental methodology, so their observable outputs are pinned.
//! If a kernel change is intentional, update the snapshots here *and*
//! regenerate EXPERIMENTS.md.

use casted_ir::interp::{self, OutVal};

fn run(name: &str) -> interp::ExecResult {
    let w = casted_workloads::by_name(name).expect("benchmark exists");
    let m = w.compile().expect("compiles");
    interp::run(&m, 100_000_000).expect("runs")
}

fn stream_hash(r: &interp::ExecResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in &r.stream {
        let bits = match v {
            OutVal::Int(x) => *x as u64,
            OutVal::Float(x) => x.to_bits(),
        };
        h ^= bits;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn golden_dynamic_lengths() {
    let expected = [
        ("cjpeg", 263_410u64),
        ("h263dec", 281_944),
        ("mpeg2dec", 205_197),
        ("h263enc", 324_372),
        ("175.vpr", 404_300),
        ("181.mcf", 500_203),
        ("197.parser", 260_977),
    ];
    for (name, dyn_insns) in expected {
        let r = run(name);
        assert_eq!(r.dyn_insns, dyn_insns, "{name} dynamic length drifted");
    }
}

#[test]
fn golden_output_streams() {
    let expected: [(&str, u64); 7] = [
        ("cjpeg", 0xc9ad1bfa4d02247e),
        ("h263dec", 0xd80e22a8d405eeea),
        ("mpeg2dec", 0xd4431ed0747b674b),
        ("h263enc", 0x1c4eb66fb66cb12e),
        ("175.vpr", 0xede43e3b270e27e3),
        ("181.mcf", 0xcefaedfa4aa1c728),
        ("197.parser", 0x7606d1ec08941be4),
    ];
    for (name, want) in expected {
        let r = run(name);
        let got = stream_hash(&r);
        assert_eq!(
            got, want,
            "{name}: stream hash drifted — got {got:#x}; update the snapshot if intentional"
        );
    }
}
