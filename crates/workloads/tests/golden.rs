//! Golden snapshot tests: the benchmark kernels are part of the
//! experimental methodology, so their observable outputs are pinned.
//! If a kernel change is intentional, update the snapshots here *and*
//! regenerate EXPERIMENTS.md.
//!
//! Digests use the workspace-wide FNV-1a helper
//! (`casted_util::hash::Fnv64`) with the same tagged stream encoding
//! as `casted-difftest`'s case digests, so a drift seen here can be
//! cross-checked against a difftest corpus run directly.

use casted_ir::interp::{self, OutVal};
use casted_ir::MachineConfig;
use casted_passes::pipeline::{prepare, Scheme};
use casted_util::hash::Fnv64;

fn run(name: &str) -> interp::ExecResult {
    let w = casted_workloads::by_name(name).expect("benchmark exists");
    let m = w.compile().expect("compiles");
    interp::run(&m, 100_000_000).expect("runs")
}

/// Tagged bit-exact stream digest (same encoding as casted-difftest).
fn stream_digest(stream: &[OutVal]) -> u64 {
    let mut h = Fnv64::new();
    for v in stream {
        match v {
            OutVal::Int(x) => {
                h.write_u8(0);
                h.write_u64(*x as u64);
            }
            OutVal::Float(x) => {
                h.write_u8(1);
                h.write_u64(x.to_bits());
            }
        }
    }
    h.finish()
}

const GOLDEN: [(&str, u64, u64, i64); 7] = [
    // (name, dyn_insns, stream digest, exit code)
    ("cjpeg", 263_410, 0x3d0292020749e9e2, 0),
    ("h263dec", 281_944, 0xe27e542e30ec2d8f, 0),
    ("mpeg2dec", 205_197, 0x07a098c629f9f269, 0),
    ("h263enc", 324_372, 0xb2db0b39c1b8f0d8, 0),
    ("175.vpr", 404_300, 0x8eedc5af98132b49, 0),
    ("181.mcf", 500_203, 0x8ac616f018f1cb45, 0),
    ("197.parser", 260_977, 0x0853997d3159f88e, 0),
];

#[test]
fn golden_outputs_are_pinned() {
    let mut drift = String::new();
    for (name, dyn_insns, digest, exit) in GOLDEN {
        let r = run(name);
        let got = stream_digest(&r.stream);
        if r.dyn_insns != dyn_insns || got != digest || r.exit_code() != Some(exit) {
            drift.push_str(&format!(
                "(\"{name}\", {}, {:#018x}, {:?}),\n",
                r.dyn_insns,
                got,
                r.exit_code()
            ));
        }
        assert!(!r.stream.is_empty());
    }
    assert!(
        drift.is_empty(),
        "kernel snapshots drifted — if intentional, replace the rows with:\n{drift}"
    );
}

/// The back end must not change any kernel's observable output: for
/// every scheme, the fully prepared (ED + scheduled + spilled) module
/// re-interprets to the *same* pinned digest. One digest per kernel
/// covers all four schemes — scheme-dependent output would be a
/// pipeline bug by definition.
#[test]
fn golden_outputs_survive_every_scheme() {
    let cfg = MachineConfig::itanium2_like(2, 2);
    for (name, _, digest, exit) in GOLDEN {
        let w = casted_workloads::by_name(name).unwrap();
        let m = w.compile().unwrap();
        for scheme in Scheme::ALL {
            let prep = prepare(&m, scheme, &cfg)
                .unwrap_or_else(|e| panic!("{name}/{scheme}: prepare failed: {e}"));
            let r = interp::run(&prep.sp.module, 200_000_000)
                .unwrap_or_else(|e| panic!("{name}/{scheme}: {e}"));
            assert_eq!(
                stream_digest(&r.stream),
                digest,
                "{name}/{scheme}: pipeline changed the kernel's output"
            );
            assert_eq!(r.exit_code(), Some(exit), "{name}/{scheme}: exit code");
        }
    }
}
