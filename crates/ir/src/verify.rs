//! Structural and type verifier for IR functions.
//!
//! Run after the front-end and after every pass in debug builds and in
//! tests; catches malformed blocks, dangling branch targets and
//! register-class violations before they become mysterious simulator
//! behaviour.

use crate::func::{Function, Module};
use crate::insn::{Insn, Operand};
use crate::op::Opcode;
use crate::reg::RegClass;

/// Accumulated verification errors (empty = valid).
pub type VerifyResult = Result<(), Vec<String>>;

fn operand_class(op: &Operand) -> Option<RegClass> {
    match op {
        Operand::Reg(r) => Some(r.class),
        Operand::Imm(_) => Some(RegClass::Gp),
        Operand::FImm(_) => Some(RegClass::Fp),
    }
}

fn expect_use(errs: &mut Vec<String>, ctx: &str, insn: &Insn, idx: usize, class: RegClass) {
    match insn.uses.get(idx) {
        None => errs.push(format!("{ctx}: missing operand {idx}")),
        Some(o) => {
            if operand_class(o) != Some(class) {
                errs.push(format!(
                    "{ctx}: operand {idx} must be {class}, got {o:?}"
                ));
            }
        }
    }
}

fn expect_def(errs: &mut Vec<String>, ctx: &str, insn: &Insn, class: RegClass) {
    match insn.def() {
        None => errs.push(format!("{ctx}: missing def")),
        Some(d) => {
            if d.class != class {
                errs.push(format!("{ctx}: def must be {class}, got {d}"));
            }
        }
    }
    if insn.defs.len() > 1 {
        errs.push(format!("{ctx}: more than one def"));
    }
}

fn expect_no_def(errs: &mut Vec<String>, ctx: &str, insn: &Insn) {
    if !insn.defs.is_empty() {
        errs.push(format!("{ctx}: unexpected def"));
    }
}

fn expect_use_count(errs: &mut Vec<String>, ctx: &str, insn: &Insn, n: usize) {
    if insn.uses.len() != n {
        errs.push(format!(
            "{ctx}: expected {n} operands, got {}",
            insn.uses.len()
        ));
    }
}

fn verify_insn(errs: &mut Vec<String>, func: &Function, ctx: &str, insn: &Insn) {
    use Opcode::*;
    match insn.op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sra => {
            expect_def(errs, ctx, insn, RegClass::Gp);
            expect_use_count(errs, ctx, insn, 2);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
            expect_use(errs, ctx, insn, 1, RegClass::Gp);
        }
        MovI => {
            expect_def(errs, ctx, insn, RegClass::Gp);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
        }
        Sel => {
            expect_def(errs, ctx, insn, RegClass::Gp);
            expect_use_count(errs, ctx, insn, 3);
            expect_use(errs, ctx, insn, 0, RegClass::Pr);
            expect_use(errs, ctx, insn, 1, RegClass::Gp);
            expect_use(errs, ctx, insn, 2, RegClass::Gp);
        }
        Cmp(_) => {
            // Polymorphic: both operands of the same class (GP, FP, or
            // PR) — check code compares renamed copies of any class.
            expect_def(errs, ctx, insn, RegClass::Pr);
            expect_use_count(errs, ctx, insn, 2);
            let a = insn.uses.first().and_then(operand_class);
            let b = insn.uses.get(1).and_then(operand_class);
            if a != b {
                errs.push(format!("{ctx}: cmp operand classes differ: {a:?} vs {b:?}"));
            }
        }
        FCmp(_) => {
            expect_def(errs, ctx, insn, RegClass::Pr);
            expect_use_count(errs, ctx, insn, 2);
            expect_use(errs, ctx, insn, 0, RegClass::Fp);
            expect_use(errs, ctx, insn, 1, RegClass::Fp);
        }
        FAdd | FSub | FMul | FDiv => {
            expect_def(errs, ctx, insn, RegClass::Fp);
            expect_use_count(errs, ctx, insn, 2);
            expect_use(errs, ctx, insn, 0, RegClass::Fp);
            expect_use(errs, ctx, insn, 1, RegClass::Fp);
        }
        FMovI => {
            expect_def(errs, ctx, insn, RegClass::Fp);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Fp);
        }
        I2F => {
            expect_def(errs, ctx, insn, RegClass::Fp);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
        }
        F2I => {
            expect_def(errs, ctx, insn, RegClass::Gp);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Fp);
        }
        Load => {
            expect_def(errs, ctx, insn, RegClass::Gp);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
        }
        FLoad => {
            expect_def(errs, ctx, insn, RegClass::Fp);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
        }
        Store => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 2);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
            expect_use(errs, ctx, insn, 1, RegClass::Gp);
        }
        FStore => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 2);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
            expect_use(errs, ctx, insn, 1, RegClass::Fp);
        }
        Out | Halt => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Gp);
        }
        FOut => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Fp);
        }
        Br => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 0);
            if insn.target.is_none() {
                errs.push(format!("{ctx}: br without target"));
            }
        }
        BrCond => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Pr);
            if insn.target.is_none() || insn.target2.is_none() {
                errs.push(format!("{ctx}: br.cond needs both targets"));
            }
        }
        DetectBr => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 1);
            expect_use(errs, ctx, insn, 0, RegClass::Pr);
        }
        ChkNe => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 2);
            let a = insn.uses.first().and_then(operand_class);
            let b = insn.uses.get(1).and_then(operand_class);
            if a != b {
                errs.push(format!("{ctx}: chk.ne operand classes differ: {a:?} vs {b:?}"));
            }
        }
        Vote => {
            // Polymorphic majority vote: def and all three operands
            // share a single register class.
            expect_use_count(errs, ctx, insn, 3);
            match insn.def() {
                None => errs.push(format!("{ctx}: missing def")),
                Some(d) => {
                    for idx in 0..3 {
                        if let Some(o) = insn.uses.get(idx) {
                            if operand_class(o) != Some(d.class) {
                                errs.push(format!(
                                    "{ctx}: vote operand {idx} must be {}, got {o:?}",
                                    d.class
                                ));
                            }
                        }
                    }
                }
            }
            if insn.defs.len() > 1 {
                errs.push(format!("{ctx}: more than one def"));
            }
        }
        Nop => {
            expect_no_def(errs, ctx, insn);
            expect_use_count(errs, ctx, insn, 0);
        }
    }
    // Branch targets must be valid blocks.
    for t in [insn.target, insn.target2].into_iter().flatten() {
        if t.index() >= func.blocks.len() {
            errs.push(format!("{ctx}: dangling branch target b{}", t.0));
        }
    }
    // Register indices must be in range of the function's allocator.
    for r in insn.defs.iter().copied().chain(insn.reg_uses()) {
        if r.index >= func.reg_count(r.class) {
            errs.push(format!("{ctx}: register {r} out of allocated range"));
        }
    }
}

/// Verify one function.
pub fn verify_function(func: &Function) -> VerifyResult {
    let mut errs = Vec::new();
    if func.entry.index() >= func.blocks.len() {
        errs.push(format!("{}: entry block out of range", func.name));
    }
    for (bid, block) in func.iter_blocks() {
        if block.insns.is_empty() {
            errs.push(format!("{}: block b{} is empty", func.name, bid.0));
            continue;
        }
        for (pos, &iid) in block.insns.iter().enumerate() {
            if iid.index() >= func.insns.len() {
                errs.push(format!("{}: b{} references missing insn", func.name, bid.0));
                continue;
            }
            let insn = func.insn(iid);
            let ctx = format!("{}:b{}:{}", func.name, bid.0, pos);
            let is_last = pos + 1 == block.insns.len();
            if is_last && !insn.op.is_terminator() {
                errs.push(format!("{ctx}: block does not end in a terminator"));
            }
            if !is_last && insn.op.is_terminator() {
                errs.push(format!("{ctx}: terminator in the middle of a block"));
            }
            verify_insn(&mut errs, func, &ctx, insn);
        }
        // No instruction may appear twice across all blocks (checked
        // globally below).
    }
    // Global duplicate placement check.
    let mut seen = vec![false; func.insns.len()];
    for (_, block) in func.iter_blocks() {
        for &iid in &block.insns {
            if iid.index() < seen.len() {
                if seen[iid.index()] {
                    errs.push(format!(
                        "{}: insn {} placed more than once",
                        func.name,
                        iid.0
                    ));
                }
                seen[iid.index()] = true;
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verify every function of a module plus module-level invariants.
pub fn verify_module(module: &Module) -> VerifyResult {
    let mut errs = Vec::new();
    if module.entry.is_none() {
        errs.push("module has no entry function".to_string());
    }
    for func in &module.functions {
        if let Err(mut e) = verify_function(func) {
            errs.append(&mut e);
        }
    }
    // Globals must not overlap.
    let mut ranges: Vec<(i64, i64, &str)> = module
        .globals
        .iter()
        .map(|g| (g.addr, g.addr + (g.len * 8) as i64, g.name.as_str()))
        .collect();
    ranges.sort();
    for w in ranges.windows(2) {
        if w[0].1 > w[1].0 {
            errs.push(format!("globals {} and {} overlap", w[0].2, w[1].2));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Insn;
    use crate::op::CmpKind;
    use crate::reg::Reg;

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(x), Operand::Imm(2));
        b.push(Opcode::DetectBr, vec![], vec![Operand::Reg(p)]);
        b.out(Operand::Reg(x));
        b.halt_imm(0);
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn unterminated_block_fails() {
        let mut b = FunctionBuilder::new("f");
        b.imm(1);
        let f = b.func().clone();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("terminator")));
    }

    #[test]
    fn class_mismatch_fails() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        // FAdd over GP registers is a class error.
        let d = b.new_reg(RegClass::Fp);
        b.push(Opcode::FAdd, vec![d], vec![Operand::Reg(x), Operand::Reg(x)]);
        b.halt_imm(0);
        let errs = verify_function(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("must be fp")));
    }

    #[test]
    fn cmp_may_compare_predicates_and_floats() {
        let mut b = FunctionBuilder::new("f");
        let p1 = b.cmp(CmpKind::Lt, Operand::Imm(1), Operand::Imm(2));
        let p2 = b.cmp(CmpKind::Lt, Operand::Imm(1), Operand::Imm(2));
        let pc = b.new_reg(RegClass::Pr);
        b.push(
            Opcode::Cmp(CmpKind::Ne),
            vec![pc],
            vec![Operand::Reg(p1), Operand::Reg(p2)],
        );
        let f1 = b.fimm(1.0);
        let fc = b.new_reg(RegClass::Pr);
        b.push(
            Opcode::Cmp(CmpKind::Ne),
            vec![fc],
            vec![Operand::Reg(f1), Operand::Reg(f1)],
        );
        b.halt_imm(0);
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn cmp_mixed_classes_fail() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let y = b.fimm(1.0);
        let p = b.new_reg(RegClass::Pr);
        b.push(
            Opcode::Cmp(CmpKind::Eq),
            vec![p],
            vec![Operand::Reg(x), Operand::Reg(y)],
        );
        b.halt_imm(0);
        let errs = verify_function(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("classes differ")));
    }

    #[test]
    fn dangling_target_fails() {
        let mut f = Function::new("f");
        let mut br = Insn::new(Opcode::Br, vec![], vec![]);
        br.target = Some(crate::func::BlockId(99));
        let id = f.add_insn(br);
        f.block_mut(f.entry).insns.push(id);
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("dangling")));
    }

    #[test]
    fn out_of_range_register_fails() {
        let mut f = Function::new("f");
        // r5 was never allocated via new_reg.
        let id = f.add_insn(Insn::new(
            Opcode::Halt,
            vec![],
            vec![Operand::Reg(Reg::gp(5))],
        ));
        f.block_mut(f.entry).insns.push(id);
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("out of allocated range")));
    }

    #[test]
    fn double_placement_fails() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let _ = x;
        let id = *b.func().block(b.cur).insns.last().unwrap();
        b.func_mut().block_mut(crate::func::BlockId(0)).insns.push(id);
        b.halt_imm(0);
        let errs = verify_function(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("more than once")));
    }

    #[test]
    fn module_overlapping_globals_detected() {
        let mut m = Module::new("m");
        m.add_global("a", crate::func::GlobalClass::Int, 8, vec![]);
        m.add_global("b", crate::func::GlobalClass::Int, 8, vec![]);
        // Corrupt an address to force overlap.
        m.globals[1].addr = m.globals[0].addr;
        let b = FunctionBuilder::new("main");
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("overlap")));
    }
}
