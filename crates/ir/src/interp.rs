//! Reference (functional, untimed) interpreter.
//!
//! Executes a module's entry function sequentially, block by block, in
//! program order. It defines the *golden* behaviour: the cycle-accurate
//! simulator must produce exactly the same output stream and exit code
//! for every program and every scheme (a cross-checked invariant in the
//! integration tests).

use std::collections::HashMap;

use crate::func::{Function, Module};
use crate::insn::{Insn, Operand};
use crate::op::Opcode;
use crate::reg::{Reg, RegClass};
use crate::semantics::{check_addr, eval_pure, ExecError, Val};

/// One element of the observable output stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OutVal {
    /// Emitted by `out`.
    Int(i64),
    /// Emitted by `fout` (compared bitwise for golden-run equality).
    Float(f64),
}

impl OutVal {
    /// Bit-exact equality — the criterion for the `Benign` vs
    /// `DataCorrupt` classification.
    pub fn bit_eq(&self, other: &OutVal) -> bool {
        match (self, other) {
            (OutVal::Int(a), OutVal::Int(b)) => a == b,
            (OutVal::Float(a), OutVal::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

/// Why execution stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum StopReason {
    /// `halt` executed with this exit code.
    Halt(i64),
    /// A `br.detect` fired: the error-detection code caught a fault.
    Detected,
    /// A runtime exception (the paper's `Exceptions` class).
    Exception(ExecError),
    /// The step/cycle budget was exhausted (the paper's `Time out`
    /// class, "detected by the time-out feature of our simulator").
    Timeout,
}

/// Result of a completed execution.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// Termination cause.
    pub stop: StopReason,
    /// Observable output stream.
    pub stream: Vec<OutVal>,
    /// Number of dynamic instructions executed.
    pub dyn_insns: u64,
}

impl ExecResult {
    /// Exit code if the program halted normally.
    pub fn exit_code(&self) -> Option<i64> {
        match self.stop {
            StopReason::Halt(c) => Some(c),
            _ => None,
        }
    }
}

/// Machine memory shared by interpreter and simulator: a flat array of
/// 8-byte words with the module's globals materialized.
#[derive(Clone, Debug)]
pub struct Memory {
    words: Vec<i64>,
}

/// Extra words of addressable scratch space past the last global.
pub const HEAP_SLACK_WORDS: usize = 1024;

impl Memory {
    /// Build memory for `module`: zero-filled, globals initialized.
    pub fn for_module(module: &Module) -> Self {
        let words = (module.data_end() as usize) / 8 + HEAP_SLACK_WORDS;
        let mut mem = Memory {
            words: vec![0; words],
        };
        for g in &module.globals {
            let base = (g.addr / 8) as usize;
            for (i, &v) in g.init.iter().enumerate() {
                mem.words[base + i] = v;
            }
        }
        mem
    }

    /// Size in words.
    #[inline]
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Integer load.
    #[inline]
    pub fn load_int(&self, addr: i64) -> Result<i64, ExecError> {
        Ok(self.words[check_addr(addr, self.words.len())?])
    }

    /// Float load (reinterprets the word's bits).
    #[inline]
    pub fn load_float(&self, addr: i64) -> Result<f64, ExecError> {
        Ok(f64::from_bits(
            self.words[check_addr(addr, self.words.len())?] as u64,
        ))
    }

    /// Integer store.
    #[inline]
    pub fn store_int(&mut self, addr: i64, v: i64) -> Result<(), ExecError> {
        let idx = check_addr(addr, self.words.len())?;
        self.words[idx] = v;
        Ok(())
    }

    /// Float store.
    #[inline]
    pub fn store_float(&mut self, addr: i64, v: f64) -> Result<(), ExecError> {
        let idx = check_addr(addr, self.words.len())?;
        self.words[idx] = v.to_bits() as i64;
        Ok(())
    }

    /// Raw word access for tests.
    pub fn word(&self, idx: usize) -> i64 {
        self.words[idx]
    }
}

/// A register file holding every virtual register of a function.
/// Registers read before being written yield the class's zero value
/// (hardware registers power up holding *something*; zero keeps golden
/// runs deterministic).
#[derive(Clone, Debug)]
pub struct RegFile {
    gp: Vec<i64>,
    fp: Vec<f64>,
    pr: Vec<bool>,
}

impl RegFile {
    /// Sized for `func`'s virtual register counts.
    pub fn for_function(func: &Function) -> Self {
        RegFile {
            gp: vec![0; func.reg_count(RegClass::Gp) as usize],
            fp: vec![0.0; func.reg_count(RegClass::Fp) as usize],
            pr: vec![false; func.reg_count(RegClass::Pr) as usize],
        }
    }

    /// Read `reg`.
    #[inline]
    pub fn get(&self, reg: Reg) -> Val {
        match reg.class {
            RegClass::Gp => Val::I(self.gp[reg.index as usize]),
            RegClass::Fp => Val::F(self.fp[reg.index as usize]),
            RegClass::Pr => Val::B(self.pr[reg.index as usize]),
        }
    }

    /// Write `reg`.
    #[inline]
    pub fn set(&mut self, reg: Reg, v: Val) {
        match reg.class {
            RegClass::Gp => self.gp[reg.index as usize] = v.as_i(),
            RegClass::Fp => self.fp[reg.index as usize] = v.as_f(),
            RegClass::Pr => self.pr[reg.index as usize] = v.as_b(),
        }
    }
}

fn operand_val(rf: &RegFile, op: &Operand) -> Val {
    match op {
        Operand::Reg(r) => rf.get(*r),
        Operand::Imm(v) => Val::I(*v),
        Operand::FImm(v) => Val::F(*v),
    }
}

/// What executing one instruction asks the driver to do next.
enum Step {
    Next,
    Goto(crate::func::BlockId),
    Stop(StopReason),
}

fn exec_insn(
    insn: &Insn,
    rf: &mut RegFile,
    mem: &mut Memory,
    stream: &mut Vec<OutVal>,
) -> Step {
    let op = insn.op;
    match op {
        Opcode::Load | Opcode::FLoad => {
            let base = operand_val(rf, &insn.uses[0]).as_i();
            let addr = base.wrapping_add(insn.imm);
            let res = if op == Opcode::Load {
                mem.load_int(addr).map(Val::I)
            } else {
                mem.load_float(addr).map(Val::F)
            };
            match res {
                Ok(v) => {
                    rf.set(insn.defs[0], v);
                    Step::Next
                }
                Err(e) => Step::Stop(StopReason::Exception(e)),
            }
        }
        Opcode::Store | Opcode::FStore => {
            let base = operand_val(rf, &insn.uses[0]).as_i();
            let addr = base.wrapping_add(insn.imm);
            let v = operand_val(rf, &insn.uses[1]);
            let res = if op == Opcode::Store {
                mem.store_int(addr, v.as_i())
            } else {
                mem.store_float(addr, v.as_f())
            };
            match res {
                Ok(()) => Step::Next,
                Err(e) => Step::Stop(StopReason::Exception(e)),
            }
        }
        Opcode::Out => {
            stream.push(OutVal::Int(operand_val(rf, &insn.uses[0]).as_i()));
            Step::Next
        }
        Opcode::FOut => {
            stream.push(OutVal::Float(operand_val(rf, &insn.uses[0]).as_f()));
            Step::Next
        }
        Opcode::Br => Step::Goto(insn.target.expect("br without target")),
        Opcode::BrCond => {
            if operand_val(rf, &insn.uses[0]).as_b() {
                Step::Goto(insn.target.expect("br.cond without target"))
            } else {
                Step::Goto(insn.target2.expect("br.cond without fallthrough"))
            }
        }
        Opcode::DetectBr => {
            if operand_val(rf, &insn.uses[0]).as_b() {
                Step::Stop(StopReason::Detected)
            } else {
                Step::Next
            }
        }
        Opcode::ChkNe => {
            let a = operand_val(rf, &insn.uses[0]);
            let b = operand_val(rf, &insn.uses[1]);
            if crate::semantics::eval_cmp_vals(crate::op::CmpKind::Ne, a, b) {
                Step::Stop(StopReason::Detected)
            } else {
                Step::Next
            }
        }
        Opcode::Halt => Step::Stop(StopReason::Halt(operand_val(rf, &insn.uses[0]).as_i())),
        Opcode::Nop => Step::Next,
        _ => {
            let vals: Vec<Val> = insn.uses.iter().map(|o| operand_val(rf, o)).collect();
            match eval_pure(op, &vals) {
                Ok(v) => {
                    rf.set(insn.defs[0], v);
                    Step::Next
                }
                Err(e) => Step::Stop(StopReason::Exception(e)),
            }
        }
    }
}

/// Run the module's entry function for at most `step_limit` dynamic
/// instructions. Returns `Err` only for structurally broken IR (no
/// entry); all runtime conditions are reported in
/// [`ExecResult::stop`].
pub fn run(module: &Module, step_limit: u64) -> Result<ExecResult, String> {
    let func = module
        .entry
        .map(|e| &module.functions[e.index()])
        .ok_or_else(|| "module has no entry function".to_string())?;
    let mut rf = RegFile::for_function(func);
    let mut mem = Memory::for_module(module);
    let mut stream = Vec::new();
    let mut dyn_insns: u64 = 0;
    let mut block = func.entry;
    let mut pc = 0usize;

    loop {
        let insns = &func.block(block).insns;
        if pc >= insns.len() {
            return Err(format!(
                "fell off the end of unterminated block {} in {}",
                block.0, func.name
            ));
        }
        let insn = func.insn(insns[pc]);
        dyn_insns += 1;
        if dyn_insns > step_limit {
            return Ok(ExecResult {
                stop: StopReason::Timeout,
                stream,
                dyn_insns,
            });
        }
        match exec_insn(insn, &mut rf, &mut mem, &mut stream) {
            Step::Next => pc += 1,
            Step::Goto(b) => {
                block = b;
                pc = 0;
            }
            Step::Stop(stop) => {
                return Ok(ExecResult {
                    stop,
                    stream,
                    dyn_insns,
                })
            }
        }
    }
}

/// Per-instruction dynamic execution counts, used by the fault-injection
/// harness to profile "the number of dynamic instructions" of the
/// original binary (paper §IV-C) and to aim injections.
pub fn profile(module: &Module, step_limit: u64) -> Result<HashMap<crate::InsnId, u64>, String> {
    let func = module
        .entry
        .map(|e| &module.functions[e.index()])
        .ok_or_else(|| "module has no entry function".to_string())?;
    let mut rf = RegFile::for_function(func);
    let mut mem = Memory::for_module(module);
    let mut stream = Vec::new();
    let mut counts: HashMap<crate::InsnId, u64> = HashMap::new();
    let mut dyn_insns = 0u64;
    let mut block = func.entry;
    let mut pc = 0usize;
    loop {
        let id = func.block(block).insns[pc];
        *counts.entry(id).or_insert(0) += 1;
        dyn_insns += 1;
        if dyn_insns > step_limit {
            return Ok(counts);
        }
        match exec_insn(func.insn(id), &mut rf, &mut mem, &mut stream) {
            Step::Next => pc += 1,
            Step::Goto(b) => {
                block = b;
                pc = 0;
            }
            Step::Stop(_) => return Ok(counts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::GlobalClass;
    use crate::op::CmpKind;

    fn run_fn(b: FunctionBuilder) -> ExecResult {
        let mut m = Module::new("t");
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        run(&m, 100_000).unwrap()
    }

    #[test]
    fn arithmetic_and_out() {
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(6);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(7));
        b.out(Operand::Reg(y));
        b.halt_imm(0);
        let r = run_fn(b);
        assert_eq!(r.stop, StopReason::Halt(0));
        assert_eq!(r.stream, vec![OutVal::Int(42)]);
    }

    #[test]
    fn loop_sums() {
        // sum 0..10 via a loop.
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc0 = b.imm(0);
        let i0 = b.imm(0);
        // loop-carried values: re-assign by writing same registers via Mov
        b.br(body);
        b.switch_to(body);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc0), Operand::Reg(i0));
        b.push(Opcode::MovI, vec![acc0], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i0), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i0], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i0), Operand::Imm(10));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc0));
        b.halt_imm(0);
        let r = run_fn(b);
        assert_eq!(r.stream, vec![OutVal::Int(45)]);
    }

    #[test]
    fn globals_and_memory() {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", GlobalClass::Int, 4, vec![10, 20, 30, 40]);
        let mut b = FunctionBuilder::new("main");
        let base = b.imm(addr);
        let v = b.load(base, 16); // g[2]
        b.store(base, 24, Operand::Reg(v)); // g[3] = 30
        let v3 = b.load(base, 24);
        b.out(Operand::Reg(v3));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let r = run(&m, 1000).unwrap();
        assert_eq!(r.stream, vec![OutVal::Int(30)]);
    }

    #[test]
    fn trap_page_faults() {
        let mut b = FunctionBuilder::new("main");
        let base = b.imm(8); // below DATA_BASE
        let _ = b.load(base, 0);
        b.halt_imm(0);
        let r = run_fn(b);
        assert!(matches!(
            r.stop,
            StopReason::Exception(ExecError::MemOutOfBounds(8))
        ));
    }

    #[test]
    fn misaligned_access_faults() {
        let mut b = FunctionBuilder::new("main");
        let base = b.imm(4097);
        let _ = b.load(base, 0);
        b.halt_imm(0);
        let r = run_fn(b);
        assert!(matches!(
            r.stop,
            StopReason::Exception(ExecError::Misaligned(4097))
        ));
    }

    #[test]
    fn detect_br_fires_on_true() {
        let mut b = FunctionBuilder::new("main");
        let p = b.cmp(CmpKind::Ne, Operand::Imm(1), Operand::Imm(2));
        b.push(Opcode::DetectBr, vec![], vec![Operand::Reg(p)]);
        b.halt_imm(0);
        let r = run_fn(b);
        assert_eq!(r.stop, StopReason::Detected);
    }

    #[test]
    fn detect_br_passes_on_false() {
        let mut b = FunctionBuilder::new("main");
        let p = b.cmp(CmpKind::Ne, Operand::Imm(2), Operand::Imm(2));
        b.push(Opcode::DetectBr, vec![], vec![Operand::Reg(p)]);
        b.halt_imm(7);
        let r = run_fn(b);
        assert_eq!(r.stop, StopReason::Halt(7));
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let mut b = FunctionBuilder::new("main");
        let spin = b.new_block("spin");
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        let mut m = Module::new("t");
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let r = run(&m, 1000).unwrap();
        assert_eq!(r.stop, StopReason::Timeout);
    }

    #[test]
    fn float_pipeline() {
        let mut b = FunctionBuilder::new("main");
        let x = b.fimm(1.5);
        let y = b.fbinop(Opcode::FMul, Operand::Reg(x), Operand::FImm(4.0));
        let i = b.new_reg(RegClass::Gp);
        b.push(Opcode::F2I, vec![i], vec![Operand::Reg(y)]);
        b.out(Operand::Reg(i));
        b.fout(Operand::Reg(y));
        b.halt_imm(0);
        let r = run_fn(b);
        assert_eq!(r.stream[0], OutVal::Int(6));
        assert!(r.stream[1].bit_eq(&OutVal::Float(6.0)));
    }

    /// Direct `Memory` error paths: loads and stores outside the
    /// mapped range (below `DATA_BASE`, past the end, misaligned) must
    /// report the faulting address and leave memory untouched.
    #[test]
    fn memory_access_error_paths() {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", GlobalClass::Int, 4, vec![10, 20, 30, 40]);
        let mut mem = Memory::for_module(&m);
        let end = (mem.len_words() as i64) * 8;

        // In-bounds round trip works.
        mem.store_int(addr, 77).unwrap();
        assert_eq!(mem.load_int(addr).unwrap(), 77);

        // Below DATA_BASE: the trap page.
        assert_eq!(mem.load_int(0), Err(ExecError::MemOutOfBounds(0)));
        assert_eq!(mem.store_int(8, 1), Err(ExecError::MemOutOfBounds(8)));
        // Negative addresses.
        assert_eq!(mem.load_int(-8), Err(ExecError::MemOutOfBounds(-8)));
        // One word past the end (and far past).
        assert_eq!(mem.load_int(end), Err(ExecError::MemOutOfBounds(end)));
        assert_eq!(mem.store_int(end + 8192, 1), Err(ExecError::MemOutOfBounds(end + 8192)));
        // Misalignment is reported before the range check.
        assert_eq!(mem.load_int(addr + 1), Err(ExecError::Misaligned(addr + 1)));
        assert_eq!(mem.store_int(addr + 3, 1), Err(ExecError::Misaligned(addr + 3)));
        // Float variants share the same checks.
        assert_eq!(mem.load_float(4), Err(ExecError::Misaligned(4)));
        assert!(mem.store_float(end, 1.0).is_err());

        // The failed stores did not write anything.
        assert_eq!(mem.load_int(addr).unwrap(), 77);
    }

    /// The step limit is exact: a program of dynamic length N halts
    /// under `run(m, N)` and times out under `run(m, N - 1)`, and the
    /// timeout result still carries the output emitted so far.
    #[test]
    fn step_limit_boundary_is_exact() {
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(1); // 1
        b.out(Operand::Reg(x)); // 2
        b.halt_imm(0); // 3
        let mut m = Module::new("t");
        let id = m.add_function(b.finish());
        m.entry = Some(id);

        let exact = run(&m, 3).unwrap();
        assert_eq!(exact.stop, StopReason::Halt(0));
        assert_eq!(exact.dyn_insns, 3);

        let short = run(&m, 2).unwrap();
        assert_eq!(short.stop, StopReason::Timeout);
        assert_eq!(short.stream, vec![OutVal::Int(1)], "partial output survives");
        assert_eq!(short.exit_code(), None);
    }

    /// `exit_code` propagates the halt operand (including register
    /// operands and non-zero codes) and is `None` for every other
    /// stop reason.
    #[test]
    fn exit_code_propagation() {
        // Register-carried non-zero exit code.
        let mut b = FunctionBuilder::new("main");
        let c = b.binop(Opcode::Add, Operand::Imm(40), Operand::Imm(2));
        b.halt(Operand::Reg(c));
        let r = run_fn(b);
        assert_eq!(r.stop, StopReason::Halt(42));
        assert_eq!(r.exit_code(), Some(42));

        // Detected stops have no exit code.
        let mut b = FunctionBuilder::new("main");
        let p = b.cmp(CmpKind::Ne, Operand::Imm(1), Operand::Imm(2));
        b.push(Opcode::DetectBr, vec![], vec![Operand::Reg(p)]);
        b.halt_imm(0);
        assert_eq!(run_fn(b).exit_code(), None);

        // Exceptions have no exit code.
        let mut b = FunctionBuilder::new("main");
        let base = b.imm(8);
        let _ = b.load(base, 0);
        b.halt_imm(0);
        assert_eq!(run_fn(b).exit_code(), None);
    }

    #[test]
    fn profile_counts_loop_iterations() {
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let i0 = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i0), Operand::Imm(1));
        let add_id = *b.block(body).insns.last().unwrap();
        b.push(Opcode::MovI, vec![i0], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i0), Operand::Imm(5));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.halt_imm(0);
        let mut m = Module::new("t");
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let counts = profile(&m, 100_000).unwrap();
        assert_eq!(counts[&add_id], 5);
    }
}
