//! Instruction opcodes and their static properties.
//!
//! The opcode set is a generic load/store three-address ISA with the
//! Itanium-2 flavour the paper targets: integer ALU ops, FP ops,
//! compares that write *predicate registers*, predicated branches, and
//! explicit `Out`/`FOut` instructions standing in for writes to the
//! program's observable output (the benchmark's output file in the
//! paper's methodology).
//!
//! The properties that drive the error-detection pass (Algorithm 1) are
//! encoded here: [`Opcode::is_store_class`], [`Opcode::is_control_flow`]
//! and [`Opcode::is_replicable`] implement the paper's taxonomy of
//! non-replicated instructions (§III-B): control flow, stores, and
//! special compiler-generated instructions are never replicated; the
//! operands of store-class instructions are *checked* instead.

use std::fmt;

use crate::machine::LatencyConfig;

/// Comparison predicates shared by [`Opcode::Cmp`] and [`Opcode::FCmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpKind {
    /// Evaluate the predicate over two ordered integer values.
    #[inline]
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        }
    }

    /// Evaluate the predicate over two floats (IEEE semantics; all
    /// comparisons with NaN are false except `Ne`).
    #[inline]
    pub fn eval_float(self, a: f64, b: f64) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        }
    }

    /// Mnemonic suffix (`eq`, `ne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        }
    }
}

/// The opcode of an [`crate::Insn`].
///
/// Operand conventions are documented per variant; `def` is the defined
/// register (at most one per instruction), `a`/`b` are register-or-
/// immediate operands (see [`crate::Operand`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ------------------------- integer ALU -------------------------
    /// `def = a + b` (wrapping).
    Add,
    /// `def = a - b` (wrapping).
    Sub,
    /// `def = a * b` (wrapping).
    Mul,
    /// `def = a / b` (signed; division by zero raises a simulator
    /// exception, the paper's `Exceptions` fault-outcome class).
    Div,
    /// `def = a % b` (signed; modulo by zero raises an exception).
    Rem,
    /// `def = a & b`.
    And,
    /// `def = a | b`.
    Or,
    /// `def = a ^ b`.
    Xor,
    /// `def = a << (b & 63)`.
    Shl,
    /// `def = ((a as u64) >> (b & 63)) as i64` — logical right shift.
    Shr,
    /// `def = a >> (b & 63)` — arithmetic right shift.
    Sra,
    /// `def = a` where `a` is an immediate or register; integer move /
    /// load-immediate. Also used for materialised global addresses.
    MovI,
    /// `def = p ? a : b` — integer select on a predicate register `p`
    /// (first use), used for branch-free clipping/saturation.
    Sel,

    // ------------------------- compares ----------------------------
    /// `def(pr) = cmp(a, b)` over integers.
    Cmp(CmpKind),
    /// `def(pr) = cmp(a, b)` over floats.
    FCmp(CmpKind),

    // ------------------------- floating point ----------------------
    /// `def = a + b` (f64).
    FAdd,
    /// `def = a - b` (f64).
    FSub,
    /// `def = a * b` (f64).
    FMul,
    /// `def = a / b` (f64; IEEE — produces inf/NaN rather than trapping).
    FDiv,
    /// `def = a` — float move / load-float-immediate.
    FMovI,
    /// `def = float(a)` — integer to float conversion.
    I2F,
    /// `def = int(a)` — float to integer conversion (saturating,
    /// NaN maps to 0).
    F2I,

    // ------------------------- memory ------------------------------
    /// `def(gp) = mem[a + imm]` — 8-byte integer load. The memory
    /// subsystem is inside its own sphere of replication (ECC) per the
    /// paper, so loads ARE replicated by the error-detection pass.
    Load,
    /// `def(fp) = mem[a + imm]` — 8-byte float load.
    FLoad,
    /// `mem[a + imm] = b` — integer store. Never replicated; its
    /// operands are checked instead (SWIFT rule).
    Store,
    /// `mem[a + imm] = b` — float store. Never replicated.
    FStore,

    // ------------------------- observable output -------------------
    /// Append the integer value `a` to the program output stream. This
    /// models the benchmark writing its output file; it is store-class
    /// (checked, never replicated).
    Out,
    /// Append the float value `a` to the program output stream.
    FOut,

    // ------------------------- control flow ------------------------
    /// Unconditional branch to `target`. Block terminator.
    Br,
    /// Conditional branch: if predicate `a` is true go to `target`,
    /// else to `target2`. Block terminator.
    BrCond,
    /// Fault-detection branch emitted by the error-detection pass: if
    /// predicate `a` is true, the executing machine jumps to the fault
    /// handler and the run terminates with the `Detected` outcome.
    /// *Not* a block terminator (architecturally it is a branch to a
    /// shared handler; we model the handler as a terminal state).
    DetectBr,
    /// Fused compare-and-detect (ablation): compares `a` against `b`
    /// bitwise and diverts to the fault handler on mismatch, in a
    /// single issue slot. The paper's checks are explicit
    /// compare + branch *pairs*; this opcode exists to quantify what
    /// that choice costs (see the `ablation` bench binary).
    ChkNe,
    /// Bitwise majority vote over three copies of a value:
    /// `def = (a&b)|(a&c)|(b&c)` per bit (applied to the IEEE bit
    /// pattern for floats, to the single bit for predicates). Emitted
    /// by the TMRED scheme in place of a compare+detect pair: a
    /// single corrupted copy is out-voted, so the fault is *corrected*
    /// rather than detected. Polymorphic over the register classes
    /// like [`Opcode::Cmp`]; def and all three operands share one
    /// class. Never replicated (it is check infrastructure, like
    /// [`Opcode::ChkNe`]).
    Vote,
    /// Stop the program with exit code `a`. Block terminator.
    Halt,

    /// No operation (alignment / placeholder).
    Nop,
}

impl Opcode {
    /// True for instructions that transfer control: branches and halt.
    /// Control-flow instructions are never replicated (paper §III-B,
    /// category 1): "the control flow is followed by only one of the
    /// cores".
    #[inline]
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Opcode::Br | Opcode::BrCond | Opcode::DetectBr | Opcode::ChkNe | Opcode::Halt
        )
    }

    /// True for instructions that must end a basic block.
    #[inline]
    pub fn is_terminator(self) -> bool {
        matches!(self, Opcode::Br | Opcode::BrCond | Opcode::Halt)
    }

    /// True for store-class instructions: memory stores and output
    /// writes. These are never replicated (paper §III-B, category 2);
    /// their register operands are compared against the redundant copy
    /// right before execution.
    #[inline]
    pub fn is_store_class(self) -> bool {
        matches!(
            self,
            Opcode::Store | Opcode::FStore | Opcode::Out | Opcode::FOut
        )
    }

    /// True if the instruction accesses memory (used for conservative
    /// memory-ordering edges in the DFG).
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Opcode::Load | Opcode::FLoad | Opcode::Store | Opcode::FStore
        )
    }

    /// True if the instruction reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load | Opcode::FLoad)
    }

    /// True if the instruction writes memory.
    #[inline]
    pub fn is_mem_store(self) -> bool {
        matches!(self, Opcode::Store | Opcode::FStore)
    }

    /// The paper's replicability rule: everything except control flow,
    /// store-class instructions and `Nop` gets an exact duplicate
    /// emitted just before it by the error-detection pass.
    ///
    /// Note this is a property of the *opcode*; the pass additionally
    /// skips instructions whose [`crate::Provenance`] marks them as
    /// compiler-generated or as unprotected library code.
    #[inline]
    pub fn is_replicable(self) -> bool {
        !self.is_control_flow()
            && !self.is_store_class()
            && self != Opcode::Nop
            && self != Opcode::Vote
    }

    /// Result latency in cycles under the given latency configuration.
    /// For loads this is the *hit* latency; the cache hierarchy adds
    /// miss penalties dynamically in the simulator.
    #[inline]
    pub fn latency(self, lat: &LatencyConfig) -> u32 {
        match self {
            Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::Sra
            | Opcode::MovI
            | Opcode::Sel
            | Opcode::Vote
            | Opcode::Nop => lat.alu,
            Opcode::Mul => lat.mul,
            Opcode::Div | Opcode::Rem => lat.div,
            Opcode::Cmp(_) => lat.cmp,
            Opcode::FCmp(_) => lat.fcmp,
            Opcode::FAdd | Opcode::FSub | Opcode::FMovI => lat.fadd,
            Opcode::FMul => lat.fmul,
            Opcode::FDiv => lat.fdiv,
            Opcode::I2F | Opcode::F2I => lat.fcvt,
            Opcode::Load | Opcode::FLoad => lat.load_hit,
            Opcode::Store | Opcode::FStore => lat.store,
            Opcode::Out | Opcode::FOut => lat.store,
            Opcode::Br | Opcode::BrCond | Opcode::DetectBr | Opcode::ChkNe | Opcode::Halt => {
                lat.branch
            }
        }
    }

    /// Assembly-style mnemonic used by the IR printer.
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::Add => "add".into(),
            Opcode::Sub => "sub".into(),
            Opcode::Mul => "mul".into(),
            Opcode::Div => "div".into(),
            Opcode::Rem => "rem".into(),
            Opcode::And => "and".into(),
            Opcode::Or => "or".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Shl => "shl".into(),
            Opcode::Shr => "shr".into(),
            Opcode::Sra => "sra".into(),
            Opcode::MovI => "mov".into(),
            Opcode::Sel => "sel".into(),
            Opcode::Cmp(k) => format!("cmp.{}", k.mnemonic()),
            Opcode::FCmp(k) => format!("fcmp.{}", k.mnemonic()),
            Opcode::FAdd => "fadd".into(),
            Opcode::FSub => "fsub".into(),
            Opcode::FMul => "fmul".into(),
            Opcode::FDiv => "fdiv".into(),
            Opcode::FMovI => "fmov".into(),
            Opcode::I2F => "i2f".into(),
            Opcode::F2I => "f2i".into(),
            Opcode::Load => "ld8".into(),
            Opcode::FLoad => "ldf8".into(),
            Opcode::Store => "st8".into(),
            Opcode::FStore => "stf8".into(),
            Opcode::Out => "out".into(),
            Opcode::FOut => "fout".into(),
            Opcode::Br => "br".into(),
            Opcode::BrCond => "br.cond".into(),
            Opcode::DetectBr => "br.detect".into(),
            Opcode::ChkNe => "chk.ne".into(),
            Opcode::Vote => "vote".into(),
            Opcode::Halt => "halt".into(),
            Opcode::Nop => "nop".into(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_class_is_not_replicable() {
        for op in [Opcode::Store, Opcode::FStore, Opcode::Out, Opcode::FOut] {
            assert!(op.is_store_class());
            assert!(!op.is_replicable(), "{op} must not be replicable");
        }
    }

    #[test]
    fn control_flow_is_not_replicable() {
        for op in [Opcode::Br, Opcode::BrCond, Opcode::DetectBr, Opcode::Halt] {
            assert!(op.is_control_flow());
            assert!(!op.is_replicable(), "{op} must not be replicable");
        }
    }

    #[test]
    fn loads_are_replicable() {
        // SWIFT / CASTED replicate loads: memory is ECC-protected, so
        // both copies read the same (correct) value.
        assert!(Opcode::Load.is_replicable());
        assert!(Opcode::FLoad.is_replicable());
    }

    #[test]
    fn alu_is_replicable() {
        for op in [Opcode::Add, Opcode::Mul, Opcode::FAdd, Opcode::Cmp(CmpKind::Lt)] {
            assert!(op.is_replicable());
        }
    }

    #[test]
    fn detect_br_is_control_flow_but_not_terminator() {
        assert!(Opcode::DetectBr.is_control_flow());
        assert!(!Opcode::DetectBr.is_terminator());
    }

    #[test]
    fn vote_is_check_infrastructure() {
        // Like ChkNe, the voter must never be replicated itself; it is
        // a plain ALU-latency instruction, not control flow.
        assert!(!Opcode::Vote.is_replicable());
        assert!(!Opcode::Vote.is_control_flow());
        assert!(!Opcode::Vote.is_store_class());
        let lat = LatencyConfig::default();
        assert_eq!(Opcode::Vote.latency(&lat), lat.alu);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpKind::Lt.eval_int(1, 2));
        assert!(!CmpKind::Lt.eval_int(2, 1));
        assert!(CmpKind::Ne.eval_float(f64::NAN, 0.0));
        assert!(!CmpKind::Eq.eval_float(f64::NAN, f64::NAN));
        assert!(CmpKind::Ge.eval_int(3, 3));
    }

    #[test]
    fn latencies_follow_config() {
        let lat = LatencyConfig::default();
        assert_eq!(Opcode::Add.latency(&lat), lat.alu);
        assert_eq!(Opcode::Mul.latency(&lat), lat.mul);
        assert_eq!(Opcode::FDiv.latency(&lat), lat.fdiv);
        assert_eq!(Opcode::Load.latency(&lat), lat.load_hit);
    }
}
