//! Per-block data-flow graph (DFG) with latency-weighted edges.
//!
//! Both the BUG cluster-assignment algorithm (paper Algorithm 2) and the
//! VLIW list scheduler consume this graph. Edges are classified as
//!
//! * **Data** (read-after-write through a register): weight is the
//!   producer's result latency; the scheduler additionally charges the
//!   inter-cluster delay when producer and consumer land on different
//!   clusters — the quantity CASTED's placement minimizes.
//! * **Order** (anti/output dependences, conservative memory ordering,
//!   the commit chain through store-class instructions and detection
//!   branches, and block-exit edges into the terminator): fixed weight,
//!   never charged inter-cluster delay, because the clusters run in
//!   lockstep and share control flow.
//!
//! The commit chain is what makes check-dense code sequential: every
//! `br.detect` is ordered before the next store-class instruction, so —
//! exactly as the paper observes for h263enc — the more checks the code
//! has, "the more sequential the code becomes".

use crate::func::{BlockId, Function};
use crate::insn::InsnId;
use crate::machine::LatencyConfig;
use crate::op::Opcode;
use crate::reg::Reg;
use std::collections::HashMap;

/// Kind of a dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// True (RAW) dependence through this register: the consumer reads
    /// the producer's result. Crossing clusters costs the inter-cluster
    /// delay on top of the edge weight.
    Data(Reg),
    /// Ordering-only dependence (WAR/WAW/memory/commit/terminator).
    Order,
}

/// A dependence edge to node index `to` with minimum issue-distance
/// `weight` (in cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Target node index within the block's node list.
    pub to: usize,
    /// Edge kind.
    pub kind: DepKind,
    /// Minimum cycles between the issue of the source and of the target.
    pub weight: u32,
}

/// Data-flow graph of a single basic block.
#[derive(Clone, Debug)]
pub struct BlockDfg {
    /// Instruction ids in program order; node `i` is `nodes[i]`.
    pub nodes: Vec<InsnId>,
    /// Forward edges per node.
    pub succs: Vec<Vec<DepEdge>>,
    /// Backward edges per node (mirrors `succs`).
    pub preds: Vec<Vec<DepEdge>>,
    /// Critical-path height per node: the longest latency-weighted path
    /// from the node to the end of the block, including the node's own
    /// latency. BUG visits instructions "giving preference to the
    /// critical path" — i.e. in decreasing height.
    pub height: Vec<u32>,
}

impl BlockDfg {
    /// Build the DFG for `block` of `func` under latency config `lat`.
    pub fn build(func: &Function, block: BlockId, lat: &LatencyConfig) -> Self {
        let nodes: Vec<InsnId> = func.block(block).insns.clone();
        let n = nodes.len();
        let mut succs: Vec<Vec<DepEdge>> = vec![Vec::new(); n];

        // Per-register state: last definition and uses since it.
        let mut last_def: HashMap<Reg, usize> = HashMap::new();
        let mut uses_since_def: HashMap<Reg, Vec<usize>> = HashMap::new();
        // Memory ordering state.
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();
        // Commit chain state (store-class + detect branches).
        let mut last_commit: Option<usize> = None;

        let add = |succs: &mut Vec<Vec<DepEdge>>, from: usize, to: usize, kind: DepKind, weight: u32| {
            debug_assert!(from < to, "DFG edges must be forward in program order");
            // Avoid exact duplicates to keep the graph small.
            if !succs[from]
                .iter()
                .any(|e| e.to == to && e.kind == kind && e.weight >= weight)
            {
                succs[from].push(DepEdge { to, kind, weight });
            }
        };

        for (i, &id) in nodes.iter().enumerate() {
            let insn = func.insn(id);

            // RAW edges from the producing definition of each used reg.
            for r in insn.reg_uses() {
                if let Some(&d) = last_def.get(&r) {
                    let w = func.insn(nodes[d]).op.latency(lat);
                    add(&mut succs, d, i, DepKind::Data(r), w);
                }
                uses_since_def.entry(r).or_default().push(i);
            }

            // WAR/WAW edges for each definition.
            for &r in &insn.defs {
                if let Some(users) = uses_since_def.get(&r) {
                    for &u in users {
                        if u != i {
                            add(&mut succs, u, i, DepKind::Order, 0);
                        }
                    }
                }
                if let Some(&d) = last_def.get(&r) {
                    add(&mut succs, d, i, DepKind::Order, 1);
                }
                last_def.insert(r, i);
                uses_since_def.insert(r, Vec::new());
            }

            // Conservative memory ordering (no alias analysis): loads
            // may reorder with loads, nothing reorders across a store.
            if insn.op.is_load() {
                if let Some(s) = last_store {
                    add(&mut succs, s, i, DepKind::Order, 1);
                }
                loads_since_store.push(i);
            } else if insn.op.is_mem_store() {
                if let Some(s) = last_store {
                    add(&mut succs, s, i, DepKind::Order, 1);
                }
                for &l in &loads_since_store {
                    add(&mut succs, l, i, DepKind::Order, 1);
                }
                loads_since_store.clear();
                last_store = Some(i);
            }

            // Commit chain: store-class instructions, detect branches
            // and the terminator retire strictly in program order. A
            // detect branch must resolve before the next (potentially
            // guarded) side effect commits.
            let in_commit_chain =
                insn.op.is_store_class()
                || insn.op == Opcode::DetectBr
                || insn.op == Opcode::ChkNe
                || insn.op.is_terminator();
            if in_commit_chain {
                if let Some(c) = last_commit {
                    let w = if insn.op.is_terminator() { 0 } else { 1 };
                    add(&mut succs, c, i, DepKind::Order, w);
                }
                last_commit = Some(i);
            }

            // The terminator issues no earlier than anything else.
            if insn.op.is_terminator() {
                for j in 0..i {
                    add(&mut succs, j, i, DepKind::Order, 0);
                }
            }
        }

        // Mirror edges.
        let mut preds: Vec<Vec<DepEdge>> = vec![Vec::new(); n];
        for (from, es) in succs.iter().enumerate() {
            for e in es {
                preds[e.to].push(DepEdge {
                    to: from,
                    kind: e.kind,
                    weight: e.weight,
                });
            }
        }

        // Heights by reverse program order (all edges are forward).
        let mut height = vec![0u32; n];
        for i in (0..n).rev() {
            let own = func.insn(nodes[i]).op.latency(lat);
            let mut h = own;
            for e in &succs[i] {
                h = h.max(e.weight + height[e.to]);
            }
            height[i] = h;
        }

        BlockDfg {
            nodes,
            succs,
            preds,
            height,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The critical-path length of the whole block (max node height).
    pub fn critical_path(&self) -> u32 {
        self.height.iter().copied().max().unwrap_or(0)
    }

    /// Node indices sorted by decreasing height (BUG's visit priority),
    /// ties broken by program order for determinism.
    pub fn priority_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| self.height[b].cmp(&self.height[a]).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Operand;
    use crate::op::CmpKind;

    fn lat() -> LatencyConfig {
        LatencyConfig::default()
    }

    #[test]
    fn raw_edge_carries_latency() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(3));
        let _z = b.binop(Opcode::Add, Operand::Reg(y), Operand::Imm(1));
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        // mul (node 1) -> add (node 2) with mul latency.
        let e = dfg.succs[1]
            .iter()
            .find(|e| e.to == 2 && matches!(e.kind, DepKind::Data(_)))
            .unwrap();
        assert_eq!(e.weight, lat().mul);
    }

    #[test]
    fn war_edge_orders_use_before_redef() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let _y = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(1)); // use of x (node 1)
        b.push(Opcode::MovI, vec![x], vec![Operand::Imm(9)]); // redef of x (node 2)
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        assert!(dfg.succs[1]
            .iter()
            .any(|e| e.to == 2 && e.kind == DepKind::Order && e.weight == 0));
    }

    #[test]
    fn waw_edge_orders_defs() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1); // node 0 defines x
        b.push(Opcode::MovI, vec![x], vec![Operand::Imm(2)]); // node 1 redefines x
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        assert!(dfg.succs[0]
            .iter()
            .any(|e| e.to == 1 && e.kind == DepKind::Order && e.weight == 1));
    }

    #[test]
    fn loads_reorder_but_not_across_stores() {
        let mut b = FunctionBuilder::new("f");
        let base = b.imm(4096);
        let _l1 = b.load(base, 0); // node 1
        let _l2 = b.load(base, 8); // node 2
        b.store(base, 0, Operand::Imm(1)); // node 3
        let _l3 = b.load(base, 16); // node 4
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        // No edge between the two loads.
        assert!(!dfg.succs[1].iter().any(|e| e.to == 2));
        // Both loads ordered before the store; store before later load.
        assert!(dfg.succs[1].iter().any(|e| e.to == 3));
        assert!(dfg.succs[2].iter().any(|e| e.to == 3));
        assert!(dfg.succs[3].iter().any(|e| e.to == 4));
    }

    #[test]
    fn detect_br_orders_before_next_store() {
        let mut b = FunctionBuilder::new("f");
        let base = b.imm(4096);
        let p = b.cmp(CmpKind::Ne, Operand::Reg(base), Operand::Reg(base));
        b.push(Opcode::DetectBr, vec![], vec![Operand::Reg(p)]); // node 2
        b.store(base, 0, Operand::Imm(1)); // node 3
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        assert!(dfg.succs[2]
            .iter()
            .any(|e| e.to == 3 && e.kind == DepKind::Order && e.weight == 1));
    }

    #[test]
    fn terminator_depends_on_everything() {
        let mut b = FunctionBuilder::new("f");
        let _x = b.imm(1);
        let _y = b.imm(2);
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        let term = dfg.len() - 1;
        for j in 0..term {
            assert!(dfg.succs[j].iter().any(|e| e.to == term));
        }
    }

    #[test]
    fn heights_reflect_critical_path() {
        // mov -> mul -> add chain: height(mov) = 1 + 3 + 1 = 5.
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(3));
        let _z = b.binop(Opcode::Add, Operand::Reg(y), Operand::Imm(1));
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        assert_eq!(dfg.height[0], 1 + lat().mul + lat().alu.max(1));
        assert!(dfg.critical_path() >= dfg.height[0]);
    }

    #[test]
    fn priority_order_is_by_decreasing_height() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let _dead_cheap = b.imm(2);
        let y = b.binop(Opcode::Mul, Operand::Reg(x), Operand::Imm(3));
        let _z = b.binop(Opcode::Add, Operand::Reg(y), Operand::Imm(1));
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        let order = dfg.priority_order();
        for w in order.windows(2) {
            assert!(dfg.height[w[0]] >= dfg.height[w[1]]);
        }
        // The long chain head comes before the independent cheap mov.
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
    }

    #[test]
    fn preds_mirror_succs() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let _y = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(1));
        b.halt_imm(0);
        let f = b.finish();
        let dfg = BlockDfg::build(&f, f.entry, &lat());
        let fwd: usize = dfg.succs.iter().map(|v| v.len()).sum();
        let bwd: usize = dfg.preds.iter().map(|v| v.len()).sum();
        assert_eq!(fwd, bwd);
    }
}
