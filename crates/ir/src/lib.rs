//! # casted-ir — the intermediate representation of the CASTED reproduction
//!
//! This crate defines the two program representations shared by the whole
//! workspace:
//!
//! 1. **The virtual-register IR** ([`Module`], [`Function`], [`Insn`]):
//!    a low-level, three-address, register-class-typed code representation
//!    playing the role GCC's RTL plays in the paper. The error-detection
//!    pass (Algorithm 1 of the paper) and the Bottom-Up-Greedy cluster
//!    assignment (Algorithm 2) both run on it.
//! 2. **The machine-level scheduled form** ([`vliw::ScheduledProgram`]):
//!    code placed into per-cycle VLIW bundles, with every instruction
//!    assigned to a cluster. The cycle-accurate simulator
//!    (`casted-sim`) executes this form.
//!
//! The IR deliberately models only what the paper's argument depends on:
//! register classes (general-purpose, floating-point, predicate — the
//! Itanium-style `64GP/64FL/32PR` files of Table I), instruction
//! latencies, the replicable/non-replicable instruction distinction
//! (stores and control flow are never replicated), and def/use
//! information precise enough for register renaming and data-flow-graph
//! construction.
//!
//! ## Quick tour
//!
//! ```
//! use casted_ir::{Module, FunctionBuilder, Opcode, RegClass, Operand};
//!
//! let mut module = Module::new("demo");
//! let mut b = FunctionBuilder::new("main");
//! let r = b.new_reg(RegClass::Gp);
//! b.push(Opcode::MovI, vec![r], vec![Operand::Imm(21)]);
//! let r2 = b.new_reg(RegClass::Gp);
//! b.push(Opcode::Add, vec![r2], vec![Operand::Reg(r), Operand::Reg(r)]);
//! b.push(Opcode::Out, vec![], vec![Operand::Reg(r2)]);
//! b.halt_imm(0);
//! let f = b.finish();
//! let fid = module.add_function(f);
//! module.entry = Some(fid);
//!
//! let out = casted_ir::interp::run(&module, 1_000).unwrap();
//! assert_eq!(out.stream, vec![casted_ir::interp::OutVal::Int(42)]);
//! ```

pub mod builder;
pub mod cfg;
pub mod codec;
pub mod dfg;
pub mod func;
pub mod insn;
pub mod interp;
pub mod liveness;
pub mod machine;
pub mod op;
pub mod print;
pub mod reg;
pub mod semantics;
pub mod testgen;
pub mod verify;
pub mod vliw;

pub use builder::FunctionBuilder;
pub use func::{Block, BlockId, Function, FuncId, Global, GlobalId, Module};
pub use insn::{Insn, InsnId, Operand, Provenance};
pub use machine::{CacheLevelConfig, Cluster, LatencyConfig, MachineConfig};
pub use op::{CmpKind, Opcode};
pub use reg::{Reg, RegClass};
