//! Instructions: opcode + defs + uses + provenance.

use crate::func::BlockId;
use crate::op::Opcode;
use crate::reg::Reg;

/// Dense instruction id within a [`crate::Function`]'s arena. Ids are
/// stable across pass transformations (passes append new instructions
/// and rebuild block orderings), which is what lets the error-detection
/// pass keep its "replicated instructions table" (paper Fig. 4a) keyed
/// by instruction id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InsnId(pub u32);

impl InsnId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A register-or-immediate operand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// A virtual register read.
    Reg(Reg),
    /// An integer immediate.
    Imm(i64),
    /// A float immediate.
    FImm(f64),
}

impl Operand {
    /// The register read, if this operand is a register.
    #[inline]
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

/// Where an instruction came from — the provenance classes the
/// error-detection pass and the DCED placement policy dispatch on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Ordinary program instruction emitted by the front-end.
    Original,
    /// Exact duplicate of an original instruction, emitted by the
    /// error-detection pass (shown in blue in the paper's figures).
    Duplicate,
    /// A compare emitted by the check-insertion step: compares an
    /// original register against its renamed redundant copy.
    CheckCmp,
    /// The fault-detection branch paired with a [`Provenance::CheckCmp`].
    CheckBr,
    /// A copy instruction inserted during register renaming for values
    /// that are live into the redundant code but have no duplicate
    /// producer (Algorithm 1, `rename_writes_and_uses`, the
    /// "no duplicates" arm).
    IsolationCopy,
    /// Compiler-generated instruction (spill/reload code, scaffolding).
    /// Never replicated (paper §III-B, category 3).
    CompilerGen,
    /// Instruction belonging to an unprotected library routine linked
    /// into the program. Never replicated: the paper notes CASTED "does
    /// not replicate the code of the library functions linked into the
    /// output when these libraries are supplied as binaries" — faults
    /// striking these instructions are the source of the residual
    /// undetected-corruption tail in Fig. 9.
    LibraryCode,
}

impl Provenance {
    /// True for instructions that belong to the redundant (replicated +
    /// checking) code stream — the stream DCED pins to the second core.
    #[inline]
    pub fn is_redundant_stream(self) -> bool {
        matches!(
            self,
            Provenance::Duplicate
                | Provenance::CheckCmp
                | Provenance::CheckBr
                | Provenance::IsolationCopy
        )
    }
}

/// One IR instruction.
///
/// `defs` holds at most one register in the current opcode set, but is a
/// vector to keep pass code uniform. Branch targets live in `target` /
/// `target2` so that register operands stay positional.
#[derive(Clone, Debug, PartialEq)]
pub struct Insn {
    /// Opcode.
    pub op: Opcode,
    /// Registers written (0 or 1).
    pub defs: Vec<Reg>,
    /// Operand list; register reads in positional order.
    pub uses: Vec<Operand>,
    /// Address offset for memory instructions (`mem[base + imm]`).
    pub imm: i64,
    /// Primary branch target (taken side for `BrCond`).
    pub target: Option<BlockId>,
    /// Secondary branch target (fall-through side for `BrCond`).
    pub target2: Option<BlockId>,
    /// Provenance class.
    pub prov: Provenance,
}

impl Insn {
    /// Build a plain (non-branch) instruction with `Original` provenance.
    pub fn new(op: Opcode, defs: Vec<Reg>, uses: Vec<Operand>) -> Self {
        Insn {
            op,
            defs,
            uses,
            imm: 0,
            target: None,
            target2: None,
            prov: Provenance::Original,
        }
    }

    /// Set the memory offset immediate, builder-style.
    pub fn with_imm(mut self, imm: i64) -> Self {
        self.imm = imm;
        self
    }

    /// Set the provenance, builder-style.
    pub fn with_prov(mut self, prov: Provenance) -> Self {
        self.prov = prov;
        self
    }

    /// The single defined register, if any.
    #[inline]
    pub fn def(&self) -> Option<Reg> {
        self.defs.first().copied()
    }

    /// Iterate over the registers this instruction reads.
    pub fn reg_uses(&self) -> impl Iterator<Item = Reg> + '_ {
        self.uses.iter().filter_map(|o| o.reg())
    }

    /// True if the instruction is eligible for replication by the
    /// error-detection pass: its opcode is replicable *and* it is an
    /// original program instruction (not compiler-generated, not
    /// unprotected library code, not already part of the redundant
    /// stream).
    #[inline]
    pub fn is_replicable(&self) -> bool {
        self.op.is_replicable() && self.prov == Provenance::Original
    }

    /// True if this instruction is "non-replicated" in the paper's sense
    /// — a store-class or control-flow instruction that must have its
    /// register operands checked before execution.
    #[inline]
    pub fn needs_operand_checks(&self) -> bool {
        (self.op.is_store_class() || self.op.is_terminator())
            && !matches!(self.prov, Provenance::LibraryCode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpKind;
    use crate::reg::Reg;

    #[test]
    fn def_and_uses() {
        let i = Insn::new(
            Opcode::Add,
            vec![Reg::gp(2)],
            vec![Operand::Reg(Reg::gp(0)), Operand::Reg(Reg::gp(1))],
        );
        assert_eq!(i.def(), Some(Reg::gp(2)));
        let uses: Vec<_> = i.reg_uses().collect();
        assert_eq!(uses, vec![Reg::gp(0), Reg::gp(1)]);
    }

    #[test]
    fn imm_operands_are_not_reg_uses() {
        let i = Insn::new(
            Opcode::Add,
            vec![Reg::gp(1)],
            vec![Operand::Reg(Reg::gp(0)), Operand::Imm(7)],
        );
        assert_eq!(i.reg_uses().count(), 1);
    }

    #[test]
    fn replicability_respects_provenance() {
        let orig = Insn::new(Opcode::Add, vec![Reg::gp(1)], vec![Operand::Imm(1)]);
        assert!(orig.is_replicable());
        let dup = orig.clone().with_prov(Provenance::Duplicate);
        assert!(!dup.is_replicable());
        let lib = orig.clone().with_prov(Provenance::LibraryCode);
        assert!(!lib.is_replicable());
        let cg = orig.with_prov(Provenance::CompilerGen);
        assert!(!cg.is_replicable());
    }

    #[test]
    fn store_needs_operand_checks() {
        let st = Insn::new(
            Opcode::Store,
            vec![],
            vec![Operand::Reg(Reg::gp(0)), Operand::Reg(Reg::gp(1))],
        );
        assert!(st.needs_operand_checks());
        let lib_st = st.clone().with_prov(Provenance::LibraryCode);
        assert!(!lib_st.needs_operand_checks());
    }

    #[test]
    fn redundant_stream_classes() {
        assert!(Provenance::Duplicate.is_redundant_stream());
        assert!(Provenance::CheckCmp.is_redundant_stream());
        assert!(Provenance::CheckBr.is_redundant_stream());
        assert!(Provenance::IsolationCopy.is_redundant_stream());
        assert!(!Provenance::Original.is_redundant_stream());
        assert!(!Provenance::LibraryCode.is_redundant_stream());
        assert!(!Provenance::CompilerGen.is_redundant_stream());
    }

    #[test]
    fn cmp_defines_predicate() {
        let i = Insn::new(
            Opcode::Cmp(CmpKind::Ne),
            vec![Reg::pr(0)],
            vec![Operand::Reg(Reg::gp(0)), Operand::Reg(Reg::gp(1))],
        );
        assert_eq!(i.def().unwrap().class, crate::RegClass::Pr);
    }
}
