//! Shared functional semantics of the opcode set.
//!
//! Both the reference interpreter ([`crate::interp`]) and the
//! cycle-accurate simulator (`casted-sim`) evaluate instructions through
//! this module, so the two can never disagree about *what* an
//! instruction computes — they only differ in *when*.

use crate::op::{CmpKind, Opcode};

/// A dynamically typed register value. The class system guarantees each
/// register only ever holds one variant; the enum exists so fault
/// injection can flip bits in any register class uniformly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Val {
    /// General-purpose 64-bit integer.
    I(i64),
    /// 64-bit float.
    F(f64),
    /// Predicate bit.
    B(bool),
}

impl Val {
    /// Integer view (panics on wrong class — an IR type error, caught by
    /// the verifier before execution).
    #[inline]
    pub fn as_i(self) -> i64 {
        match self {
            Val::I(v) => v,
            other => panic!("expected integer value, got {other:?}"),
        }
    }

    /// Float view.
    #[inline]
    pub fn as_f(self) -> f64 {
        match self {
            Val::F(v) => v,
            other => panic!("expected float value, got {other:?}"),
        }
    }

    /// Predicate view.
    #[inline]
    pub fn as_b(self) -> bool {
        match self {
            Val::B(v) => v,
            other => panic!("expected predicate value, got {other:?}"),
        }
    }

    /// Flip bit `bit` of the value — the paper's fault model (§IV-C):
    /// "a random bit of the register output is flipped". For predicate
    /// registers the single bit is inverted; for floats the flip is
    /// applied to the IEEE-754 bit pattern.
    #[inline]
    pub fn flip_bit(self, bit: u32) -> Val {
        match self {
            Val::I(v) => Val::I(v ^ (1i64 << (bit & 63))),
            Val::F(v) => Val::F(f64::from_bits(v.to_bits() ^ (1u64 << (bit & 63)))),
            Val::B(v) => Val::B(!v),
        }
    }
}

/// Errors raised by instruction evaluation — these become the
/// `Exceptions` fault-outcome class of the paper when they occur during
/// a fault-injection run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Memory access outside the valid address range (includes the trap
    /// page below `DATA_BASE`).
    MemOutOfBounds(i64),
    /// Memory access not aligned to 8 bytes.
    Misaligned(i64),
}

/// Evaluate a *pure* (non-memory, non-control) opcode over its operand
/// values. Returns the defined value. Integer arithmetic wraps (a bit
/// flip must corrupt data, not abort the evaluator).
///
/// Memory and control-flow opcodes are the caller's responsibility and
/// panic here.
pub fn eval_pure(op: Opcode, uses: &[Val]) -> Result<Val, ExecError> {
    let i = |k: usize| uses[k].as_i();
    let f = |k: usize| uses[k].as_f();
    Ok(match op {
        Opcode::Add => Val::I(i(0).wrapping_add(i(1))),
        Opcode::Sub => Val::I(i(0).wrapping_sub(i(1))),
        Opcode::Mul => Val::I(i(0).wrapping_mul(i(1))),
        Opcode::Div => {
            let d = i(1);
            if d == 0 {
                return Err(ExecError::DivByZero);
            }
            Val::I(i(0).wrapping_div(d))
        }
        Opcode::Rem => {
            let d = i(1);
            if d == 0 {
                return Err(ExecError::DivByZero);
            }
            Val::I(i(0).wrapping_rem(d))
        }
        Opcode::And => Val::I(i(0) & i(1)),
        Opcode::Or => Val::I(i(0) | i(1)),
        Opcode::Xor => Val::I(i(0) ^ i(1)),
        Opcode::Shl => Val::I(i(0).wrapping_shl((i(1) & 63) as u32)),
        Opcode::Shr => Val::I(((i(0) as u64).wrapping_shr((i(1) & 63) as u32)) as i64),
        Opcode::Sra => Val::I(i(0).wrapping_shr((i(1) & 63) as u32)),
        Opcode::MovI => uses[0],
        Opcode::Sel => {
            if uses[0].as_b() {
                uses[1]
            } else {
                uses[2]
            }
        }
        // `Cmp` is polymorphic over GP and PR operands: the check
        // instructions emitted by the error-detection pass compare a
        // register of *any* class against its renamed copy.
        Opcode::Cmp(k) => Val::B(eval_cmp_vals(k, uses[0], uses[1])),
        Opcode::FCmp(k) => Val::B(k.eval_float(f(0), f(1))),
        Opcode::FAdd => Val::F(f(0) + f(1)),
        Opcode::FSub => Val::F(f(0) - f(1)),
        Opcode::FMul => Val::F(f(0) * f(1)),
        Opcode::FDiv => Val::F(f(0) / f(1)),
        Opcode::FMovI => uses[0],
        // Bitwise majority over three same-class copies (TMRED): any
        // single corrupted copy is out-voted. Polymorphic like `Cmp`.
        Opcode::Vote => match (uses[0], uses[1], uses[2]) {
            (Val::I(a), Val::I(b), Val::I(c)) => Val::I((a & b) | (a & c) | (b & c)),
            (Val::F(a), Val::F(b), Val::F(c)) => {
                let (a, b, c) = (a.to_bits(), b.to_bits(), c.to_bits());
                Val::F(f64::from_bits((a & b) | (a & c) | (b & c)))
            }
            (Val::B(a), Val::B(b), Val::B(c)) => Val::B((a & b) | (a & c) | (b & c)),
            (a, b, c) => panic!("vote over mismatched value classes: {a:?}/{b:?}/{c:?}"),
        },
        Opcode::I2F => Val::F(i(0) as f64),
        Opcode::F2I => {
            let v = f(0);
            Val::I(if v.is_nan() { 0 } else { v as i64 })
        }
        other => panic!("eval_pure called on non-pure opcode {other}"),
    })
}

/// Validate and translate a byte address for an 8-byte memory access.
/// `words` is the size of memory in 8-byte words. Returns the word
/// index.
#[inline]
pub fn check_addr(addr: i64, words: usize) -> Result<usize, ExecError> {
    if addr % 8 != 0 {
        return Err(ExecError::Misaligned(addr));
    }
    if addr < crate::func::DATA_BASE || (addr as u64 / 8) >= words as u64 {
        return Err(ExecError::MemOutOfBounds(addr));
    }
    Ok((addr / 8) as usize)
}

/// Comparison used by [`CmpKind::eval_int`] re-exported for check code.
pub use crate::op::CmpKind as Cmp;

/// Evaluate a `CmpKind` over two `Val`s of the same class (used by the
/// check instructions, which compare original vs renamed registers of
/// any class).
#[inline]
pub fn eval_cmp_vals(kind: CmpKind, a: Val, b: Val) -> bool {
    match (a, b) {
        (Val::I(x), Val::I(y)) => kind.eval_int(x, y),
        (Val::F(x), Val::F(y)) => match kind {
            // Bitwise comparison for checks: a flipped NaN bit must
            // still be detected, so equality is on the bit pattern.
            CmpKind::Eq => x.to_bits() == y.to_bits(),
            CmpKind::Ne => x.to_bits() != y.to_bits(),
            _ => kind.eval_float(x, y),
        },
        (Val::B(x), Val::B(y)) => kind.eval_int(x as i64, y as i64),
        _ => panic!("cmp over mismatched value classes: {a:?} vs {b:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(
            eval_pure(Opcode::Add, &[Val::I(i64::MAX), Val::I(1)]).unwrap(),
            Val::I(i64::MIN)
        );
        assert_eq!(
            eval_pure(Opcode::Mul, &[Val::I(i64::MAX), Val::I(2)]).unwrap(),
            Val::I(-2)
        );
    }

    #[test]
    fn div_by_zero_is_exception() {
        assert_eq!(
            eval_pure(Opcode::Div, &[Val::I(1), Val::I(0)]),
            Err(ExecError::DivByZero)
        );
        assert_eq!(
            eval_pure(Opcode::Rem, &[Val::I(1), Val::I(0)]),
            Err(ExecError::DivByZero)
        );
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(
            eval_pure(Opcode::Shl, &[Val::I(1), Val::I(65)]).unwrap(),
            Val::I(2)
        );
        assert_eq!(
            eval_pure(Opcode::Shr, &[Val::I(-1), Val::I(63)]).unwrap(),
            Val::I(1)
        );
        assert_eq!(
            eval_pure(Opcode::Sra, &[Val::I(-8), Val::I(1)]).unwrap(),
            Val::I(-4)
        );
    }

    #[test]
    fn select() {
        assert_eq!(
            eval_pure(Opcode::Sel, &[Val::B(true), Val::I(1), Val::I(2)]).unwrap(),
            Val::I(1)
        );
        assert_eq!(
            eval_pure(Opcode::Sel, &[Val::B(false), Val::I(1), Val::I(2)]).unwrap(),
            Val::I(2)
        );
    }

    #[test]
    fn f2i_saturates_nan_to_zero() {
        assert_eq!(eval_pure(Opcode::F2I, &[Val::F(f64::NAN)]).unwrap(), Val::I(0));
        assert_eq!(eval_pure(Opcode::F2I, &[Val::F(3.9)]).unwrap(), Val::I(3));
    }

    #[test]
    fn bit_flip_model() {
        assert_eq!(Val::I(0).flip_bit(3), Val::I(8));
        assert_eq!(Val::I(8).flip_bit(3), Val::I(0));
        assert_eq!(Val::B(true).flip_bit(0), Val::B(false));
        let f = Val::F(1.0).flip_bit(63); // sign bit
        assert_eq!(f, Val::F(-1.0));
    }

    #[test]
    fn addr_checks() {
        // 4096/8 = 512 words of trap page; give 600 words total.
        assert!(check_addr(4096, 600).is_ok());
        assert_eq!(check_addr(4097, 600), Err(ExecError::Misaligned(4097)));
        assert_eq!(check_addr(0, 600), Err(ExecError::MemOutOfBounds(0)));
        assert_eq!(check_addr(-8, 600), Err(ExecError::MemOutOfBounds(-8)));
        assert_eq!(check_addr(600 * 8, 600), Err(ExecError::MemOutOfBounds(4800)));
    }

    #[test]
    fn vote_out_votes_a_single_corrupted_copy() {
        // A strike in any one copy is corrected in all three classes.
        let good = Val::I(0x5a5a_5a5a);
        for lane in 0..3usize {
            let mut v = [good; 3];
            v[lane] = good.flip_bit(17);
            assert_eq!(eval_pure(Opcode::Vote, &v).unwrap(), good);
        }
        let f = Val::F(2.75);
        for lane in 0..3usize {
            let mut v = [f; 3];
            v[lane] = f.flip_bit(63);
            assert_eq!(eval_pure(Opcode::Vote, &v).unwrap(), f);
        }
        let p = Val::B(true);
        for lane in 0..3usize {
            let mut v = [p; 3];
            v[lane] = p.flip_bit(0);
            assert_eq!(eval_pure(Opcode::Vote, &v).unwrap(), p);
        }
        // NaN payload bits survive the vote bit-exactly.
        let nan = Val::F(f64::NAN);
        let voted = eval_pure(Opcode::Vote, &[nan, nan.flip_bit(3), nan]).unwrap();
        assert!(!eval_cmp_vals(CmpKind::Ne, voted, nan));
        // Two corrupted copies win the vote — TMR only covers single
        // strikes (documented in docs/SCHEMES.md).
        let bad = good.flip_bit(2);
        assert_eq!(eval_pure(Opcode::Vote, &[good, bad, bad]).unwrap(), bad);
    }

    #[test]
    fn check_cmp_detects_flipped_nan_bits() {
        let a = Val::F(f64::NAN);
        let b = a.flip_bit(0);
        // IEEE equality would call NaN != NaN regardless; bitwise Ne
        // must be true only because the bit differs.
        assert!(eval_cmp_vals(CmpKind::Ne, a, b));
        assert!(!eval_cmp_vals(CmpKind::Ne, a, a));
    }
}
