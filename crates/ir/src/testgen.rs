//! Deterministic random-program generation for property-based tests.
//!
//! [`random_module`] builds a *valid, terminating, exception-free*
//! module from a seed: a few global arrays, an entry section, a
//! bounded counted loop whose body mixes ALU/FP/memory/compare/select
//! operations over live registers, and an output section that makes
//! every computed chain observable. Property tests across the
//! workspace use it to check that every pass and both execution
//! engines agree on program semantics for arbitrary code shapes.

use crate::builder::FunctionBuilder;
use crate::func::{GlobalClass, Module};
use crate::insn::Operand;
use crate::op::{CmpKind, Opcode};
use crate::reg::{Reg, RegClass};

/// Small deterministic PRNG (xorshift64*), so `casted-ir` needs no
/// external dependency for generation.
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seeded generator (seed 0 is remapped).
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed.max(1).wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Pick an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Biased coin.
    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Options for [`random_module`].
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// Instructions generated in the loop body.
    pub body_ops: usize,
    /// Loop iterations (kept small; tests run many seeds).
    pub iterations: i64,
    /// Number of 8-word global arrays.
    pub globals: usize,
    /// Include floating-point operations.
    pub with_float: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            body_ops: 40,
            iterations: 7,
            globals: 2,
            with_float: true,
        }
    }
}

/// Generate a random valid module (see module docs). The program is
/// guaranteed to terminate (counted loop), never to fault (addresses
/// stay in bounds, divisors are non-zero constants), and to `out` the
/// values of its live chains so corruption is observable.
pub fn random_module(seed: u64, opts: &GenOptions) -> Module {
    let mut g = Gen::new(seed);
    let mut m = Module::new(format!("gen_{seed}"));
    const GLOBAL_LEN: usize = 8;
    let bases: Vec<i64> = (0..opts.globals.max(1))
        .map(|i| {
            let init: Vec<i64> = (0..GLOBAL_LEN).map(|k| (seed as i64 ^ (k as i64 * 37)) % 1000).collect();
            m.add_global(format!("g{i}"), GlobalClass::Int, GLOBAL_LEN, init).1
        })
        .collect();

    let mut b = FunctionBuilder::new("main");

    // Live register pools.
    let mut gp: Vec<Reg> = Vec::new();
    let mut fp: Vec<Reg> = Vec::new();

    for k in 0..4 {
        gp.push(b.imm((seed as i64).wrapping_add(k * 13) % 100));
    }
    if opts.with_float {
        fp.push(b.fimm(1.5));
        fp.push(b.fimm((seed % 9) as f64 + 0.25));
    }

    // Counted loop: i from 0 to iterations.
    let i = b.imm(0);
    let head = b.new_block("head");
    let body = b.new_block("body");
    let exit = b.new_block("exit");
    b.br(head);
    b.switch_to(head);
    let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(opts.iterations));
    b.br_cond(p, body, exit);
    b.switch_to(body);

    for _ in 0..opts.body_ops {
        match g.below(if opts.with_float { 10 } else { 7 }) {
            0..=2 => {
                // Integer ALU over two live values / immediates.
                let ops = [
                    Opcode::Add,
                    Opcode::Sub,
                    Opcode::Mul,
                    Opcode::And,
                    Opcode::Or,
                    Opcode::Xor,
                    Opcode::Sra,
                ];
                let op = *g.pick(&ops);
                let a = Operand::Reg(*g.pick(&gp));
                let c = if g.chance(40) {
                    Operand::Imm((g.below(64) as i64) - 16)
                } else {
                    Operand::Reg(*g.pick(&gp))
                };
                let d = b.binop(op, a, c);
                gp.push(d);
            }
            3 => {
                // Division by a non-zero constant (no faults).
                let a = Operand::Reg(*g.pick(&gp));
                let d = b.binop(Opcode::Div, a, Operand::Imm(1 + g.below(9) as i64));
                gp.push(d);
            }
            4 => {
                // In-bounds load: base + masked element offset.
                let base = b.imm(*g.pick(&bases));
                let v = b.load(base, (g.below(GLOBAL_LEN) * 8) as i64);
                gp.push(v);
            }
            5 => {
                // In-bounds store of a live value.
                let base = b.imm(*g.pick(&bases));
                let v = Operand::Reg(*g.pick(&gp));
                b.store(base, (g.below(GLOBAL_LEN) * 8) as i64, v);
            }
            6 => {
                // Select over a fresh comparison (exercises predicates).
                let x = Operand::Reg(*g.pick(&gp));
                let y = Operand::Reg(*g.pick(&gp));
                let p = b.cmp(*g.pick(&[CmpKind::Lt, CmpKind::Eq, CmpKind::Ge]), x, y);
                let d = b.new_reg(RegClass::Gp);
                b.push(Opcode::Sel, vec![d], vec![Operand::Reg(p), x, y]);
                gp.push(d);
            }
            7 => {
                let ops = [Opcode::FAdd, Opcode::FSub, Opcode::FMul];
                let op = *g.pick(&ops);
                let a = Operand::Reg(*g.pick(&fp));
                let c = Operand::Reg(*g.pick(&fp));
                let d = b.fbinop(op, a, c);
                fp.push(d);
            }
            8 => {
                // int -> float -> keep both pools alive.
                let d = b.new_reg(RegClass::Fp);
                b.push(Opcode::I2F, vec![d], vec![Operand::Reg(*g.pick(&gp))]);
                fp.push(d);
            }
            _ => {
                let d = b.new_reg(RegClass::Gp);
                b.push(Opcode::F2I, vec![d], vec![Operand::Reg(*g.pick(&fp))]);
                gp.push(d);
            }
        }
        // Keep the pools bounded so pressure stays plausible.
        if gp.len() > 24 {
            gp.remove(0);
        }
        if fp.len() > 12 {
            fp.remove(0);
        }
    }

    // Loop-carried accumulation so iterations interact.
    let acc = gp[0];
    let latest = *gp.last().unwrap();
    let folded = b.binop(Opcode::Xor, Operand::Reg(acc), Operand::Reg(latest));
    b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(folded)]);

    let i2 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
    b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i2)]);
    b.br(head);

    // Observable outputs: the accumulator, a sample of globals, a float.
    b.switch_to(exit);
    b.out(Operand::Reg(acc));
    for &base in &bases {
        let br = b.imm(base);
        let v = b.load(br, 0);
        b.out(Operand::Reg(v));
    }
    if opts.with_float {
        let f = *fp.last().unwrap();
        let d = b.new_reg(RegClass::Gp);
        b.push(Opcode::F2I, vec![d], vec![Operand::Reg(f)]);
        b.out(Operand::Reg(d));
    }
    b.halt_imm(0);

    let id = m.add_function(b.finish());
    m.entry = Some(id);
    debug_assert!(
        crate::verify::verify_module(&m).is_ok(),
        "generator produced invalid module for seed {seed}"
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{self, StopReason};

    #[test]
    fn generated_modules_verify_and_terminate() {
        for seed in 0..50 {
            let m = random_module(seed, &GenOptions::default());
            crate::verify::verify_module(&m).expect("valid module");
            let r = interp::run(&m, 1_000_000).expect("run");
            assert_eq!(r.stop, StopReason::Halt(0), "seed {seed}: {:?}", r.stop);
            assert!(!r.stream.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_module(42, &GenOptions::default());
        let b = random_module(42, &GenOptions::default());
        let ra = interp::run(&a, 1_000_000).unwrap();
        let rb = interp::run(&b, 1_000_000).unwrap();
        assert_eq!(ra.stream, rb.stream);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_module(1, &GenOptions::default());
        let b = random_module(2, &GenOptions::default());
        let ra = interp::run(&a, 1_000_000).unwrap();
        let rb = interp::run(&b, 1_000_000).unwrap();
        assert_ne!(ra.stream, rb.stream);
    }
}
