//! Deterministic random-program generation for property-based tests
//! and for the `casted-difftest` differential fuzzer.
//!
//! [`random_module`] builds a *valid, terminating, exception-free*
//! module from a seed: a few global arrays, an entry section, a
//! bounded counted loop whose body mixes ALU/FP/memory/compare/select
//! operations over live registers, and an output section that makes
//! every computed chain observable.
//!
//! The generator is **structure-aware**: beyond the straight-line
//! arithmetic soup, [`GenOptions`] can ask for the control and data
//! shapes the seven workload kernels actually exercise —
//!
//! * **branchy diamonds** (`diamonds`): `if/else` merges writing a
//!   shared register from both arms, the shape if-conversion and the
//!   BUG clustering heuristic care about;
//! * **nested counted loops** (`inner_loops`): short inner loops with
//!   loop-carried accumulators, the shape that dominates the decode
//!   kernels;
//! * **computed-address memory traffic** (always on): masked indexed
//!   loads/stores through an address register, exercising the
//!   address-check paths and the simulator cache;
//! * **library-call shapes** (`lib_calls`): short inlined runs carrying
//!   [`Provenance::LibraryCode`], which the error-detection pass must
//!   leave unprotected — the source of the paper's residual
//!   undetected-corruption tail. Fault-probe oracles that assert "no
//!   silent corruption" must generate with `lib_calls: 0`.
//!
//! ## Determinism contract
//!
//! All randomness comes from [`casted_util::Rng`] (xoshiro256++ with
//! the workspace's frozen stream contract), so a `(seed, GenOptions)`
//! pair names the same module on every platform and toolchain forever
//! — the property `difftest` replay lines rely on. The
//! `golden_module_hash_is_frozen` test pins this.

use crate::builder::FunctionBuilder;
use crate::func::{GlobalClass, Module};
use crate::insn::{Insn, Operand, Provenance};
use crate::op::{CmpKind, Opcode};
use crate::reg::{Reg, RegClass};

/// Deterministic generator RNG — a thin façade over
/// [`casted_util::Rng`], kept so generation draws are covered by the
/// same frozen-stream contract as the fault-injection campaigns.
#[derive(Clone, Debug)]
pub struct Gen {
    rng: casted_util::Rng,
}

impl Gen {
    /// Seeded generator. Every seed is valid.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: casted_util::Rng::seed_from_u64(seed),
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.below(n as u64) as usize
    }

    /// Pick an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        self.rng.pick(xs)
    }

    /// Biased coin.
    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Options for [`random_module`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenOptions {
    /// Instructions generated in the loop body.
    pub body_ops: usize,
    /// Loop iterations (kept small; tests run many seeds).
    pub iterations: i64,
    /// Number of 8-word global arrays.
    pub globals: usize,
    /// Include floating-point operations.
    pub with_float: bool,
    /// `if/else` diamonds emitted in the loop body.
    pub diamonds: usize,
    /// Nested counted inner loops (3 iterations each) in the body.
    pub inner_loops: usize,
    /// Inlined "library call" shapes (`Provenance::LibraryCode` runs,
    /// unprotected by error detection) in the body.
    pub lib_calls: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            body_ops: 40,
            iterations: 7,
            globals: 2,
            with_float: true,
            diamonds: 2,
            inner_loops: 1,
            lib_calls: 1,
        }
    }
}

impl GenOptions {
    /// Compact `k:v` encoding used in `difftest` replay lines,
    /// parsed back by [`GenOptions::parse`].
    pub fn encode(&self) -> String {
        format!(
            "ops:{},it:{},g:{},fp:{},dia:{},il:{},lib:{}",
            self.body_ops,
            self.iterations,
            self.globals,
            self.with_float as u8,
            self.diamonds,
            self.inner_loops,
            self.lib_calls
        )
    }

    /// Parse an [`GenOptions::encode`]d string.
    pub fn parse(s: &str) -> Result<GenOptions, String> {
        let mut o = GenOptions::default();
        for kv in s.split(',') {
            let (k, v) = kv
                .split_once(':')
                .ok_or_else(|| format!("bad gen option '{kv}' (expected k:v)"))?;
            let n: i64 = v.parse().map_err(|_| format!("bad value in '{kv}'"))?;
            match k {
                "ops" => o.body_ops = n as usize,
                "it" => o.iterations = n,
                "g" => o.globals = n as usize,
                "fp" => o.with_float = n != 0,
                "dia" => o.diamonds = n as usize,
                "il" => o.inner_loops = n as usize,
                "lib" => o.lib_calls = n as usize,
                _ => return Err(format!("unknown gen option '{k}'")),
            }
        }
        Ok(o)
    }
}

const GLOBAL_LEN: usize = 8;

/// Shared generation state threaded through the shape emitters.
struct Emit<'a> {
    b: FunctionBuilder,
    g: Gen,
    gp: Vec<Reg>,
    fp: Vec<Reg>,
    bases: &'a [i64],
    with_float: bool,
}

impl Emit<'_> {
    /// Keep the live pools bounded so register pressure stays
    /// plausible.
    fn trim_pools(&mut self) {
        if self.gp.len() > 24 {
            self.gp.remove(0);
        }
        if self.fp.len() > 12 {
            self.fp.remove(0);
        }
    }

    /// One straight-line operation drawn from the op mix.
    fn straight_op(&mut self) {
        let (b, g) = (&mut self.b, &mut self.g);
        match g.below(if self.with_float { 11 } else { 8 }) {
            0..=2 => {
                // Integer ALU over two live values / immediates.
                let ops = [
                    Opcode::Add,
                    Opcode::Sub,
                    Opcode::Mul,
                    Opcode::And,
                    Opcode::Or,
                    Opcode::Xor,
                    Opcode::Sra,
                ];
                let op = *g.pick(&ops);
                let a = Operand::Reg(*g.pick(&self.gp));
                let c = if g.chance(40) {
                    Operand::Imm((g.below(64) as i64) - 16)
                } else {
                    Operand::Reg(*g.pick(&self.gp))
                };
                let d = b.binop(op, a, c);
                self.gp.push(d);
            }
            3 => {
                // Division by a non-zero constant (no faults).
                let a = Operand::Reg(*g.pick(&self.gp));
                let d = b.binop(Opcode::Div, a, Operand::Imm(1 + g.below(9) as i64));
                self.gp.push(d);
            }
            4 => {
                // In-bounds load: base + masked element offset.
                let base = b.imm(*g.pick(self.bases));
                let v = b.load(base, (g.below(GLOBAL_LEN) * 8) as i64);
                self.gp.push(v);
            }
            5 => {
                // In-bounds store of a live value.
                let base = b.imm(*g.pick(self.bases));
                let v = Operand::Reg(*g.pick(&self.gp));
                b.store(base, (g.below(GLOBAL_LEN) * 8) as i64, v);
            }
            6 => {
                // Select over a fresh comparison (exercises predicates).
                let x = Operand::Reg(*g.pick(&self.gp));
                let y = Operand::Reg(*g.pick(&self.gp));
                let p = b.cmp(*g.pick(&[CmpKind::Lt, CmpKind::Eq, CmpKind::Ge]), x, y);
                let d = b.new_reg(RegClass::Gp);
                b.push(Opcode::Sel, vec![d], vec![Operand::Reg(p), x, y]);
                self.gp.push(d);
            }
            7 => {
                // Computed-address memory traffic: a masked index
                // through an address register (`addr = base + (v&7)*8`),
                // the pattern the kernels' array walks produce.
                let v = Operand::Reg(*g.pick(&self.gp));
                let idx = b.binop(Opcode::And, v, Operand::Imm((GLOBAL_LEN - 1) as i64));
                let off = b.binop(Opcode::Mul, Operand::Reg(idx), Operand::Imm(8));
                let base = b.imm(*g.pick(self.bases));
                let addr = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(off));
                if g.chance(60) {
                    let d = b.load(addr, 0);
                    self.gp.push(d);
                } else {
                    let v = Operand::Reg(*g.pick(&self.gp));
                    b.store(addr, 0, v);
                }
            }
            8 => {
                let ops = [Opcode::FAdd, Opcode::FSub, Opcode::FMul];
                let op = *g.pick(&ops);
                let a = Operand::Reg(*g.pick(&self.fp));
                let c = Operand::Reg(*g.pick(&self.fp));
                let d = b.fbinop(op, a, c);
                self.fp.push(d);
            }
            9 => {
                // int -> float -> keep both pools alive.
                let d = b.new_reg(RegClass::Fp);
                b.push(Opcode::I2F, vec![d], vec![Operand::Reg(*g.pick(&self.gp))]);
                self.fp.push(d);
            }
            _ => {
                let d = b.new_reg(RegClass::Gp);
                b.push(Opcode::F2I, vec![d], vec![Operand::Reg(*g.pick(&self.fp))]);
                self.gp.push(d);
            }
        }
        self.trim_pools();
    }

    /// An `if/else` diamond: both arms write the same destination
    /// register (the mutable-variable shape the MiniC front end
    /// emits), then control merges.
    fn diamond(&mut self, tag: usize) {
        let x = Operand::Reg(*self.g.pick(&self.gp));
        let y = Operand::Reg(*self.g.pick(&self.gp));
        let kind = *self.g.pick(&[CmpKind::Lt, CmpKind::Ge, CmpKind::Eq]);
        let dest = self.b.new_reg(RegClass::Gp);
        let then_b = self.b.new_block(format!("dia{tag}_then"));
        let else_b = self.b.new_block(format!("dia{tag}_else"));
        let join_b = self.b.new_block(format!("dia{tag}_join"));

        let p = self.b.cmp(kind, x, y);
        self.b.br_cond(p, then_b, else_b);

        self.b.switch_to(then_b);
        let tv = self
            .b
            .binop(Opcode::Add, x, Operand::Imm(self.g.below(32) as i64));
        self.b.push(Opcode::MovI, vec![dest], vec![Operand::Reg(tv)]);
        self.b.br(join_b);

        self.b.switch_to(else_b);
        let ev = self.b.binop(Opcode::Xor, y, x);
        self.b.push(Opcode::MovI, vec![dest], vec![Operand::Reg(ev)]);
        self.b.br(join_b);

        self.b.switch_to(join_b);
        self.gp.push(dest);
        self.trim_pools();
    }

    /// A counted inner loop (3 iterations) with a loop-carried
    /// accumulator, nested in the outer body.
    fn inner_loop(&mut self, tag: usize) {
        let seed_v = Operand::Reg(*self.g.pick(&self.gp));
        let acc = self.b.new_reg(RegClass::Gp);
        self.b.push(Opcode::MovI, vec![acc], vec![seed_v]);
        let j = self.b.imm(0);
        let head = self.b.new_block(format!("il{tag}_head"));
        let body = self.b.new_block(format!("il{tag}_body"));
        let exit = self.b.new_block(format!("il{tag}_exit"));
        self.b.br(head);

        self.b.switch_to(head);
        let p = self.b.cmp(CmpKind::Lt, Operand::Reg(j), Operand::Imm(3));
        self.b.br_cond(p, body, exit);

        self.b.switch_to(body);
        let op = *self.g.pick(&[Opcode::Add, Opcode::Xor, Opcode::Sub]);
        let stepped = self.b.binop(op, Operand::Reg(acc), Operand::Reg(j));
        let mixed = self.b.binop(
            Opcode::Add,
            Operand::Reg(stepped),
            Operand::Imm(1 + self.g.below(16) as i64),
        );
        self.b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(mixed)]);
        let j2 = self.b.binop(Opcode::Add, Operand::Reg(j), Operand::Imm(1));
        self.b.push(Opcode::MovI, vec![j], vec![Operand::Reg(j2)]);
        self.b.br(head);

        self.b.switch_to(exit);
        self.gp.push(acc);
        self.trim_pools();
    }

    /// An inlined "library call": a short `clip`/`abs`-like run of
    /// instructions carrying [`Provenance::LibraryCode`] — the
    /// error-detection pass must neither replicate them nor check
    /// their operand reads (paper §III-B).
    fn lib_call(&mut self) {
        let x = *self.g.pick(&self.gp);
        let lib = |insn: Insn| insn.with_prov(Provenance::LibraryCode);

        // p = x < 0 ; n = 0 - x ; a = sel p, n, x   (abs)
        let p = self.b.new_reg(RegClass::Pr);
        self.b.push_insn(lib(Insn::new(
            Opcode::Cmp(CmpKind::Lt),
            vec![p],
            vec![Operand::Reg(x), Operand::Imm(0)],
        )));
        let n = self.b.new_reg(RegClass::Gp);
        self.b.push_insn(lib(Insn::new(
            Opcode::Sub,
            vec![n],
            vec![Operand::Imm(0), Operand::Reg(x)],
        )));
        let a = self.b.new_reg(RegClass::Gp);
        self.b.push_insn(lib(Insn::new(
            Opcode::Sel,
            vec![a],
            vec![Operand::Reg(p), Operand::Reg(n), Operand::Reg(x)],
        )));
        // clipped = a & 1023  (bound the magnitude, libc-clip style)
        let c = self.b.new_reg(RegClass::Gp);
        self.b.push_insn(lib(Insn::new(
            Opcode::And,
            vec![c],
            vec![Operand::Reg(a), Operand::Imm(1023)],
        )));
        self.gp.push(c);
        self.trim_pools();
    }
}

/// Generate a random valid module (see module docs). The program is
/// guaranteed to terminate (counted loops only), never to fault
/// (addresses stay in bounds, divisors are non-zero constants), and to
/// `out` the values of its live chains so corruption is observable.
pub fn random_module(seed: u64, opts: &GenOptions) -> Module {
    let g = Gen::new(seed);
    let mut m = Module::new(format!("gen_{seed}"));
    let bases: Vec<i64> = (0..opts.globals.max(1))
        .map(|i| {
            let init: Vec<i64> =
                (0..GLOBAL_LEN).map(|k| (seed as i64 ^ (k as i64 * 37)) % 1000).collect();
            m.add_global(format!("g{i}"), GlobalClass::Int, GLOBAL_LEN, init).1
        })
        .collect();

    let mut b = FunctionBuilder::new("main");

    // Live register pools.
    let mut gp: Vec<Reg> = Vec::new();
    let mut fp: Vec<Reg> = Vec::new();

    for k in 0..4 {
        gp.push(b.imm((seed as i64).wrapping_add(k * 13) % 100));
    }
    if opts.with_float {
        fp.push(b.fimm(1.5));
        fp.push(b.fimm((seed % 9) as f64 + 0.25));
    }

    // Counted outer loop: i from 0 to iterations.
    let i = b.imm(0);
    let head = b.new_block("head");
    let body = b.new_block("body");
    let exit = b.new_block("exit");
    b.br(head);
    b.switch_to(head);
    let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(opts.iterations));
    b.br_cond(p, body, exit);
    b.switch_to(body);

    let mut e = Emit {
        b,
        g,
        gp,
        fp,
        bases: &bases,
        with_float: opts.with_float,
    };

    // Interleave the structured shapes through the straight-line body:
    // spread diamonds / inner loops / lib calls at evenly spaced slots.
    let shapes: usize = opts.diamonds + opts.inner_loops + opts.lib_calls;
    let stride = opts.body_ops / (shapes + 1);
    let mut emitted_dia = 0;
    let mut emitted_il = 0;
    let mut emitted_lib = 0;
    for k in 0..opts.body_ops {
        e.straight_op();
        if shapes > 0 && stride > 0 && k % stride == stride - 1 {
            if emitted_dia < opts.diamonds {
                emitted_dia += 1;
                e.diamond(emitted_dia);
            } else if emitted_il < opts.inner_loops {
                emitted_il += 1;
                e.inner_loop(emitted_il);
            } else if emitted_lib < opts.lib_calls {
                emitted_lib += 1;
                e.lib_call();
            }
        }
    }
    // Anything not yet placed (tiny body_ops) goes at the end.
    while emitted_dia < opts.diamonds {
        emitted_dia += 1;
        e.diamond(emitted_dia);
    }
    while emitted_il < opts.inner_loops {
        emitted_il += 1;
        e.inner_loop(emitted_il);
    }
    while emitted_lib < opts.lib_calls {
        emitted_lib += 1;
        e.lib_call();
    }

    let Emit { mut b, gp, fp, .. } = e;

    // Loop-carried accumulation so iterations interact.
    let acc = gp[0];
    let latest = *gp.last().unwrap();
    let folded = b.binop(Opcode::Xor, Operand::Reg(acc), Operand::Reg(latest));
    b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(folded)]);

    let i2 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
    b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i2)]);
    b.br(head);

    // Observable outputs: the accumulator, a sample of globals, a float.
    b.switch_to(exit);
    b.out(Operand::Reg(acc));
    for &base in &bases {
        let br = b.imm(base);
        let v = b.load(br, 0);
        b.out(Operand::Reg(v));
    }
    if opts.with_float {
        let f = *fp.last().unwrap();
        let d = b.new_reg(RegClass::Gp);
        b.push(Opcode::F2I, vec![d], vec![Operand::Reg(f)]);
        b.out(Operand::Reg(d));
    }
    b.halt_imm(0);

    let id = m.add_function(b.finish());
    m.entry = Some(id);
    debug_assert!(
        crate::verify::verify_module(&m).is_ok(),
        "generator produced invalid module for seed {seed}"
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{self, StopReason};

    #[test]
    fn generated_modules_verify_and_terminate() {
        for seed in 0..50 {
            let m = random_module(seed, &GenOptions::default());
            crate::verify::verify_module(&m).expect("valid module");
            let r = interp::run(&m, 1_000_000).expect("run");
            assert_eq!(r.stop, StopReason::Halt(0), "seed {seed}: {:?}", r.stop);
            assert!(!r.stream.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_module(42, &GenOptions::default());
        let b = random_module(42, &GenOptions::default());
        let ra = interp::run(&a, 1_000_000).unwrap();
        let rb = interp::run(&b, 1_000_000).unwrap();
        assert_eq!(ra.stream, rb.stream);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_module(1, &GenOptions::default());
        let b = random_module(2, &GenOptions::default());
        let ra = interp::run(&a, 1_000_000).unwrap();
        let rb = interp::run(&b, 1_000_000).unwrap();
        assert_ne!(ra.stream, rb.stream);
    }

    #[test]
    fn structured_shapes_are_emitted() {
        let opts = GenOptions {
            diamonds: 3,
            inner_loops: 2,
            lib_calls: 2,
            ..GenOptions::default()
        };
        let m = random_module(7, &opts);
        let f = m.entry_fn();
        let names: Vec<&str> = f.blocks.iter().map(|b| b.name.as_str()).collect();
        assert!(names.iter().filter(|n| n.starts_with("dia")).count() >= 9);
        assert!(names.iter().filter(|n| n.starts_with("il")).count() >= 6);
        let lib_insns = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&i| f.insn(i).prov == Provenance::LibraryCode)
            .count();
        assert_eq!(lib_insns, 2 * 4, "each lib call inlines 4 insns");
        let r = interp::run(&m, 2_000_000).unwrap();
        assert_eq!(r.stop, StopReason::Halt(0));
    }

    #[test]
    fn lib_free_modules_have_no_library_code() {
        let m = random_module(3, &GenOptions { lib_calls: 0, ..GenOptions::default() });
        let f = m.entry_fn();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .all(|&i| f.insn(i).prov != Provenance::LibraryCode));
    }

    #[test]
    fn gen_options_encoding_round_trips() {
        let opts = GenOptions {
            body_ops: 17,
            iterations: 3,
            globals: 1,
            with_float: false,
            diamonds: 4,
            inner_loops: 0,
            lib_calls: 2,
        };
        assert_eq!(GenOptions::parse(&opts.encode()).unwrap(), opts);
        assert!(GenOptions::parse("nonsense").is_err());
        assert!(GenOptions::parse("ops:x").is_err());
    }

    /// The `(seed, GenOptions) -> module` mapping is frozen: generated
    /// programs are named by their replay line, so regenerating a seed
    /// must reproduce the exact module text. This extends the
    /// `casted_util` frozen-RNG-stream contract to program generation.
    /// If a deliberate generator change lands, update the hash here and
    /// treat it as a replay-format break (old replay lines stop
    /// reproducing old modules).
    #[test]
    fn golden_module_hash_is_frozen() {
        let m = random_module(0xCA57ED, &GenOptions::default());
        let text = m.to_string();
        let got = casted_util::hash::fnv1a(text.as_bytes());
        assert_eq!(
            got, 0x597AF3E29AFBF164,
            "generator output drifted (module text hash {got:#018X}) — \
             this is a replay-format break; update deliberately"
        );
    }
}
