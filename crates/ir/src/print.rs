//! Human-readable printing of IR and schedules.

use std::fmt;

use crate::func::{Function, Module};
use crate::insn::{Insn, Operand, Provenance};

/// Format one operand.
pub fn format_operand(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => v.to_string(),
        Operand::FImm(v) => format!("{v:?}"),
    }
}

/// Format one instruction as `mnemonic defs = uses [targets] ; prov`.
pub fn format_insn(func: &Function, insn: &Insn) -> String {
    let mut s = insn.op.mnemonic();
    if let Some(d) = insn.def() {
        s.push_str(&format!(" {d} ="));
    }
    let mut parts: Vec<String> = insn.uses.iter().map(format_operand).collect();
    if insn.op.is_memory() {
        // Render address as [base + off].
        let base = parts.remove(0);
        let addr = if insn.imm == 0 {
            format!("[{base}]")
        } else {
            format!("[{base}+{}]", insn.imm)
        };
        parts.insert(0, addr);
    }
    if !parts.is_empty() {
        s.push(' ');
        s.push_str(&parts.join(", "));
    }
    if let Some(t) = insn.target {
        s.push_str(&format!(" -> {}", func.block(t).name));
    }
    if let Some(t) = insn.target2 {
        s.push_str(&format!(" / {}", func.block(t).name));
    }
    match insn.prov {
        Provenance::Original => {}
        Provenance::Duplicate => s.push_str("  ; dup"),
        Provenance::CheckCmp => s.push_str("  ; check"),
        Provenance::CheckBr => s.push_str("  ; check-br"),
        Provenance::IsolationCopy => s.push_str("  ; iso-copy"),
        Provenance::CompilerGen => s.push_str("  ; cg"),
        Provenance::LibraryCode => s.push_str("  ; lib"),
    }
    s
}

/// Print a whole function.
pub fn print_function(func: &Function, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(f, "fn {} {{", func.name)?;
    for (bid, block) in func.iter_blocks() {
        writeln!(f, "{}:  ; b{}", block.name, bid.0)?;
        for &iid in &block.insns {
            writeln!(f, "    {}", format_insn(func, func.insn(iid)))?;
        }
    }
    writeln!(f, "}}")
}

/// Print a whole module.
pub fn print_module(module: &Module, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(f, "module {} {{", module.name)?;
    for g in &module.globals {
        writeln!(
            f,
            "  global {}: [{}; {}] @ {:#x}",
            g.name,
            match g.class {
                crate::func::GlobalClass::Int => "int",
                crate::func::GlobalClass::Float => "float",
            },
            g.len,
            g.addr
        )?;
    }
    for func in &module.functions {
        print_function(func, f)?;
    }
    writeln!(f, "}}")
}

/// Wrapper giving a `Display` for a function.
pub struct FuncDisplay<'a>(pub &'a Function);

impl fmt::Display for FuncDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_function(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::Opcode;

    #[test]
    fn formats_instructions() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(7);
        let y = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(1));
        let v = b.load(y, 8);
        b.store(y, 0, Operand::Reg(v));
        b.halt_imm(0);
        let f = b.finish();
        let texts: Vec<String> = f.block(f.entry).insns.iter()
            .map(|&i| format_insn(&f, f.insn(i)))
            .collect();
        assert_eq!(texts[0], "mov r0 = 7");
        assert_eq!(texts[1], "add r1 = r0, 1");
        assert!(texts[2].starts_with("ld8 r2 = [r1+8]"));
        assert!(texts[3].starts_with("st8 [r1], r2"));
    }

    #[test]
    fn module_display_does_not_panic() {
        let mut m = crate::Module::new("m");
        m.add_global("g", crate::func::GlobalClass::Int, 4, vec![1]);
        let b = FunctionBuilder::new("main");
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let s = m.to_string();
        assert!(s.contains("global g"));
        assert!(s.contains("fn main"));
    }
}
