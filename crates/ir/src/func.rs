//! Functions, basic blocks, globals and modules.
//!
//! A [`Function`] owns an instruction arena (stable [`InsnId`]s) and a
//! list of [`Block`]s that order a subset of those instructions. Passes
//! transform functions by appending instructions to the arena and
//! rebuilding block orderings — instruction ids never change meaning,
//! which is what the error-detection pass's side tables (paper Fig. 4)
//! rely on.
//!
//! A [`Module`] owns functions and global arrays. Because the front-end
//! fully inlines user and library functions (MiniC forbids recursion),
//! the executed artifact is a single entry function; other functions are
//! retained for inspection and testing.

use std::collections::HashMap;
use std::fmt;

use crate::insn::{Insn, InsnId};
use crate::reg::{Reg, RegClass};

/// Dense basic-block id within a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense function id within a module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense global id within a module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// A basic block: an ordered list of instruction ids. The last
/// instruction must be a terminator (`br`, `br.cond`, or `halt`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// Debug label.
    pub name: String,
    /// Ordered instruction ids; indices into [`Function::insns`].
    pub insns: Vec<InsnId>,
}

/// A function: instruction arena + blocks + virtual register counters.
#[derive(Clone, Debug)]
pub struct Function {
    /// Debug name.
    pub name: String,
    /// Instruction arena. `InsnId(i)` indexes this vector. Instructions
    /// removed from blocks remain in the arena (dead) — blocks are the
    /// source of truth for program order.
    pub insns: Vec<Insn>,
    /// Basic blocks; `BlockId(i)` indexes this vector.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Next free virtual register index per class.
    pub(crate) next_reg: [u32; 3],
}

impl Function {
    /// Create an empty function with a single (empty) entry block.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            insns: Vec::new(),
            blocks: vec![Block {
                name: "entry".into(),
                insns: Vec::new(),
            }],
            entry: BlockId(0),
            next_reg: [0; 3],
        }
    }

    /// Allocate a fresh virtual register of `class`.
    pub fn new_reg(&mut self, class: RegClass) -> Reg {
        let idx = self.next_reg[class.index()];
        self.next_reg[class.index()] += 1;
        Reg::new(class, idx)
    }

    /// Number of virtual registers allocated so far for `class`.
    #[inline]
    pub fn reg_count(&self, class: RegClass) -> u32 {
        self.next_reg[class.index()]
    }

    /// Append `insn` to the arena (without placing it in any block) and
    /// return its id.
    pub fn add_insn(&mut self, insn: Insn) -> InsnId {
        let id = InsnId(self.insns.len() as u32);
        self.insns.push(insn);
        id
    }

    /// Append a new (empty) block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.into(),
            insns: Vec::new(),
        });
        id
    }

    /// Immutable access to an instruction.
    #[inline]
    pub fn insn(&self, id: InsnId) -> &Insn {
        &self.insns[id.index()]
    }

    /// Mutable access to an instruction.
    #[inline]
    pub fn insn_mut(&mut self, id: InsnId) -> &mut Insn {
        &mut self.insns[id.index()]
    }

    /// Immutable access to a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterate `(BlockId, &Block)` in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of instructions currently placed in blocks (the
    /// static code size — the paper reports ED code growing >2x).
    pub fn static_size(&self) -> usize {
        self.blocks.iter().map(|b| b.insns.len()).sum()
    }

    /// The terminator instruction id of `block`, if the block is
    /// non-empty and properly terminated.
    pub fn terminator(&self, block: BlockId) -> Option<InsnId> {
        let last = *self.block(block).insns.last()?;
        self.insn(last).op.is_terminator().then_some(last)
    }

    /// Successor blocks of `block` in CFG order (taken target first).
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            None => vec![],
            Some(t) => {
                let i = self.insn(t);
                let mut out = Vec::with_capacity(2);
                if let Some(b) = i.target {
                    out.push(b);
                }
                if let Some(b) = i.target2 {
                    if Some(b) != i.target {
                        out.push(b);
                    }
                }
                out
            }
        }
    }
}

/// Element type of a global array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlobalClass {
    /// Array of `i64`.
    Int,
    /// Array of `f64`.
    Float,
}

/// A statically allocated global array (MiniC `global` declaration, or a
/// local array promoted to static storage by the inliner).
#[derive(Clone, Debug)]
pub struct Global {
    /// Debug name.
    pub name: String,
    /// Element type.
    pub class: GlobalClass,
    /// Number of 8-byte elements.
    pub len: usize,
    /// Byte address assigned at module layout time (64-byte aligned so
    /// arrays start on cache-line boundaries).
    pub addr: i64,
    /// Initial integer values (raw bits for float globals); zero-filled
    /// to `len` at simulation start.
    pub init: Vec<i64>,
}

/// Base address of the global data segment. Addresses below this are a
/// trap page: any access raises a simulator exception, so wild pointers
/// produced by bit flips in address registers surface as the paper's
/// `Exceptions` outcome class.
pub const DATA_BASE: i64 = 4096;

/// A module: functions + globals + designated entry function.
#[derive(Clone, Debug)]
pub struct Module {
    /// Debug name.
    pub name: String,
    /// Functions; `FuncId(i)` indexes this vector.
    pub functions: Vec<Function>,
    /// Global arrays.
    pub globals: Vec<Global>,
    /// Entry function executed by the interpreter / simulator.
    pub entry: Option<FuncId>,
    /// Name → function id map.
    pub func_by_name: HashMap<String, FuncId>,
    pub(crate) next_addr: i64,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            entry: None,
            func_by_name: HashMap::new(),
            next_addr: DATA_BASE,
        }
    }

    /// Add a function; returns its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.func_by_name.insert(f.name.clone(), id);
        self.functions.push(f);
        id
    }

    /// Add a global array of `len` elements; assigns a 64-byte-aligned
    /// address and returns `(id, byte_address)`.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        class: GlobalClass,
        len: usize,
        init: Vec<i64>,
    ) -> (GlobalId, i64) {
        assert!(init.len() <= len, "initializer longer than global");
        let addr = self.next_addr;
        self.next_addr += ((len * 8 + 63) / 64 * 64) as i64;
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            class,
            len,
            addr,
            init,
        });
        (id, addr)
    }

    /// One-past-the-end byte address of the data segment; the simulator
    /// sizes memory as `data_end() + heap slack`.
    #[inline]
    pub fn data_end(&self) -> i64 {
        self.next_addr
    }

    /// The entry function, panicking if unset.
    pub fn entry_fn(&self) -> &Function {
        &self.functions[self.entry.expect("module has no entry function").index()]
    }

    /// Mutable entry function.
    pub fn entry_fn_mut(&mut self) -> &mut Function {
        let e = self.entry.expect("module has no entry function");
        &mut self.functions[e.index()]
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.func_by_name.get(name).map(|id| &self.functions[id.index()])
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::print::print_module(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Operand;
    use crate::op::Opcode;

    #[test]
    fn fresh_regs_are_distinct_per_class() {
        let mut f = Function::new("t");
        let a = f.new_reg(RegClass::Gp);
        let b = f.new_reg(RegClass::Gp);
        let c = f.new_reg(RegClass::Fp);
        assert_ne!(a, b);
        assert_eq!(c.index, 0);
        assert_eq!(f.reg_count(RegClass::Gp), 2);
        assert_eq!(f.reg_count(RegClass::Fp), 1);
        assert_eq!(f.reg_count(RegClass::Pr), 0);
    }

    #[test]
    fn global_addresses_are_aligned_and_disjoint() {
        let mut m = Module::new("t");
        let (_, a0) = m.add_global("a", GlobalClass::Int, 3, vec![]);
        let (_, a1) = m.add_global("b", GlobalClass::Int, 100, vec![]);
        let (_, a2) = m.add_global("c", GlobalClass::Float, 1, vec![]);
        assert_eq!(a0, DATA_BASE);
        assert_eq!(a0 % 64, 0);
        assert_eq!(a1 % 64, 0);
        assert_eq!(a2 % 64, 0);
        assert!(a1 >= a0 + 24);
        assert!(a2 >= a1 + 800);
        assert!(m.data_end() >= a2 + 8);
    }

    #[test]
    fn successors_of_cond_branch() {
        let mut f = Function::new("t");
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        let p = f.new_reg(RegClass::Pr);
        let mut br = Insn::new(Opcode::BrCond, vec![], vec![Operand::Reg(p)]);
        br.target = Some(b1);
        br.target2 = Some(b2);
        let id = f.add_insn(br);
        f.block_mut(f.entry).insns.push(id);
        assert_eq!(f.successors(f.entry), vec![b1, b2]);
        assert_eq!(f.successors(b1), Vec::<BlockId>::new());
    }

    #[test]
    fn static_size_counts_placed_insns_only() {
        let mut f = Function::new("t");
        let i1 = f.add_insn(Insn::new(Opcode::Nop, vec![], vec![]));
        let _dead = f.add_insn(Insn::new(Opcode::Nop, vec![], vec![]));
        f.block_mut(f.entry).insns.push(i1);
        assert_eq!(f.static_size(), 1);
    }

    #[test]
    fn function_lookup_by_name() {
        let mut m = Module::new("t");
        let f = Function::new("dct");
        m.add_function(f);
        assert!(m.function("dct").is_some());
        assert!(m.function("missing").is_none());
    }
}
