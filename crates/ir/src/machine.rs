//! Machine model configuration (Table I of the paper).
//!
//! The target is a 2-cluster VLIW in lockstep, with configurable issue
//! width per cluster and configurable inter-cluster communication
//! latency — the two axes the paper sweeps (issue width 1–4 × delay
//! 1–4). Each cluster owns a register file; reading a value whose home
//! register file is the *other* cluster costs `inter_cluster_delay`
//! extra cycles, which is the cost CASTED's placement tries to hide.

use std::fmt;

/// Identifier of a cluster (core). The paper evaluates 2 clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cluster(pub u8);

impl Cluster {
    /// Cluster 0: the "main" cluster executing the original code in the
    /// DCED placement.
    pub const MAIN: Cluster = Cluster(0);
    /// Cluster 1: the "checker" cluster in the DCED placement.
    pub const REDUNDANT: Cluster = Cluster(1);

    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The other cluster of a 2-cluster machine.
    #[inline]
    pub fn other(self) -> Cluster {
        Cluster(1 - self.0)
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Instruction result latencies in cycles (configurable per Table I:
/// "Instruction Latencies: configurable"). Defaults are Itanium-2-like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Simple integer ALU (add/sub/logic/shift/move/select).
    pub alu: u32,
    /// Integer multiply.
    pub mul: u32,
    /// Integer divide / remainder.
    pub div: u32,
    /// Integer compare writing a predicate.
    pub cmp: u32,
    /// Float compare writing a predicate.
    pub fcmp: u32,
    /// FP add/sub/move.
    pub fadd: u32,
    /// FP multiply.
    pub fmul: u32,
    /// FP divide.
    pub fdiv: u32,
    /// Int<->float conversion.
    pub fcvt: u32,
    /// Load-use latency on an L1 hit.
    pub load_hit: u32,
    /// Store issue latency.
    pub store: u32,
    /// Branch issue latency (branch prediction is perfect, Table I).
    pub branch: u32,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            alu: 1,
            mul: 3,
            div: 16,
            cmp: 1,
            fcmp: 1,
            fadd: 4,
            fmul: 4,
            fdiv: 24,
            fcvt: 4,
            load_hit: 1,
            store: 1,
            branch: 1,
        }
    }
}

/// One level of the cache hierarchy (Table I).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Human-readable level name ("L1", "L2", "L3").
    pub name: &'static str,
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Access latency in cycles when the access *hits* at this level.
    pub latency: u32,
}

impl CacheLevelConfig {
    /// Number of sets implied by size/line/ways.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Full machine configuration: the processor of Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of clusters; the paper evaluates 2.
    pub clusters: usize,
    /// Issue width *per cluster* (paper sweeps 1–4).
    pub issue_width: usize,
    /// Inter-cluster register-file access delay in cycles (paper sweeps
    /// 1–4): extra cycles for a cluster to read a value whose home
    /// register file belongs to the other cluster.
    pub inter_cluster_delay: u32,
    /// Instruction latencies.
    pub latency: LatencyConfig,
    /// Cache hierarchy, ordered from L1 outward. Empty = perfect memory.
    pub cache_levels: Vec<CacheLevelConfig>,
    /// Main-memory access latency in cycles (Table I: 150).
    pub memory_latency: u32,
    /// Maximum simultaneously outstanding cache misses before the
    /// machine stalls on issue of a further miss (non-blocking caches).
    pub mshr_entries: usize,
}

impl MachineConfig {
    /// The paper's processor (Table I) with a given issue width and
    /// inter-cluster delay: 2 clusters; L1 16K/64B/4-way/1cy; L2
    /// 256K/128B/8-way/5cy; L3 3M/128B/12-way/12cy; memory 150cy;
    /// non-blocking caches; perfect branch prediction (branch latency 1).
    pub fn itanium2_like(issue_width: usize, inter_cluster_delay: u32) -> Self {
        MachineConfig {
            clusters: 2,
            issue_width,
            inter_cluster_delay,
            latency: LatencyConfig::default(),
            cache_levels: vec![
                CacheLevelConfig {
                    name: "L1",
                    size_bytes: 16 * 1024,
                    line_bytes: 64,
                    ways: 4,
                    latency: 1,
                },
                CacheLevelConfig {
                    name: "L2",
                    size_bytes: 256 * 1024,
                    line_bytes: 128,
                    ways: 8,
                    latency: 5,
                },
                CacheLevelConfig {
                    name: "L3",
                    size_bytes: 3 * 1024 * 1024,
                    line_bytes: 128,
                    ways: 12,
                    latency: 12,
                },
            ],
            memory_latency: 150,
            mshr_entries: 8,
        }
    }

    /// A configuration with no cache hierarchy (every access hits in
    /// `load_hit` cycles). Useful for unit tests and the motivating
    /// examples of Fig. 2/3, which reason about pure schedules.
    pub fn perfect_memory(issue_width: usize, inter_cluster_delay: u32) -> Self {
        let mut m = Self::itanium2_like(issue_width, inter_cluster_delay);
        m.cache_levels.clear();
        m.memory_latency = 0;
        m
    }

    /// Iterator over all cluster ids of this machine.
    pub fn cluster_ids(&self) -> impl Iterator<Item = Cluster> {
        (0..self.clusters as u8).map(Cluster)
    }

    /// Extra operand latency for cluster `reader` consuming a value
    /// homed in cluster `home`.
    #[inline]
    pub fn cross_delay(&self, home: Cluster, reader: Cluster) -> u32 {
        if home == reader {
            0
        } else {
            self.inter_cluster_delay
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::itanium2_like(2, 2)
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Processor: clustered VLIW")?;
        writeln!(f, "  Clusters:           {}", self.clusters)?;
        writeln!(f, "  Issue width:        {} per cluster", self.issue_width)?;
        writeln!(f, "  Inter-core delay:   {} cycles", self.inter_cluster_delay)?;
        writeln!(f, "  Register file:      (64GP, 64FL, 32PR) per cluster")?;
        writeln!(f, "  Branch prediction:  perfect")?;
        for l in &self.cache_levels {
            writeln!(
                f,
                "  {}: {} KB, {}B lines, {}-way, {} cy, non-blocking",
                l.name,
                l.size_bytes / 1024,
                l.line_bytes,
                l.ways,
                l.latency
            )?;
        }
        writeln!(f, "  Memory latency:     {} cycles", self.memory_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_parameters() {
        let m = MachineConfig::itanium2_like(2, 1);
        assert_eq!(m.clusters, 2);
        assert_eq!(m.cache_levels.len(), 3);
        let l1 = &m.cache_levels[0];
        assert_eq!((l1.size_bytes, l1.line_bytes, l1.ways, l1.latency), (16384, 64, 4, 1));
        let l2 = &m.cache_levels[1];
        assert_eq!((l2.size_bytes, l2.line_bytes, l2.ways, l2.latency), (262144, 128, 8, 5));
        let l3 = &m.cache_levels[2];
        assert_eq!(
            (l3.size_bytes, l3.line_bytes, l3.ways, l3.latency),
            (3 * 1024 * 1024, 128, 12, 12)
        );
        assert_eq!(m.memory_latency, 150);
    }

    #[test]
    fn cache_sets_are_power_of_two() {
        let m = MachineConfig::itanium2_like(1, 1);
        for l in &m.cache_levels {
            let sets = l.sets();
            assert!(sets.is_power_of_two(), "{}: {} sets", l.name, sets);
        }
    }

    #[test]
    fn cross_delay() {
        let m = MachineConfig::itanium2_like(2, 3);
        assert_eq!(m.cross_delay(Cluster(0), Cluster(0)), 0);
        assert_eq!(m.cross_delay(Cluster(0), Cluster(1)), 3);
        assert_eq!(m.cross_delay(Cluster(1), Cluster(0)), 3);
    }

    #[test]
    fn cluster_other() {
        assert_eq!(Cluster(0).other(), Cluster(1));
        assert_eq!(Cluster(1).other(), Cluster(0));
    }
}
