//! Register classes and virtual registers.
//!
//! The target machine (a 2-cluster VLIW with an Itanium-2-style register
//! file, Table I of the paper) has three architectural register classes
//! per cluster: 64 general-purpose integer registers, 64 floating-point
//! registers, and 32 one-bit predicate registers. Compiler passes operate
//! on an unbounded supply of *virtual* registers of each class; the
//! register-pressure-limiting pass in `casted-passes` guarantees that the
//! per-cluster, per-class pressure never exceeds the architectural file
//! size, and a final linear-scan mapping assigns physical indices.

use std::fmt;

/// The architectural register class of a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// 64-bit general purpose integer register (`r0..r63` per cluster).
    Gp,
    /// 64-bit floating point register (`f0..f63` per cluster).
    Fp,
    /// 1-bit predicate register (`p0..p31` per cluster), written by
    /// compare instructions and read by conditional branches — including
    /// the fault-detection branches emitted by the error-detection pass.
    Pr,
}

impl RegClass {
    /// All register classes, in a fixed order usable for indexing.
    pub const ALL: [RegClass; 3] = [RegClass::Gp, RegClass::Fp, RegClass::Pr];

    /// A dense index for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Gp => 0,
            RegClass::Fp => 1,
            RegClass::Pr => 2,
        }
    }

    /// Number of architectural registers of this class in one cluster's
    /// register file (Table I: 64 GP, 64 FL, 32 PR per cluster).
    #[inline]
    pub fn file_size(self) -> usize {
        match self {
            RegClass::Gp => 64,
            RegClass::Fp => 64,
            RegClass::Pr => 32,
        }
    }

    /// Single-letter prefix used when printing registers of this class.
    pub fn prefix(self) -> char {
        match self {
            RegClass::Gp => 'r',
            RegClass::Fp => 'f',
            RegClass::Pr => 'p',
        }
    }

    /// Width of the register in bits — the number of distinct single-bit
    /// fault-injection targets it exposes.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            RegClass::Gp | RegClass::Fp => 64,
            RegClass::Pr => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Gp => write!(f, "gp"),
            RegClass::Fp => write!(f, "fp"),
            RegClass::Pr => write!(f, "pr"),
        }
    }
}

/// A virtual register: a class plus a per-function, per-class index.
///
/// Virtual registers are unbounded; physical register indices are only
/// assigned after scheduling (see `casted-passes::regalloc`). Identity is
/// `(class, index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    /// Register class of the value held.
    pub class: RegClass,
    /// Per-function dense index within the class.
    pub index: u32,
}

impl Reg {
    /// Construct a register of `class` with index `index`.
    #[inline]
    pub fn new(class: RegClass, index: u32) -> Self {
        Reg { class, index }
    }

    /// Convenience constructor for a general-purpose register.
    #[inline]
    pub fn gp(index: u32) -> Self {
        Reg::new(RegClass::Gp, index)
    }

    /// Convenience constructor for a floating-point register.
    #[inline]
    pub fn fp(index: u32) -> Self {
        Reg::new(RegClass::Fp, index)
    }

    /// Convenience constructor for a predicate register.
    #[inline]
    pub fn pr(index: u32) -> Self {
        Reg::new(RegClass::Pr, index)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_sizes_match_table_i() {
        assert_eq!(RegClass::Gp.file_size(), 64);
        assert_eq!(RegClass::Fp.file_size(), 64);
        assert_eq!(RegClass::Pr.file_size(), 32);
    }

    #[test]
    fn class_indices_are_dense_and_distinct() {
        let mut seen = [false; 3];
        for c in RegClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::gp(3).to_string(), "r3");
        assert_eq!(Reg::fp(0).to_string(), "f0");
        assert_eq!(Reg::pr(31).to_string(), "p31");
    }

    #[test]
    fn reg_identity() {
        assert_eq!(Reg::gp(1), Reg::new(RegClass::Gp, 1));
        assert_ne!(Reg::gp(1), Reg::fp(1));
        assert_ne!(Reg::gp(1), Reg::gp(2));
    }

    #[test]
    fn bit_widths() {
        assert_eq!(RegClass::Gp.bits(), 64);
        assert_eq!(RegClass::Fp.bits(), 64);
        assert_eq!(RegClass::Pr.bits(), 1);
    }
}
