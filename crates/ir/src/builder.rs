//! Convenience builder for constructing IR functions.
//!
//! Used by the MiniC front-end's code generator and by tests/examples
//! that assemble IR directly (e.g. the motivating example of the paper's
//! Fig. 2/3).

use crate::func::{Block, BlockId, Function};
use crate::insn::{Insn, InsnId, Operand, Provenance};
use crate::op::{CmpKind, Opcode};
use crate::reg::{Reg, RegClass};

/// Builder that appends instructions to a current block of a function
/// under construction.
pub struct FunctionBuilder {
    func: Function,
    /// Block currently being appended to.
    pub cur: BlockId,
    /// Provenance stamped on every instruction pushed; the front-end
    /// switches this to [`Provenance::LibraryCode`] while inlining
    /// library routines.
    pub prov: Provenance,
}

impl FunctionBuilder {
    /// Start building a function named `name`; the entry block is
    /// current.
    pub fn new(name: impl Into<String>) -> Self {
        let func = Function::new(name);
        let cur = func.entry;
        FunctionBuilder {
            func,
            cur,
            prov: Provenance::Original,
        }
    }

    /// Allocate a fresh virtual register.
    pub fn new_reg(&mut self, class: RegClass) -> Reg {
        self.func.new_reg(class)
    }

    /// Create a new block (does not switch to it).
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Switch the current insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Whether the current block already ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func.terminator(self.cur).is_some()
    }

    /// Push a raw instruction into the current block.
    pub fn push_insn(&mut self, insn: Insn) -> InsnId {
        let id = self.func.add_insn(insn);
        let cur = self.cur;
        self.func.block_mut(cur).insns.push(id);
        id
    }

    /// Push `op defs, uses` with the builder's current provenance.
    pub fn push(&mut self, op: Opcode, defs: Vec<Reg>, uses: Vec<Operand>) -> InsnId {
        let insn = Insn::new(op, defs, uses).with_prov(self.prov);
        self.push_insn(insn)
    }

    /// Push a binary GP ALU op and return the fresh destination register.
    pub fn binop(&mut self, op: Opcode, a: Operand, b: Operand) -> Reg {
        let d = self.new_reg(RegClass::Gp);
        self.push(op, vec![d], vec![a, b]);
        d
    }

    /// Push a binary FP op and return the fresh destination register.
    pub fn fbinop(&mut self, op: Opcode, a: Operand, b: Operand) -> Reg {
        let d = self.new_reg(RegClass::Fp);
        self.push(op, vec![d], vec![a, b]);
        d
    }

    /// Materialize an integer constant.
    pub fn imm(&mut self, v: i64) -> Reg {
        let d = self.new_reg(RegClass::Gp);
        self.push(Opcode::MovI, vec![d], vec![Operand::Imm(v)]);
        d
    }

    /// Materialize a float constant.
    pub fn fimm(&mut self, v: f64) -> Reg {
        let d = self.new_reg(RegClass::Fp);
        self.push(Opcode::FMovI, vec![d], vec![Operand::FImm(v)]);
        d
    }

    /// Push an integer compare and return the fresh predicate register.
    pub fn cmp(&mut self, kind: CmpKind, a: Operand, b: Operand) -> Reg {
        let p = self.new_reg(RegClass::Pr);
        self.push(Opcode::Cmp(kind), vec![p], vec![a, b]);
        p
    }

    /// Push a float compare and return the fresh predicate register.
    pub fn fcmp(&mut self, kind: CmpKind, a: Operand, b: Operand) -> Reg {
        let p = self.new_reg(RegClass::Pr);
        self.push(Opcode::FCmp(kind), vec![p], vec![a, b]);
        p
    }

    /// Push an integer load from `base + offset` and return the value.
    pub fn load(&mut self, base: Reg, offset: i64) -> Reg {
        let d = self.new_reg(RegClass::Gp);
        let insn = Insn::new(Opcode::Load, vec![d], vec![Operand::Reg(base)])
            .with_imm(offset)
            .with_prov(self.prov);
        self.push_insn(insn);
        d
    }

    /// Push a float load from `base + offset` and return the value.
    pub fn fload(&mut self, base: Reg, offset: i64) -> Reg {
        let d = self.new_reg(RegClass::Fp);
        let insn = Insn::new(Opcode::FLoad, vec![d], vec![Operand::Reg(base)])
            .with_imm(offset)
            .with_prov(self.prov);
        self.push_insn(insn);
        d
    }

    /// Push an integer store `mem[base + offset] = value`.
    pub fn store(&mut self, base: Reg, offset: i64, value: Operand) -> InsnId {
        let insn = Insn::new(Opcode::Store, vec![], vec![Operand::Reg(base), value])
            .with_imm(offset)
            .with_prov(self.prov);
        self.push_insn(insn)
    }

    /// Push a float store `mem[base + offset] = value`.
    pub fn fstore(&mut self, base: Reg, offset: i64, value: Operand) -> InsnId {
        let insn = Insn::new(Opcode::FStore, vec![], vec![Operand::Reg(base), value])
            .with_imm(offset)
            .with_prov(self.prov);
        self.push_insn(insn)
    }

    /// Push an unconditional branch to `target`, terminating the block.
    pub fn br(&mut self, target: BlockId) -> InsnId {
        let mut insn = Insn::new(Opcode::Br, vec![], vec![]).with_prov(self.prov);
        insn.target = Some(target);
        self.push_insn(insn)
    }

    /// Push a conditional branch on predicate `p`: to `taken` if true,
    /// `fallthrough` otherwise. Terminates the block.
    pub fn br_cond(&mut self, p: Reg, taken: BlockId, fallthrough: BlockId) -> InsnId {
        let mut insn = Insn::new(Opcode::BrCond, vec![], vec![Operand::Reg(p)]).with_prov(self.prov);
        insn.target = Some(taken);
        insn.target2 = Some(fallthrough);
        self.push_insn(insn)
    }

    /// Push `halt` with register exit code, terminating the block.
    pub fn halt(&mut self, code: Operand) -> InsnId {
        self.push(Opcode::Halt, vec![], vec![code])
    }

    /// Push `halt` with an immediate exit code.
    pub fn halt_imm(&mut self, code: i64) -> InsnId {
        self.halt(Operand::Imm(code))
    }

    /// Push `out value` (append to the observable output stream).
    pub fn out(&mut self, value: Operand) -> InsnId {
        self.push(Opcode::Out, vec![], vec![value])
    }

    /// Push `fout value`.
    pub fn fout(&mut self, value: Operand) -> InsnId {
        self.push(Opcode::FOut, vec![], vec![value])
    }

    /// Peek at the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Finish, returning the built function. Unterminated non-empty
    /// blocks are an error left to the verifier to report; a completely
    /// empty entry gets a `halt 0` so trivial builders stay valid.
    pub fn finish(mut self) -> Function {
        if self.func.blocks.len() == 1 && self.func.block(self.func.entry).insns.is_empty() {
            self.halt_imm(0);
        }
        self.func
    }

    /// Access a block being built.
    pub fn block(&self, id: BlockId) -> &Block {
        self.func.block(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_code() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(5);
        let y = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(2));
        b.out(Operand::Reg(y));
        b.halt_imm(0);
        let f = b.finish();
        assert_eq!(f.static_size(), 4);
        assert!(f.terminator(f.entry).is_some());
    }

    #[test]
    fn builds_diamond_cfg() {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block("then");
        let e = b.new_block("else");
        let j = b.new_block("join");
        let x = b.imm(1);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.halt_imm(0);
        let f = b.finish();
        assert_eq!(f.successors(f.entry), vec![t, e]);
        assert_eq!(f.successors(t), vec![j]);
        assert_eq!(f.successors(e), vec![j]);
    }

    #[test]
    fn empty_builder_finishes_valid() {
        let f = FunctionBuilder::new("f").finish();
        assert!(f.terminator(f.entry).is_some());
    }

    #[test]
    fn provenance_is_stamped() {
        let mut b = FunctionBuilder::new("f");
        b.prov = Provenance::LibraryCode;
        let x = b.imm(1);
        let id = b.out(Operand::Reg(x));
        assert_eq!(b.func().insn(id).prov, Provenance::LibraryCode);
        b.prov = Provenance::Original;
        let id2 = b.halt_imm(0);
        assert_eq!(b.func().insn(id2).prov, Provenance::Original);
    }
}
