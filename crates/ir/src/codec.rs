//! Canonical byte codec for IR values.
//!
//! The staged compile pipeline (see `docs/PIPELINE.md`) stores each
//! stage's output in an on-disk content-addressed artifact store. That
//! only works if a [`Module`] and a [`vliw::ScheduledProgram`] can be
//! turned into bytes **canonically** — the same value always encodes to
//! the same bytes, regardless of `HashMap` iteration order or any other
//! run-to-run nondeterminism — and decoded back to an *equal* value.
//!
//! Canonical form, built on `casted_util::codec` primitives:
//!
//! * every integer is a minimal-length LEB128 varint (the strict
//!   decoder rejects padded encodings),
//! * enums are encoded as stable tag tables defined here — adding a
//!   variant appends a tag, it never renumbers existing ones,
//! * `f64` is encoded by its IEEE bit pattern,
//! * map-shaped data (`ScheduledProgram::home`) is serialized sorted by
//!   key, and derived tables (`Module::func_by_name`) are rebuilt on
//!   decode rather than stored.
//!
//! A [`ScheduledProgram`] is encoded **without** its `MachineConfig`:
//! the artifact key of a schedule already pins every config field the
//! scheduler reads, while simulator-only fields (cache geometry, memory
//! latency, MSHRs) must not be baked into the artifact at all — the
//! caller re-installs its own current config on decode. See
//! [`decode_scheduled`].
//!
//! Decoding is strict: trailing bytes, out-of-range tags, dangling
//! block/instruction ids, or non-minimal varints all return `None`.
//! The artifact store treats `None` as a cache miss and recomputes.

use std::collections::HashMap;

use casted_util::codec::{get_ivarint, get_str, get_uvarint, put_ivarint, put_str, put_uvarint};

use crate::func::{Block, BlockId, FuncId, Function, Global, GlobalClass, Module};
use crate::insn::{Insn, InsnId, Operand, Provenance};
use crate::machine::{Cluster, MachineConfig};
use crate::op::{CmpKind, Opcode};
use crate::reg::{Reg, RegClass};
use crate::vliw::{Bundle, ScheduledBlock, ScheduledProgram};

/// Bound on decoded string/array lengths — far above any real program,
/// low enough that a corrupted length field cannot OOM the decoder.
const MAX_LEN: usize = 1 << 28;

// ------------------------- enum tag tables -------------------------

fn cmp_tag(k: CmpKind) -> u64 {
    match k {
        CmpKind::Eq => 0,
        CmpKind::Ne => 1,
        CmpKind::Lt => 2,
        CmpKind::Le => 3,
        CmpKind::Gt => 4,
        CmpKind::Ge => 5,
    }
}

fn cmp_of(tag: u64) -> Option<CmpKind> {
    Some(match tag {
        0 => CmpKind::Eq,
        1 => CmpKind::Ne,
        2 => CmpKind::Lt,
        3 => CmpKind::Le,
        4 => CmpKind::Gt,
        5 => CmpKind::Ge,
        _ => return None,
    })
}

/// `(tag, sub)` pair for an opcode; `sub` carries the [`CmpKind`] of
/// the two compare families and is zero everywhere else.
fn op_tag(op: Opcode) -> (u64, u64) {
    match op {
        Opcode::Add => (0, 0),
        Opcode::Sub => (1, 0),
        Opcode::Mul => (2, 0),
        Opcode::Div => (3, 0),
        Opcode::Rem => (4, 0),
        Opcode::And => (5, 0),
        Opcode::Or => (6, 0),
        Opcode::Xor => (7, 0),
        Opcode::Shl => (8, 0),
        Opcode::Shr => (9, 0),
        Opcode::Sra => (10, 0),
        Opcode::MovI => (11, 0),
        Opcode::Sel => (12, 0),
        Opcode::Cmp(k) => (13, cmp_tag(k)),
        Opcode::FCmp(k) => (14, cmp_tag(k)),
        Opcode::FAdd => (15, 0),
        Opcode::FSub => (16, 0),
        Opcode::FMul => (17, 0),
        Opcode::FDiv => (18, 0),
        Opcode::FMovI => (19, 0),
        Opcode::I2F => (20, 0),
        Opcode::F2I => (21, 0),
        Opcode::Load => (22, 0),
        Opcode::FLoad => (23, 0),
        Opcode::Store => (24, 0),
        Opcode::FStore => (25, 0),
        Opcode::Out => (26, 0),
        Opcode::FOut => (27, 0),
        Opcode::Br => (28, 0),
        Opcode::BrCond => (29, 0),
        Opcode::DetectBr => (30, 0),
        Opcode::ChkNe => (31, 0),
        Opcode::Halt => (32, 0),
        Opcode::Nop => (33, 0),
        Opcode::Vote => (34, 0),
    }
}

fn op_of(tag: u64, sub: u64) -> Option<Opcode> {
    // Non-compare opcodes must carry sub == 0 so every value has
    // exactly one encoding.
    if !matches!(tag, 13 | 14) && sub != 0 {
        return None;
    }
    Some(match tag {
        0 => Opcode::Add,
        1 => Opcode::Sub,
        2 => Opcode::Mul,
        3 => Opcode::Div,
        4 => Opcode::Rem,
        5 => Opcode::And,
        6 => Opcode::Or,
        7 => Opcode::Xor,
        8 => Opcode::Shl,
        9 => Opcode::Shr,
        10 => Opcode::Sra,
        11 => Opcode::MovI,
        12 => Opcode::Sel,
        13 => Opcode::Cmp(cmp_of(sub)?),
        14 => Opcode::FCmp(cmp_of(sub)?),
        15 => Opcode::FAdd,
        16 => Opcode::FSub,
        17 => Opcode::FMul,
        18 => Opcode::FDiv,
        19 => Opcode::FMovI,
        20 => Opcode::I2F,
        21 => Opcode::F2I,
        22 => Opcode::Load,
        23 => Opcode::FLoad,
        24 => Opcode::Store,
        25 => Opcode::FStore,
        26 => Opcode::Out,
        27 => Opcode::FOut,
        28 => Opcode::Br,
        29 => Opcode::BrCond,
        30 => Opcode::DetectBr,
        31 => Opcode::ChkNe,
        32 => Opcode::Halt,
        33 => Opcode::Nop,
        34 => Opcode::Vote,
        _ => return None,
    })
}

fn prov_tag(p: Provenance) -> u64 {
    match p {
        Provenance::Original => 0,
        Provenance::Duplicate => 1,
        Provenance::CheckCmp => 2,
        Provenance::CheckBr => 3,
        Provenance::IsolationCopy => 4,
        Provenance::CompilerGen => 5,
        Provenance::LibraryCode => 6,
    }
}

fn prov_of(tag: u64) -> Option<Provenance> {
    Some(match tag {
        0 => Provenance::Original,
        1 => Provenance::Duplicate,
        2 => Provenance::CheckCmp,
        3 => Provenance::CheckBr,
        4 => Provenance::IsolationCopy,
        5 => Provenance::CompilerGen,
        6 => Provenance::LibraryCode,
        _ => return None,
    })
}

fn class_tag(c: RegClass) -> u64 {
    c.index() as u64
}

fn class_of(tag: u64) -> Option<RegClass> {
    RegClass::ALL.get(usize::try_from(tag).ok()?).copied()
}

// ------------------------- small helpers ---------------------------

fn put_reg(buf: &mut Vec<u8>, r: Reg) {
    put_uvarint(buf, class_tag(r.class));
    put_uvarint(buf, r.index as u64);
}

fn get_reg(buf: &[u8], pos: &mut usize) -> Option<Reg> {
    let class = class_of(get_uvarint(buf, pos)?)?;
    let index = u32::try_from(get_uvarint(buf, pos)?).ok()?;
    Some(Reg::new(class, index))
}

fn put_opt_block(buf: &mut Vec<u8>, b: Option<BlockId>) {
    match b {
        None => put_uvarint(buf, 0),
        Some(b) => put_uvarint(buf, 1 + b.0 as u64),
    }
}

fn get_opt_block(buf: &[u8], pos: &mut usize, n_blocks: usize) -> Option<Option<BlockId>> {
    match get_uvarint(buf, pos)? {
        0 => Some(None),
        v => {
            let idx = u32::try_from(v - 1).ok()?;
            ((idx as usize) < n_blocks).then_some(Some(BlockId(idx)))
        }
    }
}

fn get_count(buf: &[u8], pos: &mut usize) -> Option<usize> {
    let n = usize::try_from(get_uvarint(buf, pos)?).ok()?;
    (n <= MAX_LEN).then_some(n)
}

// ------------------------- instructions ----------------------------

fn put_insn(buf: &mut Vec<u8>, i: &Insn) {
    let (tag, sub) = op_tag(i.op);
    put_uvarint(buf, tag);
    put_uvarint(buf, sub);
    put_uvarint(buf, i.defs.len() as u64);
    for d in &i.defs {
        put_reg(buf, *d);
    }
    put_uvarint(buf, i.uses.len() as u64);
    for u in &i.uses {
        match u {
            Operand::Reg(r) => {
                put_uvarint(buf, 0);
                put_reg(buf, *r);
            }
            Operand::Imm(v) => {
                put_uvarint(buf, 1);
                put_ivarint(buf, *v);
            }
            Operand::FImm(v) => {
                put_uvarint(buf, 2);
                put_uvarint(buf, v.to_bits());
            }
        }
    }
    put_ivarint(buf, i.imm);
    put_opt_block(buf, i.target);
    put_opt_block(buf, i.target2);
    put_uvarint(buf, prov_tag(i.prov));
}

fn get_insn(buf: &[u8], pos: &mut usize, n_blocks: usize) -> Option<Insn> {
    let tag = get_uvarint(buf, pos)?;
    let sub = get_uvarint(buf, pos)?;
    let op = op_of(tag, sub)?;
    let n_defs = get_count(buf, pos)?;
    let mut defs = Vec::with_capacity(n_defs.min(4));
    for _ in 0..n_defs {
        defs.push(get_reg(buf, pos)?);
    }
    let n_uses = get_count(buf, pos)?;
    let mut uses = Vec::with_capacity(n_uses.min(8));
    for _ in 0..n_uses {
        uses.push(match get_uvarint(buf, pos)? {
            0 => Operand::Reg(get_reg(buf, pos)?),
            1 => Operand::Imm(get_ivarint(buf, pos)?),
            2 => Operand::FImm(f64::from_bits(get_uvarint(buf, pos)?)),
            _ => return None,
        });
    }
    let imm = get_ivarint(buf, pos)?;
    let target = get_opt_block(buf, pos, n_blocks)?;
    let target2 = get_opt_block(buf, pos, n_blocks)?;
    let prov = prov_of(get_uvarint(buf, pos)?)?;
    Some(Insn {
        op,
        defs,
        uses,
        imm,
        target,
        target2,
        prov,
    })
}

// ------------------------- functions -------------------------------

fn put_function(buf: &mut Vec<u8>, f: &Function) {
    put_str(buf, &f.name);
    put_uvarint(buf, f.blocks.len() as u64);
    // Blocks first, so instruction decoding can validate branch targets.
    for b in &f.blocks {
        put_str(buf, &b.name);
        put_uvarint(buf, b.insns.len() as u64);
        for id in &b.insns {
            put_uvarint(buf, id.0 as u64);
        }
    }
    put_uvarint(buf, f.insns.len() as u64);
    for i in &f.insns {
        put_insn(buf, i);
    }
    put_uvarint(buf, f.entry.0 as u64);
    for class in RegClass::ALL {
        put_uvarint(buf, f.reg_count(class) as u64);
    }
}

fn get_function(buf: &[u8], pos: &mut usize) -> Option<Function> {
    let name = get_str(buf, pos, MAX_LEN)?.to_string();
    let n_blocks = get_count(buf, pos)?;
    let mut raw_blocks = Vec::with_capacity(n_blocks.min(1024));
    for _ in 0..n_blocks {
        let bname = get_str(buf, pos, MAX_LEN)?.to_string();
        let n = get_count(buf, pos)?;
        let mut insns = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            insns.push(InsnId(u32::try_from(get_uvarint(buf, pos)?).ok()?));
        }
        raw_blocks.push(Block { name: bname, insns });
    }
    let n_insns = get_count(buf, pos)?;
    let mut insns = Vec::with_capacity(n_insns.min(65536));
    for _ in 0..n_insns {
        insns.push(get_insn(buf, pos, n_blocks)?);
    }
    // Block orderings must reference real arena entries.
    for b in &raw_blocks {
        if b.insns.iter().any(|id| id.index() >= n_insns) {
            return None;
        }
    }
    let entry = BlockId(u32::try_from(get_uvarint(buf, pos)?).ok()?);
    if entry.index() >= n_blocks {
        return None;
    }
    let mut next_reg = [0u32; 3];
    for slot in &mut next_reg {
        *slot = u32::try_from(get_uvarint(buf, pos)?).ok()?;
    }
    Some(Function {
        name,
        insns,
        blocks: raw_blocks,
        entry,
        next_reg,
    })
}

// ------------------------- modules ---------------------------------

/// Encode a module to canonical bytes.
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    put_str(&mut buf, &m.name);
    put_uvarint(&mut buf, m.functions.len() as u64);
    for f in &m.functions {
        put_function(&mut buf, f);
    }
    put_uvarint(&mut buf, m.globals.len() as u64);
    for g in &m.globals {
        put_str(&mut buf, &g.name);
        put_uvarint(
            &mut buf,
            match g.class {
                GlobalClass::Int => 0,
                GlobalClass::Float => 1,
            },
        );
        put_uvarint(&mut buf, g.len as u64);
        put_ivarint(&mut buf, g.addr);
        put_uvarint(&mut buf, g.init.len() as u64);
        for v in &g.init {
            put_ivarint(&mut buf, *v);
        }
    }
    match m.entry {
        None => put_uvarint(&mut buf, 0),
        Some(f) => put_uvarint(&mut buf, 1 + f.0 as u64),
    }
    put_ivarint(&mut buf, m.data_end());
    buf
}

/// Decode a module from canonical bytes; `None` on any damage,
/// including trailing bytes.
pub fn decode_module(buf: &[u8]) -> Option<Module> {
    let mut pos = 0;
    let m = decode_module_at(buf, &mut pos)?;
    (pos == buf.len()).then_some(m)
}

fn decode_module_at(buf: &[u8], pos: &mut usize) -> Option<Module> {
    let name = get_str(buf, pos, MAX_LEN)?.to_string();
    let n_fns = get_count(buf, pos)?;
    let mut functions = Vec::with_capacity(n_fns.min(256));
    for _ in 0..n_fns {
        functions.push(get_function(buf, pos)?);
    }
    let n_globals = get_count(buf, pos)?;
    let mut globals = Vec::with_capacity(n_globals.min(1024));
    for _ in 0..n_globals {
        let gname = get_str(buf, pos, MAX_LEN)?.to_string();
        let class = match get_uvarint(buf, pos)? {
            0 => GlobalClass::Int,
            1 => GlobalClass::Float,
            _ => return None,
        };
        let len = get_count(buf, pos)?;
        let addr = get_ivarint(buf, pos)?;
        let n_init = get_count(buf, pos)?;
        if n_init > len {
            return None;
        }
        let mut init = Vec::with_capacity(n_init.min(65536));
        for _ in 0..n_init {
            init.push(get_ivarint(buf, pos)?);
        }
        globals.push(Global {
            name: gname,
            class,
            len,
            addr,
            init,
        });
    }
    let entry = match get_uvarint(buf, pos)? {
        0 => None,
        v => {
            let idx = u32::try_from(v - 1).ok()?;
            if idx as usize >= n_fns {
                return None;
            }
            Some(FuncId(idx))
        }
    };
    let next_addr = get_ivarint(buf, pos)?;
    // `func_by_name` is derived data: rebuild it in insertion order,
    // exactly as the sequence of `add_function` calls did.
    let mut func_by_name = HashMap::new();
    for (i, f) in functions.iter().enumerate() {
        func_by_name.insert(f.name.clone(), FuncId(i as u32));
    }
    Some(Module {
        name,
        functions,
        globals,
        entry,
        func_by_name,
        next_addr,
    })
}

// ------------------------- scheduled programs ----------------------

/// Encode a scheduled program to canonical bytes, **excluding** its
/// `MachineConfig` (see module docs for why).
pub fn encode_scheduled(sp: &ScheduledProgram) -> Vec<u8> {
    let mut buf = encode_module(&sp.module);
    put_uvarint(&mut buf, sp.assignment.len() as u64);
    for a in &sp.assignment {
        match a {
            None => put_uvarint(&mut buf, 0),
            Some(c) => put_uvarint(&mut buf, 1 + c.0 as u64),
        }
    }
    // `home` is a HashMap; serialize sorted by register so the bytes
    // are canonical.
    let mut home: Vec<(Reg, Cluster)> = sp.home.iter().map(|(r, c)| (*r, *c)).collect();
    home.sort_unstable();
    put_uvarint(&mut buf, home.len() as u64);
    for (r, c) in home {
        put_reg(&mut buf, r);
        put_uvarint(&mut buf, c.0 as u64);
    }
    put_uvarint(&mut buf, sp.blocks.len() as u64);
    for b in &sp.blocks {
        put_uvarint(&mut buf, b.block.0 as u64);
        put_uvarint(&mut buf, b.bundles.len() as u64);
        for bundle in &b.bundles {
            put_uvarint(&mut buf, bundle.slots.len() as u64);
            for slot in &bundle.slots {
                put_uvarint(&mut buf, slot.len() as u64);
                for id in slot {
                    put_uvarint(&mut buf, id.0 as u64);
                }
            }
        }
    }
    buf
}

/// Decode a scheduled program, installing `config` as its machine
/// configuration. The caller must only pass a config whose
/// scheduler-visible fields match the ones the schedule was produced
/// under — the artifact key pins exactly those fields, so a key hit
/// guarantees it.
pub fn decode_scheduled(buf: &[u8], config: &MachineConfig) -> Option<ScheduledProgram> {
    let mut pos = 0;
    let module = decode_module_at(buf, &mut pos)?;
    let n_assign = get_count(buf, &mut pos)?;
    let mut assignment = Vec::with_capacity(n_assign.min(65536));
    for _ in 0..n_assign {
        assignment.push(match get_uvarint(buf, &mut pos)? {
            0 => None,
            v => {
                let c = u8::try_from(v - 1).ok()?;
                if (c as usize) >= config.clusters {
                    return None;
                }
                Some(Cluster(c))
            }
        });
    }
    let n_home = get_count(buf, &mut pos)?;
    let mut home = HashMap::with_capacity(n_home.min(65536));
    let mut prev: Option<Reg> = None;
    for _ in 0..n_home {
        let r = get_reg(buf, &mut pos)?;
        // Enforce strictly increasing keys: exactly one encoding per map.
        if let Some(p) = prev {
            if r <= p {
                return None;
            }
        }
        prev = Some(r);
        let c = u8::try_from(get_uvarint(buf, &mut pos)?).ok()?;
        if (c as usize) >= config.clusters {
            return None;
        }
        home.insert(r, Cluster(c));
    }
    let n_blocks = get_count(buf, &mut pos)?;
    let mut blocks = Vec::with_capacity(n_blocks.min(4096));
    for _ in 0..n_blocks {
        let block = BlockId(u32::try_from(get_uvarint(buf, &mut pos)?).ok()?);
        let n_bundles = get_count(buf, &mut pos)?;
        let mut bundles = Vec::with_capacity(n_bundles.min(4096));
        for _ in 0..n_bundles {
            let n_slots = get_count(buf, &mut pos)?;
            let mut slots = Vec::with_capacity(n_slots.min(16));
            for _ in 0..n_slots {
                let n = get_count(buf, &mut pos)?;
                let mut slot = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    slot.push(InsnId(u32::try_from(get_uvarint(buf, &mut pos)?).ok()?));
                }
                slots.push(slot);
            }
            bundles.push(Bundle { slots });
        }
        blocks.push(ScheduledBlock { block, bundles });
    }
    if pos != buf.len() {
        return None;
    }
    Some(ScheduledProgram {
        module,
        config: config.clone(),
        assignment,
        home,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen;
    use crate::vliw::ScheduledProgram;

    fn demo_module() -> Module {
        let mut m = Module::new("codec-demo");
        let (_, _addr) = m.add_global("tab", GlobalClass::Int, 4, vec![1, 2, 3]);
        let mut b = crate::FunctionBuilder::new("main");
        let r = b.new_reg(RegClass::Gp);
        b.push(Opcode::MovI, vec![r], vec![Operand::Imm(21)]);
        let f = b.new_reg(RegClass::Fp);
        b.push(Opcode::FMovI, vec![f], vec![Operand::FImm(2.5)]);
        let r2 = b.new_reg(RegClass::Gp);
        b.push(Opcode::Add, vec![r2], vec![Operand::Reg(r), Operand::Reg(r)]);
        b.push(Opcode::Out, vec![], vec![Operand::Reg(r2)]);
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    fn assert_modules_equal(a: &Module, b: &Module) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.func_by_name, b.func_by_name);
        assert_eq!(a.data_end(), b.data_end());
        assert_eq!(a.functions.len(), b.functions.len());
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.insns, fb.insns);
            assert_eq!(fa.blocks, fb.blocks);
            assert_eq!(fa.entry, fb.entry);
            for class in RegClass::ALL {
                assert_eq!(fa.reg_count(class), fb.reg_count(class));
            }
        }
        assert_eq!(a.globals.len(), b.globals.len());
        for (ga, gb) in a.globals.iter().zip(&b.globals) {
            assert_eq!(ga.name, gb.name);
            assert_eq!(ga.class, gb.class);
            assert_eq!(ga.len, gb.len);
            assert_eq!(ga.addr, gb.addr);
            assert_eq!(ga.init, gb.init);
        }
    }

    #[test]
    fn module_round_trips_and_is_canonical() {
        let m = demo_module();
        let bytes = encode_module(&m);
        let back = decode_module(&bytes).expect("decode");
        assert_modules_equal(&m, &back);
        // Re-encoding the decoded value reproduces the same bytes.
        assert_eq!(bytes, encode_module(&back));
    }

    #[test]
    fn generated_modules_round_trip() {
        for seed in 0..24u64 {
            let m = testgen::random_module(seed, &testgen::GenOptions::default());
            let bytes = encode_module(&m);
            let back = decode_module(&bytes).expect("decode generated module");
            assert_modules_equal(&m, &back);
            assert_eq!(bytes, encode_module(&back));
        }
    }

    #[test]
    fn module_decode_rejects_damage() {
        let bytes = encode_module(&demo_module());
        // Truncations at every prefix length must fail or... no: a
        // strict format can have no proper prefix that decodes, because
        // the full length is consumed and checked.
        for cut in 0..bytes.len() {
            assert!(
                decode_module(&bytes[..cut]).is_none(),
                "truncation to {cut} bytes decoded"
            );
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_module(&long).is_none());
    }

    fn demo_scheduled() -> ScheduledProgram {
        // A hand-built schedule exercising every field shape; validity
        // as a *schedule* is irrelevant to the codec.
        let m = demo_module();
        let mut home = HashMap::new();
        home.insert(Reg::gp(0), Cluster(0));
        home.insert(Reg::gp(1), Cluster(1));
        home.insert(Reg::fp(0), Cluster(0));
        home.insert(Reg::pr(0), Cluster(1));
        ScheduledProgram {
            assignment: vec![Some(Cluster(0)), None, Some(Cluster(1))],
            home,
            blocks: vec![ScheduledBlock {
                block: BlockId(0),
                bundles: vec![
                    Bundle {
                        slots: vec![vec![InsnId(0), InsnId(2)], vec![]],
                    },
                    Bundle {
                        slots: vec![vec![], vec![InsnId(1)]],
                    },
                ],
            }],
            config: MachineConfig::itanium2_like(2, 2),
            module: m,
        }
    }

    #[test]
    fn scheduled_round_trips_without_config() {
        let sp = demo_scheduled();
        let bytes = encode_scheduled(&sp);
        // Decode under a config that differs only in simulator-only
        // fields: the schedule body must come back identical and the
        // *caller's* config must be installed.
        let mut other = MachineConfig::itanium2_like(2, 2);
        other.memory_latency += 100;
        other.mshr_entries += 3;
        let back = decode_scheduled(&bytes, &other).expect("decode");
        assert_modules_equal(&sp.module, &back.module);
        assert_eq!(sp.assignment, back.assignment);
        assert_eq!(sp.home, back.home);
        assert_eq!(sp.blocks.len(), back.blocks.len());
        for (a, b) in sp.blocks.iter().zip(&back.blocks) {
            assert_eq!(a.block, b.block);
            assert_eq!(a.bundles.len(), b.bundles.len());
            for (ba, bb) in a.bundles.iter().zip(&b.bundles) {
                assert_eq!(ba.slots, bb.slots);
            }
        }
        assert_eq!(back.config.memory_latency, other.memory_latency);
        assert_eq!(bytes, encode_scheduled(&back));
    }

    #[test]
    fn scheduled_decode_rejects_damage() {
        let sp = demo_scheduled();
        let bytes = encode_scheduled(&sp);
        let cfg = MachineConfig::itanium2_like(2, 2);
        for cut in 0..bytes.len() {
            assert!(
                decode_scheduled(&bytes[..cut], &cfg).is_none(),
                "truncation to {cut} bytes decoded"
            );
        }
        let mut long = bytes.clone();
        long.push(7);
        assert!(decode_scheduled(&long, &cfg).is_none());
    }

    #[test]
    fn home_map_encoding_is_order_independent() {
        // Two maps built in different insertion orders encode
        // identically (sorted serialization).
        let sp = demo_scheduled();
        let mut sp2 = sp.clone();
        let pairs: Vec<(Reg, Cluster)> = sp.home.iter().map(|(r, c)| (*r, *c)).collect();
        sp2.home = HashMap::new();
        for (r, c) in pairs.iter().rev() {
            sp2.home.insert(*r, *c);
        }
        assert_eq!(encode_scheduled(&sp), encode_scheduled(&sp2));
    }

    #[test]
    fn bad_enum_tags_are_rejected() {
        // An opcode tag past the table must fail to decode.
        let m = demo_module();
        let bytes = encode_module(&m);
        // Corrupt one byte at a time; every outcome must be either a
        // clean failure or a decode equal to some module — never a
        // panic. (Checksum-level rejection happens one layer up, in
        // the artifact store.)
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let _ = decode_module(&bad);
        }
    }
}
