//! Classic backward liveness analysis over virtual registers.
//!
//! Used by the register-pressure limiting (spilling) pass and the final
//! physical-register assignment in `casted-passes`.

use std::collections::HashSet;

use crate::func::Function;
use crate::reg::Reg;

/// Live-in / live-out register sets per block.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live at block entry, indexed by block.
    pub live_in: Vec<HashSet<Reg>>,
    /// Registers live at block exit, indexed by block.
    pub live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Run the fixed-point dataflow analysis on `func`.
    pub fn analyze(func: &Function) -> Self {
        let n = func.blocks.len();
        // Per-block use (upward-exposed) and def sets.
        let mut use_set: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut def_set: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        for (bid, block) in func.iter_blocks() {
            let (u, d) = (&mut use_set[bid.index()], &mut def_set[bid.index()]);
            for &iid in &block.insns {
                let insn = func.insn(iid);
                for r in insn.reg_uses() {
                    if !d.contains(&r) {
                        u.insert(r);
                    }
                }
                for &r in &insn.defs {
                    d.insert(r);
                }
            }
        }

        let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        // Iterate to fixed point (blocks in reverse layout order gives
        // fast convergence for reducible CFGs).
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let bid = crate::func::BlockId(i as u32);
                let mut out: HashSet<Reg> = HashSet::new();
                for s in func.successors(bid) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<Reg> = use_set[i].clone();
                for &r in &out {
                    if !def_set[i].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[i] {
                    live_out[i] = out;
                    changed = true;
                }
                if inn != live_in[i] {
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Operand;
    use crate::op::{CmpKind, Opcode};

    #[test]
    fn straightline_liveness_is_empty_at_boundaries() {
        let mut b = FunctionBuilder::new("f");
        let x = b.imm(1);
        let _y = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(1));
        b.halt_imm(0);
        let f = b.finish();
        let l = Liveness::analyze(&f);
        assert!(l.live_in[0].is_empty());
        assert!(l.live_out[0].is_empty());
    }

    #[test]
    fn loop_carried_register_is_live_around_backedge() {
        let mut b = FunctionBuilder::new("f");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(10));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(i));
        b.halt_imm(0);
        let f = b.finish();
        let l = Liveness::analyze(&f);
        // `i` is live into and out of the loop body.
        assert!(l.live_in[body.index()].contains(&i));
        assert!(l.live_out[body.index()].contains(&i));
        // `i` is live into the exit block (it is printed there).
        assert!(l.live_in[done.index()].contains(&i));
        // the loop-local temp is not live anywhere across blocks.
        assert!(!l.live_in[body.index()].contains(&i1));
    }

    #[test]
    fn value_defined_in_one_branch_used_at_join() {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x = b.imm(5);
        let v = b.new_reg(crate::RegClass::Gp);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.push(Opcode::MovI, vec![v], vec![Operand::Imm(1)]);
        b.br(j);
        b.switch_to(e);
        b.push(Opcode::MovI, vec![v], vec![Operand::Imm(2)]);
        b.br(j);
        b.switch_to(j);
        b.out(Operand::Reg(v));
        b.halt_imm(0);
        let f = b.finish();
        let l = Liveness::analyze(&f);
        assert!(l.live_in[j.index()].contains(&v));
        assert!(l.live_out[t.index()].contains(&v));
        assert!(l.live_out[e.index()].contains(&v));
        // v is not live into entry (defined before use along all paths).
        assert!(!l.live_in[0].contains(&v));
    }
}
