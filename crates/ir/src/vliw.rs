//! Machine-level scheduled program representation.
//!
//! After cluster assignment (SCED/DCED fixed placement or CASTED's BUG)
//! and list scheduling, the code of each basic block becomes a dense
//! sequence of [`Bundle`]s — one per issue cycle — holding the
//! instructions issued by each cluster in that cycle. The two clusters
//! run in lockstep: the simulator fetches one bundle per cycle and
//! stalls the *whole* machine while any instruction in the bundle waits
//! for an operand (cache miss or inter-cluster register transfer).

use std::collections::HashMap;

use crate::func::{BlockId, Module};
use crate::insn::InsnId;
use crate::machine::{Cluster, MachineConfig};
use crate::reg::Reg;

/// Instructions issued in one cycle, separated per cluster.
#[derive(Clone, Debug, Default)]
pub struct Bundle {
    /// `slots[cluster][k]` = k-th instruction issued by that cluster
    /// this cycle; at most `issue_width` entries per cluster.
    pub slots: Vec<Vec<InsnId>>,
}

impl Bundle {
    /// An empty bundle for a machine with `clusters` clusters.
    pub fn empty(clusters: usize) -> Self {
        Bundle {
            slots: vec![Vec::new(); clusters],
        }
    }

    /// Total instructions in the bundle.
    pub fn count(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum()
    }

    /// Iterate `(cluster, insn)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Cluster, InsnId)> + '_ {
        self.slots.iter().enumerate().flat_map(|(c, v)| {
            v.iter().map(move |&i| (Cluster(c as u8), i))
        })
    }
}

/// The schedule of one basic block.
#[derive(Clone, Debug)]
pub struct ScheduledBlock {
    /// The block this schedule belongs to.
    pub block: BlockId,
    /// One bundle per cycle; the static schedule length is
    /// `bundles.len()`.
    pub bundles: Vec<Bundle>,
}

impl ScheduledBlock {
    /// Static schedule length in cycles.
    pub fn length(&self) -> usize {
        self.bundles.len()
    }
}

/// A fully scheduled program: the transformed module plus, for its
/// entry function, a per-block schedule, a per-instruction cluster
/// assignment, and a home cluster per virtual register.
#[derive(Clone, Debug)]
pub struct ScheduledProgram {
    /// The (possibly error-detection-transformed) module.
    pub module: Module,
    /// Machine configuration the schedule was produced for.
    pub config: MachineConfig,
    /// Cluster of each placed instruction of the entry function,
    /// indexed by `InsnId`; `None` for unplaced (dead) arena entries.
    pub assignment: Vec<Option<Cluster>>,
    /// Home cluster of each virtual register: the cluster whose
    /// register file holds the value (the cluster of its first-placed
    /// definition). Reads from the other cluster pay
    /// `config.inter_cluster_delay`.
    pub home: HashMap<Reg, Cluster>,
    /// Per-block schedules, indexed by block id.
    pub blocks: Vec<ScheduledBlock>,
}

impl ScheduledProgram {
    /// Cluster of a placed instruction.
    #[inline]
    pub fn cluster_of(&self, insn: InsnId) -> Option<Cluster> {
        self.assignment.get(insn.index()).copied().flatten()
    }

    /// Home cluster of a register (defaults to cluster 0 for registers
    /// never defined — e.g. read-before-write in synthetic tests).
    #[inline]
    pub fn home_of(&self, reg: Reg) -> Cluster {
        self.home.get(&reg).copied().unwrap_or(Cluster::MAIN)
    }

    /// Sum of static schedule lengths over all blocks (a crude static
    /// cost; the dynamic cycle count comes from the simulator).
    pub fn total_static_length(&self) -> usize {
        self.blocks.iter().map(|b| b.length()).sum()
    }

    /// Number of instructions placed on each cluster (for balance
    /// diagnostics — the paper notes CASTED "balances the use of
    /// hardware resources").
    pub fn cluster_occupancy(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.config.clusters];
        for a in self.assignment.iter().flatten() {
            occ[a.index()] += 1;
        }
        occ
    }

    /// Total bundles (issue cycles) in the static schedule.
    pub fn bundle_count(&self) -> usize {
        self.blocks.iter().map(|b| b.bundles.len()).sum()
    }

    /// Empty issue slots across the static schedule — the NOPs a real
    /// VLIW encoding would emit. Capacity is
    /// `clusters × issue_width` per bundle.
    pub fn nop_slots(&self) -> usize {
        let capacity = self.config.clusters * self.config.issue_width;
        self.blocks
            .iter()
            .flat_map(|b| &b.bundles)
            .map(|bu| capacity - bu.count())
            .sum()
    }

    /// Static data edges whose consumer sits on a different cluster
    /// than the value's home register file — each is an inter-cluster
    /// copy the interconnect must carry (what the BUG heuristic trades
    /// against parallelism when splitting error-detection code).
    pub fn cross_cluster_edges(&self) -> usize {
        let func = self.module.entry_fn();
        let mut edges = 0usize;
        for sb in &self.blocks {
            for bundle in &sb.bundles {
                for (cluster, iid) in bundle.iter() {
                    edges += func
                        .insn(iid)
                        .reg_uses()
                        .filter(|&r| self.home_of(r) != cluster)
                        .count();
                }
            }
        }
        edges
    }

    /// Structural validation of the schedule against the entry
    /// function: every block instruction placed exactly once, slot
    /// counts within issue width, terminators in the final bundle, and
    /// every placed instruction assigned to the cluster whose slot list
    /// contains it.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        let func = self.module.entry_fn();
        if self.blocks.len() != func.blocks.len() {
            errs.push(format!(
                "schedule covers {} blocks, function has {}",
                self.blocks.len(),
                func.blocks.len()
            ));
        }
        for sb in &self.blocks {
            let block = func.block(sb.block);
            let mut placed: Vec<InsnId> = Vec::new();
            for (cycle, bundle) in sb.bundles.iter().enumerate() {
                if bundle.slots.len() != self.config.clusters {
                    errs.push(format!(
                        "b{} cycle {}: bundle has {} cluster lanes, machine has {}",
                        sb.block.0,
                        cycle,
                        bundle.slots.len(),
                        self.config.clusters
                    ));
                    continue;
                }
                for (c, lane) in bundle.slots.iter().enumerate() {
                    if lane.len() > self.config.issue_width {
                        errs.push(format!(
                            "b{} cycle {} cluster {}: {} insns exceed issue width {}",
                            sb.block.0,
                            cycle,
                            c,
                            lane.len(),
                            self.config.issue_width
                        ));
                    }
                    for &iid in lane {
                        if self.cluster_of(iid) != Some(Cluster(c as u8)) {
                            errs.push(format!(
                                "insn {} scheduled on cluster {} but assigned {:?}",
                                iid.0,
                                c,
                                self.cluster_of(iid)
                            ));
                        }
                        placed.push(iid);
                    }
                }
            }
            let mut expected: Vec<InsnId> = block.insns.clone();
            let mut got = placed.clone();
            expected.sort();
            got.sort();
            if expected != got {
                errs.push(format!(
                    "b{}: scheduled instruction set differs from block contents ({} vs {})",
                    sb.block.0,
                    got.len(),
                    expected.len()
                ));
            }
            // Terminator must be in the last bundle.
            if let Some(term) = func.terminator(sb.block) {
                let in_last = sb
                    .bundles
                    .last()
                    .map(|b| b.iter().any(|(_, i)| i == term))
                    .unwrap_or(false);
                if !in_last {
                    errs.push(format!("b{}: terminator not in final bundle", sb.block.0));
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Render a block's schedule as a table (used by the motivating
    /// example binary to print Fig. 2/3-style schedules).
    pub fn render_block(&self, block: BlockId) -> String {
        let func = self.module.entry_fn();
        let sb = &self.blocks[block.index()];
        let mut s = String::new();
        s.push_str(&format!(
            "block {} ({} cycles)\n",
            func.block(block).name,
            sb.length()
        ));
        for (cycle, bundle) in sb.bundles.iter().enumerate() {
            let lanes: Vec<String> = bundle
                .slots
                .iter()
                .map(|lane| {
                    let ops: Vec<String> = lane
                        .iter()
                        .map(|&i| crate::print::format_insn(func, func.insn(i)))
                        .collect();
                    if ops.is_empty() {
                        "-".to_string()
                    } else {
                        ops.join(" || ")
                    }
                })
                .collect();
            s.push_str(&format!("  {:>3}: {}\n", cycle, lanes.join("   |   ")));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Operand;
    use crate::op::Opcode;

    fn tiny_program() -> (Module, Vec<InsnId>) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let x = b.imm(1);
        let y = b.binop(Opcode::Add, Operand::Reg(x), Operand::Imm(1));
        b.out(Operand::Reg(y));
        b.halt_imm(0);
        let ids = b.func().block(b.func().entry).insns.clone();
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        (m, ids)
    }

    fn sequential_schedule(m: Module, ids: &[InsnId]) -> ScheduledProgram {
        let config = MachineConfig::perfect_memory(1, 1);
        let mut assignment = vec![None; m.entry_fn().insns.len()];
        let mut bundles = Vec::new();
        for &i in ids {
            assignment[i.index()] = Some(Cluster::MAIN);
            let mut b = Bundle::empty(2);
            b.slots[0].push(i);
            bundles.push(b);
        }
        let mut home = HashMap::new();
        for &i in ids {
            for &d in &m.entry_fn().insn(i).defs {
                home.entry(d).or_insert(Cluster::MAIN);
            }
        }
        ScheduledProgram {
            blocks: vec![ScheduledBlock {
                block: m.entry_fn().entry,
                bundles,
            }],
            module: m,
            config,
            assignment,
            home,
        }
    }

    #[test]
    fn sequential_schedule_validates() {
        let (m, ids) = tiny_program();
        let sp = sequential_schedule(m, &ids);
        sp.validate().expect("schedule must validate");
        assert_eq!(sp.total_static_length(), 4);
        assert_eq!(sp.cluster_occupancy(), vec![4, 0]);
    }

    #[test]
    fn over_width_bundle_fails_validation() {
        let (m, ids) = tiny_program();
        let mut sp = sequential_schedule(m, &ids);
        // Cram everything into one bundle on a 1-wide machine.
        let mut b = Bundle::empty(2);
        for &i in &ids {
            b.slots[0].push(i);
        }
        sp.blocks[0].bundles = vec![b];
        let errs = sp.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("exceed issue width")));
    }

    #[test]
    fn missing_insn_fails_validation() {
        let (m, ids) = tiny_program();
        let mut sp = sequential_schedule(m, &ids);
        sp.blocks[0].bundles.remove(0);
        let errs = sp.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("differs from block contents")));
    }

    #[test]
    fn wrong_cluster_fails_validation() {
        let (m, ids) = tiny_program();
        let mut sp = sequential_schedule(m, &ids);
        sp.assignment[ids[0].index()] = Some(Cluster::REDUNDANT);
        let errs = sp.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("assigned")));
    }

    #[test]
    fn render_is_nonempty() {
        let (m, ids) = tiny_program();
        let sp = sequential_schedule(m, &ids);
        let entry = sp.module.entry_fn().entry;
        let text = sp.render_block(entry);
        assert!(text.contains("mov"));
        assert!(text.contains("halt"));
    }
}
