//! Control-flow-graph utilities: predecessors, reachability, orderings.

use crate::func::{BlockId, Function};

/// Predecessor lists for every block of `func`.
pub fn predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (bid, _) in func.iter_blocks() {
        for succ in func.successors(bid) {
            preds[succ.index()].push(bid);
        }
    }
    preds
}

/// Reverse post-order over the CFG starting at the entry block.
/// Unreachable blocks are excluded.
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor).
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
    visited[func.entry.index()] = true;
    while let Some(&mut (bid, ref mut next)) = stack.last_mut() {
        let succs = func.successors(bid);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(bid);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Blocks reachable from entry.
pub fn reachable(func: &Function) -> Vec<bool> {
    let mut r = vec![false; func.blocks.len()];
    for b in reverse_postorder(func) {
        r[b.index()] = true;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Operand;
    use crate::op::CmpKind;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x = b.imm(1);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.halt_imm(0);
        b.finish()
    }

    #[test]
    fn preds_of_diamond() {
        let f = diamond();
        let preds = predecessors(&f);
        // join has two predecessors.
        assert_eq!(preds[3].len(), 2);
        // entry has none.
        assert!(preds[0].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 4);
        // join must come after both branches.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut b = FunctionBuilder::new("f");
        let dead = b.new_block("dead");
        b.halt_imm(0);
        b.switch_to(dead);
        b.halt_imm(1);
        let f = b.finish();
        let r = reachable(&f);
        assert!(r[0]);
        assert!(!r[dead.index()]);
    }

    #[test]
    fn loop_rpo_terminates() {
        let mut b = FunctionBuilder::new("f");
        let body = b.new_block("body");
        let done = b.new_block("done");
        b.br(body);
        b.switch_to(body);
        let x = b.imm(1);
        let p = b.cmp(CmpKind::Gt, Operand::Reg(x), Operand::Imm(0));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.halt_imm(0);
        let f = b.finish();
        assert_eq!(reverse_postorder(&f).len(), 3);
    }
}

/// Immediate dominators (Cooper–Harvey–Kennedy iterative algorithm).
/// `idom[entry] == entry`; unreachable blocks map to `None`.
pub fn immediate_dominators(func: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_postorder(func);
    let n = func.blocks.len();
    let mut rpo_pos = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_pos[b.index()] = i;
    }
    let preds = predecessors(func);
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[func.entry.index()] = Some(func.entry);

    let intersect = |idom: &Vec<Option<BlockId>>, rpo_pos: &Vec<usize>, mut a: BlockId, mut b: BlockId| {
        while a != b {
            while rpo_pos[a.index()] > rpo_pos[b.index()] {
                a = idom[a.index()].unwrap();
            }
            while rpo_pos[b.index()] > rpo_pos[a.index()] {
                b = idom[b.index()].unwrap();
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue; // not yet processed / unreachable
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// True if `a` dominates `b`.
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// Loop-nesting depth per block, from natural loops: for every back
/// edge `u -> v` (where `v` dominates `u`), every block of the natural
/// loop `{v} ∪ {blocks reaching u without passing v}` gains one level.
pub fn loop_depths(func: &Function) -> Vec<u32> {
    let idom = immediate_dominators(func);
    let preds = predecessors(func);
    let n = func.blocks.len();
    let mut depth = vec![0u32; n];
    for (u, _) in func.iter_blocks() {
        if idom[u.index()].is_none() {
            continue;
        }
        for v in func.successors(u) {
            if !dominates(&idom, v, u) {
                continue; // not a back edge
            }
            // Natural loop body: reverse reachability from u, stopping
            // at the header v.
            let mut body = vec![false; n];
            body[v.index()] = true;
            let mut stack = vec![u];
            while let Some(b) = stack.pop() {
                if body[b.index()] {
                    continue;
                }
                body[b.index()] = true;
                for &p in &preds[b.index()] {
                    stack.push(p);
                }
            }
            for (i, &inb) in body.iter().enumerate() {
                if inb {
                    depth[i] += 1;
                }
            }
        }
    }
    depth
}

/// Rough static execution-frequency estimate: `8^depth`, capped.
pub fn frequency_estimate(func: &Function) -> Vec<u64> {
    loop_depths(func)
        .into_iter()
        .map(|d| 8u64.saturating_pow(d.min(6)))
        .collect()
}

#[cfg(test)]
mod loop_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Operand;
    use crate::op::CmpKind;

    /// entry -> head <-> body(if/else diamond) -> exit
    fn loop_with_diamond() -> Function {
        let mut b = FunctionBuilder::new("f");
        let head = b.new_block("head");
        let body = b.new_block("body");
        let t = b.new_block("t");
        let e = b.new_block("e");
        let latch = b.new_block("latch");
        let exit = b.new_block("exit");
        let i = b.imm(0);
        b.br(head);
        b.switch_to(head);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(10));
        b.br_cond(p, body, exit);
        b.switch_to(body);
        let q = b.cmp(CmpKind::Eq, Operand::Reg(i), Operand::Imm(5));
        b.br_cond(q, t, e);
        b.switch_to(t);
        b.br(latch);
        b.switch_to(e);
        b.br(latch);
        b.switch_to(latch);
        let i2 = b.binop(crate::Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(crate::Opcode::MovI, vec![i], vec![Operand::Reg(i2)]);
        b.br(head);
        b.switch_to(exit);
        b.halt_imm(0);
        b.finish()
    }

    #[test]
    fn idom_of_structured_loop() {
        let f = loop_with_diamond();
        let idom = immediate_dominators(&f);
        // head is dominated by entry; body by head; t and e by body;
        // latch by body; exit by head.
        assert_eq!(idom[1], Some(BlockId(0))); // head <- entry
        assert_eq!(idom[2], Some(BlockId(1))); // body <- head
        assert_eq!(idom[3], Some(BlockId(2))); // t <- body
        assert_eq!(idom[4], Some(BlockId(2))); // e <- body
        assert_eq!(idom[5], Some(BlockId(2))); // latch <- body
        assert_eq!(idom[6], Some(BlockId(1))); // exit <- head
    }

    #[test]
    fn loop_depth_covers_both_diamond_arms() {
        let f = loop_with_diamond();
        let d = loop_depths(&f);
        assert_eq!(d[0], 0, "entry not in loop");
        assert_eq!(d[6], 0, "exit not in loop");
        for blk in [1usize, 2, 3, 4, 5] {
            assert_eq!(d[blk], 1, "block {blk} should be loop depth 1: {d:?}");
        }
    }

    #[test]
    fn nested_loop_depth_is_two() {
        let mut b = FunctionBuilder::new("f");
        let oh = b.new_block("outer_head");
        let ih = b.new_block("inner_head");
        let ib = b.new_block("inner_body");
        let ol = b.new_block("outer_latch");
        let exit = b.new_block("exit");
        let i = b.imm(0);
        b.br(oh);
        b.switch_to(oh);
        let p = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(3));
        b.br_cond(p, ih, exit);
        b.switch_to(ih);
        let q = b.cmp(CmpKind::Lt, Operand::Reg(i), Operand::Imm(2));
        b.br_cond(q, ib, ol);
        b.switch_to(ib);
        b.br(ih);
        b.switch_to(ol);
        b.br(oh);
        b.switch_to(exit);
        b.halt_imm(0);
        let f = b.finish();
        let d = loop_depths(&f);
        assert_eq!(d[ib.index()], 2);
        assert_eq!(d[ih.index()], 2);
        assert_eq!(d[ol.index()], 1);
        assert_eq!(d[oh.index()], 1);
        assert_eq!(d[exit.index()], 0);
        let freq = frequency_estimate(&f);
        assert_eq!(freq[ib.index()], 64);
    }
}
